// Microbenchmarks for runtime-side components (google-benchmark):
// scheduler decision latency vs ready-queue size, JSON DAG parsing,
// blocking-queue throughput and end-to-end API call latency through the
// threaded runtime.

#include <benchmark/benchmark.h>

#include "cedr/cedr.h"
#include "cedr/common/queue.h"
#include "cedr/json/json.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sched/scheduler.h"
#include "cedr/task/dag_loader.h"

namespace {

using namespace cedr;

/// Decision latency of one heuristic over a queue of `q` FFT tasks and a
/// 3 CPU + 1 FFT + 1 MMULT PE pool — the host-side cost Fig. 7 models.
void BM_SchedulerDecision(benchmark::State& state,
                          const std::string& name) {
  const auto q = static_cast<std::size_t>(state.range(0));
  auto scheduler = sched::make_scheduler(name);
  if (!scheduler.ok()) {
    state.SkipWithError("unknown scheduler");
    return;
  }
  const platform::PlatformConfig plat = platform::zcu102(3, 1, 1);
  std::vector<sched::ReadyTask> ready(q);
  for (std::size_t i = 0; i < q; ++i) {
    ready[i] = sched::ReadyTask{.task_key = i,
                                .app_instance_id = i % 10,
                                .kernel = platform::KernelId::kFft,
                                .problem_size = 256,
                                .data_bytes = 4096,
                                .rank = static_cast<double>(q - i)};
  }
  for (auto _ : state) {
    std::vector<sched::PeState> pes;
    for (std::size_t i = 0; i < plat.pes.size(); ++i) {
      pes.push_back(sched::PeState{.pe_index = i, .cls = plat.pes[i].cls});
    }
    const sched::ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
    benchmark::DoNotOptimize((*scheduler)->schedule(ready, pes, ctx));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(q));
}
BENCHMARK_CAPTURE(BM_SchedulerDecision, RR, "RR")->Arg(16)->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_SchedulerDecision, EFT, "EFT")->Arg(16)->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_SchedulerDecision, ETF, "ETF")->Arg(16)->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_SchedulerDecision, HEFT_RT, "HEFT_RT")
    ->Arg(16)->Arg(256)->Arg(1024);

void BM_DagJsonRoundTrip(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  task::AppDescriptor app;
  app.name = "bench";
  for (std::size_t i = 0; i < nodes; ++i) {
    task::Task t;
    t.id = i;
    t.name = "node" + std::to_string(i);
    t.kernel = platform::KernelId::kFft;
    t.problem_size = 256;
    (void)app.graph.add_task(std::move(t));
    if (i > 0) (void)app.graph.add_edge(i - 1, i);
  }
  const std::string text = task::app_to_json(app).dump();
  for (auto _ : state) {
    auto doc = json::parse(text);
    benchmark::DoNotOptimize(task::app_from_json(*doc));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(nodes));
}
BENCHMARK(BM_DagJsonRoundTrip)->Arg(64)->Arg(512)->Arg(2048);

void BM_BlockingQueue(benchmark::State& state) {
  BlockingQueue<int> queue;
  for (auto _ : state) {
    queue.push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_BlockingQueue);

/// End-to-end latency of one blocking CEDR_FFT through the threaded
/// runtime: enqueue -> schedule -> worker -> condvar signal (Fig. 4).
void BM_ApiCallRoundTrip(benchmark::State& state) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  rt::Runtime runtime(config);
  if (!runtime.start().ok()) {
    state.SkipWithError("runtime failed to start");
    return;
  }
  std::vector<cedr_cplx> buf(256);
  // Drive the benchmark loop from inside one API application so the
  // thread-binding is in place.
  auto instance = runtime.submit_api("bench", [&state, &buf] {
    for (auto _ : state) {
      benchmark::DoNotOptimize(CEDR_FFT(buf.data(), buf.data(), buf.size()));
    }
  });
  if (!instance.ok()) {
    state.SkipWithError("submit failed");
    return;
  }
  (void)runtime.wait_all(600.0);
  (void)runtime.shutdown();
}
BENCHMARK(BM_ApiCallRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_StandaloneApiCall(benchmark::State& state) {
  std::vector<cedr_cplx> buf(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CEDR_FFT(buf.data(), buf.data(), buf.size()));
  }
}
BENCHMARK(BM_StandaloneApiCall)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
