// Reproduces Fig. 5: runtime overhead of API-based vs DAG-based CEDR as a
// function of injection rate.
//
// Configuration (paper §IV-A): ZCU102 with 3 ARM CPUs + 1 FFT accelerator;
// workload of 5 Pulse Doppler + 5 WiFi TX instances; EFT scheduler.
// Expected shape: overhead falls as arrivals overlap, saturating around
// 200 Mbps; in the saturated region API-based CEDR shows ~19.5 % lower
// runtime overhead than DAG-based CEDR (the paper reports 19.52 %).

#include "bench_util.h"

using namespace cedr;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const auto streams = bench::pdtx_streams(pd, tx);
  const std::vector<double> rates = bench::rates_for(opts);

  bench::Table table("Fig. 5 - runtime overhead per app (ms), ZCU102 3 CPU + 1 FFT, EFT",
                     "rate_mbps", {"DAG", "API", "reduction_%"});

  for (const double rate : rates) {
    double overhead[2] = {0.0, 0.0};
    for (int mode = 0; mode < 2; ++mode) {
      sim::SimConfig config;
      config.platform = platform::zcu102(3, 1, 0);
      config.scheduler = "EFT";
      config.model = mode == 0 ? sim::ProgrammingModel::kDagBased
                               : sim::ProgrammingModel::kApiBased;
      auto result = workload::run_point(config, streams, rate, opts.trials,
                                        /*seed_base=*/42);
      if (!result.ok()) {
        std::fprintf(stderr, "fig5: %s\n", result.status().to_string().c_str());
        return 1;
      }
      overhead[mode] = result->mean.runtime_overhead_per_app * 1e3;
    }
    const double reduction =
        overhead[0] > 0.0 ? 100.0 * (overhead[0] - overhead[1]) / overhead[0]
                          : 0.0;
    table.add_row(rate, {overhead[0], overhead[1], reduction});
  }

  table.print();
  table.write_csv(opts.csv_path);
  const double saturated = table.saturated_mean(2, 200.0);
  std::printf(
      "\nHeadline: saturated-region (>=200 Mbps) overhead reduction of "
      "API vs DAG = %.1f%%   (paper reports 19.52%%)\n",
      saturated);
  return 0;
}
