// Reproduces Fig. 7: average scheduling overhead per application vs
// injection rate for all four schedulers, DAG-based (a) and API-based (b),
// ZCU102 with 3 CPUs + 1 FFT + 1 MMULT (paper §IV-A).
//
// Expected shape: RR/EFT/HEFT_RT stay flat and close to each other in both
// modes; ETF's overhead is queue-size-bound and collapses from ~70 ms/app
// (DAG) to ~1.15 ms/app (API) because API-based CEDR only schedules the
// libCEDR calls, keeping the ready queue small.

#include "bench_util.h"

using namespace cedr;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const auto streams = bench::pdtx_streams(pd, tx);
  const std::vector<double> rates = bench::rates_for(opts);

  double etf_saturated[2] = {0.0, 0.0};
  for (int mode = 0; mode < 2; ++mode) {
    const bool api = mode == 1;
    bench::Table table(
        std::string("Fig. 7") + (api ? "(b) API" : "(a) DAG") +
            " - avg scheduling overhead per app (ms), ZCU102 3 CPU + 1 FFT + 1 MMULT",
        "rate_mbps", {"RR", "EFT", "ETF", "HEFT_RT"});
    for (const double rate : rates) {
      std::vector<double> row;
      for (const char* scheduler : bench::kSchedulers) {
        sim::SimConfig config;
        config.platform = platform::zcu102(3, 1, 1);
        config.scheduler = scheduler;
        config.model = api ? sim::ProgrammingModel::kApiBased
                           : sim::ProgrammingModel::kDagBased;
        auto result =
            workload::run_point(config, streams, rate, opts.trials, 42);
        if (!result.ok()) {
          std::fprintf(stderr, "fig7: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
        row.push_back(result->mean.avg_sched_overhead * 1e3);
      }
      table.add_row(rate, std::move(row));
    }
    table.print();
    if (!opts.csv_path.empty()) {
      table.write_csv(opts.csv_path + (api ? ".api.csv" : ".dag.csv"));
    }
    etf_saturated[mode] = table.saturated_mean(2, 200.0);
  }
  std::printf(
      "\nHeadline: ETF saturated scheduling overhead DAG=%.2f ms/app vs "
      "API=%.2f ms/app   (paper: ~70 ms -> ~1.15 ms)\n",
      etf_saturated[0], etf_saturated[1]);
  return 0;
}
