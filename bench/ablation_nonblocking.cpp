// Ablation: blocking vs non-blocking API issue patterns.
//
// The paper claims (§II-C) that the non-blocking APIs "allow users to
// extract equivalent performance to the DAG-based methodology without
// sacrificing productivity". This harness quantifies that claim on both
// platforms: for each scheduler it compares DAG-based execution against
// API-based execution with blocking calls and with non-blocking calls, at
// a saturated injection rate.

#include "bench_util.h"

using namespace cedr;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const double rate = 1000.0;

  const sim::SimApp pd_blocking = sim::make_pulse_doppler_model(false);
  const sim::SimApp tx_blocking = sim::make_wifi_tx_model(false);
  const sim::SimApp pd_nonblocking = sim::make_pulse_doppler_model(true);
  const sim::SimApp tx_nonblocking = sim::make_wifi_tx_model(true);

  for (int board = 0; board < 2; ++board) {
    const bool jetson = board == 1;
    bench::Table table(
        std::string("Ablation: issue pattern, ") +
            (jetson ? "Jetson 3 CPU + 1 GPU" : "ZCU102 3 CPU + 1 FFT + 1 MMULT") +
            ", 1000 Mbps - avg exec time per app (ms)",
        "scheduler#", {"DAG", "API_blocking", "API_nonblocking"});
    int index = 0;
    for (const char* scheduler : bench::kSchedulers) {
      std::vector<double> row;
      for (int variant = 0; variant < 3; ++variant) {
        sim::SimConfig config;
        config.platform =
            jetson ? platform::jetson(3, 1) : platform::zcu102(3, 1, 1);
        config.scheduler = scheduler;
        config.model = variant == 0 ? sim::ProgrammingModel::kDagBased
                                    : sim::ProgrammingModel::kApiBased;
        const auto streams =
            variant == 2 ? bench::pdtx_streams(pd_nonblocking, tx_nonblocking)
                         : bench::pdtx_streams(pd_blocking, tx_blocking);
        auto result = workload::run_point(config, streams, rate, opts.trials, 42);
        if (!result.ok()) {
          std::fprintf(stderr, "ablation: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
        row.push_back(result->mean.avg_execution_time * 1e3);
      }
      std::printf("  row %d = %s\n", index, scheduler);
      table.add_row(index++, std::move(row));
    }
    table.print();
  }
  std::printf(
      "\nClaim under test (paper §II-C): API_nonblocking should approach "
      "DAG performance, while API_blocking pays a per-call round trip.\n");
  return 0;
}
