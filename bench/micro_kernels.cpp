// Microbenchmarks for the compute kernels (google-benchmark).
// Not tied to a paper figure; used to track the CPU reference
// implementations backing every libCEDR API.

#include <benchmark/benchmark.h>

#include "cedr/common/rng.h"
#include "cedr/kernels/conv.h"
#include "cedr/kernels/fft.h"
#include "cedr/kernels/image.h"
#include "cedr/kernels/mmult.h"
#include "cedr/kernels/radar.h"
#include "cedr/kernels/wifi.h"
#include "cedr/kernels/zip.h"

namespace {

using namespace cedr;
using namespace cedr::kernels;

std::vector<cfloat> random_complex(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> v(n);
  for (auto& x : v) {
    x = cfloat(static_cast<float>(rng.uniform(-1, 1)),
               static_cast<float>(rng.uniform(-1, 1)));
  }
  return v;
}

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto data = random_complex(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft_inplace(data, false));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Ifft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto data = random_complex(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft_inplace(data, true));
  }
}
BENCHMARK(BM_Ifft)->Arg(256)->Arg(1024);

void BM_Zip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_complex(n, 1);
  const auto b = random_complex(n, 2);
  std::vector<cfloat> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zip(a, b, out, ZipOp::kMultiply));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Zip)->Arg(256)->Arg(1024)->Arg(65536);

void BM_MmultBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmult_blocked(a, b, c, n, n, n));
  }
}
BENCHMARK(BM_MmultBlocked)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dFft(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<float> img(dim * dim), out(dim * dim);
  for (auto& v : img) v = static_cast<float>(rng.uniform(0, 1));
  const auto kern = gaussian_kernel(7, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_fft(img, dim, dim, kern, 7, out));
  }
}
BENCHMARK(BM_Conv2dFft)->Arg(64)->Arg(128);

void BM_ConvolutionalEncode(benchmark::State& state) {
  Rng rng(5);
  BitVec bits(1024);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(convolutional_encode(bits));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ConvolutionalEncode);

void BM_ViterbiDecode(benchmark::State& state) {
  Rng rng(6);
  BitVec bits(256);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
  bits.insert(bits.end(), 6, 0);
  const BitVec coded = convolutional_encode(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viterbi_decode(coded));
  }
}
BENCHMARK(BM_ViterbiDecode);

void BM_MatchedFilter(benchmark::State& state) {
  constexpr std::size_t kN = 256;
  const auto pulse = random_complex(kN, 7);
  auto chirp_freq = random_complex(kN, 8);
  std::vector<cfloat> out(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matched_filter(pulse, chirp_freq, out));
  }
}
BENCHMARK(BM_MatchedFilter);

void BM_HoughLines(benchmark::State& state) {
  Rng rng(9);
  RoadTruth truth;
  const RgbImage road = synthesize_road(96, 160, truth, 0.0, rng);
  const GrayImage gray = rgb_to_gray(road);
  const GrayImage edges = sobel_magnitude(gray);
  const GrayImage binary = threshold(edges, 0.9f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hough_lines(binary, 4, 20));
  }
}
BENCHMARK(BM_HoughLines);

}  // namespace

BENCHMARK_MAIN();
