// Ablation: the paper's §VI future-work proposal, implemented.
//
// "One promising path to address the barrier of CPU availability is to
// leverage progress in big.LITTLE architectures and exchange a fraction of
// the heavyweight CPUs with a larger quantity of lightweight CPUs
// specialized for worker thread management."
//
// This harness runs the accelerator-rich AV workload (non-blocking APIs)
// while exchanging big cores for LITTLE cores at a 1-big : 3-LITTLE area
// budget, and separately while just adding LITTLE cores, to separate the
// two effects (extra hardware contexts vs lost single-thread throughput).

#include "bench_util.h"

using namespace cedr;

namespace {

double run(const platform::PlatformConfig& plat, const char* scheduler,
           const bench::Options& opts) {
  const sim::SimApp pd = sim::make_pulse_doppler_model(true);
  const sim::SimApp tx = sim::make_wifi_tx_model(true);
  const sim::SimApp ld = sim::make_lane_detection_model(opts.ld_scale, true);
  const auto streams = bench::av_streams(ld, pd, tx);
  sim::SimConfig config;
  config.platform = plat;
  config.scheduler = scheduler;
  config.model = sim::ProgrammingModel::kApiBased;
  auto result = workload::run_point(config, streams, 300.0, opts.trials, 42);
  return result.ok() ? result->mean.avg_execution_time * 1e3 : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);

  std::printf("=== Exchange big for LITTLE at constant area "
              "(1 big ~ 3 LITTLE), 8 FFT accelerators, 300 Mbps ===\n");
  {
    bench::Table table(
        "AV workload (non-blocking APIs) - avg exec time per app (ms)",
        "big_cores", {"EFT", "HEFT_RT", "RR"});
    for (std::size_t big = 3; big >= 1; --big) {
      const std::size_t little = (3 - big) * 3;
      const auto plat = platform::biglittle(big, little, 8);
      table.add_row(static_cast<double>(big),
                    {run(plat, "EFT", opts), run(plat, "HEFT_RT", opts),
                     run(plat, "RR", opts)});
      std::printf("  big=%zu little=%zu -> %zu CPU contexts\n", big, little,
                  big + little);
    }
    table.print();
  }

  std::printf("\n=== Pure LITTLE-core additions on top of 2 big + 8 FFT ===\n");
  {
    bench::Table table(
        "AV workload (non-blocking APIs) - avg exec time per app (ms)",
        "little_cores", {"EFT", "HEFT_RT", "RR"});
    for (const std::size_t little : {0u, 2u, 4u, 6u, 8u}) {
      const auto plat = platform::biglittle(2, little, 8);
      table.add_row(static_cast<double>(little),
                    {run(plat, "EFT", opts), run(plat, "HEFT_RT", opts),
                     run(plat, "RR", opts)});
    }
    table.print();
  }
  std::printf(
      "\nReading: if the paper's hypothesis holds in this model, LITTLE-core"
      "\nadditions reduce execution time by absorbing accelerator-management"
      "\nthreads, and the constant-area exchange is competitive for the"
      "\ncost-aware schedulers while hurting RR (which schedules kernel work"
      "\nonto the slow LITTLE cores indiscriminately).\n");
  return 0;
}
