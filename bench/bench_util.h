#pragma once
// Shared harness for the figure-reproduction benchmarks.
//
// Every fig*_ binary sweeps a workload through the discrete-event emulator
// and prints the series the corresponding paper figure plots, plus the
// headline statistic its text quotes. Flags common to all binaries:
//   --trials N    trials averaged per point (default 5; paper uses 25)
//   --full        sweep all 29 paper injection rates instead of a 10-point
//                 subset (slower, same shapes)
//   --ld-scale N  divide Lane Detection's transform counts by N (default 4;
//                 1 reproduces the paper's 16384/8192 instances)
//   --csv PATH    also write the table as CSV

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "cedr/json/json.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"
#include "cedr/workload/workload.h"

namespace cedr::bench {

struct Options {
  std::size_t trials = 5;
  bool full_sweep = false;
  std::size_t ld_scale = 4;
  std::string csv_path;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trials") {
      if (const char* v = next()) opts.trials = std::strtoul(v, nullptr, 10);
    } else if (arg == "--full") {
      opts.full_sweep = true;
    } else if (arg == "--ld-scale") {
      if (const char* v = next()) opts.ld_scale = std::strtoul(v, nullptr, 10);
    } else if (arg == "--csv") {
      if (const char* v = next()) opts.csv_path = v;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--trials N] [--full] [--ld-scale N] [--csv PATH]\n",
          argv[0]);
      std::exit(0);
    }
  }
  if (opts.trials == 0) opts.trials = 1;
  if (opts.ld_scale == 0) opts.ld_scale = 1;
  return opts;
}

/// Injection rates to sweep: the paper's 29 points or a 10-point subset.
inline std::vector<double> rates_for(const Options& opts) {
  if (opts.full_sweep) return workload::injection_rate_sweep();
  return {10, 25, 50, 100, 200, 400, 700, 1000, 1500, 2000};
}

/// A printable table: one row per x value, one column per series.
class Table {
 public:
  Table(std::string title, std::string x_label,
        std::vector<std::string> columns)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        columns_(std::move(columns)) {}

  void add_row(double x, std::vector<double> values) {
    rows_.push_back({x, std::move(values)});
  }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%12s", x_label_.c_str());
    for (const std::string& c : columns_) std::printf(" %14s", c.c_str());
    std::printf("\n");
    for (const auto& [x, values] : rows_) {
      std::printf("%12.1f", x);
      for (const double v : values) std::printf(" %14.3f", v);
      std::printf("\n");
    }
  }

  void write_csv(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path, std::ios::trunc);
    out << x_label_;
    for (const std::string& c : columns_) out << ',' << c;
    out << '\n';
    for (const auto& [x, values] : rows_) {
      out << x;
      for (const double v : values) out << ',' << v;
      out << '\n';
    }
    std::printf("[csv written to %s]\n", path.c_str());
  }

  /// Mean of one column over rows with x >= threshold (the paper's
  /// "saturated region" statistics).
  [[nodiscard]] double saturated_mean(std::size_t column,
                                      double x_threshold) const {
    double total = 0.0;
    std::size_t n = 0;
    for (const auto& [x, values] : rows_) {
      if (x >= x_threshold && column < values.size()) {
        total += values[column];
        ++n;
      }
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
  }

 private:
  struct Row {
    double x;
    std::vector<double> values;
  };
  std::string title_;
  std::string x_label_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// Machine-readable benchmark results (BENCH_*.json), so the performance
/// trajectory is tracked across PRs instead of living in scrollback.
///
/// Layout written by write_with_baseline():
///   {"bench": <name>, "baseline": {"points": [...]}, "current": {"points":
///   [...]}}
/// The first run of a bench promotes its own points to the baseline block;
/// later runs preserve whatever baseline the file already carries and only
/// replace "current". Delete the file to re-baseline.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add_point(json::Object point) { points_.emplace_back(std::move(point)); }

  /// One {"points": [...]} run block.
  [[nodiscard]] json::Value run_block() const {
    json::Object block;
    block.emplace("points", json::Value(points_));
    return json::Value(std::move(block));
  }

  Status write_with_baseline(const std::string& path) const {
    json::Value baseline = run_block();
    if (auto existing = json::parse_file(path); existing.ok()) {
      if (const json::Value* prior = existing->find("baseline");
          prior != nullptr && prior->is_object()) {
        baseline = *prior;
      }
    }
    json::Object doc;
    doc.emplace("bench", bench_);
    doc.emplace("baseline", std::move(baseline));
    doc.emplace("current", run_block());
    const Status s = json::write_file(path, json::Value(std::move(doc)));
    if (s.ok()) std::printf("[json written to %s]\n", path.c_str());
    return s;
  }

 private:
  std::string bench_;
  json::Array points_;
};

/// {"count","p50","p95","max"} summary of a wall-clock histogram, for
/// embedding in a JsonReport point.
inline json::Value histogram_summary(const obs::QuantileHistogram& h) {
  json::Object o;
  o.emplace("count", h.count());
  o.emplace("p50", h.quantile(0.50));
  o.emplace("p95", h.quantile(0.95));
  o.emplace("max", h.max());
  return json::Value(std::move(o));
}

/// PD + TX workload of §IV-A (5 instances each).
inline std::vector<workload::Stream> pdtx_streams(const sim::SimApp& pd,
                                                  const sim::SimApp& tx) {
  return {{.app = &pd, .instances = 5, .start_offset_s = 0.0},
          {.app = &tx, .instances = 5, .start_offset_s = 0.0}};
}

/// Autonomous-vehicle workload of §IV-B: one long-latency Lane Detection
/// plus dynamically arriving PD and TX instances.
inline std::vector<workload::Stream> av_streams(const sim::SimApp& ld,
                                                const sim::SimApp& pd,
                                                const sim::SimApp& tx) {
  return {{.app = &ld, .instances = 1, .start_offset_s = 0.0},
          {.app = &pd, .instances = 5, .start_offset_s = 0.0},
          {.app = &tx, .instances = 5, .start_offset_s = 0.0}};
}

inline const char* kSchedulers[] = {"RR", "EFT", "ETF", "HEFT_RT"};

}  // namespace cedr::bench
