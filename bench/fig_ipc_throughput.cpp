// IPC front-end throughput under concurrent submitters.
//
// Measures the daemon-facing half of the paper's deployment model (Fig. 1):
// many independent clients submitting dynamically arriving applications
// while a monitor polls live state. A Runtime + IpcServer pair is started
// in-process on a temp-dir Unix socket and hammered by N submitter threads
// plus one monitor thread:
//
//   * each submitter keeps one persistent connection and pipelines batches
//     of (1 SUBMITDAG + 3 STATS) groups — the mixed workload one real
//     submitter generates, sent the way the concurrent front-end is meant
//     to be driven (many commands per write, replies read in order);
//   * the monitor issues plain one-at-a-time STATS round-trips on its own
//     connection for the whole phase — the "STATS under load" view.
//
// Two latency histograms are recorded per phase and both land in the JSON:
//   * server_stats_us — the daemon's own ipc_cmd_us.STATS service latency
//     (event-loop admission to reply deposit), reset at each phase start so
//     every phase gets its own distribution. This is the acceptance metric
//     (EXPERIMENTS.md: loaded p95 within 2x of idle p95): it shows whether
//     SUBMIT storms make the daemon slower at answering cheap verbs.
//   * stats_us — the monitor's client-observed round-trip. Reported for
//     context; on a saturated single-CPU host it is dominated by kernel
//     scheduler queueing of the client thread itself, which no daemon
//     design can influence.
//
// Also per point: submissions/sec sustained at the socket, submitter batch
// round-trip quantiles, BUSY rejections (admission control, when the
// server bounds in-flight apps; 0 with the default unbounded config), and
// the runtime backlog left at phase end.
//
// The "baseline" block of BENCH_ipc.json was recorded against the serial
// accept loop (one client at a time, one command per connection,
// byte-at-a-time reads — pipelining was impossible, so its clients issued
// the same mixed workload as sequential round-trips); "current" tracks the
// concurrent front-end.
//
// usage: fig_ipc_throughput [--clients N] [--seconds S] [--json PATH]
//                           [--max-inflight N] [--batch B]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cedr/common/stopwatch.h"
#include "cedr/ipc/ipc.h"
#include "cedr/obs/metrics.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

namespace {

// One trivial single-task DAG; SUBMITDAG re-parses the file from disk on
// every submission, which is exactly the slow-verb I/O the event loop must
// keep off its fast path.
constexpr const char* kTinyDag = R"({
  "app_name": "ipc_bench",
  "buffers": {"buf": {"elems": 64, "kind": "cfloat"}},
  "tasks": [
    {"id": 0, "name": "fft64", "kernel": "FFT",
     "args": {"in": "buf", "out": "buf"}, "predecessors": []}
  ]
})";

struct ClientTally {
  std::uint64_t submits_ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
  std::uint64_t stats_ok = 0;
};

/// One submitter: pipelined batches of `groups` x (SUBMITDAG + 3 STATS)
/// over a persistent connection.
void submitter_client(const std::string& socket, const std::string& dag_path,
                      std::size_t groups, double seconds,
                      obs::QuantileHistogram* batch_us, std::mutex* hist_mutex,
                      ClientTally* tally, std::atomic<bool>* stop) {
  ipc::IpcClient client(socket);
  std::vector<std::string> batch;
  batch.reserve(groups * 4);
  for (std::size_t g = 0; g < groups; ++g) {
    batch.push_back("SUBMITDAG " + dag_path);
    for (int i = 0; i < 3; ++i) batch.emplace_back("STATS");
  }
  Stopwatch clock;
  while (clock.elapsed() < seconds && !stop->load()) {
    Stopwatch rt;
    auto replies = client.pipeline(batch);
    const double us = rt.elapsed() * 1e6;
    if (!replies.ok()) {
      ++tally->errors;
      break;  // connection-level failure; don't spin on a dead socket
    }
    for (const std::string& reply : *replies) {
      if (reply.rfind("OK uptime", 0) == 0) {
        ++tally->stats_ok;
      } else if (reply.rfind("OK", 0) == 0) {
        ++tally->submits_ok;
      } else if (reply.rfind("BUSY", 0) == 0) {
        ++tally->busy;
      } else {
        ++tally->errors;
      }
    }
    std::lock_guard lock(*hist_mutex);
    batch_us->record(us);
  }
}

/// The monitor: plain STATS round-trips, one at a time, on a connection of
/// its own. This is the latency a dashboard poller observes mid-storm. It
/// polls back-to-back: on a fully loaded machine a poller that sleeps
/// between requests pays a scheduler wake-up penalty (milliseconds of CFS
/// queueing behind the busy threads) that swamps the IPC path being
/// measured; continuous polling keeps the thread interactive so the
/// histogram isolates daemon latency from scheduler placement.
void monitor_client(const std::string& socket, obs::QuantileHistogram* stats_us,
                    std::mutex* hist_mutex, ClientTally* tally,
                    std::atomic<bool>* stop) {
  ipc::IpcClient client(socket);
  while (!stop->load()) {
    Stopwatch rt;
    auto line = client.stats();
    const double us = rt.elapsed() * 1e6;
    if (line.ok()) {
      ++tally->stats_ok;
      std::lock_guard lock(*hist_mutex);
      stats_us->record(us);
    } else {
      ++tally->errors;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_clients = 8;
  double seconds = 2.0;
  std::string json_path = "BENCH_ipc.json";
  std::size_t max_inflight = 0;
  // 16 groups = 64 commands per write: deep enough to amortize the
  // client-server scheduling hand-off, right at the server's default
  // per-connection pending bound (deeper batches stall against it).
  std::size_t groups = 16;
  std::size_t workers = 0;  // 0 = server default
  std::size_t cpus = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--clients") max_clients = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seconds") seconds = std::strtod(next(), nullptr);
    else if (arg == "--json") json_path = next();
    else if (arg == "--max-inflight")
      max_inflight = std::strtoul(next(), nullptr, 10);
    else if (arg == "--batch") groups = std::strtoul(next(), nullptr, 10);
    else if (arg == "--workers") workers = std::strtoul(next(), nullptr, 10);
    else if (arg == "--cpus") cpus = std::strtoul(next(), nullptr, 10);
    else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--clients N] [--seconds S] [--json PATH] "
                  "[--max-inflight N] [--batch B]\n", argv[0]);
      return 0;
    }
  }
  if (groups == 0) groups = 1;

  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  const std::string socket = dir + "/cedr_ipc_bench.sock";
  const std::string dag_path = dir + "/cedr_ipc_bench_dag.json";
  {
    std::ofstream out(dag_path, std::ios::trunc);
    out << kTinyDag;
  }

  rt::RuntimeConfig config;
  config.platform = platform::host(cpus, 1, 0);
  config.obs.tracing = false;  // measure the socket path, not the tracer
  rt::Runtime runtime(config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  ipc::IpcServerConfig server_config;
  server_config.max_inflight_apps = max_inflight;
  if (workers > 0) server_config.worker_threads = workers;
  ipc::IpcServer server(runtime, socket, "", server_config);
  if (const Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "IPC server failed: %s\n", s.to_string().c_str());
    return 1;
  }

  bench::JsonReport report("fig_ipc_throughput");
  bench::Table table("IPC front-end throughput (pipelined SUBMITDAG + STATS)",
                     "clients",
                     {"submits/s", "srv_stats_p95", "stats_p95_us",
                      "batch_p50_us", "busy"});

  // The daemon's per-phase STATS service-latency histogram (reset at each
  // phase start so phases don't blend).
  obs::QuantileHistogram& srv_stats =
      runtime.metrics().histogram("ipc_cmd_us.STATS");
  obs::QuantileHistogram& srv_submitdag =
      runtime.metrics().histogram("ipc_cmd_us.SUBMITDAG");

  // Idle STATS latency: the same monitor loop as under load, with no
  // submission load — the histograms differ only in background traffic.
  {
    obs::QuantileHistogram idle_us;
    std::mutex hist_mutex;
    ClientTally tally;
    std::atomic<bool> stop{false};
    srv_stats.reset();
    std::thread monitor(monitor_client, socket, &idle_us, &hist_mutex, &tally,
                        &stop);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(seconds, 1.0)));
    stop.store(true);
    monitor.join();
    std::printf("idle STATS: %llu polls, server p95 %.1f us, "
                "client rtt p50 %.1f us p95 %.1f us\n",
                static_cast<unsigned long long>(idle_us.count()),
                srv_stats.quantile(0.95), idle_us.quantile(0.50),
                idle_us.quantile(0.95));
    json::Object point;
    point.emplace("phase", "stats_idle");
    point.emplace("stats_us", bench::histogram_summary(idle_us));
    point.emplace("server_stats_us", bench::histogram_summary(srv_stats));
    report.add_point(std::move(point));
  }

  for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
    obs::QuantileHistogram stats_us;
    obs::QuantileHistogram batch_us;
    std::mutex hist_mutex;
    std::vector<ClientTally> tallies(clients + 1);  // last = monitor
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    srv_stats.reset();
    srv_submitdag.reset();
    std::thread monitor(monitor_client, socket, &stats_us, &hist_mutex,
                        &tallies[clients], &stop);
    Stopwatch clock;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back(submitter_client, socket, dag_path, groups, seconds,
                           &batch_us, &hist_mutex, &tallies[c], &stop);
    }
    for (auto& t : threads) t.join();
    const double elapsed = clock.elapsed();
    stop.store(true);
    monitor.join();

    ClientTally total;
    for (const ClientTally& t : tallies) {
      total.submits_ok += t.submits_ok;
      total.busy += t.busy;
      total.errors += t.errors;
      total.stats_ok += t.stats_ok;
    }
    // Backlog the runtime accumulated during the phase: submissions the
    // front-end admitted faster than apps drained. Recorded so a front-end
    // speedup that merely floods the runtime is visible as such.
    const std::uint64_t inflight_at_end = runtime.stats().inflight;
    // Drain the submitted instances before the next point so queue depth
    // does not bleed across measurements. Poll the runtime directly: a
    // single WAIT can time out against a deep backlog and a discarded
    // timeout would silently bleed backlog into the next row.
    while (runtime.stats().inflight > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const double submits_per_s =
        static_cast<double>(total.submits_ok) / elapsed;
    table.add_row(static_cast<double>(clients),
                  {submits_per_s, srv_stats.quantile(0.95),
                   stats_us.quantile(0.95), batch_us.quantile(0.50),
                   static_cast<double>(total.busy)});

    json::Object point;
    point.emplace("phase", "mixed");
    point.emplace("clients", clients);
    point.emplace("batch_groups", groups);
    point.emplace("seconds", elapsed);
    point.emplace("submits_ok", total.submits_ok);
    point.emplace("submits_per_sec", submits_per_s);
    point.emplace("busy", total.busy);
    point.emplace("errors", total.errors);
    point.emplace("stats_ok", total.stats_ok);
    point.emplace("inflight_at_end", inflight_at_end);
    point.emplace("stats_us", bench::histogram_summary(stats_us));
    point.emplace("batch_us", bench::histogram_summary(batch_us));
    // Server-side per-phase view: admission-to-completion latency (pool
    // queue wait included for SUBMITDAG).
    point.emplace("server_stats_us", bench::histogram_summary(srv_stats));
    point.emplace("server_submitdag_us",
                  bench::histogram_summary(srv_submitdag));
    report.add_point(std::move(point));
  }

  table.print();
  server.stop();
  (void)runtime.shutdown();
  std::remove(dag_path.c_str());

  if (const Status s = report.write_with_baseline(json_path); !s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                 s.to_string().c_str());
    return 1;
  }
  return 0;
}
