// IPC front-end throughput under concurrent submitters.
//
// Measures the daemon-facing half of the paper's deployment model (Fig. 1):
// many independent clients submitting dynamically arriving applications
// while a monitor polls live state. A Runtime + IpcServer pair is started
// in-process on a temp-dir Unix socket and hammered by N submitter threads
// plus one monitor thread:
//
//   * each submitter keeps one persistent connection and pipelines batches
//     of (1 SUBMITDAG + 3 STATS) groups — the mixed workload one real
//     submitter generates, sent the way the concurrent front-end is meant
//     to be driven (many commands per write, replies read in order);
//   * the monitor issues plain one-at-a-time STATS round-trips on its own
//     connection for the whole phase — the "STATS under load" view.
//
// Two latency histograms are recorded per phase and both land in the JSON:
//   * server_stats_us — the daemon's own ipc_cmd_us.STATS service latency
//     (event-loop admission to reply deposit), reset at each phase start so
//     every phase gets its own distribution. This is the acceptance metric
//     (EXPERIMENTS.md: loaded p95 within 2x of idle p95): it shows whether
//     SUBMIT storms make the daemon slower at answering cheap verbs.
//   * stats_us — the monitor's client-observed round-trip. Reported for
//     context; on a saturated single-CPU host it is dominated by kernel
//     scheduler queueing of the client thread itself, which no daemon
//     design can influence.
//
// Also per point: submissions/sec sustained at the socket, submitter batch
// round-trip quantiles, BUSY rejections (admission control, when the
// server bounds in-flight apps; 0 with the default unbounded config), and
// the runtime backlog left at phase end.
//
// The "baseline" block of BENCH_ipc.json was recorded against the serial
// accept loop (one client at a time, one command per connection,
// byte-at-a-time reads — pipelining was impossible, so its clients issued
// the same mixed workload as sequential round-trips); "current" tracks the
// concurrent front-end.
//
// --lane adds the shared-memory submission lane (docs/ipc.md) next to the
// socket phases: each shm client stages the same DAG document into its
// arena once and then streams SUBMITDAG records through the SPSC ring,
// counting a submission only when its completion record comes back — the
// same admission-to-acknowledgement span the socket lane measures. A
// single-client NOP phase records the raw ring round-trip rate with the
// runtime out of the picture. Per shm point: full-ring producer waits,
// doorbell wakes (counter delta — a low number is the syscall-amortization
// working) and the drain-batch size distribution. The final "summary"
// point carries the shm:socket throughput ratio at the widest client
// count, both lanes measured in the same process on the same host.
//
// usage: fig_ipc_throughput [--clients N] [--seconds S] [--json PATH]
//                           [--max-inflight N] [--batch B]
//                           [--lane socket|shm|both]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cedr/common/stopwatch.h"
#include "cedr/ipc/ipc.h"
#include "cedr/obs/metrics.h"
#include "cedr/runtime/runtime.h"
#include "cedr/shm/client.h"

using namespace cedr;

namespace {

// One trivial single-task DAG; SUBMITDAG re-parses the file from disk on
// every submission, which is exactly the slow-verb I/O the event loop must
// keep off its fast path.
constexpr const char* kTinyDag = R"({
  "app_name": "ipc_bench",
  "buffers": {"buf": {"elems": 64, "kind": "cfloat"}},
  "tasks": [
    {"id": 0, "name": "fft64", "kernel": "FFT",
     "args": {"in": "buf", "out": "buf"}, "predecessors": []}
  ]
})";

struct ClientTally {
  std::uint64_t submits_ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
  std::uint64_t stats_ok = 0;
};

/// One submitter: pipelined batches of `groups` x (SUBMITDAG + 3 STATS)
/// over a persistent connection.
void submitter_client(const std::string& socket, const std::string& dag_path,
                      std::size_t groups, double seconds,
                      obs::QuantileHistogram* batch_us, std::mutex* hist_mutex,
                      ClientTally* tally, std::atomic<bool>* stop) {
  ipc::IpcClient client(socket);
  std::vector<std::string> batch;
  batch.reserve(groups * 4);
  for (std::size_t g = 0; g < groups; ++g) {
    batch.push_back("SUBMITDAG " + dag_path);
    for (int i = 0; i < 3; ++i) batch.emplace_back("STATS");
  }
  Stopwatch clock;
  while (clock.elapsed() < seconds && !stop->load()) {
    Stopwatch rt;
    auto replies = client.pipeline(batch);
    const double us = rt.elapsed() * 1e6;
    if (!replies.ok()) {
      ++tally->errors;
      break;  // connection-level failure; don't spin on a dead socket
    }
    for (const std::string& reply : *replies) {
      if (reply.rfind("OK uptime", 0) == 0) {
        ++tally->stats_ok;
      } else if (reply.rfind("OK", 0) == 0) {
        ++tally->submits_ok;
      } else if (reply.rfind("BUSY", 0) == 0) {
        ++tally->busy;
      } else {
        ++tally->errors;
      }
    }
    std::lock_guard lock(*hist_mutex);
    batch_us->record(us);
  }
}

/// The monitor: plain STATS round-trips, one at a time, on a connection of
/// its own. This is the latency a dashboard poller observes mid-storm. It
/// polls back-to-back: on a fully loaded machine a poller that sleeps
/// between requests pays a scheduler wake-up penalty (milliseconds of CFS
/// queueing behind the busy threads) that swamps the IPC path being
/// measured; continuous polling keeps the thread interactive so the
/// histogram isolates daemon latency from scheduler placement.
void monitor_client(const std::string& socket, obs::QuantileHistogram* stats_us,
                    std::mutex* hist_mutex, ClientTally* tally,
                    std::atomic<bool>* stop) {
  ipc::IpcClient client(socket);
  while (!stop->load()) {
    Stopwatch rt;
    auto line = client.stats();
    const double us = rt.elapsed() * 1e6;
    if (line.ok()) {
      ++tally->stats_ok;
      std::lock_guard lock(*hist_mutex);
      stats_us->record(us);
    } else {
      ++tally->errors;
    }
  }
}

/// One shm-lane NOP streamer: round-trip-only records, no runtime work
/// behind them — measures the lane itself (ring + doorbell protocol).
void shm_nop_client(const std::string& socket, double seconds,
                    ClientTally* tally, std::uint64_t* full_ring_waits) {
  shm::ShmClient client(socket);
  if (!client.connect().ok()) {
    ++tally->errors;
    return;
  }
  std::vector<shm::Completion> completions;
  Stopwatch clock;
  while (clock.elapsed() < seconds) {
    if (!client.nop().ok()) {
      ++tally->errors;
      return;
    }
    completions.clear();
    client.poll_completions(completions);
  }
  if (!client.wait_all().ok()) ++tally->errors;
  tally->submits_ok += client.completed();
  *full_ring_waits += client.full_ring_waits();
}

/// One shm-lane submitter: the DAG document is staged into the arena once
/// (submit_dag_json memoizes it), then SUBMITDAG records stream through the
/// submission ring until the deadline; completions are drained opportunistically
/// along the way and fully at the end, so the tally counts acknowledged
/// submissions, not just published records.
void shm_submitter(const std::string& socket, const std::string& dag_doc,
                   double seconds, ClientTally* tally,
                   std::uint64_t* full_ring_waits) {
  shm::ShmClient client(socket);
  if (!client.connect().ok()) {
    ++tally->errors;
    return;
  }
  std::vector<shm::Completion> completions;
  Stopwatch clock;
  while (clock.elapsed() < seconds) {
    if (!client.submit_dag_json(dag_doc).ok()) {
      ++tally->errors;
      return;
    }
    completions.clear();
    client.poll_completions(completions);
    for (const shm::Completion& c : completions) {
      if (c.status == shm::CplStatus::kError) ++tally->errors;
    }
  }
  if (!client.wait_all().ok()) ++tally->errors;
  tally->submits_ok +=
      client.completed() - client.busy_completions() - tally->errors;
  tally->busy += client.busy_completions();
  *full_ring_waits += client.full_ring_waits();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_clients = 8;
  double seconds = 2.0;
  std::string json_path = "BENCH_ipc.json";
  std::size_t max_inflight = 0;
  // 16 groups = 64 commands per write: deep enough to amortize the
  // client-server scheduling hand-off, right at the server's default
  // per-connection pending bound (deeper batches stall against it).
  std::size_t groups = 16;
  std::size_t workers = 0;  // 0 = server default
  std::size_t cpus = 2;
  std::string lane = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--clients") max_clients = std::strtoul(next(), nullptr, 10);
    else if (arg == "--seconds") seconds = std::strtod(next(), nullptr);
    else if (arg == "--json") json_path = next();
    else if (arg == "--max-inflight")
      max_inflight = std::strtoul(next(), nullptr, 10);
    else if (arg == "--batch") groups = std::strtoul(next(), nullptr, 10);
    else if (arg == "--workers") workers = std::strtoul(next(), nullptr, 10);
    else if (arg == "--cpus") cpus = std::strtoul(next(), nullptr, 10);
    else if (arg == "--lane") lane = next();
    else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--clients N] [--seconds S] [--json PATH] "
                  "[--max-inflight N] [--batch B] [--lane socket|shm|both]\n",
                  argv[0]);
      return 0;
    }
  }
  if (groups == 0) groups = 1;
  if (lane != "socket" && lane != "shm" && lane != "both") {
    std::fprintf(stderr, "--lane must be socket, shm or both\n");
    return 2;
  }
  const bool run_socket = lane != "shm";
  const bool run_shm = lane != "socket";

  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  const std::string socket = dir + "/cedr_ipc_bench.sock";
  const std::string dag_path = dir + "/cedr_ipc_bench_dag.json";
  {
    std::ofstream out(dag_path, std::ios::trunc);
    out << kTinyDag;
  }

  rt::RuntimeConfig config;
  config.platform = platform::host(cpus, 1, 0);
  config.obs.tracing = false;  // measure the socket path, not the tracer
  rt::Runtime runtime(config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  ipc::IpcServerConfig server_config;
  server_config.max_inflight_apps = max_inflight;
  if (workers > 0) server_config.worker_threads = workers;
  ipc::IpcServer server(runtime, socket, "", server_config);
  if (const Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "IPC server failed: %s\n", s.to_string().c_str());
    return 1;
  }

  bench::JsonReport report("fig_ipc_throughput");
  bench::Table table("IPC front-end throughput (pipelined SUBMITDAG + STATS)",
                     "clients",
                     {"submits/s", "srv_stats_p95", "stats_p95_us",
                      "batch_p50_us", "busy"});

  // The daemon's per-phase STATS service-latency histogram (reset at each
  // phase start so phases don't blend).
  obs::QuantileHistogram& srv_stats =
      runtime.metrics().histogram("ipc_cmd_us.STATS");
  obs::QuantileHistogram& srv_submitdag =
      runtime.metrics().histogram("ipc_cmd_us.SUBMITDAG");

  double socket_submits_per_s = 0.0;  // at the widest client count
  double shm_submits_per_s = 0.0;

  // Idle STATS latency: the same monitor loop as under load, with no
  // submission load — the histograms differ only in background traffic.
  if (run_socket) {
    obs::QuantileHistogram idle_us;
    std::mutex hist_mutex;
    ClientTally tally;
    std::atomic<bool> stop{false};
    srv_stats.reset();
    std::thread monitor(monitor_client, socket, &idle_us, &hist_mutex, &tally,
                        &stop);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(seconds, 1.0)));
    stop.store(true);
    monitor.join();
    std::printf("idle STATS: %llu polls, server p95 %.1f us, "
                "client rtt p50 %.1f us p95 %.1f us\n",
                static_cast<unsigned long long>(idle_us.count()),
                srv_stats.quantile(0.95), idle_us.quantile(0.50),
                idle_us.quantile(0.95));
    json::Object point;
    point.emplace("phase", "stats_idle");
    point.emplace("stats_us", bench::histogram_summary(idle_us));
    point.emplace("server_stats_us", bench::histogram_summary(srv_stats));
    report.add_point(std::move(point));
  }

  for (std::size_t clients = 1; run_socket && clients <= max_clients;
       clients *= 2) {
    obs::QuantileHistogram stats_us;
    obs::QuantileHistogram batch_us;
    std::mutex hist_mutex;
    std::vector<ClientTally> tallies(clients + 1);  // last = monitor
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    srv_stats.reset();
    srv_submitdag.reset();
    std::thread monitor(monitor_client, socket, &stats_us, &hist_mutex,
                        &tallies[clients], &stop);
    Stopwatch clock;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back(submitter_client, socket, dag_path, groups, seconds,
                           &batch_us, &hist_mutex, &tallies[c], &stop);
    }
    for (auto& t : threads) t.join();
    const double elapsed = clock.elapsed();
    stop.store(true);
    monitor.join();

    ClientTally total;
    for (const ClientTally& t : tallies) {
      total.submits_ok += t.submits_ok;
      total.busy += t.busy;
      total.errors += t.errors;
      total.stats_ok += t.stats_ok;
    }
    // Backlog the runtime accumulated during the phase: submissions the
    // front-end admitted faster than apps drained. Recorded so a front-end
    // speedup that merely floods the runtime is visible as such.
    const std::uint64_t inflight_at_end = runtime.stats().inflight;
    // Drain the submitted instances before the next point so queue depth
    // does not bleed across measurements. Poll the runtime directly: a
    // single WAIT can time out against a deep backlog and a discarded
    // timeout would silently bleed backlog into the next row.
    while (runtime.stats().inflight > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const double submits_per_s =
        static_cast<double>(total.submits_ok) / elapsed;
    socket_submits_per_s = submits_per_s;
    table.add_row(static_cast<double>(clients),
                  {submits_per_s, srv_stats.quantile(0.95),
                   stats_us.quantile(0.95), batch_us.quantile(0.50),
                   static_cast<double>(total.busy)});

    json::Object point;
    point.emplace("phase", "mixed");
    point.emplace("clients", clients);
    point.emplace("batch_groups", groups);
    point.emplace("seconds", elapsed);
    point.emplace("submits_ok", total.submits_ok);
    point.emplace("submits_per_sec", submits_per_s);
    point.emplace("busy", total.busy);
    point.emplace("errors", total.errors);
    point.emplace("stats_ok", total.stats_ok);
    point.emplace("inflight_at_end", inflight_at_end);
    point.emplace("stats_us", bench::histogram_summary(stats_us));
    point.emplace("batch_us", bench::histogram_summary(batch_us));
    // Server-side per-phase view: admission-to-completion latency (pool
    // queue wait included for SUBMITDAG).
    point.emplace("server_stats_us", bench::histogram_summary(srv_stats));
    point.emplace("server_submitdag_us",
                  bench::histogram_summary(srv_submitdag));
    report.add_point(std::move(point));
  }

  table.print();

  double shm_records_per_s = 0.0;  // NOP phase at the widest client count
  if (run_shm) {
    bench::Table shm_table(
        "shared-memory lane throughput (SUBMITDAG records through the ring)",
        "clients", {"submits/s", "ring_waits", "doorbells", "drain_p95"});
    obs::QuantileHistogram& drain_batch =
        runtime.metrics().histogram("shm_drain_batch");

    // Raw lane record rate: clients streaming NOP records with no runtime
    // work behind them — isolates the ring + doorbell protocol from the
    // per-instance cost of the scheduling pipeline it feeds.
    bench::Table nop_table("shared-memory lane record rate (NOP round trips)",
                           "clients", {"records/s", "ring_waits"});
    const double nop_seconds = std::min(seconds, 1.0);
    for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
      std::vector<ClientTally> tallies(clients);
      std::vector<std::uint64_t> ring_waits(clients, 0);
      std::vector<std::thread> threads;
      threads.reserve(clients);
      Stopwatch clock;
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back(shm_nop_client, socket, nop_seconds, &tallies[c],
                             &ring_waits[c]);
      }
      for (auto& t : threads) t.join();
      const double elapsed = clock.elapsed();
      std::uint64_t ok = 0;
      std::uint64_t waits = 0;
      for (std::size_t c = 0; c < clients; ++c) {
        ok += tallies[c].submits_ok;
        waits += ring_waits[c];
      }
      const double nops_per_s = static_cast<double>(ok) / elapsed;
      shm_records_per_s = nops_per_s;
      nop_table.add_row(static_cast<double>(clients),
                        {nops_per_s, static_cast<double>(waits)});
      json::Object point;
      point.emplace("phase", "shm_nop");
      point.emplace("lane", "shm");
      point.emplace("clients", clients);
      point.emplace("seconds", elapsed);
      point.emplace("nops_ok", ok);
      point.emplace("nops_per_sec", nops_per_s);
      point.emplace("full_ring_waits", waits);
      report.add_point(std::move(point));
    }
    nop_table.print();

    for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
      std::vector<ClientTally> tallies(clients);
      std::vector<std::uint64_t> ring_waits(clients, 0);
      std::vector<std::thread> threads;
      threads.reserve(clients);
      drain_batch.reset();
      const std::uint64_t wakes_before =
          runtime.counters().get("shm.doorbell_wakes_total");
      Stopwatch clock;
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back(shm_submitter, socket, std::string(kTinyDag),
                             seconds, &tallies[c], &ring_waits[c]);
      }
      for (auto& t : threads) t.join();
      // Every completion is in hand once the submitters join, so the span
      // covers admission to acknowledgement, like the socket phases.
      const double elapsed = clock.elapsed();
      const std::uint64_t wakes =
          runtime.counters().get("shm.doorbell_wakes_total") - wakes_before;

      ClientTally total;
      std::uint64_t waits = 0;
      for (std::size_t c = 0; c < clients; ++c) {
        total.submits_ok += tallies[c].submits_ok;
        total.busy += tallies[c].busy;
        total.errors += tallies[c].errors;
        waits += ring_waits[c];
      }
      const std::uint64_t inflight_at_end = runtime.stats().inflight;
      while (runtime.stats().inflight > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      const double submits_per_s =
          static_cast<double>(total.submits_ok) / elapsed;
      shm_submits_per_s = submits_per_s;
      shm_table.add_row(static_cast<double>(clients),
                        {submits_per_s, static_cast<double>(waits),
                         static_cast<double>(wakes),
                         drain_batch.quantile(0.95)});

      json::Object point;
      point.emplace("phase", "shm");
      point.emplace("lane", "shm");
      point.emplace("clients", clients);
      point.emplace("seconds", elapsed);
      point.emplace("submits_ok", total.submits_ok);
      point.emplace("submits_per_sec", submits_per_s);
      point.emplace("busy", total.busy);
      point.emplace("errors", total.errors);
      point.emplace("full_ring_waits", waits);
      point.emplace("doorbell_wakes", wakes);
      point.emplace("inflight_at_end", inflight_at_end);
      point.emplace("drain_batch", bench::histogram_summary(drain_batch));
      report.add_point(std::move(point));
    }
    shm_table.print();
  }

  if (run_socket && run_shm && socket_submits_per_s > 0.0) {
    // Two ratios, both against the socket lane's submits/s at the widest
    // client count: the lane itself (NOP records — transport overhead
    // only) and end-to-end SUBMITDAG (which on a saturated host is bounded
    // by the runtime's per-instance scheduling cost, not the transport).
    const double submit_ratio = shm_submits_per_s / socket_submits_per_s;
    const double record_ratio = shm_records_per_s / socket_submits_per_s;
    std::printf("\nat %zu clients: socket %.0f submits/s | shm %.0f "
                "submits/s (%.1fx, runtime-bound) | shm lane %.0f records/s "
                "(%.1fx)\n",
                max_clients, socket_submits_per_s, shm_submits_per_s,
                submit_ratio, shm_records_per_s, record_ratio);
    json::Object point;
    point.emplace("phase", "summary");
    point.emplace("clients", max_clients);
    point.emplace("socket_submits_per_sec", socket_submits_per_s);
    point.emplace("shm_submits_per_sec", shm_submits_per_s);
    point.emplace("shm_submit_speedup", submit_ratio);
    point.emplace("shm_lane_records_per_sec", shm_records_per_s);
    point.emplace("shm_lane_record_speedup", record_ratio);
    report.add_point(std::move(point));
  }

  server.stop();
  (void)runtime.shutdown();
  std::remove(dag_path.c_str());

  if (const Status s = report.write_with_baseline(json_path); !s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                 s.to_string().c_str());
    return 1;
  }
  return 0;
}
