// Convergence benchmark for the online cost-model adaptation subsystem
// (docs/adaptive_costs.md). Two experiments, results in EXPERIMENTS.md:
//
//   A) Coefficient recovery — the estimator cold-starts from a preset
//      table whose kernel coefficients are uniformly mis-calibrated by
//      2x / 4x / 10x and ingests the service-time stream of a blocking-API
//      Pulse Doppler workload on the isolated-cost engine (management
//      occupancy and per-call taxes off, so observed virtual service times
//      equal the analytic tables). Reports, per perturbation, the worst
//      and mean relative error of the learned polynomials against the true
//      analytic values. Target: worst pair within 10 %.
//
//   B) Makespan recovery — cost-aware schedulers (EFT, HEFT_RT) run the
//      PD + WiFi-TX workload on the full-contention engine under three
//      scheduler views: the true tables (baseline), a static table whose
//      accelerator rows are inflated --perturb x (mis-calibrated: the
//      scheduler under-offloads), and the adaptive estimator cold-started
//      from that same bad table. Reports the fraction of the
//      mis-calibration makespan gap the adaptive run recovers:
//        recovered = (miscal - adaptive) / (miscal - baseline)
//      Target: >= 0.5 for both schedulers.

#include <cmath>

#include "bench_util.h"
#include "cedr/adapt/online_estimator.h"

using namespace cedr;

namespace {

using platform::CostModel;
using platform::KernelCost;
using platform::KernelId;
using platform::PeClass;

enum class Rows { kAll, kCpuOnly };

/// Copy of `model` with kernel coefficients multiplied by `factor` —
/// every class, or the CPU rows only. Transfer terms are left untouched
/// so the estimator's DMA-term subtraction stays correct.
CostModel scale_kernels(const CostModel& model, double factor, Rows rows) {
  CostModel out = model;
  for (std::size_t k = 0; k < platform::kNumKernelIds; ++k) {
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      const auto kernel = static_cast<KernelId>(k);
      const auto cls = static_cast<PeClass>(c);
      if (rows == Rows::kCpuOnly && cls != PeClass::kCpu) continue;
      const KernelCost& cost = model.get(kernel, cls);
      out.set(kernel, cls,
              KernelCost{.fixed_s = cost.fixed_s * factor,
                         .per_point_s = cost.per_point_s * factor,
                         .per_nlogn_s = cost.per_nlogn_s * factor});
    }
  }
  return out;
}

// ---- Experiment A: coefficient recovery -------------------------------

struct Recovery {
  std::size_t observations = 0;
  std::size_t pairs = 0;
  double worst_rel = 0.0;
  double mean_rel = 0.0;
  double stream_rel = 0.0;  ///< estimator's own decayed prediction error
};

Recovery recover_coefficients(double factor) {
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  config.scheduler = "EFT";
  // Blocking API model on the isolated-cost engine: one kernel in flight
  // at a time, no management occupancy, no per-call worker tax — observed
  // virtual service times are exactly the analytic platform tables.
  config.model = sim::ProgrammingModel::kApiBased;
  config.costs.accel_occupancy = 1.0;
  config.costs.signal_overhead = 0.0;

  adapt::AdaptConfig adapt_config;
  adapt_config.enabled = true;
  adapt::OnlineCostEstimator estimator(
      adapt_config, scale_kernels(config.platform.costs, factor, Rows::kAll));
  config.adapt = &estimator;

  const sim::SimApp pd = sim::make_pulse_doppler_model();
  std::vector<sim::Arrival> arrivals;
  for (int i = 0; i < 6; ++i) {
    arrivals.push_back({.app = &pd, .time = i * 0.5});
  }
  auto result = sim::simulate(config, arrivals);
  if (!result.ok()) return {};

  Recovery out;
  out.observations = estimator.observations();
  out.stream_rel = estimator.mean_rel_error();
  const auto snap = estimator.snapshot();
  for (const adapt::PairStats& pair : estimator.pair_stats()) {
    // Glue segments have no analytic polynomial to recover.
    if (pair.samples < 32 || pair.kernel == KernelId::kGeneric) continue;
    const double learned = snap->get(pair.kernel, pair.cls).eval(256);
    const double truth =
        config.platform.costs.get(pair.kernel, pair.cls).eval(256);
    const double rel = std::abs(learned - truth) / truth;
    out.worst_rel = std::max(out.worst_rel, rel);
    out.mean_rel += rel;
    ++out.pairs;
  }
  if (out.pairs > 0) out.mean_rel /= static_cast<double>(out.pairs);
  return out;
}

// ---- Experiment B: makespan recovery ----------------------------------

double pdtx_makespan(const char* scheduler, const CostModel* sched_costs,
                     adapt::OnlineCostEstimator* estimator,
                     const bench::Options& opts) {
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const auto streams = bench::pdtx_streams(pd, tx);
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 1);
  config.scheduler = scheduler;
  config.model = sim::ProgrammingModel::kDagBased;
  // Management occupancy off: with the default occupancy=3 the platform
  // tables themselves mis-state the *effective* accelerator cost, so the
  // "true-table" baseline is not the optimum the adaptive run should
  // approach. (Adaptation under occupancy learns the effective — stretched
  // — costs, which is its own experiment: ablation_contention.cpp.)
  config.costs.accel_occupancy = 1.0;
  config.sched_costs = sched_costs;
  config.adapt = estimator;
  auto result = workload::run_point(config, streams, 1000.0, opts.trials, 42);
  return result.ok() ? result->mean.makespan * 1e3 : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  double perturb = 6.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--perturb") == 0) {
      perturb = std::strtod(argv[i + 1], nullptr);
    }
  }

  std::printf("=== A) coefficient recovery (isolated-cost engine) ===\n");
  std::printf("%12s %14s %8s %14s %14s %14s\n", "perturbation", "observations",
              "pairs", "worst err (%)", "mean err (%)", "stream err (%)");
  for (const double factor : {2.0, 4.0, 10.0}) {
    const Recovery r = recover_coefficients(factor);
    std::printf("%11.0fx %14zu %8zu %14.2f %14.2f %14.2f\n", factor,
                r.observations, r.pairs, 100.0 * r.worst_rel,
                100.0 * r.mean_rel, 100.0 * r.stream_rel);
  }
  std::printf("(target: learned polynomials within 10 %% of the analytic\n"
              " values at the exercised sizes, for every trained pair)\n");

  std::printf("\n=== B) makespan recovery under a mis-calibrated table "
              "(CPU rows x%.0f) ===\n", perturb);
  std::printf("%10s %14s %14s %14s %12s\n", "scheduler", "baseline (ms)",
              "miscal (ms)", "adaptive (ms)", "recovered");
  const CostModel truth = platform::zcu102(3, 1, 1).costs;
  // Inflated CPU rows make cost-aware heuristics over-offload: every
  // kernel piles onto the single FFT / MMULT accelerator and serializes.
  const CostModel miscal = scale_kernels(truth, perturb, Rows::kCpuOnly);
  for (const char* scheduler : {"EFT", "HEFT_RT"}) {
    const double base = pdtx_makespan(scheduler, nullptr, nullptr, opts);
    const double bad = pdtx_makespan(scheduler, &miscal, nullptr, opts);
    adapt::AdaptConfig adapt_config;
    adapt_config.enabled = true;
    adapt::OnlineCostEstimator estimator(adapt_config, miscal);
    const double adapted = pdtx_makespan(scheduler, nullptr, &estimator, opts);
    const double gap = bad - base;
    const double recovered = gap > 0.0 ? (bad - adapted) / gap : 0.0;
    std::printf("%10s %14.1f %14.1f %14.1f %12.2f\n", scheduler, base, bad,
                adapted, recovered);
  }
  std::printf("(recovered = (miscal - adaptive) / (miscal - baseline);\n"
              " target >= 0.5: adaptation wins back at least half of the\n"
              " makespan lost to the stale static table)\n");
  return 0;
}
