// Microbenchmarks for the observability layer (google-benchmark).
//
// The headline numbers are the BM_ApiCallRoundTrip_* pair: the same
// end-to-end blocking CEDR_FFT round-trip as micro_runtime, once with span
// tracing + metrics histograms disabled and once fully enabled (plus a
// variant with the background sampler running, and one with the full
// continuous trace pipeline — sampler + periodic segment flushing to disk
// — active). The tracing-on/tracing-off delta is the observability tax on
// the runtime's hottest path; the acceptance target is < 5 % (recorded in
// EXPERIMENTS.md). The flush-enabled variants isolate the pipeline's
// volume-proportional cost, which runs on its own thread. The remaining benchmarks
// isolate the primitives: ring record cost (enabled, disabled, contended),
// histogram record cost, Chrome export throughput, and binary segment
// encode throughput.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cedr/cedr.h"
#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/metrics.h"
#include "cedr/obs/segment.h"
#include "cedr/obs/span.h"
#include "cedr/runtime/runtime.h"

namespace {

using namespace cedr;

void BM_SpanRecordEnabled(benchmark::State& state) {
  obs::SpanTracer tracer(1u << 12);
  double t = 0.0;
  for (auto _ : state) {
    tracer.complete_span(obs::Category::kWorker, "FFT", 0, 1, t, 1e-6,
                         "attempt", 0.0, "ok", 1.0);
    t += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecordEnabled);

void BM_SpanRecordDisabled(benchmark::State& state) {
  obs::SpanTracer tracer(1u << 12);
  tracer.set_enabled(false);
  for (auto _ : state) {
    tracer.complete_span(obs::Category::kWorker, "FFT", 0, 1, 0.0, 1e-6,
                         "attempt", 0.0, "ok", 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecordDisabled);

void BM_SpanRecordContended(benchmark::State& state) {
  static obs::SpanTracer tracer(1u << 14);
  for (auto _ : state) {
    tracer.instant(obs::Category::kWorker, "tick", 0,
                   static_cast<std::uint64_t>(state.thread_index()), 0.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecordContended)->Threads(2)->Threads(4);

void BM_QuantileHistogramRecord(benchmark::State& state) {
  obs::QuantileHistogram hist;
  double v = 1.0;
  for (auto _ : state) {
    hist.record(v);
    v = v < 1e6 ? v * 1.001 : 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileHistogramRecord);

void BM_ChromeExport(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  obs::SpanTracer tracer(n);
  for (std::size_t i = 0; i < n; ++i) {
    tracer.complete_span(obs::Category::kWorker, "FFT", 0, 1 + (i % 4),
                         i * 1e-5, 1e-5, "attempt", 0.0, "ok", 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::chrome_trace_json(tracer.snapshot()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ChromeExport)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);

/// Binary `.cbt` segment encode + atomic write throughput: the per-flush
/// cost the trace pipeline's flusher thread pays (docs/observability.md).
void BM_SegmentWrite(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  obs::SpanTracer tracer(n);
  for (std::size_t i = 0; i < n; ++i) {
    tracer.complete_span(obs::Category::kWorker, "FFT", 0, 1 + (i % 4),
                         i * 1e-5, 1e-5, "attempt", 0.0, "ok", 1.0);
  }
  std::uint64_t cursor = 0;
  const auto events = tracer.drain(cursor);
  const std::vector<obs::TrackName> tracks = {
      {0, 0, true, "bench"}, {0, 1, false, "cpu0"}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_segment.cbt").string();
  for (auto _ : state) {
    if (!obs::write_segment_file(path, 0, 0, tracks, events).ok()) {
      state.SkipWithError("segment write failed");
      return;
    }
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SegmentWrite)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);

/// End-to-end latency of one blocking CEDR_FFT through the threaded runtime
/// (enqueue -> schedule -> worker -> condvar signal), parameterized on the
/// observability configuration.
void api_round_trip(benchmark::State& state, bool tracing,
                    double sampler_period_s,
                    const std::string& trace_dir = "",
                    double flush_interval_s = 0.0) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  config.obs.tracing = tracing;
  config.obs.sampler_period_s = sampler_period_s;
  if (!trace_dir.empty()) {
    config.obs.trace_dir = trace_dir;
    config.obs.trace_flush_interval_s = flush_interval_s;
  }
  rt::Runtime runtime(config);
  if (!runtime.start().ok()) {
    state.SkipWithError("runtime failed to start");
    return;
  }
  std::vector<cedr_cplx> buf(256);
  auto instance = runtime.submit_api("bench", [&state, &buf] {
    for (auto _ : state) {
      benchmark::DoNotOptimize(CEDR_FFT(buf.data(), buf.data(), buf.size()));
    }
  });
  if (!instance.ok()) {
    state.SkipWithError("submit failed");
    return;
  }
  (void)runtime.wait_all(600.0);
  (void)runtime.shutdown();
}

void BM_ApiCallRoundTrip_TracingOff(benchmark::State& state) {
  api_round_trip(state, /*tracing=*/false, /*sampler_period_s=*/0.0);
}
BENCHMARK(BM_ApiCallRoundTrip_TracingOff)->Unit(benchmark::kMicrosecond);

void BM_ApiCallRoundTrip_TracingOn(benchmark::State& state) {
  api_round_trip(state, /*tracing=*/true, /*sampler_period_s=*/0.0);
}
BENCHMARK(BM_ApiCallRoundTrip_TracingOn)->Unit(benchmark::kMicrosecond);

void BM_ApiCallRoundTrip_TracingAndSampler(benchmark::State& state) {
  api_round_trip(state, /*tracing=*/true, /*sampler_period_s=*/0.01);
}
BENCHMARK(BM_ApiCallRoundTrip_TracingAndSampler)
    ->Unit(benchmark::kMicrosecond);

/// The whole continuous trace pipeline live: tracing + sampler + a flusher
/// draining the ring into rotated `.cbt` segments on its own thread. Two
/// cadences: 250 ms flushes (a realistic daemon configuration) and 10 ms
/// flushes (a deliberate stress — each flush durably rewrites the open
/// segment, so fast cadences pay rewrite amplification on top). Note this
/// benchmark records ~175 k spans/s, ~100x a realistic daemon's trace
/// volume, so on a single core the flusher visibly competes with the
/// workers in both variants; EXPERIMENTS.md M2 quantifies the split
/// between recording cost (flat) and flusher-thread contention
/// (volume-proportional).
void BM_ApiCallRoundTrip_FullPipeline(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bench_obs_segments";
  std::filesystem::remove_all(dir);
  api_round_trip(state, /*tracing=*/true, /*sampler_period_s=*/0.01,
                 dir.string(), /*flush_interval_s=*/0.25);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ApiCallRoundTrip_FullPipeline)->Unit(benchmark::kMicrosecond);

void BM_ApiCallRoundTrip_FullPipelineStress(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bench_obs_segments_stress";
  std::filesystem::remove_all(dir);
  api_round_trip(state, /*tracing=*/true, /*sampler_period_s=*/0.01,
                 dir.string(), /*flush_interval_s=*/0.01);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ApiCallRoundTrip_FullPipelineStress)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
