// Microbenchmarks for the observability layer (google-benchmark).
//
// The headline numbers are the BM_ApiCallRoundTrip_* pair: the same
// end-to-end blocking CEDR_FFT round-trip as micro_runtime, once with span
// tracing + metrics histograms disabled and once fully enabled (plus a
// variant with the background sampler running). The tracing-on/tracing-off
// delta is the observability tax on the runtime's hottest path; the
// acceptance target is < 5 % (recorded in EXPERIMENTS.md). The remaining
// benchmarks isolate the primitives: ring record cost (enabled, disabled,
// contended), histogram record cost, and Chrome export throughput.

#include <benchmark/benchmark.h>

#include <vector>

#include "cedr/cedr.h"
#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/metrics.h"
#include "cedr/obs/span.h"
#include "cedr/runtime/runtime.h"

namespace {

using namespace cedr;

void BM_SpanRecordEnabled(benchmark::State& state) {
  obs::SpanTracer tracer(1u << 12);
  double t = 0.0;
  for (auto _ : state) {
    tracer.complete_span(obs::Category::kWorker, "FFT", 0, 1, t, 1e-6,
                         "attempt", 0.0, "ok", 1.0);
    t += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecordEnabled);

void BM_SpanRecordDisabled(benchmark::State& state) {
  obs::SpanTracer tracer(1u << 12);
  tracer.set_enabled(false);
  for (auto _ : state) {
    tracer.complete_span(obs::Category::kWorker, "FFT", 0, 1, 0.0, 1e-6,
                         "attempt", 0.0, "ok", 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecordDisabled);

void BM_SpanRecordContended(benchmark::State& state) {
  static obs::SpanTracer tracer(1u << 14);
  for (auto _ : state) {
    tracer.instant(obs::Category::kWorker, "tick", 0,
                   static_cast<std::uint64_t>(state.thread_index()), 0.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecordContended)->Threads(2)->Threads(4);

void BM_QuantileHistogramRecord(benchmark::State& state) {
  obs::QuantileHistogram hist;
  double v = 1.0;
  for (auto _ : state) {
    hist.record(v);
    v = v < 1e6 ? v * 1.001 : 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileHistogramRecord);

void BM_ChromeExport(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  obs::SpanTracer tracer(n);
  for (std::size_t i = 0; i < n; ++i) {
    tracer.complete_span(obs::Category::kWorker, "FFT", 0, 1 + (i % 4),
                         i * 1e-5, 1e-5, "attempt", 0.0, "ok", 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::chrome_trace_json(tracer.snapshot()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ChromeExport)->Arg(1024)->Arg(16384)->Unit(benchmark::kMillisecond);

/// End-to-end latency of one blocking CEDR_FFT through the threaded runtime
/// (enqueue -> schedule -> worker -> condvar signal), parameterized on the
/// observability configuration.
void api_round_trip(benchmark::State& state, bool tracing,
                    double sampler_period_s) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  config.obs.tracing = tracing;
  config.obs.sampler_period_s = sampler_period_s;
  rt::Runtime runtime(config);
  if (!runtime.start().ok()) {
    state.SkipWithError("runtime failed to start");
    return;
  }
  std::vector<cedr_cplx> buf(256);
  auto instance = runtime.submit_api("bench", [&state, &buf] {
    for (auto _ : state) {
      benchmark::DoNotOptimize(CEDR_FFT(buf.data(), buf.data(), buf.size()));
    }
  });
  if (!instance.ok()) {
    state.SkipWithError("submit failed");
    return;
  }
  (void)runtime.wait_all(600.0);
  (void)runtime.shutdown();
}

void BM_ApiCallRoundTrip_TracingOff(benchmark::State& state) {
  api_round_trip(state, /*tracing=*/false, /*sampler_period_s=*/0.0);
}
BENCHMARK(BM_ApiCallRoundTrip_TracingOff)->Unit(benchmark::kMicrosecond);

void BM_ApiCallRoundTrip_TracingOn(benchmark::State& state) {
  api_round_trip(state, /*tracing=*/true, /*sampler_period_s=*/0.0);
}
BENCHMARK(BM_ApiCallRoundTrip_TracingOn)->Unit(benchmark::kMicrosecond);

void BM_ApiCallRoundTrip_TracingAndSampler(benchmark::State& state) {
  api_round_trip(state, /*tracing=*/true, /*sampler_period_s=*/0.01);
}
BENCHMARK(BM_ApiCallRoundTrip_TracingAndSampler)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
