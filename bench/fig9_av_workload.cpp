// Reproduces Fig. 9: execution time of the autonomous-vehicle workload
// (1 Lane Detection + dynamically arriving PD and TX instances) under
// API-based CEDR on (a) the ZCU102 with 3 CPUs + 8 FFT accelerators and
// (b) the Jetson with 7 CPUs + 1 GPU (paper §IV-B).
//
// Expected shape: Lane Detection's transform flood pushes the ZCU102 into
// saturation much earlier (~100 Mbps) than the PD+TX workload and the
// Jetson copes better (saturating around 500 Mbps at a several-times lower
// execution time); RR trails the heterogeneity-aware schedulers on both.
//
// Lane Detection is modeled at 1/ld_scale of the paper's 16384 FFT + 8192
// IFFT instances (default 4); pass --ld-scale 1 for the full count.

#include "bench_util.h"

using namespace cedr;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const sim::SimApp ld = sim::make_lane_detection_model(opts.ld_scale);
  const auto streams = bench::av_streams(ld, pd, tx);
  const std::vector<double> rates = bench::rates_for(opts);

  std::printf("Lane Detection model: %zu kernel calls (scale 1/%zu of the "
              "paper's counts)\n",
              ld.kernel_call_count(), opts.ld_scale);

  for (int board = 0; board < 2; ++board) {
    const bool jetson = board == 1;
    bench::Table table(
        std::string("Fig. 9") +
            (jetson ? "(b) Jetson 7 CPU + 1 GPU" : "(a) ZCU102 3 CPU + 8 FFT") +
            " - avg execution time per app (ms), API-based",
        "rate_mbps", {"RR", "EFT", "ETF", "HEFT_RT"});
    for (const double rate : rates) {
      std::vector<double> row;
      for (const char* scheduler : bench::kSchedulers) {
        sim::SimConfig config;
        config.platform =
            jetson ? platform::jetson(7, 1) : platform::zcu102(3, 8, 0);
        config.scheduler = scheduler;
        config.model = sim::ProgrammingModel::kApiBased;
        auto result =
            workload::run_point(config, streams, rate, opts.trials, 42);
        if (!result.ok()) {
          std::fprintf(stderr, "fig9: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
        row.push_back(result->mean.avg_execution_time * 1e3);
      }
      table.add_row(rate, std::move(row));
    }
    table.print();
    if (!opts.csv_path.empty()) {
      table.write_csv(opts.csv_path + (jetson ? ".jetson.csv" : ".zcu102.csv"));
    }
    std::printf(
        "Saturated best-case exec: %.0f ms  (paper: ~2000 ms on ZCU102, "
        "600-700 ms on Jetson, at LD scale 1)\n",
        std::min(std::min(table.saturated_mean(1, 500),
                          table.saturated_mean(2, 500)),
                 table.saturated_mean(3, 500)));
  }
  return 0;
}
