// Reproduces Fig. 8: average execution time per application on the Jetson
// AGX Xavier (3 CPUs + 1 GPU), DAG-based (a) vs API-based (b), for the
// PD + TX workload (paper §IV-A).
//
// Expected shape: with 7 usable CPU cores, API-based CEDR spreads worker
// and application threads across the spare cores instead of funneling all
// work through 4 worker threads, so — in contrast to the ZCU102 — API-based
// execution is *faster* than DAG-based here.

#include "bench_util.h"

using namespace cedr;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const auto streams = bench::pdtx_streams(pd, tx);
  const std::vector<double> rates = bench::rates_for(opts);

  double saturated_eft[2] = {0.0, 0.0};
  for (int mode = 0; mode < 2; ++mode) {
    const bool api = mode == 1;
    bench::Table table(
        std::string("Fig. 8") + (api ? "(b) API" : "(a) DAG") +
            " - avg execution time per app (ms), Jetson 3 CPU + 1 GPU",
        "rate_mbps", {"RR", "EFT", "ETF", "HEFT_RT"});
    for (const double rate : rates) {
      std::vector<double> row;
      for (const char* scheduler : bench::kSchedulers) {
        sim::SimConfig config;
        config.platform = platform::jetson(3, 1);
        config.scheduler = scheduler;
        config.model = api ? sim::ProgrammingModel::kApiBased
                           : sim::ProgrammingModel::kDagBased;
        auto result =
            workload::run_point(config, streams, rate, opts.trials, 42);
        if (!result.ok()) {
          std::fprintf(stderr, "fig8: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
        row.push_back(result->mean.avg_execution_time * 1e3);
      }
      table.add_row(rate, std::move(row));
    }
    table.print();
    if (!opts.csv_path.empty()) {
      table.write_csv(opts.csv_path + (api ? ".api.csv" : ".dag.csv"));
    }
    saturated_eft[mode] = table.saturated_mean(1, 200.0);
  }
  std::printf(
      "\nHeadline: saturated EFT exec time DAG=%.0f ms vs API=%.0f ms — on "
      "the CPU-rich Jetson the API model should be FASTER (opposite of the "
      "ZCU102).\n",
      saturated_eft[0], saturated_eft[1]);
  return 0;
}
