// Reproduces Fig. 6: average execution time per application vs injection
// rate for all four schedulers, DAG-based (a) and API-based (b), on the
// ZCU102 with 3 CPUs + 1 FFT + 1 MMULT (paper §IV-A).
//
// Expected shape: execution time rises then saturates near 200 Mbps; ETF is
// dramatically slower than the other schedulers under DAG-based execution
// (~700 ms vs ~200 ms in the paper) and collapses toward the others under
// API-based execution (~425 ms); the non-ETF schedulers get *slower* moving
// from DAG to API on this core-starved platform (thread contention).

#include "bench_util.h"

using namespace cedr;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const auto streams = bench::pdtx_streams(pd, tx);
  const std::vector<double> rates = bench::rates_for(opts);

  for (int mode = 0; mode < 2; ++mode) {
    const bool api = mode == 1;
    bench::Table table(
        std::string("Fig. 6") + (api ? "(b) API" : "(a) DAG") +
            " - avg execution time per app (ms), ZCU102 3 CPU + 1 FFT + 1 MMULT",
        "rate_mbps", {"RR", "EFT", "ETF", "HEFT_RT"});
    for (const double rate : rates) {
      std::vector<double> row;
      for (const char* scheduler : bench::kSchedulers) {
        sim::SimConfig config;
        config.platform = platform::zcu102(3, 1, 1);
        config.scheduler = scheduler;
        config.model = api ? sim::ProgrammingModel::kApiBased
                           : sim::ProgrammingModel::kDagBased;
        auto result =
            workload::run_point(config, streams, rate, opts.trials, 42);
        if (!result.ok()) {
          std::fprintf(stderr, "fig6: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
        row.push_back(result->mean.avg_execution_time * 1e3);
      }
      table.add_row(rate, std::move(row));
    }
    table.print();
    if (!opts.csv_path.empty()) {
      table.write_csv(opts.csv_path + (api ? ".api.csv" : ".dag.csv"));
    }
    std::printf(
        "Saturated (>=200 Mbps) means: RR=%.0f EFT=%.0f ETF=%.0f "
        "HEFT_RT=%.0f ms\n",
        table.saturated_mean(0, 200), table.saturated_mean(1, 200),
        table.saturated_mean(2, 200), table.saturated_mean(3, 200));
  }
  std::printf(
      "\nHeadline: ETF saturated exec time should drop DAG->API (paper: "
      "700 ms -> 425 ms) while the other schedulers rise (paper: ~200 ms -> "
      "~350 ms).\n");
  return 0;
}
