// Ablation: which contention mechanism drives which result.
//
// The emulator models four distinct thread-contention mechanisms (DESIGN.md
// §5.3): accelerator-management occupancy, live-thread background noise,
// oversubscription efficiency loss, and the per-call wake/signal taxes.
// This harness switches each one off individually and reports its effect
// on the two headline results it supports:
//   A) Fig. 10a @ 8 FFTs — execution time of the AV workload (occupancy)
//   B) Fig. 6 saturated API-vs-DAG exec gap (noise/penalty/wake taxes)

#include "bench_util.h"

using namespace cedr;

namespace {

double av_exec(const sim::SimCosts& costs, std::size_t ffts,
               const bench::Options& opts) {
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const sim::SimApp ld = sim::make_lane_detection_model(opts.ld_scale);
  const auto streams = bench::av_streams(ld, pd, tx);
  sim::SimConfig config;
  config.platform = platform::zcu102(3, ffts, 0);
  config.scheduler = "RR";
  config.model = sim::ProgrammingModel::kApiBased;
  config.costs = costs;
  auto result = workload::run_point(config, streams, 300.0, opts.trials, 42);
  return result.ok() ? result->mean.avg_execution_time * 1e3 : -1.0;
}

double pdtx_exec(const sim::SimCosts& costs, sim::ProgrammingModel model,
                 const bench::Options& opts) {
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const auto streams = bench::pdtx_streams(pd, tx);
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 1);
  config.scheduler = "EFT";
  config.model = model;
  config.costs = costs;
  auto result = workload::run_point(config, streams, 1000.0, opts.trials, 42);
  return result.ok() ? result->mean.avg_execution_time * 1e3 : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sim::SimCosts base;

  std::printf("=== A) Fig. 10a mechanism: accelerator management occupancy ===\n");
  std::printf("%24s %12s %12s %12s\n", "occupancy factor", "0 FFT (ms)",
              "8 FFT (ms)", "8/0 ratio");
  for (const double occupancy : {1.0, 2.0, 3.0, 4.0}) {
    sim::SimCosts costs = base;
    costs.accel_occupancy = occupancy;
    const double e0 = av_exec(costs, 0, opts);
    const double e8 = av_exec(costs, 8, opts);
    std::printf("%24.1f %12.1f %12.1f %12.2f\n", occupancy, e0, e8, e8 / e0);
  }
  std::printf("(paper Fig. 10a needs ratio > 1: accelerators *hurt*; the\n"
              " default occupancy=3 reproduces that, occupancy=1 does not)\n");

  std::printf("\n=== B) Fig. 6 mechanism: API-mode thread taxes ===\n");
  std::printf("%34s %10s %10s %10s\n", "configuration", "DAG (ms)", "API (ms)",
              "API/DAG");
  struct Variant {
    const char* name;
    sim::SimCosts costs;
  };
  std::vector<Variant> variants;
  variants.push_back({"full model (default)", base});
  {
    sim::SimCosts costs = base;
    costs.thread_noise = 0.0;
    variants.push_back({"no live-thread noise", costs});
  }
  {
    sim::SimCosts costs = base;
    costs.signal_overhead = 0.0;
    costs.wake_overhead = 0.0;
    variants.push_back({"no wake/signal taxes", costs});
  }
  {
    sim::SimCosts costs = base;
    costs.oversubscription_penalty = 0.0;
    variants.push_back({"no oversubscription loss", costs});
  }
  {
    sim::SimCosts costs = base;
    costs.thread_noise = 0.0;
    costs.signal_overhead = 0.0;
    costs.wake_overhead = 0.0;
    costs.oversubscription_penalty = 0.0;
    variants.push_back({"all contention off", costs});
  }
  for (const Variant& v : variants) {
    const double dag = pdtx_exec(v.costs, sim::ProgrammingModel::kDagBased, opts);
    const double api = pdtx_exec(v.costs, sim::ProgrammingModel::kApiBased, opts);
    std::printf("%34s %10.1f %10.1f %10.2f\n", v.name, dag, api, api / dag);
  }
  std::printf("(paper §IV-A needs API/DAG > 1 on the 3-core ZCU102; the full\n"
              " model reproduces it, and removing the taxes flips it)\n");
  return 0;
}
