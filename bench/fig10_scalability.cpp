// Reproduces Fig. 10: scalability of the autonomous-vehicle workload with
// respect to the PE pool (paper §IV-C).
//   (a) ZCU102: 3 CPUs fixed, FFT accelerators swept 0..8, 300 Mbps.
//   (b) Jetson: 1 GPU fixed, CPU workers swept 1..7, 500 Mbps.
//
// Expected shapes: on the ZCU102 the *lowest* execution time is 3 CPU +
// 0 FFT and adding accelerators increases execution time (their management
// threads contend for the three cores), with RR degrading fastest; on the
// Jetson execution time falls as CPU workers are added until the cores are
// saturated (paper: minimum at 5 CPU + 1 GPU). Also prints E9: scheduling
// overhead as a fraction of execution time (paper: <=0.1% ZCU102, <=0.5%
// Jetson).

#include <limits>

#include "bench_util.h"

using namespace cedr;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::SimApp tx = sim::make_wifi_tx_model();
  const sim::SimApp ld = sim::make_lane_detection_model(opts.ld_scale);
  const auto streams = bench::av_streams(ld, pd, tx);

  double worst_sched_fraction[2] = {0.0, 0.0};

  {
    bench::Table table(
        "Fig. 10(a) - avg execution time per app (ms) vs FFT count, "
        "ZCU102 3 CPU, 300 Mbps, API-based",
        "fft_count", {"RR", "EFT", "ETF", "HEFT_RT"});
    for (std::size_t ffts = 0; ffts <= 8; ++ffts) {
      std::vector<double> row;
      for (const char* scheduler : bench::kSchedulers) {
        sim::SimConfig config;
        config.platform = platform::zcu102(3, ffts, 0);
        config.scheduler = scheduler;
        config.model = sim::ProgrammingModel::kApiBased;
        auto result =
            workload::run_point(config, streams, 300.0, opts.trials, 42);
        if (!result.ok()) {
          std::fprintf(stderr, "fig10a: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
        row.push_back(result->mean.avg_execution_time * 1e3);
        worst_sched_fraction[0] =
            std::max(worst_sched_fraction[0],
                     result->mean.avg_sched_overhead /
                         result->mean.avg_execution_time);
      }
      table.add_row(static_cast<double>(ffts), std::move(row));
    }
    table.print();
    if (!opts.csv_path.empty()) table.write_csv(opts.csv_path + ".zcu102.csv");
  }

  {
    bench::Table table(
        "Fig. 10(b) - avg execution time per app (ms) vs CPU count, "
        "Jetson + 1 GPU, 500 Mbps, API-based",
        "cpu_count", {"RR", "EFT", "ETF", "HEFT_RT"});
    for (std::size_t cpus = 1; cpus <= 7; ++cpus) {
      std::vector<double> row;
      for (const char* scheduler : bench::kSchedulers) {
        sim::SimConfig config;
        config.platform = platform::jetson(cpus, 1);
        config.scheduler = scheduler;
        config.model = sim::ProgrammingModel::kApiBased;
        auto result =
            workload::run_point(config, streams, 500.0, opts.trials, 42);
        if (!result.ok()) {
          std::fprintf(stderr, "fig10b: %s\n",
                       result.status().to_string().c_str());
          return 1;
        }
        row.push_back(result->mean.avg_execution_time * 1e3);
        worst_sched_fraction[1] =
            std::max(worst_sched_fraction[1],
                     result->mean.avg_sched_overhead /
                         result->mean.avg_execution_time);
      }
      table.add_row(static_cast<double>(cpus), std::move(row));
    }
    table.print();
    if (!opts.csv_path.empty()) table.write_csv(opts.csv_path + ".jetson.csv");
  }

  std::printf(
      "\nHeadline (E9): worst scheduling overhead relative to execution "
      "time: ZCU102 sweep %.3f%%, Jetson sweep %.3f%%  (paper: ~0.1%% and "
      "~0.5%%)\n",
      worst_sched_fraction[0] * 100.0, worst_sched_fraction[1] * 100.0);

  // Decision-time scaling sweep (BENCH_fig10.json): how long the *real*
  // heuristic takes per round, wall-clock, as the PE pool grows past the
  // paper's testbeds. DAG mode floods the ready queue (hundreds of entries),
  // which is where the per-round scan cost lives. Results are written
  // machine-readable with a preserved baseline block so refactors can be
  // judged against the pre-refactor numbers.
  {
    bench::JsonReport report("fig10_scalability");
    {
      bench::Table table(
          "Decision-time scaling - sched_decision_us p95 vs PE count, "
          "ZCU102-style mixed pool, 500 Mbps, DAG-based",
          "pe_count", {"RR", "EFT", "ETF", "HEFT_RT"});
      for (const std::size_t pes : {4ul, 8ul, 16ul, 24ul, 32ul}) {
        std::vector<double> row;
        for (const char* scheduler : bench::kSchedulers) {
          obs::QuantileHistogram decision_us;
          sim::SimConfig config;
          config.platform =
              platform::zcu102(pes / 2, pes / 4, pes - pes / 2 - pes / 4);
          config.scheduler = scheduler;
          config.model = sim::ProgrammingModel::kDagBased;
          config.sched_decision_us = &decision_us;
          auto result =
              workload::run_point(config, streams, 500.0, opts.trials, 42);
          if (!result.ok()) {
            std::fprintf(stderr, "fig10 decision sweep: %s\n",
                         result.status().to_string().c_str());
            return 1;
          }
          row.push_back(decision_us.quantile(0.95));
          json::Object point;
          point.emplace("platform", "zcu102");
          point.emplace("pes", pes);
          point.emplace("scheduler", scheduler);
          point.emplace("makespan_ms", result->mean.makespan * 1e3);
          point.emplace("exec_ms", result->mean.avg_execution_time * 1e3);
          point.emplace("total_comparisons", result->mean.total_comparisons);
          point.emplace("sched_decision_us",
                        bench::histogram_summary(decision_us));
          report.add_point(std::move(point));
        }
        table.add_row(static_cast<double>(pes), std::move(row));
      }
      table.print();
    }

    // Frontier lookahead sweep (docs/scheduling.md "Lookahead rounds"): the
    // decision *cost* a workload pays is per-round decision time times the
    // number of rounds. Lookahead rounds are individually pricier (they
    // place a whole window) but reservations let released successors skip
    // rounds entirely, so the product drops. Points carry a "sweep":
    // "lookahead" tag plus rounds / reservation counters so the JSON is
    // self-contained for cross-PR comparison.
    {
      static constexpr const char* kLookaheadSweep[] = {"HEFT_RT", "HEFT_LA",
                                                        "EFT_LA"};
      bench::Table table(
          "Lookahead decision cost - sched_decision_us p95 x rounds (us) vs "
          "PE count, ZCU102-style mixed pool, 500 Mbps, DAG-based",
          "pe_count", {"HEFT_RT", "HEFT_LA", "EFT_LA"});
      double worst_ratio = std::numeric_limits<double>::infinity();
      for (const std::size_t pes : {4ul, 8ul, 16ul, 24ul, 32ul}) {
        std::vector<double> row;
        double heft_rt_cost = 0.0;
        for (const char* scheduler : kLookaheadSweep) {
          obs::QuantileHistogram decision_us;
          sim::SimConfig config;
          config.platform =
              platform::zcu102(pes / 2, pes / 4, pes - pes / 2 - pes / 4);
          config.scheduler = scheduler;
          config.model = sim::ProgrammingModel::kDagBased;
          config.sched_decision_us = &decision_us;
          auto result =
              workload::run_point(config, streams, 500.0, opts.trials, 42);
          if (!result.ok()) {
            std::fprintf(stderr, "fig10 lookahead sweep: %s\n",
                         result.status().to_string().c_str());
            return 1;
          }
          const double rounds =
              static_cast<double>(result->mean.sched_rounds);
          const double cost = decision_us.quantile(0.95) * rounds;
          if (scheduler == kLookaheadSweep[0]) {
            heft_rt_cost = cost;
          } else if (pes >= 16 && heft_rt_cost > 0.0 && cost > 0.0) {
            worst_ratio = std::min(worst_ratio, heft_rt_cost / cost);
          }
          row.push_back(cost);
          json::Object point;
          point.emplace("platform", "zcu102");
          point.emplace("sweep", "lookahead");
          point.emplace("pes", pes);
          point.emplace("scheduler", scheduler);
          point.emplace("makespan_ms", result->mean.makespan * 1e3);
          point.emplace("exec_ms", result->mean.avg_execution_time * 1e3);
          point.emplace("rounds", result->mean.sched_rounds);
          point.emplace("total_comparisons", result->mean.total_comparisons);
          point.emplace("reservation_hits", result->mean.reservation_hits);
          point.emplace("reservation_stale", result->mean.reservation_stale);
          point.emplace("decision_cost_us", cost);
          point.emplace("sched_decision_us",
                        bench::histogram_summary(decision_us));
          report.add_point(std::move(point));
        }
        table.add_row(static_cast<double>(pes), std::move(row));
      }
      table.print();
      std::printf(
          "\nHeadline: lookahead decision-cost advantage at >=16 PEs: "
          "%.2fx lower than HEFT_RT (worst case across HEFT_LA/EFT_LA; "
          "target >=1.5x)\n",
          worst_ratio);
    }

    if (const Status s = report.write_with_baseline("BENCH_fig10.json");
        !s.ok()) {
      std::fprintf(stderr, "fig10 json: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  return 0;
}
