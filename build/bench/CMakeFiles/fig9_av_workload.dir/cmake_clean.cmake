file(REMOVE_RECURSE
  "CMakeFiles/fig9_av_workload.dir/fig9_av_workload.cpp.o"
  "CMakeFiles/fig9_av_workload.dir/fig9_av_workload.cpp.o.d"
  "fig9_av_workload"
  "fig9_av_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_av_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
