# Empty compiler generated dependencies file for fig9_av_workload.
# This may be replaced when dependencies are built.
