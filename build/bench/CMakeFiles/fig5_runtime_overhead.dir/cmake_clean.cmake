file(REMOVE_RECURSE
  "CMakeFiles/fig5_runtime_overhead.dir/fig5_runtime_overhead.cpp.o"
  "CMakeFiles/fig5_runtime_overhead.dir/fig5_runtime_overhead.cpp.o.d"
  "fig5_runtime_overhead"
  "fig5_runtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_runtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
