file(REMOVE_RECURSE
  "CMakeFiles/ablation_biglittle.dir/ablation_biglittle.cpp.o"
  "CMakeFiles/ablation_biglittle.dir/ablation_biglittle.cpp.o.d"
  "ablation_biglittle"
  "ablation_biglittle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_biglittle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
