# Empty dependencies file for ablation_biglittle.
# This may be replaced when dependencies are built.
