file(REMOVE_RECURSE
  "CMakeFiles/ablation_nonblocking.dir/ablation_nonblocking.cpp.o"
  "CMakeFiles/ablation_nonblocking.dir/ablation_nonblocking.cpp.o.d"
  "ablation_nonblocking"
  "ablation_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
