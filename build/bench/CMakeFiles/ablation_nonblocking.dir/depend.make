# Empty dependencies file for ablation_nonblocking.
# This may be replaced when dependencies are built.
