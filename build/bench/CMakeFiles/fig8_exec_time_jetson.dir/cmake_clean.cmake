file(REMOVE_RECURSE
  "CMakeFiles/fig8_exec_time_jetson.dir/fig8_exec_time_jetson.cpp.o"
  "CMakeFiles/fig8_exec_time_jetson.dir/fig8_exec_time_jetson.cpp.o.d"
  "fig8_exec_time_jetson"
  "fig8_exec_time_jetson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_exec_time_jetson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
