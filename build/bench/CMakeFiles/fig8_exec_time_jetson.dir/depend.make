# Empty dependencies file for fig8_exec_time_jetson.
# This may be replaced when dependencies are built.
