# Empty dependencies file for fig7_sched_overhead.
# This may be replaced when dependencies are built.
