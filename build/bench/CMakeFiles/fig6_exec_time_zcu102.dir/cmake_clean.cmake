file(REMOVE_RECURSE
  "CMakeFiles/fig6_exec_time_zcu102.dir/fig6_exec_time_zcu102.cpp.o"
  "CMakeFiles/fig6_exec_time_zcu102.dir/fig6_exec_time_zcu102.cpp.o.d"
  "fig6_exec_time_zcu102"
  "fig6_exec_time_zcu102.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_exec_time_zcu102.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
