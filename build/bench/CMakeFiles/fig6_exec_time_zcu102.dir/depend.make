# Empty dependencies file for fig6_exec_time_zcu102.
# This may be replaced when dependencies are built.
