# Empty compiler generated dependencies file for cedr_api.
# This may be replaced when dependencies are built.
