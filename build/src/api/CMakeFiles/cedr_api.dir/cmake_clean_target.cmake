file(REMOVE_RECURSE
  "libcedr_api.a"
)
