file(REMOVE_RECURSE
  "CMakeFiles/cedr_api.dir/api.cpp.o"
  "CMakeFiles/cedr_api.dir/api.cpp.o.d"
  "CMakeFiles/cedr_api.dir/impls.cpp.o"
  "CMakeFiles/cedr_api.dir/impls.cpp.o.d"
  "libcedr_api.a"
  "libcedr_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
