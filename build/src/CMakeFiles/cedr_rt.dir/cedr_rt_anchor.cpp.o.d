src/CMakeFiles/cedr_rt.dir/cedr_rt_anchor.cpp.o: \
 /root/repo/src/cedr_rt_anchor.cpp /usr/include/stdc-predef.h
