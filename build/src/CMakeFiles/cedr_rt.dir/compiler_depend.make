# Empty compiler generated dependencies file for cedr_rt.
# This may be replaced when dependencies are built.
