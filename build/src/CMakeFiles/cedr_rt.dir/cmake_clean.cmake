file(REMOVE_RECURSE
  "CMakeFiles/cedr_rt.dir/cedr_rt_anchor.cpp.o"
  "CMakeFiles/cedr_rt.dir/cedr_rt_anchor.cpp.o.d"
  "libcedr-rt.pdb"
  "libcedr-rt.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
