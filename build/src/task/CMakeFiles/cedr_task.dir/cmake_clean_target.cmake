file(REMOVE_RECURSE
  "libcedr_task.a"
)
