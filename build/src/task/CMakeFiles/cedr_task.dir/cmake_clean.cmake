file(REMOVE_RECURSE
  "CMakeFiles/cedr_task.dir/dag_loader.cpp.o"
  "CMakeFiles/cedr_task.dir/dag_loader.cpp.o.d"
  "CMakeFiles/cedr_task.dir/task.cpp.o"
  "CMakeFiles/cedr_task.dir/task.cpp.o.d"
  "libcedr_task.a"
  "libcedr_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
