# Empty compiler generated dependencies file for cedr_task.
# This may be replaced when dependencies are built.
