# Empty dependencies file for cedr_sim.
# This may be replaced when dependencies are built.
