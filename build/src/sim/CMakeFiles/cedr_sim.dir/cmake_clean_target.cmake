file(REMOVE_RECURSE
  "libcedr_sim.a"
)
