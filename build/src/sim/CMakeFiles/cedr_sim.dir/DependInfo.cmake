
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/model.cpp" "src/sim/CMakeFiles/cedr_sim.dir/model.cpp.o" "gcc" "src/sim/CMakeFiles/cedr_sim.dir/model.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/cedr_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/cedr_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cedr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cedr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cedr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/cedr_task.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cedr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cedr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cedr_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
