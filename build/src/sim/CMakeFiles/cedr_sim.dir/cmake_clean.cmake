file(REMOVE_RECURSE
  "CMakeFiles/cedr_sim.dir/model.cpp.o"
  "CMakeFiles/cedr_sim.dir/model.cpp.o.d"
  "CMakeFiles/cedr_sim.dir/simulator.cpp.o"
  "CMakeFiles/cedr_sim.dir/simulator.cpp.o.d"
  "libcedr_sim.a"
  "libcedr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
