file(REMOVE_RECURSE
  "CMakeFiles/cedr_sched.dir/heuristics.cpp.o"
  "CMakeFiles/cedr_sched.dir/heuristics.cpp.o.d"
  "CMakeFiles/cedr_sched.dir/rank.cpp.o"
  "CMakeFiles/cedr_sched.dir/rank.cpp.o.d"
  "libcedr_sched.a"
  "libcedr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
