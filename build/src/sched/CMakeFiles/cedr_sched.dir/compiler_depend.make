# Empty compiler generated dependencies file for cedr_sched.
# This may be replaced when dependencies are built.
