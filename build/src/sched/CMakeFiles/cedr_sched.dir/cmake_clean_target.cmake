file(REMOVE_RECURSE
  "libcedr_sched.a"
)
