file(REMOVE_RECURSE
  "CMakeFiles/cedr_trace.dir/report.cpp.o"
  "CMakeFiles/cedr_trace.dir/report.cpp.o.d"
  "CMakeFiles/cedr_trace.dir/trace.cpp.o"
  "CMakeFiles/cedr_trace.dir/trace.cpp.o.d"
  "libcedr_trace.a"
  "libcedr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
