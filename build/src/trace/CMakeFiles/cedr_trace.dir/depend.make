# Empty dependencies file for cedr_trace.
# This may be replaced when dependencies are built.
