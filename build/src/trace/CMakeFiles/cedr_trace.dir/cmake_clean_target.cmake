file(REMOVE_RECURSE
  "libcedr_trace.a"
)
