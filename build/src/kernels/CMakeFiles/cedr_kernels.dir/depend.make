# Empty dependencies file for cedr_kernels.
# This may be replaced when dependencies are built.
