file(REMOVE_RECURSE
  "libcedr_kernels.a"
)
