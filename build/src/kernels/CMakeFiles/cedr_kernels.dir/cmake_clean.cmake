file(REMOVE_RECURSE
  "CMakeFiles/cedr_kernels.dir/conv.cpp.o"
  "CMakeFiles/cedr_kernels.dir/conv.cpp.o.d"
  "CMakeFiles/cedr_kernels.dir/fft.cpp.o"
  "CMakeFiles/cedr_kernels.dir/fft.cpp.o.d"
  "CMakeFiles/cedr_kernels.dir/image.cpp.o"
  "CMakeFiles/cedr_kernels.dir/image.cpp.o.d"
  "CMakeFiles/cedr_kernels.dir/mmult.cpp.o"
  "CMakeFiles/cedr_kernels.dir/mmult.cpp.o.d"
  "CMakeFiles/cedr_kernels.dir/radar.cpp.o"
  "CMakeFiles/cedr_kernels.dir/radar.cpp.o.d"
  "CMakeFiles/cedr_kernels.dir/wifi.cpp.o"
  "CMakeFiles/cedr_kernels.dir/wifi.cpp.o.d"
  "CMakeFiles/cedr_kernels.dir/zip.cpp.o"
  "CMakeFiles/cedr_kernels.dir/zip.cpp.o.d"
  "libcedr_kernels.a"
  "libcedr_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
