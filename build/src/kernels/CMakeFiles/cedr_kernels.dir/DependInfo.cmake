
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv.cpp" "src/kernels/CMakeFiles/cedr_kernels.dir/conv.cpp.o" "gcc" "src/kernels/CMakeFiles/cedr_kernels.dir/conv.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/kernels/CMakeFiles/cedr_kernels.dir/fft.cpp.o" "gcc" "src/kernels/CMakeFiles/cedr_kernels.dir/fft.cpp.o.d"
  "/root/repo/src/kernels/image.cpp" "src/kernels/CMakeFiles/cedr_kernels.dir/image.cpp.o" "gcc" "src/kernels/CMakeFiles/cedr_kernels.dir/image.cpp.o.d"
  "/root/repo/src/kernels/mmult.cpp" "src/kernels/CMakeFiles/cedr_kernels.dir/mmult.cpp.o" "gcc" "src/kernels/CMakeFiles/cedr_kernels.dir/mmult.cpp.o.d"
  "/root/repo/src/kernels/radar.cpp" "src/kernels/CMakeFiles/cedr_kernels.dir/radar.cpp.o" "gcc" "src/kernels/CMakeFiles/cedr_kernels.dir/radar.cpp.o.d"
  "/root/repo/src/kernels/wifi.cpp" "src/kernels/CMakeFiles/cedr_kernels.dir/wifi.cpp.o" "gcc" "src/kernels/CMakeFiles/cedr_kernels.dir/wifi.cpp.o.d"
  "/root/repo/src/kernels/zip.cpp" "src/kernels/CMakeFiles/cedr_kernels.dir/zip.cpp.o" "gcc" "src/kernels/CMakeFiles/cedr_kernels.dir/zip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cedr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
