file(REMOVE_RECURSE
  "CMakeFiles/cedr_apps.dir/dag_apps.cpp.o"
  "CMakeFiles/cedr_apps.dir/dag_apps.cpp.o.d"
  "CMakeFiles/cedr_apps.dir/executable_dag.cpp.o"
  "CMakeFiles/cedr_apps.dir/executable_dag.cpp.o.d"
  "CMakeFiles/cedr_apps.dir/lane_detection.cpp.o"
  "CMakeFiles/cedr_apps.dir/lane_detection.cpp.o.d"
  "CMakeFiles/cedr_apps.dir/pulse_doppler.cpp.o"
  "CMakeFiles/cedr_apps.dir/pulse_doppler.cpp.o.d"
  "CMakeFiles/cedr_apps.dir/wifi_tx.cpp.o"
  "CMakeFiles/cedr_apps.dir/wifi_tx.cpp.o.d"
  "libcedr_apps.a"
  "libcedr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
