file(REMOVE_RECURSE
  "libcedr_apps.a"
)
