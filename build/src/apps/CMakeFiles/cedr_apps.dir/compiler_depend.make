# Empty compiler generated dependencies file for cedr_apps.
# This may be replaced when dependencies are built.
