file(REMOVE_RECURSE
  "libcedr_platform.a"
)
