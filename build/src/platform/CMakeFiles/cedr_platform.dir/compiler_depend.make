# Empty compiler generated dependencies file for cedr_platform.
# This may be replaced when dependencies are built.
