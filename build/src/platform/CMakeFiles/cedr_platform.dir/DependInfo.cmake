
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cost_model.cpp" "src/platform/CMakeFiles/cedr_platform.dir/cost_model.cpp.o" "gcc" "src/platform/CMakeFiles/cedr_platform.dir/cost_model.cpp.o.d"
  "/root/repo/src/platform/kernel_id.cpp" "src/platform/CMakeFiles/cedr_platform.dir/kernel_id.cpp.o" "gcc" "src/platform/CMakeFiles/cedr_platform.dir/kernel_id.cpp.o.d"
  "/root/repo/src/platform/mmio_bus.cpp" "src/platform/CMakeFiles/cedr_platform.dir/mmio_bus.cpp.o" "gcc" "src/platform/CMakeFiles/cedr_platform.dir/mmio_bus.cpp.o.d"
  "/root/repo/src/platform/mmio_device.cpp" "src/platform/CMakeFiles/cedr_platform.dir/mmio_device.cpp.o" "gcc" "src/platform/CMakeFiles/cedr_platform.dir/mmio_device.cpp.o.d"
  "/root/repo/src/platform/pe.cpp" "src/platform/CMakeFiles/cedr_platform.dir/pe.cpp.o" "gcc" "src/platform/CMakeFiles/cedr_platform.dir/pe.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "src/platform/CMakeFiles/cedr_platform.dir/platform.cpp.o" "gcc" "src/platform/CMakeFiles/cedr_platform.dir/platform.cpp.o.d"
  "/root/repo/src/platform/profiling.cpp" "src/platform/CMakeFiles/cedr_platform.dir/profiling.cpp.o" "gcc" "src/platform/CMakeFiles/cedr_platform.dir/profiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cedr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cedr_json.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cedr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cedr_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
