file(REMOVE_RECURSE
  "CMakeFiles/cedr_platform.dir/cost_model.cpp.o"
  "CMakeFiles/cedr_platform.dir/cost_model.cpp.o.d"
  "CMakeFiles/cedr_platform.dir/kernel_id.cpp.o"
  "CMakeFiles/cedr_platform.dir/kernel_id.cpp.o.d"
  "CMakeFiles/cedr_platform.dir/mmio_bus.cpp.o"
  "CMakeFiles/cedr_platform.dir/mmio_bus.cpp.o.d"
  "CMakeFiles/cedr_platform.dir/mmio_device.cpp.o"
  "CMakeFiles/cedr_platform.dir/mmio_device.cpp.o.d"
  "CMakeFiles/cedr_platform.dir/pe.cpp.o"
  "CMakeFiles/cedr_platform.dir/pe.cpp.o.d"
  "CMakeFiles/cedr_platform.dir/platform.cpp.o"
  "CMakeFiles/cedr_platform.dir/platform.cpp.o.d"
  "CMakeFiles/cedr_platform.dir/profiling.cpp.o"
  "CMakeFiles/cedr_platform.dir/profiling.cpp.o.d"
  "libcedr_platform.a"
  "libcedr_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
