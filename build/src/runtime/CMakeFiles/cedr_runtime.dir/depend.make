# Empty dependencies file for cedr_runtime.
# This may be replaced when dependencies are built.
