file(REMOVE_RECURSE
  "libcedr_runtime.a"
)
