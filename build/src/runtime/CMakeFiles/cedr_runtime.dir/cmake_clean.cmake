file(REMOVE_RECURSE
  "CMakeFiles/cedr_runtime.dir/runtime.cpp.o"
  "CMakeFiles/cedr_runtime.dir/runtime.cpp.o.d"
  "libcedr_runtime.a"
  "libcedr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
