# Empty compiler generated dependencies file for cedr_ipc.
# This may be replaced when dependencies are built.
