file(REMOVE_RECURSE
  "libcedr_ipc.a"
)
