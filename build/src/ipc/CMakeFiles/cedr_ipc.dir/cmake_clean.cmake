file(REMOVE_RECURSE
  "CMakeFiles/cedr_ipc.dir/ipc.cpp.o"
  "CMakeFiles/cedr_ipc.dir/ipc.cpp.o.d"
  "libcedr_ipc.a"
  "libcedr_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
