file(REMOVE_RECURSE
  "libcedr_workload.a"
)
