# Empty compiler generated dependencies file for cedr_workload.
# This may be replaced when dependencies are built.
