file(REMOVE_RECURSE
  "CMakeFiles/cedr_workload.dir/workload.cpp.o"
  "CMakeFiles/cedr_workload.dir/workload.cpp.o.d"
  "libcedr_workload.a"
  "libcedr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
