# Empty compiler generated dependencies file for cedr_common.
# This may be replaced when dependencies are built.
