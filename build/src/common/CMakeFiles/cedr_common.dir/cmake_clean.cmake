file(REMOVE_RECURSE
  "CMakeFiles/cedr_common.dir/log.cpp.o"
  "CMakeFiles/cedr_common.dir/log.cpp.o.d"
  "CMakeFiles/cedr_common.dir/rng.cpp.o"
  "CMakeFiles/cedr_common.dir/rng.cpp.o.d"
  "CMakeFiles/cedr_common.dir/status.cpp.o"
  "CMakeFiles/cedr_common.dir/status.cpp.o.d"
  "libcedr_common.a"
  "libcedr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
