file(REMOVE_RECURSE
  "libcedr_common.a"
)
