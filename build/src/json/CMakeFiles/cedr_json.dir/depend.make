# Empty dependencies file for cedr_json.
# This may be replaced when dependencies are built.
