file(REMOVE_RECURSE
  "CMakeFiles/cedr_json.dir/json.cpp.o"
  "CMakeFiles/cedr_json.dir/json.cpp.o.d"
  "libcedr_json.a"
  "libcedr_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
