file(REMOVE_RECURSE
  "libcedr_json.a"
)
