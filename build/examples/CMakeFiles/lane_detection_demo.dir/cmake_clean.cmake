file(REMOVE_RECURSE
  "CMakeFiles/lane_detection_demo.dir/lane_detection_demo.cpp.o"
  "CMakeFiles/lane_detection_demo.dir/lane_detection_demo.cpp.o.d"
  "lane_detection_demo"
  "lane_detection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lane_detection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
