# Empty compiler generated dependencies file for lane_detection_demo.
# This may be replaced when dependencies are built.
