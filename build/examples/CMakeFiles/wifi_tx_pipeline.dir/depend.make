# Empty dependencies file for wifi_tx_pipeline.
# This may be replaced when dependencies are built.
