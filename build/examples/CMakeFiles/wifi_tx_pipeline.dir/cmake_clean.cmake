file(REMOVE_RECURSE
  "CMakeFiles/wifi_tx_pipeline.dir/wifi_tx_pipeline.cpp.o"
  "CMakeFiles/wifi_tx_pipeline.dir/wifi_tx_pipeline.cpp.o.d"
  "wifi_tx_pipeline"
  "wifi_tx_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_tx_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
