file(REMOVE_RECURSE
  "CMakeFiles/profiling_workflow.dir/profiling_workflow.cpp.o"
  "CMakeFiles/profiling_workflow.dir/profiling_workflow.cpp.o.d"
  "profiling_workflow"
  "profiling_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
