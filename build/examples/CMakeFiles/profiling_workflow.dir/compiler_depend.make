# Empty compiler generated dependencies file for profiling_workflow.
# This may be replaced when dependencies are built.
