file(REMOVE_RECURSE
  "CMakeFiles/radar_pipeline.dir/radar_pipeline.cpp.o"
  "CMakeFiles/radar_pipeline.dir/radar_pipeline.cpp.o.d"
  "radar_pipeline"
  "radar_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
