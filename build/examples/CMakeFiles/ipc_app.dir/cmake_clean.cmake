file(REMOVE_RECURSE
  "CMakeFiles/ipc_app.dir/ipc_app.cpp.o"
  "CMakeFiles/ipc_app.dir/ipc_app.cpp.o.d"
  "libipc_app.pdb"
  "libipc_app.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
