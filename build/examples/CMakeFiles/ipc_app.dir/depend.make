# Empty dependencies file for ipc_app.
# This may be replaced when dependencies are built.
