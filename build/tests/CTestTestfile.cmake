# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_wifi[1]_include.cmake")
include("/root/repo/build/tests/test_radar[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_task[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_executable_dag[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
