# Empty dependencies file for test_executable_dag.
# This may be replaced when dependencies are built.
