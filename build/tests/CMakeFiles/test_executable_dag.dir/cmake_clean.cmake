file(REMOVE_RECURSE
  "CMakeFiles/test_executable_dag.dir/test_executable_dag.cpp.o"
  "CMakeFiles/test_executable_dag.dir/test_executable_dag.cpp.o.d"
  "test_executable_dag"
  "test_executable_dag.pdb"
  "test_executable_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executable_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
