# Empty dependencies file for cedr_submit.
# This may be replaced when dependencies are built.
