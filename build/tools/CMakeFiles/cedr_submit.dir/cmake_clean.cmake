file(REMOVE_RECURSE
  "CMakeFiles/cedr_submit.dir/cedr_submit.cpp.o"
  "CMakeFiles/cedr_submit.dir/cedr_submit.cpp.o.d"
  "cedr_submit"
  "cedr_submit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_submit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
