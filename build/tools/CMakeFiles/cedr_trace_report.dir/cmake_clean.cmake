file(REMOVE_RECURSE
  "CMakeFiles/cedr_trace_report.dir/cedr_trace_report.cpp.o"
  "CMakeFiles/cedr_trace_report.dir/cedr_trace_report.cpp.o.d"
  "cedr_trace_report"
  "cedr_trace_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_trace_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
