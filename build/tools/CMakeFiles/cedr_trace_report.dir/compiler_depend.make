# Empty compiler generated dependencies file for cedr_trace_report.
# This may be replaced when dependencies are built.
