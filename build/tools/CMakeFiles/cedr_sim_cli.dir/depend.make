# Empty dependencies file for cedr_sim_cli.
# This may be replaced when dependencies are built.
