file(REMOVE_RECURSE
  "CMakeFiles/cedr_sim_cli.dir/cedr_sim.cpp.o"
  "CMakeFiles/cedr_sim_cli.dir/cedr_sim.cpp.o.d"
  "cedr_sim"
  "cedr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
