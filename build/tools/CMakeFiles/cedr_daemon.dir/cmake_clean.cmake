file(REMOVE_RECURSE
  "CMakeFiles/cedr_daemon.dir/cedr_daemon.cpp.o"
  "CMakeFiles/cedr_daemon.dir/cedr_daemon.cpp.o.d"
  "cedr_daemon"
  "cedr_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
