
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cedr_daemon.cpp" "tools/CMakeFiles/cedr_daemon.dir/cedr_daemon.cpp.o" "gcc" "tools/CMakeFiles/cedr_daemon.dir/cedr_daemon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cedr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/cedr_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cedr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cedr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cedr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/cedr_api.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cedr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cedr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/cedr_task.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cedr_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cedr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cedr_json.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cedr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cedr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
