# Empty compiler generated dependencies file for cedr_daemon.
# This may be replaced when dependencies are built.
