// Seeded scenario sweep driver with golden metric-band gating.
//
// usage:
//   cedr_sweep [options] FILE.scn [FILE.scn ...]
//
//   -j N              worker threads (default: hardware concurrency)
//   --bands DIR       check each file's expanded scenarios against
//                     DIR/<file-stem>.band.json
//   --regenerate      write DIR/<file-stem>.band.json from this run instead
//                     of checking (requires --bands)
//   --margin F        relative band half-width on regenerate (default 0.05)
//   --abs-margin F    absolute band half-width floor (default 1e-6)
//   --out FILE        write all summaries as one JSON document
//   --list            expand and print scenario names, run nothing
//   --override K=V    apply a sweepable-key override to every scenario
//
// Each scenario file expands its [sweep] cross product; every expanded
// scenario is an independent work item fanned across the worker threads.
// Scenarios are deterministic on the virtual clock, so the collected
// summaries are identical for any -j — the band diff gates regressions, not
// host noise. Exit status: 0 all bands pass (or no bands requested), 1 any
// band violation or failed scenario, 2 usage/parse errors.
//
// Band failures print one line per out-of-band metric:
//   FAIL <scenario> <metric>: <value> outside [<lo>, <hi>]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cedr/scenario/band.h"
#include "cedr/scenario/runner.h"
#include "cedr/scenario/scenario.h"

using namespace cedr;

namespace {

std::string file_stem(const std::string& path) {
  std::string stem = path;
  if (const std::size_t slash = stem.find_last_of('/');
      slash != std::string::npos) {
    stem.erase(0, slash + 1);
  }
  if (const std::size_t dot = stem.find_last_of('.');
      dot != std::string::npos && dot > 0) {
    stem.erase(dot);
  }
  return stem;
}

struct WorkItem {
  std::size_t file_index = 0;
  scenario::Scenario scenario;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  std::string bands_dir;
  bool regenerate = false;
  bool list_only = false;
  scenario::BandMargins margins;
  std::string out_path;
  std::vector<std::pair<std::string, std::string>> overrides;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "-j") {
      jobs = std::strtoul(next(), nullptr, 10);
      if (jobs == 0) jobs = 1;
    } else if (arg == "--bands") {
      bands_dir = next();
    } else if (arg == "--regenerate") {
      regenerate = true;
    } else if (arg == "--margin") {
      margins.rel = std::strtod(next(), nullptr);
    } else if (arg == "--abs-margin") {
      margins.abs = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--override") {
      const std::string kv = next();
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--override expects KEY=VALUE, got '%s'\n",
                     kv.c_str());
        return 2;
      }
      overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see header of tools/cedr_sweep.cpp for usage\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "no scenario files given\n");
    return 2;
  }
  if (regenerate && bands_dir.empty()) {
    std::fprintf(stderr, "--regenerate requires --bands DIR\n");
    return 2;
  }

  // Expand every file up front so parse errors surface before any work runs
  // (all-or-nothing, like the parser itself).
  std::vector<WorkItem> work;
  for (std::size_t f = 0; f < files.size(); ++f) {
    auto loaded = scenario::load_scenario(files[f]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().to_string().c_str());
      return 2;
    }
    for (auto& [key, value] : overrides) {
      if (const Status s = scenario::apply_override(*loaded, key, value);
          !s.ok()) {
        std::fprintf(stderr, "%s: %s\n", files[f].c_str(),
                     s.to_string().c_str());
        return 2;
      }
    }
    auto expanded = scenario::expand_sweep(*loaded);
    if (!expanded.ok()) {
      std::fprintf(stderr, "%s: %s\n", files[f].c_str(),
                   expanded.status().to_string().c_str());
      return 2;
    }
    for (auto& point : *expanded) {
      work.push_back({f, std::move(point)});
    }
  }

  if (list_only) {
    for (const WorkItem& item : work) {
      std::printf("%s\n", item.scenario.name.c_str());
    }
    return 0;
  }

  // Fan scenarios across threads. Results land in a pre-sized slot per
  // item, so reporting order (and every output byte) is independent of -j.
  struct Slot {
    bool ok = false;
    std::string error;
    scenario::ScenarioResult result;
  };
  std::vector<Slot> slots(work.size());
  std::atomic<std::size_t> next_item{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next_item.fetch_add(1);
      if (i >= work.size()) return;
      auto result = scenario::run_scenario(work[i].scenario);
      if (result.ok()) {
        slots[i].ok = true;
        slots[i].result = *std::move(result);
      } else {
        slots[i].error = result.status().to_string();
      }
    }
  };
  std::vector<std::thread> pool;
  const std::size_t threads = std::min(jobs, std::max<std::size_t>(1, work.size()));
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  bool failed = false;
  // Summaries grouped per input file (band files are per-file).
  std::vector<std::map<std::string, scenario::MetricSummary>> per_file(
      files.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (!slots[i].ok) {
      std::fprintf(stderr, "FAIL %s: %s\n", work[i].scenario.name.c_str(),
                   slots[i].error.c_str());
      failed = true;
      continue;
    }
    per_file[work[i].file_index][slots[i].result.name] =
        slots[i].result.summary;
  }
  std::size_t ran = 0;
  for (const Slot& slot : slots) ran += slot.ok ? 1 : 0;
  std::printf("ran %zu scenarios from %zu files (%zu threads)\n", ran,
              files.size(), threads);

  if (!out_path.empty()) {
    json::Object all;
    for (std::size_t f = 0; f < files.size(); ++f) {
      json::Object file_obj;
      for (const auto& [name, summary] : per_file[f]) {
        json::Object metrics;
        for (const auto& [metric, value] : summary) metrics[metric] = value;
        file_obj[name] = json::Value(std::move(metrics));
      }
      all[file_stem(files[f])] = json::Value(std::move(file_obj));
    }
    if (const Status s = json::write_file(out_path, json::Value(std::move(all)));
        !s.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                   s.to_string().c_str());
      return 2;
    }
  }

  if (!bands_dir.empty()) {
    for (std::size_t f = 0; f < files.size(); ++f) {
      const std::string band_path =
          bands_dir + "/" + file_stem(files[f]) + ".band.json";
      if (regenerate) {
        const scenario::BandFile bands =
            scenario::make_bands(per_file[f], margins);
        if (const Status s = bands.save(band_path); !s.ok()) {
          std::fprintf(stderr, "cannot write %s: %s\n", band_path.c_str(),
                       s.to_string().c_str());
          return 2;
        }
        std::printf("wrote %s (%zu scenarios)\n", band_path.c_str(),
                    bands.scenarios.size());
        continue;
      }
      auto bands = scenario::BandFile::load(band_path);
      if (!bands.ok()) {
        std::fprintf(stderr, "%s\n", bands.status().to_string().c_str());
        failed = true;
        continue;
      }
      const scenario::BandCheckResult check =
          scenario::check_bands(*bands, per_file[f]);
      for (const scenario::BandViolation& v : check.violations) {
        std::fprintf(stderr, "%s\n", v.to_string().c_str());
      }
      std::printf("%s: %zu metrics checked, %zu violations\n",
                  band_path.c_str(), check.metrics_checked,
                  check.violations.size());
      if (!check.ok()) failed = true;
    }
  }
  return failed ? 1 : 0;
}
