// The CEDR daemon process (paper Fig. 1).
//
// Starts a runtime for the requested platform/scheduler and serves the IPC
// submission protocol until a SHUTDOWN command arrives, then serializes the
// execution trace.
//
// usage: cedr_daemon <socket-path> [--platform host|zcu102|jetson]
//                    [--cpus N] [--ffts N] [--mmults N] [--gpus N]
//                    [--scheduler RR|EFT|ETF|HEFT_RT|HEFT_LA|EFT_LA]
//                    [--trace PATH]
//                    [--fault-plan JSON] [--metrics-interval SECONDS]
//                    [--trace-out CHROME_JSON] [--adapt]
//                    [--adapt-half-life SAMPLES] [--adapt-min-samples N]
//                    [--wait-timeout SECONDS] [--ipc-workers N]
//                    [--max-inflight N] [--busy-retry-ms MS]
//                    [--no-shm] [--shm-slots N] [--shm-arena BYTES]
//                    [--trace-dir DIR] [--trace-flush-interval SECONDS]
//                    [--trace-segment-events N] [--trace-segment-age SECONDS]
//                    [--trace-retention N]
//
// --trace-dir enables the continuous trace pipeline: the span ring is
// drained every --trace-flush-interval seconds into rotated binary `.cbt`
// segments under DIR (size bound --trace-segment-events, age bound
// --trace-segment-age, retention --trace-retention finalized files), so the
// trace survives a crash and a run of unbounded length; convert with
// `cedr_trace_report --from-segments DIR --chrome out.json`. See
// docs/observability.md.
//
// --wait-timeout sets RuntimeConfig::default_wait_timeout_s, the deadline
// wait_all/wait_app apply when the caller passes none (shutdown drains
// through wait_all). 0 waits forever.
//
// --ipc-workers sizes the IPC worker pool (slow verbs: SUBMIT's dlopen,
// SUBMITDAG's JSON load, WAIT, SHUTDOWN). --max-inflight bounds admitted
// in-flight application instances: SUBMIT/SUBMITDAG beyond the bound get
// `BUSY <retry-after-ms>` (the hint set by --busy-retry-ms) instead of
// queueing without bound; 0 = unbounded. See docs/ipc.md.
//
// The shared-memory submission lane (SHMOPEN, docs/ipc.md "Shared-memory
// lane") is on by default; --no-shm disables it (clients fall back to the
// socket), --shm-slots sizes both per-session rings (power of two) and
// --shm-arena sizes the per-session argument arena in bytes.
//
// --metrics-interval starts the background sampler (queue depth and per-PE
// utilization time series, served live via the METRICS IPC command);
// --trace-out writes the span ring as Chrome trace-event JSON on shutdown
// (loadable in chrome://tracing or Perfetto).
//
// --adapt turns on online cost-model adaptation (docs/adaptive_costs.md):
// worker threads feed measured service times into an OnlineCostEstimator
// and the scheduling heuristics consume its continuously refined tables;
// inspect with `cedr_submit <socket> costs`. --adapt-half-life and
// --adapt-min-samples override the estimator's decay half-life (in
// samples) and warmup gate.

#include <cstdio>
#include <cstring>
#include <string>

#include "cedr/common/log.h"
#include "cedr/ipc/ipc.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <socket-path> [--platform host|zcu102|jetson] "
                 "[--cpus N] [--ffts N] [--mmults N] [--gpus N] "
                 "[--scheduler NAME] [--trace PATH] [--config JSON] "
                 "[--fault-plan JSON] [--metrics-interval SECONDS] "
                 "[--trace-out CHROME_JSON] [--adapt] "
                 "[--adapt-half-life SAMPLES] [--adapt-min-samples N] "
                 "[--wait-timeout SECONDS] [--ipc-workers N] "
                 "[--max-inflight N] [--busy-retry-ms MS] "
                 "[--no-shm] [--shm-slots N] [--shm-arena BYTES] "
                 "[--trace-dir DIR] [--trace-flush-interval SECONDS] "
                 "[--trace-segment-events N] [--trace-segment-age SECONDS] "
                 "[--trace-retention N] [--verbose]\n",
                 argv[0]);
    return 2;
  }
  const std::string socket_path = argv[1];
  std::string platform_name = "host";
  std::string scheduler = "EFT";
  std::string trace_path;
  std::string config_path;
  std::string fault_plan_path;
  std::string chrome_trace_path;
  double metrics_interval_s = 0.0;
  bool adapt_enabled = false;
  double adapt_half_life = 0.0;
  std::size_t adapt_min_samples = 0;
  double wait_timeout_s = -1.0;
  std::string trace_dir;
  double trace_flush_interval_s = 0.0;
  std::size_t trace_segment_events = 0;
  double trace_segment_age_s = -1.0;
  long trace_retention = -1;
  ipc::IpcServerConfig ipc_config;
  std::size_t cpus = 2;
  std::size_t ffts = 1;
  std::size_t mmults = 0;
  std::size_t gpus = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--platform") platform_name = next();
    else if (arg == "--scheduler") scheduler = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--cpus") cpus = std::strtoul(next(), nullptr, 10);
    else if (arg == "--ffts") ffts = std::strtoul(next(), nullptr, 10);
    else if (arg == "--mmults") mmults = std::strtoul(next(), nullptr, 10);
    else if (arg == "--gpus") gpus = std::strtoul(next(), nullptr, 10);
    else if (arg == "--config") config_path = next();
    else if (arg == "--fault-plan") fault_plan_path = next();
    else if (arg == "--metrics-interval")
      metrics_interval_s = std::strtod(next(), nullptr);
    else if (arg == "--trace-out") chrome_trace_path = next();
    else if (arg == "--adapt") adapt_enabled = true;
    else if (arg == "--adapt-half-life")
      adapt_half_life = std::strtod(next(), nullptr);
    else if (arg == "--adapt-min-samples")
      adapt_min_samples = std::strtoul(next(), nullptr, 10);
    else if (arg == "--wait-timeout")
      wait_timeout_s = std::strtod(next(), nullptr);
    else if (arg == "--ipc-workers")
      ipc_config.worker_threads = std::strtoul(next(), nullptr, 10);
    else if (arg == "--max-inflight")
      ipc_config.max_inflight_apps = std::strtoul(next(), nullptr, 10);
    else if (arg == "--busy-retry-ms")
      ipc_config.busy_retry_ms =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--no-shm") ipc_config.enable_shm = false;
    else if (arg == "--shm-slots") {
      const auto slots =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      ipc_config.shm_sub_slots = slots;
      ipc_config.shm_cpl_slots = slots;
    }
    else if (arg == "--shm-arena")
      ipc_config.shm_arena_bytes =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--trace-dir") trace_dir = next();
    else if (arg == "--trace-flush-interval")
      trace_flush_interval_s = std::strtod(next(), nullptr);
    else if (arg == "--trace-segment-events")
      trace_segment_events = std::strtoul(next(), nullptr, 10);
    else if (arg == "--trace-segment-age")
      trace_segment_age_s = std::strtod(next(), nullptr);
    else if (arg == "--trace-retention")
      trace_retention = std::strtol(next(), nullptr, 10);
    else if (arg == "--verbose") log::set_level(log::Level::kInfo);
  }

  rt::RuntimeConfig config;
  if (!config_path.empty()) {
    // Full Runtime Configuration from a JSON file (paper Fig. 1).
    auto loaded = rt::RuntimeConfig::load(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load runtime configuration: %s\n",
                   loaded.status().to_string().c_str());
      return 1;
    }
    config = *std::move(loaded);
  } else if (platform_name == "zcu102") {
    config.platform = platform::zcu102(cpus, ffts, mmults);
    config.scheduler = scheduler;
  } else if (platform_name == "jetson") {
    config.platform = platform::jetson(cpus, gpus);
    config.scheduler = scheduler;
  } else {
    config.platform = platform::host(cpus, ffts, mmults);
    config.scheduler = scheduler;
  }
  if (!fault_plan_path.empty()) {
    // A standalone fault plan overrides whatever the config file carried.
    auto plan = platform::FaultPlan::load(fault_plan_path);
    if (!plan.ok()) {
      std::fprintf(stderr, "cannot load fault plan: %s\n",
                   plan.status().to_string().c_str());
      return 1;
    }
    config.fault_plan = *std::move(plan);
  }
  if (metrics_interval_s > 0.0) {
    config.obs.sampler_period_s = metrics_interval_s;
  }
  // Trace-pipeline flags layer over the config file like the others.
  if (!trace_dir.empty()) config.obs.trace_dir = trace_dir;
  if (trace_flush_interval_s > 0.0) {
    config.obs.trace_flush_interval_s = trace_flush_interval_s;
  }
  if (trace_segment_events > 0) {
    config.obs.trace_segment_events = trace_segment_events;
  }
  if (trace_segment_age_s >= 0.0) {
    config.obs.trace_segment_age_s = trace_segment_age_s;
  }
  if (trace_retention >= 0) {
    config.obs.trace_retention = static_cast<std::size_t>(trace_retention);
  }
  // The flags layer over whatever the config file carried, so `--adapt`
  // can switch adaptation on for an otherwise-static configuration.
  if (adapt_enabled) config.adapt.enabled = true;
  if (adapt_half_life > 0.0) config.adapt.half_life = adapt_half_life;
  if (adapt_min_samples > 0) config.adapt.min_samples = adapt_min_samples;
  if (wait_timeout_s >= 0.0) config.default_wait_timeout_s = wait_timeout_s;

  rt::Runtime runtime(config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  ipc::IpcServer server(runtime, socket_path, trace_path, ipc_config);
  if (const Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "IPC server failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("cedr_daemon: platform=%s scheduler=%s pes=%zu listening on %s\n",
              config.platform.name.c_str(), scheduler.c_str(),
              config.platform.pes.size(), socket_path.c_str());
  server.wait_for_shutdown();
  server.stop();
  (void)runtime.shutdown();
  if (!chrome_trace_path.empty()) {
    // Written after shutdown so the span ring carries the whole run.
    if (const Status s = runtime.write_chrome_trace(chrome_trace_path);
        !s.ok()) {
      std::fprintf(stderr, "chrome trace export failed: %s\n",
                   s.to_string().c_str());
    } else {
      std::printf("cedr_daemon: chrome trace written to %s\n",
                  chrome_trace_path.c_str());
    }
  }
  std::printf("cedr_daemon: %llu apps completed; bye\n",
              static_cast<unsigned long long>(runtime.completed_apps()));
  return 0;
}
