#!/usr/bin/env bash
# End-to-end smoke test of frontier lookahead scheduling against a live
# daemon (docs/scheduling.md "Lookahead rounds"):
#
#   1. start cedr_daemon with --scheduler HEFT_LA,
#   2. pipeline a burst of DAG submissions (the fd_filter chain exposes
#      three successors per ready task to the lookahead window),
#   3. read cedr_top --once and assert the lookahead plumbing is live:
#      the frontier-size gauge and lookahead-round histogram exist,
#      reservations were honored (successors dispatched without a
#      scheduling round), and the decision-time p95 stays under a
#      conservative ceiling — whole-window rounds must not blow up the
#      per-round latency budget.
#
# usage: run_lookahead_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DAEMON="$BUILD_DIR/tools/cedr_daemon"
SUBMIT="$BUILD_DIR/tools/cedr_submit"
TOP="$BUILD_DIR/tools/cedr_top"
DAG_JSON="$ROOT/examples/fd_filter_dag.json"

for f in "$DAEMON" "$SUBMIT" "$TOP" "$DAG_JSON"; do
  if [ ! -e "$f" ]; then
    echo "missing $f (build the tree first)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/cedr.sock"
DAEMON_LOG="$WORK_DIR/daemon.log"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

"$DAEMON" "$SOCK" --platform zcu102 --scheduler HEFT_LA \
    >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never opened $SOCK" >&2; cat "$DAEMON_LOG" >&2; exit 1; }

# Two pipelined bursts with a wait between them: the second burst arrives
# at a warm template cache, which is the steady state the decision-time
# ceiling is about.
"$SUBMIT" --repeat 64 "$SOCK" submitdag "$DAG_JSON" >/dev/null
"$SUBMIT" "$SOCK" wait
"$SUBMIT" --repeat 64 "$SOCK" submitdag "$DAG_JSON" >/dev/null
"$SUBMIT" "$SOCK" wait

"$TOP" "$SOCK" --once > "$WORK_DIR/top.txt"
"$SUBMIT" "$SOCK" shutdown
wait "$DAEMON_PID"
DAEMON_PID=""

python3 - "$WORK_DIR/top.txt" <<'EOF'
import sys

kv = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if "=" in line:
        key, _, value = line.partition("=")
        kv[key] = value

def num(key):
    assert key in kv, "cedr_top --once is missing %s" % key
    return float(kv[key])

# The lookahead plumbing must be live: frontier rounds ran and published
# their window width, and the per-round histogram filled.
assert num("gauge.sched.frontier_size") >= 1.0, kv.get(
    "gauge.sched.frontier_size")
assert num("hist.lookahead_round_us.count") > 0.0

# Reservations fired: chain successors dispatched without a scheduling
# round. The fd_filter DAG has 3 successors per instance, so a 128-app
# burst must honor a healthy number of them, and nothing goes stale on a
# fault-free run.
hits = num("counter.sched.reservation_hits")
stale = num("counter.sched.reservation_stale") if \
    "counter.sched.reservation_stale" in kv else 0.0
assert hits > 0.0, "no reservations honored (hits=%s)" % hits
assert stale == 0.0, "reservations went stale on a fault-free run: %s" % stale

# Conservative decision-time ceiling: whole-window rounds stay microsecond
# scale. Generous for slow CI machines; catches O(W^2) regressions that
# push rounds into the millisecond range.
p95 = num("hist.sched_decision_us.p95")
assert p95 < 2500.0, "sched_decision_us p95 too high: %.1f us" % p95

all_tasks = num("tasks_executed")
assert all_tasks >= 128 * 4, "burst did not execute: %s tasks" % all_tasks
print("lookahead ok: frontier=%.0f hits=%.0f stale=%.0f "
      "decision_p95=%.1fus tasks=%.0f"
      % (num("gauge.sched.frontier_size"), hits, stale, p95, all_tasks))
EOF

echo "lookahead smoke passed"
