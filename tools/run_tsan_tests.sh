#!/usr/bin/env bash
# Builds the concurrency-sensitive test tier under a sanitizer and runs it.
#
#   tools/run_tsan_tests.sh [thread|address|undefined]
#
# Defaults to the thread sanitizer: the runtime spawns one worker thread per
# PE plus one thread per API application, and the fault subsystem adds
# retry/quarantine state shared between the event loop and the workers —
# exactly the kind of machinery TSAN exists for. The sanitizer build lives
# in its own build tree (build-<sanitizer>/) so it never disturbs the main
# build directory.
set -euo pipefail

SANITIZER="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build-${SANITIZER}"

# The concurrency-sensitive tier: threaded runtime, fault injection with
# retry/quarantine, the 500-instance soak, cross-module properties, IPC
# (including the event-loop front-end hammered by pipelining clients),
# the observability layer (lock-free span ring, sampler thread), the
# continuous trace pipeline (flusher draining the ring while writers
# record), the
# online cost adaptation (concurrent observe + lock-free snapshot swap),
# the scheduling layer (sharded ready queue with per-shard locks), the
# scenario harness (concurrent sweep execution over shared compiled state),
# and the shared-memory submission lane (SPSC rings with release/acquire
# cursors shared across threads, doorbell arming, drain workers).
TARGETS=(test_runtime test_faults test_stress test_properties test_api
         test_ipc test_ipc_concurrency test_obs test_trace_segments
         test_adapt test_sched test_sched_lookahead test_scenario
         test_shm_ring test_dag_template)

cmake -B "${BUILD_DIR}" -S "${ROOT}" \
  -DCEDR_SANITIZE="${SANITIZER}" \
  -DCEDR_BUILD_BENCH=OFF \
  -DCEDR_BUILD_EXAMPLES=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target "${TARGETS[@]}"

# halt_on_error: a single data race fails the run loudly instead of
# scrolling past; second_deadlock_stack helps diagnose lock inversions.
# The suppressions file silences a known libstdc++ atomic<shared_ptr>
# false positive (see tools/tsan_suppressions.txt).
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=${ROOT}/tools/tsan_suppressions.txt"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"

status=0
for test in "${TARGETS[@]}"; do
  echo "==== ${test} (${SANITIZER} sanitizer) ===="
  if ! "${BUILD_DIR}/tests/${test}"; then
    status=1
  fi
done
exit ${status}
