#!/usr/bin/env bash
# End-to-end smoke test of the shared-memory submission lane against a live
# daemon (docs/ipc.md, "Shared-memory lane"):
#
#   1. start cedr_daemon (shm lane on by default),
#   2. submit DAGs over `cedr_submit --transport shm` and check they execute,
#   3. check the dashboard exposes the shm.* metrics,
#   4. SIGKILL a shm client mid-submission burst: the daemon must reap the
#      session (shm.sessions back to 0) and keep serving both lanes,
#   5. `--transport auto` against a --no-shm daemon must fall back to the
#      socket with a notice and still succeed,
#   6. clean shutdown over IPC.
#
# usage: run_shm_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/cedr_daemon"
SUBMIT="$BUILD_DIR/tools/cedr_submit"
TOP="$BUILD_DIR/tools/cedr_top"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DAG="$ROOT/examples/fd_filter_dag.json"

for f in "$DAEMON" "$SUBMIT" "$TOP" "$DAG"; do
  if [ ! -e "$f" ]; then
    echo "missing $f (build the tree first)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/cedr.sock"
DAEMON_LOG="$WORK_DIR/daemon.log"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.05
  done
  echo "daemon never opened $1" >&2
  cat "$DAEMON_LOG" >&2
  return 1
}

"$DAEMON" "$SOCK" --metrics-interval 0.01 >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!
wait_for_socket "$SOCK"

# --- 1. shm lane round trip --------------------------------------------------
OUT="$("$SUBMIT" --transport shm --repeat 5 "$SOCK" submitdag "$DAG")"
echo "$OUT"
SHM_LINES="$(printf '%s\n' "$OUT" | grep -c "(shm)$")"
if [ "$SHM_LINES" -ne 5 ]; then
  echo "expected 5 shm-lane submissions, saw $SHM_LINES" >&2
  exit 1
fi
"$SUBMIT" "$SOCK" wait

# --- 2. shm metrics on the dashboard ----------------------------------------
"$TOP" "$SOCK" --once > "$WORK_DIR/top.txt"
for key in "gauge.shm.sessions=" "counter.shm.records_total=" \
           "counter.shm.submits_total=" "counter.shm.sessions_opened_total=" \
           "hist.shm_drain_batch."; do
  grep -q "$key" "$WORK_DIR/top.txt" || {
    echo "cedr_top --once output missing $key" >&2
    cat "$WORK_DIR/top.txt" >&2
    exit 1
  }
done
echo "shm metrics present on the dashboard"

# --- 3. SIGKILL a client mid-submission burst --------------------------------
# A long burst over the shm lane, killed hard partway through: the crashed
# client's control connection EOF must reap its session without wedging the
# daemon or corrupting later submissions.
"$SUBMIT" --transport shm --repeat 2000 "$SOCK" submitdag "$DAG" \
    >/dev/null 2>&1 &
VICTIM=$!
sleep 0.2
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

# The daemon reaps the session once it sees EOF on the control socket.
REAPED=0
for _ in $(seq 1 100); do
  SESSIONS="$("$TOP" "$SOCK" --once | grep '^gauge\.shm\.sessions=' \
      | cut -d= -f2)"
  if [ "${SESSIONS%%.*}" = "0" ]; then
    REAPED=1
    break
  fi
  sleep 0.05
done
if [ "$REAPED" -ne 1 ]; then
  echo "shm session not reaped after client SIGKILL" >&2
  "$TOP" "$SOCK" --once >&2
  exit 1
fi
echo "SIGKILLed client's session reaped"

# Daemon still consistent: drain in-flight work, then both lanes round-trip.
"$SUBMIT" "$SOCK" wait
"$SUBMIT" --transport shm "$SOCK" submitdag "$DAG" | grep -q "(shm)$"
"$SUBMIT" --transport socket "$SOCK" submitdag "$DAG" >/dev/null
"$SUBMIT" "$SOCK" wait
"$SUBMIT" "$SOCK" shutdown
wait "$DAEMON_PID"
DAEMON_PID=""
echo "daemon survived the SIGKILLed shm client"

# --- 4. auto fallback against a --no-shm daemon ------------------------------
SOCK2="$WORK_DIR/cedr_noshm.sock"
"$DAEMON" "$SOCK2" --no-shm >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!
wait_for_socket "$SOCK2"

FALLBACK_ERR="$WORK_DIR/fallback.err"
"$SUBMIT" --transport auto "$SOCK2" submitdag "$DAG" 2>"$FALLBACK_ERR" \
    | grep -q "^submitted DAG as instance"
grep -q "falling back to socket transport" "$FALLBACK_ERR" || {
  echo "expected a fallback notice on stderr" >&2
  cat "$FALLBACK_ERR" >&2
  exit 1
}
# Forced shm against the same daemon must fail outright.
if "$SUBMIT" --transport shm "$SOCK2" submitdag "$DAG" 2>/dev/null; then
  echo "--transport shm unexpectedly succeeded against --no-shm" >&2
  exit 1
fi
"$SUBMIT" "$SOCK2" wait
"$SUBMIT" "$SOCK2" shutdown
wait "$DAEMON_PID"
DAEMON_PID=""
echo "auto fallback works against a --no-shm daemon"

echo "shm smoke passed"
