#!/usr/bin/env bash
# Crash-durability smoke test of the continuous trace pipeline
# (docs/observability.md):
#
#   1. start cedr_daemon with --trace-dir and a fast flush interval,
#   2. submit the example IPC application and let a few flushes land,
#   3. SIGKILL the daemon mid-run — no shutdown path, no final flush,
#   4. assert the rotated `.cbt` segments on disk still convert: every
#      flushed segment parses (CRC-clean), stitches into a monotonic
#      stream, and exports Chrome trace-event JSON that brackets the run.
#
# This is the property the binary segment format exists for: a crashed or
# wedged daemon leaves a usable trace up to the last completed flush,
# unlike the shutdown-time --trace-out export which dies with the process.
#
# usage: run_trace_pipeline_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/cedr_daemon"
SUBMIT="$BUILD_DIR/tools/cedr_submit"
REPORT="$BUILD_DIR/tools/cedr_trace_report"
APP_SO="$BUILD_DIR/examples/libipc_app.so"

for f in "$DAEMON" "$SUBMIT" "$REPORT" "$APP_SO"; do
  if [ ! -e "$f" ]; then
    echo "missing $f (build the tree first)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/cedr.sock"
TRACE_DIR="$WORK_DIR/traces"
DAEMON_LOG="$WORK_DIR/daemon.log"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# Small segments + fast flushing so several flushes complete quickly.
"$DAEMON" "$SOCK" --platform zcu102 --metrics-interval 0.05 \
    --trace-dir "$TRACE_DIR" --trace-flush-interval 0.05 \
    --trace-segment-events 256 >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never opened $SOCK" >&2; cat "$DAEMON_LOG" >&2; exit 1; }

"$SUBMIT" "$SOCK" submit "$APP_SO" crash_pd
"$SUBMIT" "$SOCK" submit "$APP_SO" crash_tx
"$SUBMIT" "$SOCK" wait

# Give the flusher time to drain the completed work, then pull the plug.
sleep 0.3
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

# The segments the flusher managed to write must convert without the
# daemon ever having run its shutdown path.
ls -l "$TRACE_DIR" >&2
SUMMARY="$("$REPORT" --from-segments "$TRACE_DIR" --chrome "$WORK_DIR/chrome.json")"
echo "$SUMMARY"
case "$SUMMARY" in
  *"segments"*"events"*"chrome trace written"*) ;;
  *) echo "unexpected report output" >&2; exit 1 ;;
esac

python3 - "$WORK_DIR/chrome.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "no events survived the crash"
named = [e for e in events if e.get("ph") == "X"]
assert named, "no complete spans survived the crash"
names = {e["name"] for e in events}
assert "runtime_start" in names, "missing runtime_start instant"
# Worker spans from the submitted apps must have been flushed before the
# SIGKILL (both apps completed and a flush interval elapsed).
cats = {e.get("cat") for e in named}
assert "worker" in cats, f"no worker spans flushed before SIGKILL: {sorted(cats)}"
# Per-track monotonicity survives stitching.
last = {}
for e in events:
    if e.get("ph") != "X":
        continue
    key = (e["pid"], e["tid"])
    assert e["ts"] >= last.get(key, -1), f"non-monotonic track {key}"
    last[key] = e["ts"]
print("crash durability ok: %d events, %d complete spans" % (len(events), len(named)))
EOF

echo "trace pipeline smoke passed"
