#!/usr/bin/env bash
# End-to-end smoke test of the observability layer against a live daemon:
#
#   1. start cedr_daemon with the metrics sampler and a Chrome trace sink,
#   2. submit the example IPC application,
#   3. poll STATS (and METRICS) while it runs,
#   4. take one cedr_top --once sample (machine-readable dashboard output),
#   5. shut down over IPC,
#   6. validate the exported Chrome trace: well-formed JSON, non-empty
#      traceEvents, timestamps monotonic per (pid, tid) track, and at least
#      one complete enqueue->execute flow pair.
#
# usage: run_obs_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/cedr_daemon"
SUBMIT="$BUILD_DIR/tools/cedr_submit"
TOP="$BUILD_DIR/tools/cedr_top"
APP_SO="$BUILD_DIR/examples/libipc_app.so"

for f in "$DAEMON" "$SUBMIT" "$TOP" "$APP_SO"; do
  if [ ! -e "$f" ]; then
    echo "missing $f (build the tree first)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/cedr.sock"
CHROME="$WORK_DIR/chrome.json"
DAEMON_LOG="$WORK_DIR/daemon.log"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

"$DAEMON" "$SOCK" --platform zcu102 --metrics-interval 0.01 \
    --trace-out "$CHROME" >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the socket to appear.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never opened $SOCK" >&2; cat "$DAEMON_LOG" >&2; exit 1; }

"$SUBMIT" "$SOCK" submit "$APP_SO" obs_pd
"$SUBMIT" "$SOCK" submit "$APP_SO" obs_tx

# Live STATS while (or right after) the apps run: must be a single OK line
# with the expected keys.
STATS="$("$SUBMIT" "$SOCK" stats)"
echo "STATS: $STATS"
case "$STATS" in
  *uptime_s=*submitted=2*pe_busy=*) ;;
  *) echo "unexpected STATS line" >&2; exit 1 ;;
esac

"$SUBMIT" "$SOCK" wait

# METRICS must be valid JSON with live histograms.
"$SUBMIT" "$SOCK" metrics > "$WORK_DIR/metrics.json"
python3 - "$WORK_DIR/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert "metrics" in doc and "stats" in doc, "missing top-level keys"
hists = doc["metrics"]["histograms"]
assert hists["service_time_us"]["count"] > 0, "no service-time samples"
assert doc["stats"]["completed"] == 2, doc["stats"]
print("METRICS ok: %d tasks, p95 service %.1f us" % (
    hists["service_time_us"]["count"], hists["service_time_us"]["p95"]))
EOF

# One machine-readable dashboard sample over the same socket: utilization,
# queue depths and histogram quantiles must come back as flat key=value
# lines built from real STATS/METRICS replies.
"$TOP" "$SOCK" --once > "$WORK_DIR/top.txt"
echo "cedr_top --once: $(wc -l < "$WORK_DIR/top.txt") keys"
for key in "uptime_s=" "completed=2" "pe.cpu0.busy=" \
           "hist.service_time_us.p95=" "gauge.ready_queue_depth=" \
           "counter.tasks_executed="; do
  grep -q "$key" "$WORK_DIR/top.txt" || {
    echo "cedr_top --once output missing $key" >&2
    cat "$WORK_DIR/top.txt" >&2
    exit 1
  }
done

"$SUBMIT" "$SOCK" shutdown
wait "$DAEMON_PID"
DAEMON_PID=""

# Validate the exported Chrome trace.
python3 - "$CHROME" <<'EOF'
import collections, json, sys
doc = json.load(open(sys.argv[1]))
rows = doc["traceEvents"]
assert rows, "empty traceEvents"
last = {}
flows = collections.defaultdict(set)
spans = instants = 0
for row in rows:
    ph = row["ph"]
    if ph == "M":
        continue
    key = (row["pid"], row["tid"])
    ts = row["ts"]
    assert ts >= last.get(key, 0.0), f"ts not monotonic on track {key}"
    last[key] = ts
    if ph == "X":
        spans += 1
        assert row["dur"] >= 0.0
    elif ph == "i":
        instants += 1
    elif ph in ("s", "t", "f"):
        flows[row["id"]].add(ph)
complete_flows = sum(1 for phases in flows.values()
                     if "s" in phases and "f" in phases)
assert spans > 0, "no complete spans"
assert instants > 0, "no instant events"
assert complete_flows >= 1, f"no enqueue->execute flow pairs: {dict(flows)}"
print(f"chrome trace ok: {spans} spans, {instants} instants, "
      f"{complete_flows} complete flows over {len(last)} tracks")
EOF

echo "obs smoke passed"
