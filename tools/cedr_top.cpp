// Live terminal dashboard for a running CEDR daemon (`top` for the
// scheduler): polls the STATS and METRICS IPC verbs over one persistent
// pipelined connection and renders per-PE utilization bars, ready-queue
// shard depths, shared-memory-lane activity (sessions, ring depth,
// record/doorbell/stall rates), latency-histogram summaries, fault
// counters and submission rates in place. Pure client of the documented
// IPC protocol (docs/ipc.md) — needs nothing the daemon does not already
// serve.
//
// usage: cedr_top <socket-path> [--interval SECONDS] [--count N] [--once]
//                 [--connect-timeout SECONDS]
//
// --once polls a single time and prints a flat machine-readable
// `key=value` dump (no ANSI, stable key names) for scripts and smoke
// tests; the default is a full-screen view refreshed every --interval
// seconds (default 1) until interrupted or --count refreshes have run.
//
// Latency sections show both lifetime quantiles (daemon-side histograms)
// and interval rates computed client-side by differencing count/sum
// between polls — the dashboard equivalent of
// QuantileHistogram::snapshot_delta(), done on this end of the socket so
// any number of cedr_top instances can watch one daemon independently.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cedr/ipc/ipc.h"
#include "cedr/json/json.h"

using namespace cedr;

namespace {

struct Options {
  std::string socket_path;
  double interval_s = 1.0;
  std::size_t count = 0;  ///< 0 = until interrupted
  bool once = false;
  double connect_timeout_s = 5.0;
};

/// Client-side delta cursor per histogram (count/sum at the previous poll).
struct HistCursor {
  double count = 0.0;
  double sum = 0.0;
};

/// One parsed histogram row plus its interval delta.
struct HistRow {
  std::string name;
  double count = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double rate_per_s = 0.0;       ///< samples/s since the previous poll
  double interval_mean = 0.0;    ///< mean of samples since the previous poll
};

/// 0..1 fraction as a fixed-width unicode-free bar: `[#####.....]`.
std::string bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(std::lround(fraction * static_cast<double>(width)));
  std::string out = "[";
  out.append(filled, '#');
  out.append(width - filled, '.');
  out += "]";
  return out;
}

HistRow parse_hist(const std::string& name, const json::Value& hist,
                   std::map<std::string, HistCursor>& cursors,
                   double interval_s) {
  HistRow row;
  row.name = name;
  row.count = hist.get_double("count", 0.0);
  row.mean = hist.get_double("mean", 0.0);
  row.p50 = hist.get_double("p50", 0.0);
  row.p95 = hist.get_double("p95", 0.0);
  row.p99 = hist.get_double("p99", 0.0);
  row.max = hist.get_double("max", 0.0);
  const double sum = hist.get_double("sum", 0.0);
  HistCursor& cursor = cursors[name];
  const double dcount = row.count - cursor.count;
  const double dsum = sum - cursor.sum;
  if (dcount > 0.0) {
    row.rate_per_s = interval_s > 0.0 ? dcount / interval_s : 0.0;
    row.interval_mean = dsum / dcount;
  }
  cursor.count = row.count;
  cursor.sum = sum;
  return row;
}

/// Flat `key=value` dump for --once: stable names, one fact per line.
void print_once(const json::Value& doc) {
  const json::Value* stats = doc.find("stats");
  const json::Value* metrics = doc.find("metrics");
  const json::Value* counters = doc.find("counters");
  if (stats != nullptr) {
    std::printf("uptime_s=%.3f\n", stats->get_double("uptime_s", 0.0));
    std::printf("submitted=%lld\n", static_cast<long long>(
                                        stats->get_int("submitted", 0)));
    std::printf("completed=%lld\n", static_cast<long long>(
                                        stats->get_int("completed", 0)));
    std::printf("inflight=%lld\n",
                static_cast<long long>(stats->get_int("inflight", 0)));
    std::printf("ready_tasks=%lld\n",
                static_cast<long long>(stats->get_int("ready_tasks", 0)));
    std::printf("deferred_tasks=%lld\n",
                static_cast<long long>(stats->get_int("deferred_tasks", 0)));
    std::printf("tasks_executed=%lld\n",
                static_cast<long long>(stats->get_int("tasks_executed", 0)));
    if (const json::Value* pes = stats->find("pes");
        pes != nullptr && pes->is_object()) {
      for (const auto& [name, pe] : pes->as_object()) {
        std::printf("pe.%s.busy=%.4f\n", name.c_str(),
                    pe.get_double("busy", 0.0));
        std::printf("pe.%s.tasks=%lld\n", name.c_str(),
                    static_cast<long long>(pe.get_int("tasks", 0)));
        std::printf("pe.%s.quarantined=%d\n", name.c_str(),
                    pe.get_bool("quarantined", false) ? 1 : 0);
      }
    }
  }
  if (metrics != nullptr) {
    if (const json::Value* gauges = metrics->find("gauges");
        gauges != nullptr && gauges->is_object()) {
      for (const auto& [name, value] : gauges->as_object()) {
        if (value.is_number()) {
          std::printf("gauge.%s=%.6g\n", name.c_str(), value.as_double());
        }
      }
    }
    if (const json::Value* hists = metrics->find("histograms");
        hists != nullptr && hists->is_object()) {
      for (const auto& [name, hist] : hists->as_object()) {
        std::printf("hist.%s.count=%.0f\n", name.c_str(),
                    hist.get_double("count", 0.0));
        std::printf("hist.%s.mean=%.3f\n", name.c_str(),
                    hist.get_double("mean", 0.0));
        std::printf("hist.%s.p50=%.3f\n", name.c_str(),
                    hist.get_double("p50", 0.0));
        std::printf("hist.%s.p95=%.3f\n", name.c_str(),
                    hist.get_double("p95", 0.0));
        std::printf("hist.%s.p99=%.3f\n", name.c_str(),
                    hist.get_double("p99", 0.0));
      }
    }
  }
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      std::printf("counter.%s=%lld\n", name.c_str(),
                  static_cast<long long>(value.as_int()));
    }
  }
}

void render(const json::Value& doc, const std::string& stats_line,
            std::map<std::string, HistCursor>& cursors,
            std::map<std::string, double>& counter_cursors, double interval_s,
            double prev_submitted, double prev_completed) {
  const json::Value* stats = doc.find("stats");
  const json::Value* metrics = doc.find("metrics");
  const json::Value* counters = doc.find("counters");
  const json::Value* gauges =
      metrics != nullptr ? metrics->find("gauges") : nullptr;

  // Home + clear-to-end instead of a full clear: no flicker at 1 Hz.
  std::printf("\x1b[H\x1b[J");
  const double uptime =
      stats != nullptr ? stats->get_double("uptime_s", 0.0) : 0.0;
  const double submitted =
      stats != nullptr ? static_cast<double>(stats->get_int("submitted", 0))
                       : 0.0;
  const double completed =
      stats != nullptr ? static_cast<double>(stats->get_int("completed", 0))
                       : 0.0;
  const double submit_rate =
      interval_s > 0.0 && prev_submitted >= 0.0
          ? std::max(0.0, submitted - prev_submitted) / interval_s
          : 0.0;
  const double complete_rate =
      interval_s > 0.0 && prev_completed >= 0.0
          ? std::max(0.0, completed - prev_completed) / interval_s
          : 0.0;
  std::printf("cedr_top — uptime %8.1fs   apps: %5.0f submitted / %5.0f "
              "completed / %4lld inflight\n",
              uptime, submitted, completed,
              stats != nullptr
                  ? static_cast<long long>(stats->get_int("inflight", 0))
                  : 0);
  std::printf("rates: %.2f submit/s  %.2f complete/s   tasks executed: %lld\n",
              submit_rate, complete_rate,
              stats != nullptr
                  ? static_cast<long long>(stats->get_int("tasks_executed", 0))
                  : 0);
  std::printf("\n");

  // --- per-PE utilization ---------------------------------------------------
  std::printf("%-14s %-26s %10s %6s\n", "PE", "busy", "tasks", "state");
  if (stats != nullptr) {
    if (const json::Value* pes = stats->find("pes");
        pes != nullptr && pes->is_object()) {
      for (const auto& [name, pe] : pes->as_object()) {
        const double busy = pe.get_double("busy", 0.0);
        std::printf("%-14s %s %5.1f%% %10lld %6s\n", name.c_str(),
                    bar(busy, 18).c_str(), busy * 100.0,
                    static_cast<long long>(pe.get_int("tasks", 0)),
                    pe.get_bool("quarantined", false) ? "QUAR" : "ok");
      }
    }
  }
  std::printf("\n");

  // --- ready queue ----------------------------------------------------------
  if (gauges != nullptr && gauges->is_object()) {
    std::printf("ready queue: %4.0f total  (deferred %3.0f, inflight apps "
                "%3.0f)\n",
                gauges->get_double("ready_queue_depth", 0.0),
                gauges->get_double("deferred_tasks", 0.0),
                gauges->get_double("inflight_apps", 0.0));
    std::printf("  shards:");
    for (const auto& [name, value] : gauges->as_object()) {
      const std::string prefix = "ready_queue_depth.";
      if (name.rfind(prefix, 0) == 0 && value.is_number()) {
        std::printf("  %s=%.0f", name.substr(prefix.size()).c_str(),
                    value.as_double());
      }
    }
    std::printf("\n");
    // Lookahead scheduler row (docs/scheduling.md "Lookahead rounds"):
    // window width of the latest frontier round and how reservations fare
    // at release — honored straight to a PE vs invalidated back to the
    // normal ready path by the staleness check.
    if (gauges->find("sched.frontier_size") != nullptr) {
      const double hits =
          counters != nullptr
              ? static_cast<double>(
                    counters->get_int("sched.reservation_hits", 0))
              : 0.0;
      const double stale =
          counters != nullptr
              ? static_cast<double>(
                    counters->get_int("sched.reservation_stale", 0))
              : 0.0;
      const double released = hits + stale;
      std::printf("scheduler: frontier %4.0f wide   reservations %6.0f "
                  "honored / %5.0f stale (%5.1f%% hit)\n",
                  gauges->get_double("sched.frontier_size", 0.0), hits, stale,
                  released > 0.0 ? 100.0 * hits / released : 0.0);
    }
    std::printf("\n");
  }

  // --- shared-memory lane ---------------------------------------------------
  // Counter-delta rates computed client-side, like the histogram interval
  // columns: any number of dashboards can watch one daemon independently.
  auto counter_rate = [&](const char* name) -> double {
    const double now =
        counters != nullptr
            ? static_cast<double>(counters->get_int(name, 0))
            : 0.0;
    double& prev = counter_cursors[name];
    const double rate =
        interval_s > 0.0 ? std::max(0.0, now - prev) / interval_s : 0.0;
    prev = now;
    return rate;
  };
  if (gauges != nullptr && gauges->find("shm.sessions") != nullptr) {
    const double records_rate = counter_rate("shm.records_total");
    const double doorbell_rate = counter_rate("shm.doorbell_wakes_total");
    const double stall_rate = counter_rate("shm.cpl_full_stalls_total");
    std::printf("shm lane: %2.0f sessions  sub-ring depth %5.0f   "
                "records %8.1f/s  doorbells %7.1f/s\n",
                gauges->get_double("shm.sessions", 0.0),
                gauges->get_double("shm.sub_ring_depth", 0.0), records_rate,
                doorbell_rate);
    std::printf("          full-ring stalls %6.1f/s  busy=%lld  "
                "crc-rejected=%lld\n\n",
                stall_rate,
                counters != nullptr
                    ? static_cast<long long>(
                          counters->get_int("shm.busy_total", 0))
                    : 0,
                counters != nullptr
                    ? static_cast<long long>(
                          counters->get_int("shm.crc_rejected_total", 0))
                    : 0);
  }

  // --- instance lifecycle ---------------------------------------------------
  // Template-cache gauges are refreshed by the daemon on every METRICS
  // reply (docs/runtime_lifecycle.md); hits/misses cover both lanes since
  // the socket and shm paths share one process-wide cache.
  if (gauges != nullptr &&
      gauges->find("runtime.template_cache_hits") != nullptr) {
    const double hits = gauges->get_double("runtime.template_cache_hits", 0.0);
    const double misses =
        gauges->get_double("runtime.template_cache_misses", 0.0);
    const double lookups = hits + misses;
    std::printf("lifecycle: template cache %6.0f hits / %5.0f misses "
                "(%5.1f%% hit)  evictions=%0.f\n\n",
                hits, misses, lookups > 0.0 ? 100.0 * hits / lookups : 0.0,
                gauges->get_double("runtime.template_cache_evictions", 0.0));
  }

  // --- latency histograms ---------------------------------------------------
  std::printf("%-24s %10s %9s %9s %9s %9s %11s %11s\n", "latency (us)",
              "count", "mean", "p50", "p95", "p99", "rate/s", "int.mean");
  if (metrics != nullptr) {
    if (const json::Value* hists = metrics->find("histograms");
        hists != nullptr && hists->is_object()) {
      // Core scheduler histograms first, then per-verb IPC latencies.
      std::vector<HistRow> rows;
      for (const char* key :
           {"queue_delay_us", "service_time_us", "sched_decision_us",
            "sched_lock_wait_us", "lookahead_round_us", "instantiate_us",
            "complete_publish_us"}) {
        if (const json::Value* hist = hists->find(key)) {
          rows.push_back(parse_hist(key, *hist, cursors, interval_s));
        }
      }
      for (const auto& [name, hist] : hists->as_object()) {
        if (name.rfind("ipc_cmd_us.", 0) == 0) {
          rows.push_back(parse_hist(name, hist, cursors, interval_s));
        }
      }
      for (const HistRow& row : rows) {
        std::printf("%-24s %10.0f %9.1f %9.1f %9.1f %9.1f %11.1f %11.1f\n",
                    row.name.c_str(), row.count, row.mean, row.p50, row.p95,
                    row.p99, row.rate_per_s, row.interval_mean);
      }
    }
  }
  std::printf("\n");

  // --- faults / trace pipeline ---------------------------------------------
  if (counters != nullptr && counters->is_object()) {
    std::printf("faults: injected=%lld retried=%lld recovered=%lld "
                "quarantined=%lld reinstated=%lld lost=%lld\n",
                static_cast<long long>(counters->get_int("faults_injected", 0)),
                static_cast<long long>(counters->get_int("tasks_retried", 0)),
                static_cast<long long>(counters->get_int("tasks_recovered", 0)),
                static_cast<long long>(counters->get_int("pes_quarantined", 0)),
                static_cast<long long>(counters->get_int("pes_reinstated", 0)),
                static_cast<long long>(counters->get_int("tasks_failed", 0)));
  }
  if (gauges != nullptr && gauges->find("obs.trace_segments") != nullptr) {
    std::printf("trace pipeline: %0.f segments finalized, %0.f events "
                "dropped\n",
                gauges->get_double("obs.trace_segments", 0.0),
                gauges->get_double("obs.trace_dropped_total", 0.0));
  }
  std::printf("\nSTATS: %s\n", stats_line.c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <socket-path> [--interval SECONDS] [--count N] "
                 "[--once] [--connect-timeout SECONDS]\n",
                 argv[0]);
    return 2;
  }
  Options opts;
  opts.socket_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--interval") opts.interval_s = std::strtod(next(), nullptr);
    else if (arg == "--count") opts.count = std::strtoul(next(), nullptr, 10);
    else if (arg == "--once") opts.once = true;
    else if (arg == "--connect-timeout")
      opts.connect_timeout_s = std::strtod(next(), nullptr);
  }
  if (opts.interval_s <= 0.0) opts.interval_s = 1.0;
  if (opts.once) opts.count = 1;

  ipc::IpcClient client(opts.socket_path,
                        {.connect_timeout_s = opts.connect_timeout_s});
  std::map<std::string, HistCursor> cursors;
  std::map<std::string, double> counter_cursors;
  double prev_submitted = -1.0, prev_completed = -1.0;
  for (std::size_t tick = 0; opts.count == 0 || tick < opts.count; ++tick) {
    // One pipelined round trip per refresh over the persistent connection:
    // both verbs go out in a single write, both replies come back in order.
    auto replies = client.pipeline({"STATS", "METRICS"});
    if (!replies.ok()) {
      std::fprintf(stderr, "cedr_top: %s\n",
                   replies.status().to_string().c_str());
      return 1;
    }
    if (replies->size() != 2 || replies->at(0).rfind("OK ", 0) != 0 ||
        replies->at(1).rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "cedr_top: unexpected reply: %s / %s\n",
                   replies->at(0).c_str(),
                   replies->size() > 1 ? replies->at(1).c_str() : "<none>");
      return 1;
    }
    const std::string stats_line = replies->at(0).substr(3);
    auto doc = json::parse(replies->at(1).substr(3));
    if (!doc.ok()) {
      std::fprintf(stderr, "cedr_top: malformed METRICS reply: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    if (opts.once) {
      print_once(*doc);
      return 0;
    }
    render(*doc, stats_line, cursors, counter_cursors,
           tick == 0 ? 0.0 : opts.interval_s, prev_submitted, prev_completed);
    if (const json::Value* stats = doc->find("stats")) {
      prev_submitted = static_cast<double>(stats->get_int("submitted", 0));
      prev_completed = static_cast<double>(stats->get_int("completed", 0));
    }
    if (opts.count == 0 || tick + 1 < opts.count) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts.interval_s));
    }
  }
  return 0;
}
