#!/usr/bin/env bash
# Fast-path lifecycle smoke (docs/runtime_lifecycle.md): a short
# shared-memory-lane run of fig_ipc_throughput must clear a conservative
# submits/s floor. This is a regression tripwire for the app-instance fast
# path — template cache, slab-recycled instances, batched submission and
# completion publication — not a benchmark: the floor is far below the
# recorded BENCH_ipc.json numbers so machine noise never fails CI, while a
# collapse back to per-record compile/lock costs (an order of magnitude)
# still trips it.
#
# Writes its JSON to a temp path, never to the checked-in BENCH_ipc.json.
#
# usage: run_lifecycle_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/fig_ipc_throughput"

if [ ! -e "$BENCH" ]; then
  echo "missing $BENCH (build with CEDR_BUILD_BENCH=ON first)" >&2
  exit 1
fi

# Floor: the seed (pre-fast-path) runtime sustained ~56k submits/s over
# this lane on the 1-core bench host with 2 s phases; 25k leaves headroom
# for short phases and loaded CI machines.
FLOOR=25000

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$BENCH" --lane shm --clients 8 --seconds 0.5 \
    --json "$WORK_DIR/bench.json" > "$WORK_DIR/bench.log"
tail -n 5 "$WORK_DIR/bench.log"

python3 - "$WORK_DIR/bench.json" "$FLOOR" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
floor = float(sys.argv[2])

# write_with_baseline(): fresh numbers live under "current" once a baseline
# exists, else under "baseline" (first run against the temp path).
block = doc.get("current") or doc.get("baseline") or {}
shm = [p for p in block.get("points", []) if p.get("phase") == "shm"]
if not shm:
    sys.exit("no shm-phase points in the bench report")
widest = max(shm, key=lambda p: p.get("clients", 0))
rate = widest.get("submits_per_sec", 0.0)
print(f"shm SUBMITDAG at {widest.get('clients')} clients: "
      f"{rate:,.0f} submits/s (floor {floor:,.0f})")
if rate < floor:
    sys.exit(f"lifecycle fast path regressed: {rate:,.0f} < {floor:,.0f}")
EOF

echo "lifecycle smoke passed"
