// Offline analysis of a serialized CEDR trace (paper §II-A: logs are
// serialized at shutdown "for later offline analysis by the user").
//
// usage: cedr_trace_report <trace.json> [--gantt [WIDTH]]
//                          [--chrome <out.json>]
//        cedr_trace_report --from-segments <dir> [--chrome <out.json>]
//
// --chrome reconstructs a Chrome trace-event document from the trace
// records and writes it to <out.json> (loadable in chrome://tracing or
// Perfetto). A missing or malformed trace file is diagnosed on stderr and
// exits nonzero.
//
// --from-segments reads the rotated binary `.cbt` segments a daemon's
// continuous trace pipeline left under <dir> (see docs/observability.md),
// stitches them back into one stream (deduplicated across rotation
// boundaries, re-sorted to record order), prints a summary, and with
// --chrome writes the same Chrome trace-event JSON the runtime's direct
// --trace-out export would have produced.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/segment.h"
#include "cedr/trace/report.h"

using namespace cedr;

namespace {

int report_from_segments(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s --from-segments <dir> [--chrome <out.json>]\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = argv[2];
  auto paths = obs::list_segments(dir);
  if (!paths.ok()) {
    std::fprintf(stderr, "cannot list segments: %s\n",
                 paths.status().to_string().c_str());
    return 1;
  }
  if (paths->empty()) {
    std::fprintf(stderr, "no .cbt segments under %s\n", dir.c_str());
    return 1;
  }
  auto stitched = obs::stitch_segments(*paths);
  if (!stitched.ok()) {
    std::fprintf(stderr, "cannot stitch segments: %s\n",
                 stitched.status().to_string().c_str());
    return 1;
  }
  double ts_min = 0.0, ts_max = 0.0;
  if (!stitched->events.empty()) {
    ts_min = ts_max = stitched->events.front().ts;
    for (const auto& event : stitched->events) {
      ts_min = std::min(ts_min, event.ts);
      ts_max = std::max(ts_max, event.ts + event.dur);
    }
  }
  std::printf("segment trace: %s\n", dir.c_str());
  std::printf("  segments   %zu (seq %llu..%llu)\n", stitched->segments.size(),
              static_cast<unsigned long long>(stitched->segments.front().seq),
              static_cast<unsigned long long>(stitched->segments.back().seq));
  std::printf("  events     %zu (%llu duplicates removed at boundaries)\n",
              stitched->events.size(),
              static_cast<unsigned long long>(stitched->duplicates_removed));
  std::printf("  dropped    %llu (ring overwrites that outran the flusher)\n",
              static_cast<unsigned long long>(stitched->dropped_total));
  std::printf("  tracks     %zu\n", stitched->tracks.size());
  std::printf("  time span  %.6f .. %.6f s\n", ts_min, ts_max);

  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--chrome") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chrome requires an output path\n");
        return 2;
      }
      const std::string out_path = argv[++i];
      if (const Status s = obs::write_chrome_trace(out_path, stitched->events,
                                                   stitched->tracks);
          !s.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                     s.to_string().c_str());
        return 1;
      }
      std::printf("chrome trace written to %s\n", out_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.json> [--gantt [WIDTH]] "
                 "[--chrome <out.json>]\n"
                 "       %s --from-segments <dir> [--chrome <out.json>]\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--from-segments") {
    return report_from_segments(argc, argv);
  }
  const std::string path = argv[1];

  // Parse once; every view (summary, gantt, chrome export) reads this
  // document, and a missing/malformed file is diagnosed exactly once.
  auto doc = json::parse_file(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "cannot read trace %s: %s\n", path.c_str(),
                 doc.status().to_string().c_str());
    return 1;
  }
  auto report = trace::summarize_json(*doc);
  if (!report.ok()) {
    std::fprintf(stderr, "malformed trace %s: %s\n", path.c_str(),
                 report.status().to_string().c_str());
    return 1;
  }
  std::fputs(trace::render_text(*report).c_str(), stdout);

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gantt") {
      std::size_t width = 100;
      if (i + 1 < argc) {
        const unsigned long parsed = std::strtoul(argv[i + 1], nullptr, 10);
        if (parsed > 0) width = parsed;
      }
      trace::TraceLog log;
      if (const json::Value* tasks = doc->find("tasks");
          tasks != nullptr && tasks->is_array()) {
        for (const json::Value& row : tasks->as_array()) {
          log.add_task(trace::TaskRecord{
              .app_instance_id = static_cast<std::uint64_t>(
                  row.get_int("app_instance_id", 0)),
              .app_name = row.get_string("app_name", ""),
              .task_id = static_cast<std::uint64_t>(row.get_int("task_id", 0)),
              .kernel_name = row.get_string("kernel", ""),
              .pe_name = row.get_string("pe", "?"),
              .enqueue_time = row.get_double("enqueue", 0.0),
              .start_time = row.get_double("start", 0.0),
              .end_time = row.get_double("end", 0.0),
          });
        }
      }
      std::printf("\ngantt (task placement over time)\n%s",
                  trace::render_gantt(log, width).c_str());
    } else if (arg == "--chrome") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chrome requires an output path\n");
        return 2;
      }
      const std::string out_path = argv[++i];
      auto chrome = trace::chrome_trace_from_trace_json(*doc);
      if (!chrome.ok()) {
        std::fprintf(stderr, "chrome export failed: %s\n",
                     chrome.status().to_string().c_str());
        return 1;
      }
      if (const Status s = json::write_file(out_path, *chrome); !s.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                     s.to_string().c_str());
        return 1;
      }
      std::printf("\nchrome trace written to %s\n", out_path.c_str());
    }
  }
  return 0;
}
