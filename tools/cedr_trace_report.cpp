// Offline analysis of a serialized CEDR trace (paper §II-A: logs are
// serialized at shutdown "for later offline analysis by the user").
//
// usage: cedr_trace_report <trace.json> [--gantt [WIDTH]]
//                          [--chrome <out.json>]
//
// --chrome reconstructs a Chrome trace-event document from the trace
// records and writes it to <out.json> (loadable in chrome://tracing or
// Perfetto). A missing or malformed trace file is diagnosed on stderr and
// exits nonzero.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cedr/trace/report.h"

using namespace cedr;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.json> [--gantt [WIDTH]] "
                 "[--chrome <out.json>]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];

  // Parse once; every view (summary, gantt, chrome export) reads this
  // document, and a missing/malformed file is diagnosed exactly once.
  auto doc = json::parse_file(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "cannot read trace %s: %s\n", path.c_str(),
                 doc.status().to_string().c_str());
    return 1;
  }
  auto report = trace::summarize_json(*doc);
  if (!report.ok()) {
    std::fprintf(stderr, "malformed trace %s: %s\n", path.c_str(),
                 report.status().to_string().c_str());
    return 1;
  }
  std::fputs(trace::render_text(*report).c_str(), stdout);

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gantt") {
      std::size_t width = 100;
      if (i + 1 < argc) {
        const unsigned long parsed = std::strtoul(argv[i + 1], nullptr, 10);
        if (parsed > 0) width = parsed;
      }
      trace::TraceLog log;
      if (const json::Value* tasks = doc->find("tasks");
          tasks != nullptr && tasks->is_array()) {
        for (const json::Value& row : tasks->as_array()) {
          log.add_task(trace::TaskRecord{
              .app_instance_id = static_cast<std::uint64_t>(
                  row.get_int("app_instance_id", 0)),
              .app_name = row.get_string("app_name", ""),
              .task_id = static_cast<std::uint64_t>(row.get_int("task_id", 0)),
              .kernel_name = row.get_string("kernel", ""),
              .pe_name = row.get_string("pe", "?"),
              .enqueue_time = row.get_double("enqueue", 0.0),
              .start_time = row.get_double("start", 0.0),
              .end_time = row.get_double("end", 0.0),
          });
        }
      }
      std::printf("\ngantt (task placement over time)\n%s",
                  trace::render_gantt(log, width).c_str());
    } else if (arg == "--chrome") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chrome requires an output path\n");
        return 2;
      }
      const std::string out_path = argv[++i];
      auto chrome = trace::chrome_trace_from_trace_json(*doc);
      if (!chrome.ok()) {
        std::fprintf(stderr, "chrome export failed: %s\n",
                     chrome.status().to_string().c_str());
        return 1;
      }
      if (const Status s = json::write_file(out_path, *chrome); !s.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                     s.to_string().c_str());
        return 1;
      }
      std::printf("\nchrome trace written to %s\n", out_path.c_str());
    }
  }
  return 0;
}
