// IPC client for the CEDR daemon.
//
// usage:
//   cedr_submit <socket> submit <shared-object> [app-name]
//   cedr_submit <socket> status
//   cedr_submit <socket> stats     (one-line live runtime snapshot)
//   cedr_submit <socket> metrics   (JSON metrics snapshot)
//   cedr_submit <socket> costs     (static vs learned cost tables, JSON)
//   cedr_submit <socket> wait
//   cedr_submit <socket> shutdown

#include <cstdio>
#include <string>

#include "cedr/ipc/ipc.h"

using namespace cedr;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <socket> submit <so-path> [name] | submitdag <json> "
                 "| status | stats | metrics | costs | wait | shutdown\n",
                 argv[0]);
    return 2;
  }
  ipc::IpcClient client(argv[1]);
  const std::string verb = argv[2];

  if (verb == "submit") {
    if (argc < 4) {
      std::fprintf(stderr, "submit requires a shared-object path\n");
      return 2;
    }
    auto id = client.submit(argv[3], argc > 4 ? argv[4] : "");
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().to_string().c_str());
      return 1;
    }
    std::printf("submitted as instance %llu\n",
                static_cast<unsigned long long>(*id));
    return 0;
  }
  if (verb == "submitdag") {
    if (argc < 4) {
      std::fprintf(stderr, "submitdag requires a DAG JSON path\n");
      return 2;
    }
    auto id = client.submit_dag(argv[3]);
    if (!id.ok()) {
      std::fprintf(stderr, "submitdag failed: %s\n",
                   id.status().to_string().c_str());
      return 1;
    }
    std::printf("submitted DAG as instance %llu\n",
                static_cast<unsigned long long>(*id));
    return 0;
  }
  if (verb == "status") {
    auto status = client.status();
    if (!status.ok()) {
      std::fprintf(stderr, "status failed: %s\n",
                   status.status().to_string().c_str());
      return 1;
    }
    std::printf("submitted=%llu completed=%llu\n",
                static_cast<unsigned long long>(status->first),
                static_cast<unsigned long long>(status->second));
    return 0;
  }
  if (verb == "stats") {
    auto line = client.stats();
    if (!line.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   line.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", line->c_str());
    return 0;
  }
  if (verb == "metrics") {
    auto doc = client.metrics();
    if (!doc.ok()) {
      std::fprintf(stderr, "metrics failed: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", doc->dump_pretty().c_str());
    return 0;
  }
  if (verb == "costs") {
    auto doc = client.costs();
    if (!doc.ok()) {
      std::fprintf(stderr, "costs failed: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", doc->dump_pretty().c_str());
    return 0;
  }
  if (verb == "wait") {
    const Status s = client.wait_all();
    if (!s.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("all applications complete\n");
    return 0;
  }
  if (verb == "shutdown") {
    const Status s = client.shutdown();
    if (!s.ok()) {
      std::fprintf(stderr, "shutdown failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("daemon shutting down\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", verb.c_str());
  return 2;
}
