// IPC client for the CEDR daemon.
//
// usage:
//   cedr_submit [--timeout SECONDS] <socket> submit <shared-object> [app-name]
//   cedr_submit [--timeout SECONDS] <socket> submitdag <dag-json>
//   cedr_submit [--timeout SECONDS] <socket> status
//   cedr_submit [--timeout SECONDS] <socket> stats    (one-line live snapshot)
//   cedr_submit [--timeout SECONDS] <socket> metrics  (JSON metrics snapshot)
//   cedr_submit [--timeout SECONDS] <socket> costs    (cost tables, JSON)
//   cedr_submit [--timeout SECONDS] <socket> wait
//   cedr_submit [--timeout SECONDS] <socket> shutdown
//
// --timeout keeps retrying the initial connect with exponential backoff for
// up to SECONDS, so scripts can start the daemon and submit concurrently
// without an external sleep loop. Default: one attempt.
//
// exit codes: 0 success, 1 daemon/transport error, 2 usage,
// 3 daemon saturated (BUSY back-pressure — retry after the hinted delay).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cedr/ipc/ipc.h"

using namespace cedr;

namespace {

constexpr int kExitBusy = 3;

/// BUSY back-pressure gets its own exit code so retry loops can
/// distinguish "come back later" from a hard failure.
int failure_exit(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ? kExitBusy : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ipc::IpcClientConfig client_config;
  std::vector<const char*> args;  // positional: socket, verb, operands
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout" && i + 1 < argc) {
      client_config.connect_timeout_s = std::strtod(argv[++i], nullptr);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s [--timeout SECONDS] <socket> "
                 "submit <so-path> [name] | submitdag <json> "
                 "| status | stats | metrics | costs | wait | shutdown\n",
                 argv[0]);
    return 2;
  }
  ipc::IpcClient client(args[0], client_config);
  const std::string verb = args[1];

  if (verb == "submit") {
    if (args.size() < 3) {
      std::fprintf(stderr, "submit requires a shared-object path\n");
      return 2;
    }
    auto id = client.submit(args[2], args.size() > 3 ? args[3] : "");
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().to_string().c_str());
      return failure_exit(id.status());
    }
    std::printf("submitted as instance %llu\n",
                static_cast<unsigned long long>(*id));
    return 0;
  }
  if (verb == "submitdag") {
    if (args.size() < 3) {
      std::fprintf(stderr, "submitdag requires a DAG JSON path\n");
      return 2;
    }
    auto id = client.submit_dag(args[2]);
    if (!id.ok()) {
      std::fprintf(stderr, "submitdag failed: %s\n",
                   id.status().to_string().c_str());
      return failure_exit(id.status());
    }
    std::printf("submitted DAG as instance %llu\n",
                static_cast<unsigned long long>(*id));
    return 0;
  }
  if (verb == "status") {
    auto status = client.status();
    if (!status.ok()) {
      std::fprintf(stderr, "status failed: %s\n",
                   status.status().to_string().c_str());
      return 1;
    }
    std::printf("submitted=%llu completed=%llu\n",
                static_cast<unsigned long long>(status->first),
                static_cast<unsigned long long>(status->second));
    return 0;
  }
  if (verb == "stats") {
    auto line = client.stats();
    if (!line.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   line.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", line->c_str());
    return 0;
  }
  if (verb == "metrics") {
    auto doc = client.metrics();
    if (!doc.ok()) {
      std::fprintf(stderr, "metrics failed: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", doc->dump_pretty().c_str());
    return 0;
  }
  if (verb == "costs") {
    auto doc = client.costs();
    if (!doc.ok()) {
      std::fprintf(stderr, "costs failed: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", doc->dump_pretty().c_str());
    return 0;
  }
  if (verb == "wait") {
    const Status s = client.wait_all();
    if (!s.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("all applications complete\n");
    return 0;
  }
  if (verb == "shutdown") {
    const Status s = client.shutdown();
    if (!s.ok()) {
      std::fprintf(stderr, "shutdown failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("daemon shutting down\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", verb.c_str());
  return 2;
}
