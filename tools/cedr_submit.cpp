// IPC client for the CEDR daemon.
//
// usage:
//   cedr_submit [--timeout SECONDS] [--transport shm|socket|auto]
//               [--repeat N] <socket> submit <shared-object> [app-name]
//   cedr_submit ... <socket> submitdag <dag-json>
//   cedr_submit ... <socket> status
//   cedr_submit ... <socket> stats    (one-line live snapshot)
//   cedr_submit ... <socket> metrics  (JSON metrics snapshot)
//   cedr_submit ... <socket> costs    (cost tables, JSON)
//   cedr_submit ... <socket> wait
//   cedr_submit ... <socket> shutdown
//
// --timeout keeps retrying the initial connect with exponential backoff for
// up to SECONDS, so scripts can start the daemon and submit concurrently
// without an external sleep loop. Default: one attempt.
//
// --transport selects the submission lane for `submitdag` (docs/ipc.md):
//   socket  line protocol over the Unix socket (default, works everywhere)
//   shm     shared-memory rings (SHMOPEN); fails if the daemon lacks them
//   auto    try shm, fall back to the socket with a notice on stderr
// Other verbs always use the socket lane.
//
// --repeat submits the same application N times (both lanes); the exit
// code reflects the first failure. On the socket lane the SUBMITDAG
// command is serialized once and pipelined in chunks of 64, so N
// submissions cost N/64 round trips instead of N.
//
// exit codes: 0 success, 1 daemon/transport error, 2 usage,
// 3 daemon saturated (BUSY back-pressure — retry after the hinted delay).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cedr/ipc/ipc.h"
#include "cedr/shm/client.h"

using namespace cedr;

namespace {

constexpr int kExitBusy = 3;

/// BUSY back-pressure gets its own exit code so retry loops can
/// distinguish "come back later" from a hard failure.
int failure_exit(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ? kExitBusy : 1;
}

/// submitdag over the shared-memory lane: handshake, submit N records,
/// wait for their completions. Returns an exit code; -1 means the lane is
/// unavailable (caller may fall back to the socket).
int submitdag_shm(const char* socket_path, const char* json_path,
                  std::size_t repeat, double connect_timeout_s,
                  bool allow_fallback) {
  std::ifstream in(json_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", json_path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  shm::ShmClientConfig config;
  config.connect_timeout_s = connect_timeout_s;
  shm::ShmClient client(socket_path, config);
  if (const Status s = client.connect(); !s.ok()) {
    if (allow_fallback) {
      std::fprintf(stderr,
                   "cedr_submit: shm lane unavailable (%s); "
                   "falling back to socket transport\n",
                   s.to_string().c_str());
      return -1;
    }
    std::fprintf(stderr, "shm transport failed: %s\n", s.to_string().c_str());
    return 1;
  }
  int exit_code = 0;
  for (std::size_t i = 0; i < repeat; ++i) {
    auto seq = client.submit_dag_json(doc);
    if (!seq.ok()) {
      std::fprintf(stderr, "submitdag failed: %s\n",
                   seq.status().to_string().c_str());
      return failure_exit(seq.status());
    }
    auto completion = client.wait_completion(*seq);
    if (!completion.ok()) {
      std::fprintf(stderr, "submitdag failed: %s\n",
                   completion.status().to_string().c_str());
      return 1;
    }
    switch (completion->status) {
      case shm::CplStatus::kOk:
        std::printf("submitted DAG as instance %llu (shm)\n",
                    static_cast<unsigned long long>(completion->value));
        break;
      case shm::CplStatus::kBusy:
        std::fprintf(stderr,
                     "submitdag rejected: daemon saturated; retry after "
                     "%llu ms\n",
                     static_cast<unsigned long long>(completion->value));
        if (exit_code == 0) exit_code = kExitBusy;
        break;
      case shm::CplStatus::kError:
        std::fprintf(stderr, "submitdag failed: %s\n",
                     completion->msg.c_str());
        if (exit_code == 0) exit_code = 1;
        break;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  ipc::IpcClientConfig client_config;
  std::string transport = "socket";
  std::size_t repeat = 1;
  std::vector<const char*> args;  // positional: socket, verb, operands
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout" && i + 1 < argc) {
      client_config.connect_timeout_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--transport" && i + 1 < argc) {
      transport = argv[++i];
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::strtoul(argv[++i], nullptr, 10);
      if (repeat == 0) repeat = 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (transport != "socket" && transport != "shm" && transport != "auto") {
    std::fprintf(stderr, "--transport must be shm, socket or auto\n");
    return 2;
  }
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s [--timeout SECONDS] [--transport shm|socket|auto] "
                 "[--repeat N] <socket> "
                 "submit <so-path> [name] | submitdag <json> "
                 "| status | stats | metrics | costs | wait | shutdown\n",
                 argv[0]);
    return 2;
  }
  ipc::IpcClient client(args[0], client_config);
  const std::string verb = args[1];

  if (verb == "submit") {
    if (args.size() < 3) {
      std::fprintf(stderr, "submit requires a shared-object path\n");
      return 2;
    }
    for (std::size_t i = 0; i < repeat; ++i) {
      auto id = client.submit(args[2], args.size() > 3 ? args[3] : "");
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().to_string().c_str());
        return failure_exit(id.status());
      }
      std::printf("submitted as instance %llu\n",
                  static_cast<unsigned long long>(*id));
    }
    return 0;
  }
  if (verb == "submitdag") {
    if (args.size() < 3) {
      std::fprintf(stderr, "submitdag requires a DAG JSON path\n");
      return 2;
    }
    if (transport != "socket") {
      const int code =
          submitdag_shm(args[0], args[2], repeat,
                        client_config.connect_timeout_s, transport == "auto");
      if (code >= 0) return code;
      // -1: auto fallback to the socket lane below.
    }
    if (repeat == 1) {
      auto id = client.submit_dag(args[2]);
      if (!id.ok()) {
        std::fprintf(stderr, "submitdag failed: %s\n",
                     id.status().to_string().c_str());
        return failure_exit(id.status());
      }
      std::printf("submitted DAG as instance %llu\n",
                  static_cast<unsigned long long>(*id));
      return 0;
    }
    // --repeat on the socket lane: serialize the command once and pipeline
    // it in chunks, instead of one write+read round trip per submission.
    // The daemon compiles the document once (template cache) and replies in
    // order, so a chunk costs one syscall pair instead of kPipelineChunk.
    constexpr std::size_t kPipelineChunk = 64;
    const std::string command = std::string("SUBMITDAG ") + args[2];
    for (std::size_t done = 0; done < repeat;) {
      const std::size_t n = std::min(kPipelineChunk, repeat - done);
      const std::vector<std::string> commands(n, command);
      auto replies = client.pipeline(commands);
      if (!replies.ok()) {
        std::fprintf(stderr, "submitdag failed: %s\n",
                     replies.status().to_string().c_str());
        return failure_exit(replies.status());
      }
      for (const std::string& reply : replies.value()) {
        if (reply.rfind("OK ", 0) == 0) {
          std::printf("submitted DAG as instance %s\n", reply.c_str() + 3);
        } else if (reply.rfind("BUSY", 0) == 0) {
          std::fprintf(stderr, "submitdag failed: daemon saturated (%s)\n",
                       reply.c_str());
          return kExitBusy;
        } else {
          std::fprintf(stderr, "submitdag failed: %s\n", reply.c_str());
          return 1;
        }
      }
      done += n;
    }
    return 0;
  }
  if (verb == "status") {
    auto status = client.status();
    if (!status.ok()) {
      std::fprintf(stderr, "status failed: %s\n",
                   status.status().to_string().c_str());
      return 1;
    }
    std::printf("submitted=%llu completed=%llu\n",
                static_cast<unsigned long long>(status->first),
                static_cast<unsigned long long>(status->second));
    return 0;
  }
  if (verb == "stats") {
    auto line = client.stats();
    if (!line.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   line.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", line->c_str());
    return 0;
  }
  if (verb == "metrics") {
    auto doc = client.metrics();
    if (!doc.ok()) {
      std::fprintf(stderr, "metrics failed: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", doc->dump_pretty().c_str());
    return 0;
  }
  if (verb == "costs") {
    auto doc = client.costs();
    if (!doc.ok()) {
      std::fprintf(stderr, "costs failed: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", doc->dump_pretty().c_str());
    return 0;
  }
  if (verb == "wait") {
    const Status s = client.wait_all();
    if (!s.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("all applications complete\n");
    return 0;
  }
  if (verb == "shutdown") {
    const Status s = client.shutdown();
    if (!s.ok()) {
      std::fprintf(stderr, "shutdown failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("daemon shutting down\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", verb.c_str());
  return 2;
}
