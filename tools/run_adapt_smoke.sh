#!/usr/bin/env bash
# End-to-end smoke test of online cost-model adaptation against a live
# daemon (docs/adaptive_costs.md):
#
#   1. start cedr_daemon with --adapt (fast decay, small warmup),
#   2. submit the example IPC application and query COSTS,
#   3. submit three more instances and query COSTS again,
#   4. assert the learned tables are non-empty (pairs with samples and
#      finite nonnegative coefficients) and that the estimator's decayed
#      relative prediction error shrank as observations accumulated —
#      the preset tables are calibrated for the paper's hardware, so on
#      this machine the error starts large and must come down as the
#      estimator refits to live service times.
#
# usage: run_adapt_smoke.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/cedr_daemon"
SUBMIT="$BUILD_DIR/tools/cedr_submit"
APP_SO="$BUILD_DIR/examples/libipc_app.so"

for f in "$DAEMON" "$SUBMIT" "$APP_SO"; do
  if [ ! -e "$f" ]; then
    echo "missing $f (build the tree first)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/cedr.sock"
DAEMON_LOG="$WORK_DIR/daemon.log"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

"$DAEMON" "$SOCK" --platform zcu102 \
    --adapt --adapt-half-life 16 --adapt-min-samples 4 \
    >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the socket to appear.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never opened $SOCK" >&2; cat "$DAEMON_LOG" >&2; exit 1; }

"$SUBMIT" "$SOCK" submit "$APP_SO" adapt_warmup
"$SUBMIT" "$SOCK" wait
"$SUBMIT" "$SOCK" costs > "$WORK_DIR/costs_early.json"

"$SUBMIT" "$SOCK" submit "$APP_SO" adapt_a
"$SUBMIT" "$SOCK" submit "$APP_SO" adapt_b
"$SUBMIT" "$SOCK" submit "$APP_SO" adapt_c
"$SUBMIT" "$SOCK" wait
"$SUBMIT" "$SOCK" costs > "$WORK_DIR/costs_late.json"

"$SUBMIT" "$SOCK" shutdown
wait "$DAEMON_PID"
DAEMON_PID=""

python3 - "$WORK_DIR/costs_early.json" "$WORK_DIR/costs_late.json" <<'EOF'
import json, math, sys
early = json.load(open(sys.argv[1]))
late = json.load(open(sys.argv[2]))

assert early["enabled"] and late["enabled"], "adaptation not enabled"
assert late["observations"] > early["observations"] > 0, (
    "observation count did not grow: %s -> %s"
    % (early["observations"], late["observations"]))

# Learned tables must be non-empty and physically plausible.
assert late["pairs"], "no (kernel, PE-class) pairs learned"
for pair in late["pairs"]:
    assert pair["samples"] > 0, pair
    for key, value in pair["learned"].items():
        assert math.isfinite(value) and value >= 0.0, (pair["kernel"],
                                                       pair["class"], key,
                                                       value)

# The decayed mean relative prediction error must shrink as the estimator
# refits the paper-calibrated presets to this machine's service times.
# (0.35 absolute is the fallback for the unlikely case the presets start
# out nearly right and leave no room to shrink.)
e0, e1 = early["mean_rel_error"], late["mean_rel_error"]
assert e1 < e0 or e1 < 0.35, "error did not shrink: %.4f -> %.4f" % (e0, e1)

trained = [p for p in late["pairs"] if p["samples"] >= 8]
assert trained, "no pair reached 8 samples"
print("COSTS ok: %d pairs (%d trained), %d observations, "
      "rel error %.3f -> %.3f" % (len(late["pairs"]), len(trained),
                                  late["observations"], e0, e1))
EOF

echo "adapt smoke passed"
