// Command-line front end for the discrete-event runtime emulator: run any
// platform / scheduler / programming-model / workload combination without
// recompiling. This is the "rapid design-space exploration" entry point the
// CEDR ecosystem exists to support.
//
// usage:
//   cedr_sim [--platform zcu102|jetson|biglittle] [--cpus N] [--ffts N]
//            [--mmults N] [--gpus N] [--big N] [--little N]
//            [--scheduler NAME] [--model dag|api] [--rate MBPS]
//            [--trials N] [--ld-scale N] [--nonblocking]
//            [--pd N] [--tx N] [--ld N] [--fault-plan JSON]
//            [--trace-out CHROME_JSON] [--adapt]
//            [--adapt-half-life SAMPLES] [--adapt-min-samples N]
//            [--trace-dir DIR] [--trace-segment-events N]
//
// Prints one line of metrics; designed for scripting sweeps. --trace-out
// runs one additional traced emulation (the first trial's arrival sequence)
// and writes its span stream as a Chrome trace-event JSON on virtual time.
// --trace-dir writes the same traced run as rotated binary `.cbt` segments
// (size bound --trace-segment-events) instead of / in addition to the JSON;
// the engine is deterministic, so identical invocations produce
// byte-identical segments, and `cedr_trace_report --from-segments DIR`
// reconstructs exactly the JSON --trace-out would have written.
//
// --adapt enables online cost-model adaptation (docs/adaptive_costs.md):
// the engine feeds each successful task's virtual service time into one
// OnlineCostEstimator shared across trials (learning carries over, as it
// would in a long-lived daemon) and every scheduling round consumes its
// latest snapshot. A summary line (observations, rejections, publishes,
// mean relative error) is printed after the metrics. Because the engine is
// deterministic, identical invocations produce identical learned tables.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <memory>

#include "cedr/adapt/online_estimator.h"
#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/segment.h"
#include "cedr/obs/span.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"
#include "cedr/workload/workload.h"

using namespace cedr;

int main(int argc, char** argv) {
  std::string platform_name = "zcu102";
  std::string scheduler = "EFT";
  std::string model = "api";
  double rate = 200.0;
  std::size_t trials = 5;
  std::size_t ld_scale = 4;
  std::size_t cpus = 3, ffts = 1, mmults = 0, gpus = 1, big = 2, little = 4;
  std::size_t pd_count = 5, tx_count = 5, ld_count = 0;
  bool nonblocking = false;
  std::string fault_plan_path;
  std::string trace_out;
  std::string trace_dir;
  std::size_t trace_segment_events = 8192;
  bool adapt_enabled = false;
  double adapt_half_life = 0.0;
  std::size_t adapt_min_samples = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--platform") platform_name = next();
    else if (arg == "--scheduler") scheduler = next();
    else if (arg == "--model") model = next();
    else if (arg == "--rate") rate = std::strtod(next(), nullptr);
    else if (arg == "--trials") trials = std::strtoul(next(), nullptr, 10);
    else if (arg == "--ld-scale") ld_scale = std::strtoul(next(), nullptr, 10);
    else if (arg == "--cpus") cpus = std::strtoul(next(), nullptr, 10);
    else if (arg == "--ffts") ffts = std::strtoul(next(), nullptr, 10);
    else if (arg == "--mmults") mmults = std::strtoul(next(), nullptr, 10);
    else if (arg == "--gpus") gpus = std::strtoul(next(), nullptr, 10);
    else if (arg == "--big") big = std::strtoul(next(), nullptr, 10);
    else if (arg == "--little") little = std::strtoul(next(), nullptr, 10);
    else if (arg == "--pd") pd_count = std::strtoul(next(), nullptr, 10);
    else if (arg == "--tx") tx_count = std::strtoul(next(), nullptr, 10);
    else if (arg == "--ld") ld_count = std::strtoul(next(), nullptr, 10);
    else if (arg == "--nonblocking") nonblocking = true;
    else if (arg == "--fault-plan") fault_plan_path = next();
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--trace-dir") trace_dir = next();
    else if (arg == "--trace-segment-events")
      trace_segment_events = std::strtoul(next(), nullptr, 10);
    else if (arg == "--adapt") adapt_enabled = true;
    else if (arg == "--adapt-half-life")
      adapt_half_life = std::strtod(next(), nullptr);
    else if (arg == "--adapt-min-samples")
      adapt_min_samples = std::strtoul(next(), nullptr, 10);
    else if (arg == "--help" || arg == "-h") {
      std::printf("see header of tools/cedr_sim.cpp for usage\n");
      return 0;
    }
  }

  sim::SimConfig config;
  if (platform_name == "jetson") {
    config.platform = platform::jetson(cpus, gpus);
  } else if (platform_name == "biglittle") {
    config.platform = platform::biglittle(big, little, ffts);
  } else {
    config.platform = platform::zcu102(cpus, ffts, mmults);
  }
  config.scheduler = scheduler;
  config.model = model == "dag" ? sim::ProgrammingModel::kDagBased
                                : sim::ProgrammingModel::kApiBased;
  if (!fault_plan_path.empty()) {
    auto plan = platform::FaultPlan::load(fault_plan_path);
    if (!plan.ok()) {
      std::fprintf(stderr, "cannot load fault plan: %s\n",
                   plan.status().to_string().c_str());
      return 1;
    }
    config.faults = *std::move(plan);
  }
  std::unique_ptr<adapt::OnlineCostEstimator> estimator;
  if (adapt_enabled) {
    adapt::AdaptConfig adapt_config;
    adapt_config.enabled = true;
    if (adapt_half_life > 0.0) adapt_config.half_life = adapt_half_life;
    if (adapt_min_samples > 0) adapt_config.min_samples = adapt_min_samples;
    estimator = std::make_unique<adapt::OnlineCostEstimator>(
        adapt_config, config.platform.costs);
    config.adapt = estimator.get();
  }

  const sim::SimApp pd = sim::make_pulse_doppler_model(nonblocking);
  const sim::SimApp tx = sim::make_wifi_tx_model(nonblocking);
  const sim::SimApp ld = sim::make_lane_detection_model(ld_scale, nonblocking);
  std::vector<workload::Stream> streams;
  if (ld_count > 0) streams.push_back({.app = &ld, .instances = ld_count});
  if (pd_count > 0) streams.push_back({.app = &pd, .instances = pd_count});
  if (tx_count > 0) streams.push_back({.app = &tx, .instances = tx_count});
  if (streams.empty()) {
    std::fprintf(stderr, "empty workload (use --pd/--tx/--ld)\n");
    return 2;
  }

  auto result = workload::run_point(config, streams, rate, trials, 42);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const sim::SimMetrics& m = result->mean;
  std::printf(
      "platform=%s sched=%s model=%s rate=%.1f apps=%zu "
      "exec_ms=%.3f sched_ms=%.3f rtov_ms=%.3f makespan_ms=%.3f "
      "tasks=%zu rounds=%zu maxQ=%zu exec_stddev_ms=%.3f\n",
      config.platform.name.c_str(), scheduler.c_str(), model.c_str(), rate,
      m.apps, m.avg_execution_time * 1e3, m.avg_sched_overhead * 1e3,
      m.runtime_overhead_per_app * 1e3, m.makespan * 1e3, m.tasks_executed,
      m.sched_rounds, m.max_ready_queue, result->exec_time_stddev * 1e3);
  if (!fault_plan_path.empty()) {
    std::printf(
        "faults: injected=%zu retried=%zu quarantined=%zu reinstated=%zu "
        "lost=%zu\n",
        m.faults_injected, m.tasks_retried, m.pes_quarantined,
        m.pes_reinstated, m.tasks_lost);
  }
  if (estimator != nullptr) {
    std::printf(
        "adapt: observations=%llu rejected=%llu publishes=%llu "
        "mean_rel_error=%.4f pairs=%zu\n",
        static_cast<unsigned long long>(estimator->observations()),
        static_cast<unsigned long long>(estimator->rejected()),
        static_cast<unsigned long long>(estimator->publishes()),
        estimator->mean_rel_error(), estimator->pair_stats().size());
  }

  if (!trace_out.empty() || !trace_dir.empty()) {
    // One extra traced emulation over the first trial's arrival sequence
    // (run_point uses seed_base + trial * golden-ratio + 1 with 20 % phase
    // jitter; trial 0 of seed 42 reproduces below).
    obs::SpanTracer tracer;
    sim::SimConfig traced = config;
    traced.tracer = &tracer;
    std::vector<sim::Arrival> arrivals =
        workload::make_arrivals(streams, rate, /*jitter=*/0.2, 42 + 1);
    auto traced_run = sim::simulate(traced, arrivals);
    if (!traced_run.ok()) {
      std::fprintf(stderr, "traced emulation failed: %s\n",
                   traced_run.status().to_string().c_str());
      return 1;
    }
    // Track names mirror the engine's instance numbering (arrival order,
    // stable-sorted by time).
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const sim::Arrival& a, const sim::Arrival& b) {
                       return a.time < b.time;
                     });
    std::vector<obs::TrackName> tracks;
    tracks.push_back({0, 0, true, "cedr sim (" + config.platform.name + ")"});
    tracks.push_back({0, 0, false, "main loop"});
    for (std::size_t i = 0; i < config.platform.pes.size(); ++i) {
      tracks.push_back({0, 1 + i, false, config.platform.pes[i].name});
    }
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      tracks.push_back(
          {1 + i, 0, true, arrivals[i].app->name + " #" + std::to_string(i)});
    }
    if (!trace_out.empty()) {
      if (const Status s =
              obs::write_chrome_trace(trace_out, tracer.snapshot(), tracks);
          !s.ok()) {
        std::fprintf(stderr, "cannot write chrome trace: %s\n",
                     s.to_string().c_str());
        return 1;
      }
      std::printf("chrome trace written to %s (%llu spans, %llu dropped)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(tracer.recorded()),
                  static_cast<unsigned long long>(tracer.dropped()));
    }
    if (!trace_dir.empty()) {
      // Bulk drain into `.cbt` segments on virtual time. Age rotation is
      // off (<= 0) and retention unbounded: the run already happened, so
      // the split is purely size-based and fully deterministic.
      obs::SegmentWriter writer(obs::SegmentWriter::Config{
          .dir = trace_dir,
          .max_segment_events = trace_segment_events,
          .max_segment_age_s = 0.0,
          .max_segments = 0,
      });
      std::uint64_t cursor = 0;
      Status wrote = writer.open();
      if (wrote.ok()) {
        const auto events = tracer.drain(cursor);
        wrote = writer.append(events, tracer.consume_dropped(), tracks, 0.0);
      }
      if (wrote.ok()) wrote = writer.finalize(tracks);
      if (!wrote.ok()) {
        std::fprintf(stderr, "cannot write trace segments: %s\n",
                     wrote.to_string().c_str());
        return 1;
      }
      std::printf(
          "trace segments written to %s (%llu segments, %llu events)\n",
          trace_dir.c_str(),
          static_cast<unsigned long long>(writer.segments_finalized()),
          static_cast<unsigned long long>(writer.events_written()));
    }
  }
  return 0;
}
