#include "cedr/trace/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace cedr::trace {

void LatencyHistogram::record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // clamp NaN/negative clock skew
  double us = seconds * 1e6;
  // Values that are powers of two "in spirit" can land just below the edge
  // after the seconds->microseconds multiply (2e-6 * 1e6 == 1.999...96 in
  // binary floating point). Snap to the nearest integer when within a
  // relative epsilon so exact-boundary samples bucket deterministically.
  const double nearest = std::round(us);
  if (nearest > 0.0 && std::abs(us - nearest) <= nearest * 1e-9) us = nearest;
  std::size_t bucket = 0;
  if (us >= 2.0) {
    // frexp gives us = frac * 2^exp with frac in [0.5, 1), so the value
    // lies in [2^(exp-1), 2^exp) and belongs to bucket exp - 1. Unlike a
    // cast to uint64, this is defined for the whole double range.
    int exp = 0;
    std::frexp(us, &exp);
    bucket = std::min<std::size_t>(static_cast<std::size_t>(exp - 1),
                                   kBuckets - 1);
  }
  std::lock_guard lock(mutex_);
  ++counts_[bucket];
  ++total_;
  total_seconds_ += seconds;
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::lock_guard lock(mutex_);
  return total_;
}

double LatencyHistogram::total_seconds() const noexcept {
  std::lock_guard lock(mutex_);
  return total_seconds_;
}

double LatencyHistogram::mean_seconds() const noexcept {
  std::lock_guard lock(mutex_);
  return total_ == 0 ? 0.0 : total_seconds_ / static_cast<double>(total_);
}

std::vector<std::uint64_t> LatencyHistogram::buckets() const {
  std::lock_guard lock(mutex_);
  return {counts_, counts_ + kBuckets};
}

json::Value LatencyHistogram::to_json() const {
  std::lock_guard lock(mutex_);
  json::Array rows;
  rows.reserve(kBuckets);
  for (const std::uint64_t c : counts_) rows.push_back(json::Value(c));
  return json::Object{
      {"count", json::Value(total_)},
      {"total_s", json::Value(total_seconds_)},
      {"buckets_us_log2", json::Value(std::move(rows))},
  };
}

void LatencyHistogram::clear() {
  std::lock_guard lock(mutex_);
  for (std::uint64_t& c : counts_) c = 0;
  total_ = 0;
  total_seconds_ = 0.0;
}

void TraceLog::add_task(TaskRecord record) {
  std::lock_guard lock(mutex_);
  tasks_.push_back(std::move(record));
}

void TraceLog::add_app(AppRecord record) {
  std::lock_guard lock(mutex_);
  apps_.push_back(std::move(record));
}

void TraceLog::add_sched(SchedRecord record) {
  std::lock_guard lock(mutex_);
  sched_.push_back(record);
}

void TraceLog::add_retry_latency(double seconds) {
  retry_latency_.record(seconds);
}

std::vector<TaskRecord> TraceLog::tasks() const {
  std::lock_guard lock(mutex_);
  return tasks_;
}

std::vector<AppRecord> TraceLog::apps() const {
  std::lock_guard lock(mutex_);
  return apps_;
}

std::vector<SchedRecord> TraceLog::sched_rounds() const {
  std::lock_guard lock(mutex_);
  return sched_;
}

double TraceLog::avg_app_execution_time() const {
  std::lock_guard lock(mutex_);
  if (apps_.empty()) return 0.0;
  double total = 0.0;
  for (const AppRecord& app : apps_) total += app.execution_time();
  return total / static_cast<double>(apps_.size());
}

double TraceLog::avg_sched_overhead_per_app() const {
  std::lock_guard lock(mutex_);
  if (apps_.empty()) return 0.0;
  double total = 0.0;
  for (const SchedRecord& round : sched_) total += round.decision_time;
  return total / static_cast<double>(apps_.size());
}

double TraceLog::total_sched_time() const {
  std::lock_guard lock(mutex_);
  double total = 0.0;
  for (const SchedRecord& round : sched_) total += round.decision_time;
  return total;
}

json::Value TraceLog::to_json() const {
  std::lock_guard lock(mutex_);
  json::Array task_rows;
  task_rows.reserve(tasks_.size());
  for (const TaskRecord& t : tasks_) {
    task_rows.push_back(json::Object{
        {"app_instance_id", json::Value(t.app_instance_id)},
        {"app_name", json::Value(t.app_name)},
        {"task_id", json::Value(t.task_id)},
        {"kernel", json::Value(t.kernel_name)},
        {"pe", json::Value(t.pe_name)},
        {"size", json::Value(t.problem_size)},
        {"enqueue", json::Value(t.enqueue_time)},
        {"start", json::Value(t.start_time)},
        {"end", json::Value(t.end_time)},
        {"attempt", json::Value(static_cast<std::uint64_t>(t.attempt))},
        {"ok", json::Value(t.ok)},
    });
  }
  json::Array app_rows;
  app_rows.reserve(apps_.size());
  for (const AppRecord& a : apps_) {
    app_rows.push_back(json::Object{
        {"app_instance_id", json::Value(a.app_instance_id)},
        {"app_name", json::Value(a.app_name)},
        {"arrival", json::Value(a.arrival_time)},
        {"launch", json::Value(a.launch_time)},
        {"completion", json::Value(a.completion_time)},
    });
  }
  json::Array sched_rows;
  sched_rows.reserve(sched_.size());
  for (const SchedRecord& s : sched_) {
    sched_rows.push_back(json::Object{
        {"time", json::Value(s.time)},
        {"ready_tasks", json::Value(s.ready_tasks)},
        {"assigned", json::Value(s.assigned)},
        {"decision_time", json::Value(s.decision_time)},
    });
  }
  return json::Object{
      {"tasks", json::Value(std::move(task_rows))},
      {"apps", json::Value(std::move(app_rows))},
      {"sched_rounds", json::Value(std::move(sched_rows))},
      {"retry_latency", retry_latency_.to_json()},
  };
}

Status TraceLog::write_json(const std::string& path) const {
  return json::write_file(path, to_json());
}

Status TraceLog::write_task_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Unavailable("cannot open CSV file: " + path);
  out << "app_instance_id,app_name,task_id,kernel,pe,size,enqueue,start,"
         "end,attempt,ok\n";
  for (const TaskRecord& t : tasks()) {
    out << t.app_instance_id << ',' << t.app_name << ',' << t.task_id << ','
        << t.kernel_name << ',' << t.pe_name << ',' << t.problem_size << ','
        << t.enqueue_time << ',' << t.start_time << ',' << t.end_time << ','
        << t.attempt << ',' << (t.ok ? 1 : 0) << '\n';
  }
  if (!out) return Unavailable("CSV write failed: " + path);
  return Status::Ok();
}

void TraceLog::clear() {
  {
    std::lock_guard lock(mutex_);
    tasks_.clear();
    apps_.clear();
    sched_.clear();
  }
  retry_latency_.clear();
}

void CounterSet::add(const std::string& name, std::uint64_t delta) {
  std::atomic<std::uint64_t>* counter = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
    counter = slot.get();
  }
  counter->fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t CounterSet::get(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->load(std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t> CounterSet::snapshot() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter->load(std::memory_order_relaxed));
  }
  return out;
}

json::Value CounterSet::to_json() const {
  json::Object out;
  for (const auto& [name, value] : snapshot()) {
    out.emplace(name, json::Value(value));
  }
  return out;
}

void CounterSet::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
}

}  // namespace cedr::trace
