#include "cedr/trace/report.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/metrics.h"

namespace cedr::trace {
namespace {

Report build_report(const std::vector<TaskRecord>& tasks,
                    const std::vector<AppRecord>& apps,
                    const std::vector<SchedRecord>& rounds) {
  Report report;

  for (const AppRecord& app : apps) {
    report.apps.push_back(Report::AppSummary{
        .instance_id = app.app_instance_id,
        .name = app.app_name,
        .arrival = app.arrival_time,
        .execution_time = app.execution_time(),
        .tasks = 0,
    });
    report.makespan = std::max(report.makespan, app.completion_time);
    report.avg_execution_time += app.execution_time();
  }
  if (!apps.empty()) {
    report.avg_execution_time /= static_cast<double>(apps.size());
  }
  std::sort(report.apps.begin(), report.apps.end(),
            [](const auto& a, const auto& b) { return a.arrival < b.arrival; });

  std::map<std::string, Report::PeSummary> pes;
  std::map<std::uint64_t, std::size_t> app_tasks;
  // (app instance, task) -> did any attempt succeed. A task is a terminal
  // failure only when every one of its attempts failed.
  std::map<std::pair<std::uint64_t, std::uint64_t>, bool> task_succeeded;
  double delay_total = 0.0;
  double service_total = 0.0;
  obs::QuantileHistogram delay_hist;
  obs::QuantileHistogram service_hist;
  for (const TaskRecord& task : tasks) {
    auto& pe = pes[task.pe_name];
    pe.name = task.pe_name;
    ++pe.tasks;
    pe.busy_time += task.service_time();
    report.makespan = std::max(report.makespan, task.end_time);
    delay_total += task.queue_delay();
    service_total += task.service_time();
    delay_hist.record(task.queue_delay() * 1e6);
    service_hist.record(task.service_time() * 1e6);
    report.queue_delay_max =
        std::max(report.queue_delay_max, task.queue_delay());
    ++app_tasks[task.app_instance_id];
    if (!task.ok) ++report.failed_attempts;
    if (task.attempt > 0) ++report.retried_attempts;
    task_succeeded[{task.app_instance_id, task.task_id}] |= task.ok;
  }
  for (const auto& [key, succeeded] : task_succeeded) {
    if (!succeeded) ++report.failed_tasks;
  }
  if (!tasks.empty()) {
    report.queue_delay_mean = delay_total / static_cast<double>(tasks.size());
    report.service_time_mean =
        service_total / static_cast<double>(tasks.size());
    report.queue_delay_p50 = delay_hist.quantile(0.50) / 1e6;
    report.queue_delay_p95 = delay_hist.quantile(0.95) / 1e6;
    report.queue_delay_p99 = delay_hist.quantile(0.99) / 1e6;
    report.service_time_p50 = service_hist.quantile(0.50) / 1e6;
    report.service_time_p95 = service_hist.quantile(0.95) / 1e6;
    report.service_time_p99 = service_hist.quantile(0.99) / 1e6;
  }
  for (auto& app : report.apps) {
    const auto it = app_tasks.find(app.instance_id);
    if (it != app_tasks.end()) app.tasks = it->second;
  }
  for (auto& [name, pe] : pes) {
    pe.utilization = report.makespan > 0.0 ? pe.busy_time / report.makespan : 0.0;
    report.pes.push_back(pe);
  }

  for (const SchedRecord& round : rounds) {
    report.total_sched_time += round.decision_time;
    report.max_ready_queue = std::max(report.max_ready_queue, round.ready_tasks);
  }
  report.sched_rounds = rounds.size();
  return report;
}

}  // namespace

Report summarize(const TraceLog& log) {
  Report report = build_report(log.tasks(), log.apps(), log.sched_rounds());
  report.retry_latency_count = log.retry_latency().count();
  report.retry_latency_mean = log.retry_latency().mean_seconds();
  return report;
}

namespace {

struct ParsedTrace {
  std::vector<TaskRecord> tasks;
  std::vector<AppRecord> apps;
  std::vector<SchedRecord> rounds;
};

StatusOr<ParsedTrace> parse_trace(const json::Value& doc) {
  if (!doc.is_object()) return InvalidArgument("trace document must be object");
  const json::Value* tasks = doc.find("tasks");
  const json::Value* apps = doc.find("apps");
  const json::Value* rounds = doc.find("sched_rounds");
  if (tasks == nullptr || !tasks->is_array() || apps == nullptr ||
      !apps->is_array() || rounds == nullptr || !rounds->is_array()) {
    return InvalidArgument(
        "trace document needs 'tasks', 'apps' and 'sched_rounds' arrays");
  }
  ParsedTrace out;
  out.tasks.reserve(tasks->as_array().size());
  for (const json::Value& row : tasks->as_array()) {
    out.tasks.push_back(TaskRecord{
        .app_instance_id =
            static_cast<std::uint64_t>(row.get_int("app_instance_id", 0)),
        .app_name = row.get_string("app_name", ""),
        .task_id = static_cast<std::uint64_t>(row.get_int("task_id", 0)),
        .kernel_name = row.get_string("kernel", ""),
        .pe_name = row.get_string("pe", "?"),
        .problem_size = static_cast<std::size_t>(row.get_int("size", 0)),
        .enqueue_time = row.get_double("enqueue", 0.0),
        .start_time = row.get_double("start", 0.0),
        .end_time = row.get_double("end", 0.0),
        .attempt = static_cast<std::uint32_t>(row.get_int("attempt", 0)),
        .ok = row.get_bool("ok", true),
    });
  }
  out.apps.reserve(apps->as_array().size());
  for (const json::Value& row : apps->as_array()) {
    out.apps.push_back(AppRecord{
        .app_instance_id =
            static_cast<std::uint64_t>(row.get_int("app_instance_id", 0)),
        .app_name = row.get_string("app_name", ""),
        .arrival_time = row.get_double("arrival", 0.0),
        .launch_time = row.get_double("launch", 0.0),
        .completion_time = row.get_double("completion", 0.0),
    });
  }
  out.rounds.reserve(rounds->as_array().size());
  for (const json::Value& row : rounds->as_array()) {
    out.rounds.push_back(SchedRecord{
        .time = row.get_double("time", 0.0),
        .ready_tasks = static_cast<std::size_t>(row.get_int("ready_tasks", 0)),
        .assigned = static_cast<std::size_t>(row.get_int("assigned", 0)),
        .decision_time = row.get_double("decision_time", 0.0),
    });
  }
  return out;
}

}  // namespace

StatusOr<Report> summarize_json(const json::Value& doc) {
  auto parsed = parse_trace(doc);
  if (!parsed.ok()) return parsed.status();
  Report report = build_report(parsed->tasks, parsed->apps, parsed->rounds);
  if (const json::Value* counters = doc.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      if (value.is_number()) {
        report.counters.emplace(name,
                                static_cast<std::uint64_t>(value.as_int()));
      }
    }
  }
  if (const json::Value* hist = doc.find("retry_latency");
      hist != nullptr && hist->is_object()) {
    report.retry_latency_count =
        static_cast<std::uint64_t>(hist->get_int("count", 0));
    const double total = hist->get_double("total_s", 0.0);
    report.retry_latency_mean =
        report.retry_latency_count > 0
            ? total / static_cast<double>(report.retry_latency_count)
            : 0.0;
  }
  return report;
}

StatusOr<Report> summarize_file(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc.ok()) return doc.status();
  return summarize_json(*doc);
}

std::string render_text(const Report& report) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "trace summary\n";
  out << "  makespan:            " << report.makespan * 1e3 << " ms\n";
  out << "  apps:                " << report.apps.size() << "\n";
  out << "  avg exec time/app:   " << report.avg_execution_time * 1e3
      << " ms\n";
  out << "  sched rounds:        " << report.sched_rounds
      << " (total decision time " << report.total_sched_time * 1e3
      << " ms, max ready queue " << report.max_ready_queue << ")\n";
  out << "  task queue delay:    mean " << report.queue_delay_mean * 1e3
      << " ms, max " << report.queue_delay_max * 1e3 << " ms\n";
  out << "  queue delay pcts:    p50 " << report.queue_delay_p50 * 1e3
      << " ms, p95 " << report.queue_delay_p95 * 1e3 << " ms, p99 "
      << report.queue_delay_p99 * 1e3 << " ms\n";
  out << "  task service time:   mean " << report.service_time_mean * 1e3
      << " ms, p50 " << report.service_time_p50 * 1e3 << " ms, p95 "
      << report.service_time_p95 * 1e3 << " ms, p99 "
      << report.service_time_p99 * 1e3 << " ms\n";
  // Fault-tolerance summary. The counter lines always print (0 when the run
  // was fault-free) so resilience dashboards can grep for them.
  const auto counter = [&report](const char* name,
                                 std::uint64_t fallback) -> std::uint64_t {
    const auto it = report.counters.find(name);
    return it != report.counters.end() ? it->second : fallback;
  };
  out << "\nfault tolerance\n";
  out << "  faults_injected:     " << counter("faults_injected", 0) << "\n";
  out << "  tasks_retried:       "
      << counter("tasks_retried", report.retried_attempts) << "\n";
  out << "  pes_quarantined:     " << counter("pes_quarantined", 0) << "\n";
  out << "  pes_reinstated:      " << counter("pes_reinstated", 0) << "\n";
  out << "  tasks_failed:        "
      << counter("tasks_failed", report.failed_tasks) << "\n";
  if (report.retry_latency_count > 0) {
    out << "  retry latency:       " << report.retry_latency_count
        << " recovered tasks, mean " << report.retry_latency_mean * 1e3
        << " ms first-enqueue to success\n";
  }
  out << "\napplications (by arrival)\n";
  for (const auto& app : report.apps) {
    out << "  #" << app.instance_id << " " << app.name << ": arrival "
        << app.arrival * 1e3 << " ms, exec " << app.execution_time * 1e3
        << " ms, " << app.tasks << " tasks\n";
  }
  out << "\nprocessing elements\n";
  for (const auto& pe : report.pes) {
    out << "  " << pe.name << ": " << pe.tasks << " tasks, busy "
        << pe.busy_time * 1e3 << " ms, utilization "
        << pe.utilization * 100.0 << "%\n";
  }
  return out.str();
}

std::string render_gantt(const TraceLog& log, std::size_t width) {
  const auto tasks = log.tasks();
  if (tasks.empty() || width == 0) return "(no tasks)\n";
  double t_end = 0.0;
  std::set<std::string> pe_names;
  for (const TaskRecord& task : tasks) {
    t_end = std::max(t_end, task.end_time);
    pe_names.insert(task.pe_name);
  }
  if (t_end <= 0.0) return "(no tasks)\n";

  std::ostringstream out;
  for (const std::string& pe : pe_names) {
    std::string row(width, '.');
    for (const TaskRecord& task : tasks) {
      if (task.pe_name != pe) continue;
      auto to_col = [&](double t) {
        return std::min(width - 1, static_cast<std::size_t>(
                                       t / t_end * static_cast<double>(width)));
      };
      const std::size_t lo = to_col(task.start_time);
      const std::size_t hi = to_col(task.end_time);
      const char mark = "0123456789abcdef"[task.app_instance_id % 16];
      for (std::size_t c = lo; c <= hi; ++c) row[c] = mark;
    }
    out << "  " << pe;
    for (std::size_t pad = pe.size(); pad < 8; ++pad) out << ' ';
    out << '|' << row << "|\n";
  }
  out << "  (columns span 0.." << t_end * 1e3
      << " ms; digits are app instance ids mod 16)\n";
  return out.str();
}

StatusOr<json::Value> chrome_trace_from_trace_json(const json::Value& doc) {
  auto parsed = parse_trace(doc);
  if (!parsed.ok()) return parsed.status();

  // PE name -> tid, following the live-trace convention (tid 0 = main loop,
  // tid 1+i = PE), with PEs ordered by name for determinism.
  std::set<std::string> pe_names;
  for (const TaskRecord& task : parsed->tasks) pe_names.insert(task.pe_name);
  std::map<std::string, std::uint64_t> pe_tid;
  std::vector<obs::TrackName> tracks;
  tracks.push_back({.pid = 0, .is_process = true, .name = "cedr runtime"});
  tracks.push_back({.pid = 0, .tid = 0, .name = "main loop"});
  for (const std::string& name : pe_names) {
    const std::uint64_t tid = 1 + pe_tid.size();
    pe_tid.emplace(name, tid);
    tracks.push_back({.pid = 0, .tid = tid, .name = name});
  }
  for (const AppRecord& app : parsed->apps) {
    tracks.push_back(
        {.pid = 1 + app.app_instance_id,
         .is_process = true,
         .name = app.app_name + " #" + std::to_string(app.app_instance_id)});
  }

  std::vector<obs::SpanEvent> events;
  events.reserve(parsed->tasks.size() * 3 + parsed->apps.size() * 2 +
                 parsed->rounds.size());
  for (const TaskRecord& task : parsed->tasks) {
    const std::uint64_t tid = pe_tid[task.pe_name];
    // One flow per execution attempt: enqueue (on the app's process row)
    // -> execute (on the PE row). Retries re-enqueue, so the attempt index
    // keeps flow ids unique per attempt.
    const std::uint64_t flow_id = (task.task_id << 8) | task.attempt;
    obs::SpanEvent begin;
    begin.kind = obs::EventKind::kFlowBegin;
    begin.category = obs::Category::kApp;
    begin.set_name(task.kernel_name.c_str());
    begin.ts = task.enqueue_time;
    begin.pid = 1 + task.app_instance_id;
    begin.tid = 0;
    begin.flow_id = flow_id;
    events.push_back(begin);

    obs::SpanEvent end = begin;
    end.kind = obs::EventKind::kFlowEnd;
    end.category = obs::Category::kWorker;
    end.set_name("execute");
    end.ts = task.start_time;
    end.pid = 0;
    end.tid = tid;
    events.push_back(end);

    obs::SpanEvent span;
    span.kind = obs::EventKind::kComplete;
    span.category = obs::Category::kWorker;
    span.set_name(task.kernel_name.c_str());
    span.ts = task.start_time;
    span.dur = task.service_time();
    span.pid = 0;
    span.tid = tid;
    span.arg0_name = "attempt";
    span.arg0 = task.attempt;
    span.arg1_name = "ok";
    span.arg1 = task.ok ? 1.0 : 0.0;
    events.push_back(span);
  }
  for (const AppRecord& app : parsed->apps) {
    obs::SpanEvent arrival;
    arrival.kind = obs::EventKind::kInstant;
    arrival.category = obs::Category::kApp;
    arrival.set_name("app_arrival");
    arrival.ts = app.arrival_time;
    arrival.pid = 1 + app.app_instance_id;
    events.push_back(arrival);

    obs::SpanEvent complete = arrival;
    complete.set_name("app_complete");
    complete.ts = app.completion_time;
    complete.arg0_name = "exec_time_s";
    complete.arg0 = app.execution_time();
    events.push_back(complete);
  }
  for (const SchedRecord& round : parsed->rounds) {
    obs::SpanEvent span;
    span.kind = obs::EventKind::kComplete;
    span.category = obs::Category::kSched;
    span.set_name("sched");
    span.ts = round.time;
    span.dur = round.decision_time;
    span.pid = 0;
    span.tid = 0;
    span.arg0_name = "ready";
    span.arg0 = static_cast<double>(round.ready_tasks);
    span.arg1_name = "assigned";
    span.arg1 = static_cast<double>(round.assigned);
    events.push_back(span);
  }
  return obs::chrome_trace_json(events, tracks);
}

}  // namespace cedr::trace
