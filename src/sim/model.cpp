#include "cedr/sim/model.h"

#include <algorithm>
#include <cmath>

namespace cedr::sim {
namespace {

constexpr std::size_t kCfloatBytes = 8;

/// Average cost-model estimate of one invocation of `seg` across the PEs of
/// `platform` that support it (mirrors sched::average_execution).
double avg_exec(const SimSegment& seg,
                const platform::PlatformConfig& platform) {
  if (seg.kind == SimSegment::Kind::kCpuGlue) return seg.glue_work_s;
  double total = 0.0;
  std::size_t supported = 0;
  for (const platform::PeDescriptor& pe : platform.pes) {
    const double est = platform.costs.estimate(seg.kernel, pe.cls,
                                               seg.problem_size, seg.data_bytes);
    if (std::isfinite(est)) {
      total += est;
      ++supported;
    }
  }
  return supported == 0 ? 0.0 : total / static_cast<double>(supported);
}

}  // namespace

std::size_t SimApp::dag_task_count() const noexcept {
  std::size_t n = 0;
  for (const SimSegment& seg : segments) {
    n += seg.kind == SimSegment::Kind::kCpuGlue ? 1 : seg.count;
  }
  return n;
}

std::size_t SimApp::kernel_call_count() const noexcept {
  std::size_t n = 0;
  for (const SimSegment& seg : segments) {
    if (seg.kind == SimSegment::Kind::kKernelBatch) n += seg.count;
  }
  return n;
}

std::vector<double> SimApp::segment_ranks(
    const platform::PlatformConfig& platform) const {
  std::vector<double> ranks(segments.size(), 0.0);
  double below = 0.0;
  for (std::size_t i = segments.size(); i-- > 0;) {
    ranks[i] = avg_exec(segments[i], platform) + below;
    below = ranks[i];
  }
  return ranks;
}

SimApp make_pulse_doppler_model(bool nonblocking) {
  // 128 pulses x 256 samples (§III: 256-point FFTs, 512 transforms/frame).
  constexpr std::size_t kPulses = 128;
  constexpr std::size_t kSamples = 256;
  SimApp app;
  app.name = "PD";
  // Frame: the slow-time/fast-time cube of complex samples.
  app.frame_mbits =
      static_cast<double>(kPulses * kSamples * kCfloatBytes * 8) / 1e6;
  // Ingest + chirp reference (glue), then the processing chain.
  app.segments.push_back(SimSegment::glue(1.5e-3));
  app.segments.push_back(SimSegment::batch(platform::KernelId::kFft, kSamples,
                                           2 * kSamples * kCfloatBytes,
                                           kPulses, nonblocking));
  app.segments.push_back(SimSegment::batch(platform::KernelId::kZip, kSamples,
                                           3 * kSamples * kCfloatBytes,
                                           kPulses, nonblocking));
  app.segments.push_back(SimSegment::batch(platform::KernelId::kIfft, kSamples,
                                           2 * kSamples * kCfloatBytes,
                                           kPulses, nonblocking));
  // Corner turn.
  app.segments.push_back(SimSegment::glue(2.5e-3));
  // Doppler FFTs across pulses, one per range bin.
  app.segments.push_back(SimSegment::batch(platform::KernelId::kFft, kPulses,
                                           2 * kPulses * kCfloatBytes,
                                           kSamples, nonblocking));
  // Peak search.
  app.segments.push_back(SimSegment::glue(1.5e-3));
  return app;
}

SimApp make_wifi_tx_model(bool nonblocking) {
  // 100 packets of 64 bits; one 128-point IFFT each (§III).
  constexpr std::size_t kPackets = 100;
  constexpr std::size_t kOfdm = 128;
  SimApp app;
  app.name = "TX";
  app.frame_mbits =
      static_cast<double>(kPackets * kOfdm * kCfloatBytes * 8) / 1e6;
  // Per-packet baseband glue (scramble/encode/interleave/modulate) is
  // serialized with its IFFT in the real application; modeled as
  // glue-then-batch pairs in packet groups to keep the segment chain short
  // while preserving task counts.
  constexpr std::size_t kGroup = 10;
  for (std::size_t g = 0; g < kPackets / kGroup; ++g) {
    app.segments.push_back(SimSegment::glue(kGroup * 200e-6));
    app.segments.push_back(SimSegment::batch(platform::KernelId::kIfft, kOfdm,
                                             2 * kOfdm * kCfloatBytes,
                                             kGroup, nonblocking));
  }
  app.segments.push_back(SimSegment::glue(600e-6));
  return app;
}

SimApp make_lane_detection_model(std::size_t scale, bool nonblocking) {
  // 960x540 frame, frequency-domain convolution with 1024-point transforms;
  // the paper's pipeline reaches 16384 FFTs and 8192 IFFTs per frame.
  scale = std::max<std::size_t>(1, scale);
  constexpr std::size_t kN = 1024;
  constexpr std::size_t kFftTotal = 16384;
  constexpr std::size_t kIfftTotal = 8192;
  constexpr std::size_t kZipTotal = 4096;
  SimApp app;
  app.name = "LD";
  app.frame_mbits = 960.0 * 540.0 * 24 / 1e6;  // RGB frame

  const std::size_t ffts = kFftTotal / scale;
  const std::size_t iffts = kIfftTotal / scale;
  const std::size_t zips = kZipTotal / scale;
  // The pipeline alternates forward passes, pointwise products and inverse
  // passes across its filter stack; modeled as `kStages` repeated stages.
  constexpr std::size_t kStages = 8;
  app.segments.push_back(SimSegment::glue(3.5e-3));  // grayscale + padding
  for (std::size_t s = 0; s < kStages; ++s) {
    app.segments.push_back(SimSegment::batch(platform::KernelId::kFft, kN,
                                             2 * kN * kCfloatBytes,
                                             ffts / kStages, nonblocking));
    app.segments.push_back(SimSegment::batch(platform::KernelId::kZip, kN,
                                             3 * kN * kCfloatBytes,
                                             std::max<std::size_t>(
                                                 1, zips / kStages),
                                             nonblocking));
    app.segments.push_back(SimSegment::batch(platform::KernelId::kIfft, kN,
                                             2 * kN * kCfloatBytes,
                                             iffts / kStages, nonblocking));
    app.segments.push_back(SimSegment::glue(1.8e-3));  // corner turns
  }
  // Sobel + Hough + lane fit.
  app.segments.push_back(SimSegment::glue(2.5e-3));
  return app;
}

}  // namespace cedr::sim
