#include "cedr/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <unordered_map>
#include <limits>

// Define CEDR_SIM_DEBUG_QUIESCE to dump scheduler/worker/instance state when
// the virtual clock quiesces with unfinished applications (stall triage).
#ifdef CEDR_SIM_DEBUG_QUIESCE
#include <cstdio>
#endif

#include "cedr/common/stopwatch.h"
#include "cedr/sched/frontier.h"
#include "cedr/sched/ready_queue.h"
#include "cedr/sched/scheduler.h"

namespace cedr::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

/// Per-round ceiling on the lookahead window, matching the threaded
/// runtime's cap (src/runtime/dispatch.cpp): bounds the O(W^2) HEFT_LA
/// placement cost however deep the visible DAG is.
constexpr std::size_t kMaxLookaheadTasks = 512;

/// Reference-core nanoseconds per second of glue work (GENERIC problem
/// size is expressed in ~1 GHz reference nanoseconds).
constexpr double kGenericUnitsPerSecond = 1e9;

/// One schedulable task inside the emulator.
struct SimTask {
  std::uint64_t key = 0;
  std::size_t instance = 0;
  std::size_t segment = 0;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t size = 0;
  std::size_t bytes = 0;
  double rank = 0.0;
  double ready_time = 0.0;
  std::uint32_t class_mask = 0xffffffffu;
  // Fault-tolerance state.
  std::uint32_t attempt = 0;            ///< retries so far
  std::uint32_t failed_class_mask = 0;  ///< classes that already failed it
};

/// One application instance.
struct Instance {
  const SimApp* model = nullptr;
  double arrival = 0.0;
  double launch = -1.0;
  double completion = -1.0;
  std::size_t segment = 0;
  std::size_t outstanding = 0;
  std::size_t serial_issued = 0;
  /// HEFT upward ranks, shared across every instance of the same SimApp
  /// (the emulator's analogue of the runtime's per-descriptor DagPlan
  /// cache, docs/runtime_lifecycle.md): ranks depend only on the model and
  /// platform, so they are computed once per model, not once per arrival.
  std::shared_ptr<const std::vector<double>> ranks;
  bool terminated = false;

  // API-mode application thread.
  enum class TState { kNotStarted, kGlue, kIssue, kWakeWait, kWake, kBlocked, kFinished };
  TState tstate = TState::kNotStarted;
  double thread_remaining = 0.0;
  double wake_at = 0.0;  ///< absolute resume time while in kWakeWait

  [[nodiscard]] bool thread_runnable() const noexcept {
    return (tstate == TState::kGlue || tstate == TState::kIssue ||
            tstate == TState::kWake) &&
           thread_remaining > 0.0;
  }
};

/// One PE's worker (CPU) or accelerator-management thread.
struct Worker {
  std::size_t pe_index = 0;
  platform::PeClass cls = platform::PeClass::kCpu;
  double speed = 1.0;
  std::deque<SimTask> fifo;
  bool busy = false;
  SimTask current{};
  double remaining = 0.0;
  double started = 0.0;  ///< virtual time the current task began executing
  double busy_work = 0.0;
  // Fault-tolerance state (mirrors the threaded runtime's Worker health).
  bool current_faulted = false;  ///< the in-flight execution will fail
  std::uint32_t consecutive_faults = 0;
  bool quarantined = false;
  bool probe_inflight = false;
  double probe_at = 0.0;
};

/// A main-thread management work item.
struct MgmtEvent {
  enum class Kind { kArrival, kCompletion, kTerminate };
  Kind kind = Kind::kCompletion;
  std::size_t instance = 0;
};

class Engine {
 public:
  Engine(const SimConfig& config, std::span<const Arrival> arrivals)
      : config_(config),
        cores_(static_cast<double>(config.platform.total_app_cores)),
        ready_(config.sched_lock_wait_us) {
    // Application-thread work (glue, call issue, condvar wake) runs on the
    // platform's CPU cores: scale reference-core durations by the
    // platform's GENERIC cost (seconds per reference nanosecond * 1e9).
    cpu_speed_factor_ = config_.platform.costs
                            .get(platform::KernelId::kGeneric,
                                 platform::PeClass::kCpu)
                            .per_point_s * 1e9;
    if (cpu_speed_factor_ <= 0.0) cpu_speed_factor_ = 1.0;
    arrivals_.assign(arrivals.begin(), arrivals.end());
    std::stable_sort(arrivals_.begin(), arrivals_.end(),
                     [](const Arrival& a, const Arrival& b) {
                       return a.time < b.time;
                     });
    for (std::size_t i = 0; i < config_.platform.pes.size(); ++i) {
      Worker w;
      w.pe_index = i;
      w.cls = config_.platform.pes[i].cls;
      w.speed = config_.platform.pes[i].speed_factor;
      workers_.push_back(std::move(w));
    }
    pe_available_.assign(workers_.size(), 0.0);
    for (const Worker& w : workers_) {
      present_classes_ |= 1u << static_cast<unsigned>(w.cls);
    }
  }

  StatusOr<SimMetrics> run() {
    CEDR_RETURN_IF_ERROR(config_.platform.validate());
    CEDR_RETURN_IF_ERROR(config_.faults.validate());
    auto scheduler = sched::make_scheduler(config_.scheduler);
    if (!scheduler.ok()) return scheduler.status();
    scheduler_ = *std::move(scheduler);
    // Same detection the threaded runtime uses (src/runtime/runtime.cpp):
    // lookahead rounds only for schedulers that can place a whole window.
    lookahead_ = dynamic_cast<sched::LookaheadScheduler*>(scheduler_.get());
    sched_span_name_ = "sched " + config_.scheduler;
    if (tr() != nullptr) {
      tr()->instant(obs::Category::kRuntime, "runtime_start", 0, 0, now_);
    }
    if (!config_.faults.empty()) {
      injector_ = std::make_unique<platform::FaultInjector>(
          config_.faults, config_.platform.pes);
    }

    std::size_t stall_iters = 0;
    while (true) {
      maybe_start_main();
      const double t_next = next_event_time();
      if (t_next == kInf) break;
      if (t_next > config_.max_virtual_time_s) {
        return Aborted("virtual clock passed the simulation horizon");
      }
      if (t_next <= now_) {
        if (++stall_iters > 10'000'000) {
#ifdef CEDR_SIM_DEBUG_QUIESCE
          std::fprintf(stderr,
                       "[stall] now=%g ready=%zu deferred=%zu mgmt=%zu "
                       "main_busy=%d dirty=%d next_round=%g\n",
                       now_, ready_.size(), deferred_.size(), mgmt_.size(),
                       main_busy_ ? 1 : 0, queue_dirty_ ? 1 : 0,
                       next_round_allowed_);
          for (const Worker& w : workers_) {
            std::fprintf(
                stderr,
                "[stall] pe%zu busy=%d rem=%g fifo=%zu q=%d inflight=%d "
                "probe_at=%g\n",
                w.pe_index, w.busy ? 1 : 0, w.remaining, w.fifo.size(),
                w.quarantined ? 1 : 0, w.probe_inflight ? 1 : 0, w.probe_at);
          }
          for (std::size_t i = 0; i < instances_.size(); ++i) {
            const Instance& inst = instances_[i];
            if (inst.terminated) continue;
            std::fprintf(stderr,
                         "[stall] inst%zu seg=%zu outstanding=%zu tstate=%d "
                         "thread_rem=%g\n",
                         i, inst.segment, inst.outstanding,
                         static_cast<int>(inst.tstate), inst.thread_remaining);
          }
#endif
          return Internal("simulation event loop stalled at a frozen clock");
        }
      } else {
        stall_iters = 0;
      }
      advance_to(t_next);
      fire_events();
    }
    if (instances_.empty() ||
        std::any_of(instances_.begin(), instances_.end(),
                    [](const Instance& i) { return !i.terminated; })) {
#ifdef CEDR_SIM_DEBUG_QUIESCE
      std::fprintf(stderr,
                   "[quiesce] now=%g ready=%zu deferred=%zu mgmt=%zu "
                   "main_busy=%d dirty=%d next_round=%g\n",
                   now_, ready_.size(), deferred_.size(), mgmt_.size(),
                   main_busy_ ? 1 : 0, queue_dirty_ ? 1 : 0,
                   next_round_allowed_);
      for (const Worker& w : workers_) {
        std::fprintf(stderr,
                     "[quiesce] pe%zu busy=%d fifo=%zu q=%d probe_inflight=%d "
                     "probe_at=%g consec=%u\n",
                     w.pe_index, w.busy ? 1 : 0, w.fifo.size(),
                     w.quarantined ? 1 : 0, w.probe_inflight ? 1 : 0,
                     w.probe_at, w.consecutive_faults);
      }
      for (std::size_t i = 0; i < instances_.size(); ++i) {
        const Instance& inst = instances_[i];
        if (inst.terminated) continue;
        std::fprintf(stderr,
                     "[quiesce] inst%zu seg=%zu outstanding=%zu tstate=%d "
                     "thread_rem=%g launch=%g\n",
                     i, inst.segment, inst.outstanding,
                     static_cast<int>(inst.tstate), inst.thread_remaining,
                     inst.launch);
      }
#endif
      return Internal("simulation quiesced with unfinished applications");
    }
    if (tr() != nullptr) {
      tr()->instant(obs::Category::kRuntime, "runtime_shutdown", 0, 0, now_);
    }
    return collect_metrics();
  }

 private:
  /// Span sink, nullptr when tracing is off. Kept short: it guards every
  /// emission site.
  [[nodiscard]] obs::SpanTracer* tr() const noexcept { return config_.tracer; }

  // ---- time base -----------------------------------------------------

  [[nodiscard]] std::size_t runnable_pool_count() const noexcept {
    std::size_t n = 0;
    for (const Worker& w : workers_) n += w.busy ? 1 : 0;
    for (const Instance& inst : instances_) n += inst.thread_runnable() ? 1 : 0;
    return n;
  }

  /// Runnable threads plus the background-load equivalent of live (spawned,
  /// unfinished) API application threads.
  [[nodiscard]] double effective_load() const noexcept {
    double n = static_cast<double>(runnable_pool_count());
    if (config_.model == ProgrammingModel::kApiBased) {
      std::size_t live = 0;
      for (const Instance& inst : instances_) {
        live += (inst.launch >= 0.0 && !inst.terminated) ? 1 : 0;
      }
      n += config_.costs.thread_noise * static_cast<double>(live);
    }
    return n;
  }

  [[nodiscard]] double pool_rate(double load) const noexcept {
    if (load <= 0.0) return 1.0;
    const double share = std::min(1.0, cores_ / load);
    const double excess = std::max(0.0, load - cores_);
    // Oversubscription wastes real cycles on switching/cache refills.
    return share / (1.0 + config_.costs.oversubscription_penalty * excess);
  }

  [[nodiscard]] double next_event_time() const noexcept {
    double t = kInf;
    if (arrival_idx_ < arrivals_.size()) {
      t = std::min(t, arrivals_[arrival_idx_].time);
    }
    if (main_busy_) t = std::min(t, now_ + main_remaining_);
    if (!main_busy_ && mgmt_.empty() && queue_dirty_ && ready_.size() != 0) {
      t = std::min(t, std::max(now_, next_round_allowed_));
    }
    for (const Instance& inst : instances_) {
      if (inst.tstate == Instance::TState::kWakeWait) {
        t = std::min(t, inst.wake_at);
      }
    }
    // Deferred retries become ready when their backoff elapses; probe
    // windows of quarantined PEs re-open the scheduler for queued work.
    for (const auto& [release_at, task] : deferred_) {
      t = std::min(t, std::max(now_, release_at));
    }
    // A probe window opening is only an event in that it lets a scheduling
    // round start, so it carries the round's own preconditions: main thread
    // idle, no queued mgmt work, and the round-rate gate. Without those
    // floors this clause keeps returning now_ while the round cannot run
    // and the event loop spins at a frozen virtual time.
    if (!main_busy_ && mgmt_.empty() && ready_.size() != 0) {
      for (const Worker& w : workers_) {
        if (w.quarantined && !w.probe_inflight) {
          t = std::min(t, std::max(std::max(now_, w.probe_at),
                                   next_round_allowed_));
        }
      }
    }
    const std::size_t runnable = runnable_pool_count();
    if (runnable > 0) {
      const double rate = pool_rate(effective_load());
      for (const Worker& w : workers_) {
        if (w.busy) t = std::min(t, now_ + w.remaining / rate);
      }
      for (const Instance& inst : instances_) {
        if (inst.thread_runnable()) {
          t = std::min(t, now_ + inst.thread_remaining / rate);
        }
      }
    }
    return t;
  }

  void advance_to(double t) noexcept {
    const double dt = std::max(0.0, t - now_);
    if (dt > 0.0) {
      if (main_busy_) main_remaining_ -= dt;
      const double rate = pool_rate(effective_load());
      for (Worker& w : workers_) {
        if (w.busy) {
          w.remaining -= rate * dt;
          w.busy_work += rate * dt;
        }
      }
      for (Instance& inst : instances_) {
        if (inst.thread_runnable()) inst.thread_remaining -= rate * dt;
      }
    }
    now_ = t;
  }

  std::shared_ptr<const std::vector<double>> ranks_for(const SimApp* app) {
    auto it = rank_cache_.find(app);
    if (it != rank_cache_.end()) return it->second;
    auto ranks = std::make_shared<const std::vector<double>>(
        app->segment_ranks(config_.platform));
    rank_cache_.emplace(app, ranks);
    return ranks;
  }

  void fire_events() {
    // Arrivals whose time has come.
    while (arrival_idx_ < arrivals_.size() &&
           arrivals_[arrival_idx_].time <= now_ + kEps) {
      const Arrival& a = arrivals_[arrival_idx_++];
      Instance inst;
      inst.model = a.app;
      inst.arrival = now_;
      inst.ranks = ranks_for(a.app);
      instances_.push_back(std::move(inst));
      mgmt_.push_back(MgmtEvent{MgmtEvent::Kind::kArrival,
                                instances_.size() - 1});
      if (tr() != nullptr) {
        tr()->instant(obs::Category::kApp, "app_arrival",
                      1 + (instances_.size() - 1), 0, now_, "tasks",
                      static_cast<double>(a.app->dag_task_count()));
      }
    }
    // Deferred retries whose backoff has elapsed re-enter the ready queue.
    // The re-push recomputes the effective class mask, so the retry's
    // failed-class narrowing takes effect on its new shard placement.
    if (!deferred_.empty()) {
      std::vector<std::pair<double, SimTask>> still_waiting;
      for (auto& [release_at, task] : deferred_) {
        if (release_at <= now_ + kEps) {
          task.ready_time = now_;
          push_ready(std::move(task));
        } else {
          still_waiting.emplace_back(release_at, std::move(task));
        }
      }
      deferred_ = std::move(still_waiting);
    }
    // A quarantined PE whose probe window just opened makes queued work
    // schedulable again.
    if (ready_.size() != 0) {
      for (const Worker& w : workers_) {
        if (w.quarantined && !w.probe_inflight && w.probe_at <= now_ + kEps) {
          queue_dirty_ = true;
        }
      }
    }
    // Worker completions.
    for (Worker& w : workers_) {
      if (w.busy && w.remaining <= kEps) complete_worker_task(w);
    }
    // Wake-wait timers: the woken thread finally gets a timeslice.
    for (Instance& inst : instances_) {
      if (inst.tstate == Instance::TState::kWakeWait &&
          inst.wake_at <= now_ + kEps) {
        inst.tstate = Instance::TState::kWake;
        inst.thread_remaining =
            std::max(config_.costs.wake_overhead * cpu_speed_factor_, 1e-9);
      }
    }
    // Application-thread step completions.
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      Instance& inst = instances_[i];
      if ((inst.tstate == Instance::TState::kGlue ||
           inst.tstate == Instance::TState::kIssue ||
           inst.tstate == Instance::TState::kWake) &&
          inst.thread_remaining <= kEps) {
        app_thread_step_done(i);
      }
    }
    // Main-thread work-item completion.
    if (main_busy_ && main_remaining_ <= kEps) complete_main_item();
  }

  // ---- ready queue & dispatch -----------------------------------------

  [[nodiscard]] std::uint32_t class_mask_for(platform::KernelId kernel,
                                             std::size_t size) const noexcept {
    std::uint32_t mask = 0;
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      const auto cls = static_cast<platform::PeClass>(c);
      if (!platform::pe_class_supports(cls, kernel)) continue;
      // The ZCU102 FFT IP caps at 2048 points (paper §III).
      if (cls == platform::PeClass::kFftAccel && size > 2048) continue;
      mask |= 1u << c;
    }
    return mask;
  }

  /// The mask the scheduler sees: implementation classes, narrowed by the
  /// classes that already failed this task — unless that would leave no
  /// class present on the platform (the retry must stay schedulable).
  /// Computed at push time: retry state only changes while the task is out
  /// of the queue, so this equals the legacy per-round computation.
  [[nodiscard]] std::uint32_t effective_mask(
      const SimTask& t) const noexcept {
    std::uint32_t mask = t.class_mask;
    if (t.failed_class_mask != 0) {
      const std::uint32_t narrowed = mask & ~t.failed_class_mask;
      if ((narrowed & present_classes_) != 0) mask = narrowed;
    }
    return mask;
  }

  /// Routes one task into the sharded ready queue — the same component the
  /// threaded runtime dispatches from (docs/scheduling.md).
  void push_ready(SimTask task) {
    const sched::ReadyTask view{
        .task_key = task.key,
        .app_instance_id = task.instance,
        .kernel = task.kernel,
        .problem_size = task.size,
        .data_bytes = task.bytes,
        .ready_time = task.ready_time,
        .rank = task.rank,
        .class_mask = effective_mask(task),
    };
    ready_.push(view, std::make_shared<SimTask>(std::move(task)));
    max_ready_ = std::max(max_ready_, ready_.size());
    queue_dirty_ = true;
  }

  void push_segment_tasks(std::size_t instance_idx, std::size_t segment) {
    Instance& inst = instances_[instance_idx];
    const SimSegment& seg = inst.model->segments[segment];
    const double rank = (*inst.ranks)[segment];
    auto push_one = [&](platform::KernelId kernel, std::size_t size,
                        std::size_t bytes, std::size_t ordinal) {
      const std::uint64_t key = next_key_++;
      SimTask task{
          .key = key,
          .instance = instance_idx,
          .segment = segment,
          .kernel = kernel,
          .size = size,
          .bytes = bytes,
          .rank = rank,
          .ready_time = now_,
          .class_mask = class_mask_for(kernel, size),
      };
      if (tr() != nullptr) {
        tr()->flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                   platform::kernel_name(kernel).data(), 1 + instance_idx, 0,
                   now_, key);
      }
      // A fresh reservation from an earlier lookahead round short-circuits
      // the ready queue: the placement was already decided, so the task goes
      // straight to its reserved PE with no further scheduling round — the
      // same honor path as the threaded runtime (src/runtime/ready_state.cpp).
      if (lookahead_ != nullptr && !reservations_.empty()) {
        const auto it = reservations_.find(
            reservation_key(instance_idx, segment, ordinal));
        if (it != reservations_.end()) {
          const SimReservation entry = it->second;
          reservations_.erase(it);
          const bool fresh = entry.epoch == reservation_epoch_ &&
                             !workers_[entry.pe_index].quarantined;
          if (fresh) {
            ++reservation_hits_;
            pe_available_[entry.pe_index] = std::max(
                pe_available_[entry.pe_index], entry.predicted_finish);
            if (tr() != nullptr) {
              tr()->flow(obs::EventKind::kFlowStep, obs::Category::kSched,
                         "dispatch_reserved", 0, 0, now_, key);
            }
            dispatch_to_worker(entry.pe_index, std::move(task));
            return;
          }
          ++reservation_stale_;
        }
      }
      push_ready(std::move(task));
    };
    if (seg.kind == SimSegment::Kind::kCpuGlue) {
      push_one(platform::KernelId::kGeneric,
               static_cast<std::size_t>(seg.glue_work_s *
                                        kGenericUnitsPerSecond),
               0, 0);
      inst.outstanding = 1;
    } else {
      for (std::size_t i = 0; i < seg.count; ++i) {
        push_one(seg.kernel, seg.problem_size, seg.data_bytes, i);
      }
      inst.outstanding = seg.count;
    }
  }

  void dispatch_to_worker(std::size_t pe_index, SimTask task) {
    Worker& w = workers_[pe_index];
    w.fifo.push_back(std::move(task));
    if (!w.busy) start_next_on_worker(w);
  }

  void start_next_on_worker(Worker& w) {
    if (w.fifo.empty()) return;
    w.current = std::move(w.fifo.front());
    w.fifo.pop_front();
    w.busy = true;
    w.started = now_;
    w.current_faulted = false;
    if (config_.queue_delay_us != nullptr) {
      config_.queue_delay_us->record((now_ - w.current.ready_time) * 1e6);
    }
    if (tr() != nullptr) {
      tr()->flow(obs::EventKind::kFlowEnd, obs::Category::kWorker, "execute",
                 0, 1 + w.pe_index, now_, w.current.key);
    }
    w.remaining = config_.platform.costs.estimate(
                      w.current.kernel, w.cls, w.current.size,
                      w.current.bytes) /
                  w.speed;
    if (!std::isfinite(w.remaining)) {
      // Defensive: the scheduler never assigns unsupported pairs.
      w.remaining = 1e-6;
    }
    if (w.cls != platform::PeClass::kCpu) {
      // Management-thread occupancy: DMA staging + busy-polling keeps the
      // thread runnable for a multiple of the isolated estimate.
      w.remaining *= config_.costs.accel_occupancy;
    }
    if (config_.model == ProgrammingModel::kApiBased) {
      // Each API call ends with a condvar signal to the sleeping
      // application thread, paid by this worker.
      w.remaining += config_.costs.signal_overhead * cpu_speed_factor_;
    }
    if (injector_ != nullptr) {
      // Same deterministic per-PE streams as the threaded runtime: the
      // decision depends only on (seed, PE name, per-PE task ordinal).
      const platform::FaultDecision fault = injector_->next(w.pe_index);
      const platform::FaultPolicy& policy = config_.faults.policy;
      switch (fault.kind) {
        case platform::FaultKind::kNone:
          break;
        case platform::FaultKind::kTransientFail:
          ++faults_injected_;
          w.current_faulted = true;  // full execution, failure at the end
          break;
        case platform::FaultKind::kLatencySpike:
          ++faults_injected_;
          w.remaining += fault.duration_s;
          break;
        case platform::FaultKind::kDeviceHang:
          // The worker busy-polls the wedged device until the watchdog (or
          // the task deadline) fires, then reports failure.
          ++faults_injected_;
          w.current_faulted = true;
          w.remaining = std::min(fault.duration_s, policy.task_timeout_s);
          break;
      }
    }
  }

  void complete_worker_task(Worker& w) {
    SimTask task = w.current;
    const bool faulted = w.current_faulted;
    const double started = w.started;
    w.busy = false;
    w.current_faulted = false;
    ++tasks_executed_;
    if (config_.service_time_us != nullptr) {
      config_.service_time_us->record((now_ - started) * 1e6);
    }
    if (tr() != nullptr) {
      tr()->complete_span(obs::Category::kWorker,
                          platform::kernel_name(task.kernel).data(), 0,
                          1 + w.pe_index, started, now_ - started, "attempt",
                          static_cast<double>(task.attempt), "ok",
                          faulted ? 0.0 : 1.0);
    }
    // Mirror the threaded runtime's worker_loop: successful executions feed
    // the online cost estimator with their measured (virtual) service time.
    if (config_.adapt != nullptr && !faulted) {
      config_.adapt->observe(task.kernel, w.cls, task.size, task.bytes,
                             now_ - started);
    }
    start_next_on_worker(w);
    // Under fault injection a scheduling round can legitimately leave work
    // queued (every capable PE quarantined, or a probe already in flight
    // absorbed the only admitted slot). Any completion changes PE health /
    // availability, so re-arm the scheduler if work is still waiting.
    if (injector_ != nullptr && ready_.size() != 0) queue_dirty_ = true;

    const platform::FaultPolicy& policy = config_.faults.policy;
    if (faulted) {
      if (tr() != nullptr) {
        tr()->instant(obs::Category::kFault, "fault", 0, 1 + w.pe_index, now_,
                      "attempt", static_cast<double>(task.attempt));
      }
      // PE health bookkeeping, mirroring the threaded runtime.
      if (w.quarantined) {
        w.probe_inflight = false;
        w.probe_at = now_ + policy.probe_period_s;  // failed probe
        if (tr() != nullptr) {
          tr()->instant(obs::Category::kFault, "probe_failed", 0,
                        1 + w.pe_index, now_);
        }
      } else {
        ++w.consecutive_faults;
        if (policy.quarantine_threshold > 0 &&
            w.consecutive_faults >= policy.quarantine_threshold) {
          w.quarantined = true;
          w.probe_inflight = false;
          w.probe_at = now_ + policy.probe_period_s;
          // Health transition: outstanding lookahead reservations assumed
          // this PE's availability; invalidate them all.
          ++reservation_epoch_;
          ++pes_quarantined_;
          if (tr() != nullptr) {
            tr()->instant(obs::Category::kFault, "pe_quarantined", 0,
                          1 + w.pe_index, now_, "consecutive_faults",
                          static_cast<double>(w.consecutive_faults));
          }
        }
      }
      task.failed_class_mask |= 1u << static_cast<unsigned>(w.cls);
      if (task.attempt < policy.max_retries) {
        ++task.attempt;
        ++tasks_retried_;
        const double backoff =
            policy.backoff_base_s *
            std::pow(policy.backoff_factor,
                     static_cast<double>(task.attempt - 1));
        if (tr() != nullptr) {
          tr()->instant(obs::Category::kFault, "retry_backoff", 0,
                        1 + w.pe_index, now_, "attempt",
                        static_cast<double>(task.attempt), "backoff_s",
                        backoff);
        }
        deferred_.emplace_back(now_ + backoff, std::move(task));
        return;  // not terminal: no completion bookkeeping yet
      }
      ++tasks_lost_;  // retries exhausted; fall through so the app finishes
      if (tr() != nullptr) {
        tr()->instant(obs::Category::kFault, "task_failed", 0, 1 + w.pe_index,
                      now_, "attempts", static_cast<double>(task.attempt + 1));
      }
    } else {
      w.consecutive_faults = 0;
      w.probe_inflight = false;
      if (w.quarantined) {
        w.quarantined = false;
        ++reservation_epoch_;  // capacity changed under the reservations
        ++pes_reinstated_;
        if (tr() != nullptr) {
          tr()->instant(obs::Category::kFault, "pe_reinstated", 0,
                        1 + w.pe_index, now_);
        }
      }
      if (task.attempt > 0 && tr() != nullptr) {
        tr()->instant(obs::Category::kFault, "task_recovered", 0,
                      1 + w.pe_index, now_, "attempts",
                      static_cast<double>(task.attempt + 1));
      }
    }

    Instance& inst = instances_[task.instance];
    if (config_.model == ProgrammingModel::kApiBased) {
      // Fig. 4: the worker signals the sleeping application thread
      // directly; the main loop only does bookkeeping afterwards.
      if (inst.outstanding > 0) --inst.outstanding;
      if (inst.outstanding == 0 &&
          inst.tstate == Instance::TState::kBlocked) {
        app_thread_unblock(task.instance);
      }
    }
    // Main-thread completion bookkeeping happens in both models; in DAG
    // mode it also releases successors (handled in complete_main_item).
    mgmt_.push_back(
        MgmtEvent{MgmtEvent::Kind::kCompletion, task.instance});
  }

  // ---- API-mode application threads ------------------------------------

  void app_thread_start_segment(std::size_t instance_idx) {
    Instance& inst = instances_[instance_idx];
    if (inst.segment >= inst.model->segments.size()) {
      inst.tstate = Instance::TState::kFinished;
      mgmt_.push_back(MgmtEvent{MgmtEvent::Kind::kTerminate, instance_idx});
      return;
    }
    const SimSegment& seg = inst.model->segments[inst.segment];
    if (seg.kind == SimSegment::Kind::kCpuGlue) {
      inst.tstate = Instance::TState::kGlue;
      inst.thread_remaining = std::max(seg.glue_work_s * cpu_speed_factor_,
                                       1e-9);
    } else if (seg.parallel) {
      inst.tstate = Instance::TState::kIssue;
      inst.thread_remaining =
          std::max(static_cast<double>(seg.count) *
                       config_.costs.api_call_overhead * cpu_speed_factor_,
                   1e-9);
    } else {
      inst.serial_issued = 0;
      inst.tstate = Instance::TState::kIssue;
      inst.thread_remaining =
          std::max(config_.costs.api_call_overhead * cpu_speed_factor_, 1e-9);
    }
  }

  void app_thread_step_done(std::size_t instance_idx) {
    Instance& inst = instances_[instance_idx];
    if (inst.tstate == Instance::TState::kWake) {
      app_thread_after_wake(instance_idx);
      return;
    }
    const SimSegment& seg = inst.model->segments[inst.segment];
    if (inst.tstate == Instance::TState::kGlue) {
      ++inst.segment;
      app_thread_start_segment(instance_idx);
      return;
    }
    // kIssue: the application thread pushes its call(s) into the ready
    // queue itself (paper §IV-A) and goes to sleep on the condvar.
    inst.thread_remaining = 0.0;
    inst.tstate = Instance::TState::kBlocked;
    if (seg.parallel) {
      push_segment_tasks(instance_idx, inst.segment);
    } else {
      // One call of the serial batch.
      const std::uint64_t key = next_key_++;
      push_ready(SimTask{
          .key = key,
          .instance = instance_idx,
          .segment = inst.segment,
          .kernel = seg.kernel,
          .size = seg.problem_size,
          .bytes = seg.data_bytes,
          .rank = (*inst.ranks)[inst.segment],
          .ready_time = now_,
          .class_mask = class_mask_for(seg.kernel, seg.problem_size),
      });
      if (tr() != nullptr) {
        tr()->flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                   platform::kernel_name(seg.kernel).data(), 1 + instance_idx,
                   0, now_, key);
      }
      inst.outstanding = 1;
    }
  }

  void app_thread_unblock(std::size_t instance_idx) {
    // Being signalled is not free: on an oversubscribed machine the woken
    // thread first waits for a timeslice, then pays the context-switch /
    // condvar work (charged as pool CPU work).
    Instance& inst = instances_[instance_idx];
    const double wait = config_.costs.wake_latency *
                        std::max(0.0, effective_load() - cores_) / cores_;
    if (wait > 0.0) {
      inst.tstate = Instance::TState::kWakeWait;
      inst.wake_at = now_ + wait;
      inst.thread_remaining = 0.0;
      return;
    }
    inst.tstate = Instance::TState::kWake;
    inst.thread_remaining =
        std::max(config_.costs.wake_overhead * cpu_speed_factor_, 1e-9);
  }

  void app_thread_after_wake(std::size_t instance_idx) {
    Instance& inst = instances_[instance_idx];
    const SimSegment& seg = inst.model->segments[inst.segment];
    if (seg.kind == SimSegment::Kind::kKernelBatch && !seg.parallel &&
        ++inst.serial_issued < seg.count) {
      inst.tstate = Instance::TState::kIssue;
      inst.thread_remaining =
          std::max(config_.costs.api_call_overhead * cpu_speed_factor_, 1e-9);
      return;
    }
    ++inst.segment;
    app_thread_start_segment(instance_idx);
  }

  // ---- main thread -----------------------------------------------------

  [[nodiscard]] double mgmt_duration(const MgmtEvent& event) const {
    const SimCosts& c = config_.costs;
    const Instance& inst = instances_[event.instance];
    switch (event.kind) {
      case MgmtEvent::Kind::kArrival: {
        double d = c.submit_fixed;
        if (config_.model == ProgrammingModel::kDagBased) {
          // "Receiving and parsing application DAG files via IPC to
          // construct application DAG ... pushing tasks to the ready
          // queue" (paper §IV-A).
          d += c.parse_per_task *
               static_cast<double>(inst.model->dag_task_count());
          d += c.push_task * static_cast<double>(
                                 segment_task_count(*inst.model, 0));
        }
        return d;
      }
      case MgmtEvent::Kind::kCompletion: {
        double d = c.pop_task;
        if (config_.model == ProgrammingModel::kDagBased &&
            inst.outstanding == 1 &&
            inst.segment + 1 < inst.model->segments.size()) {
          // This completion releases the next segment: the main thread
          // pushes its tasks.
          d += c.push_task * static_cast<double>(segment_task_count(
                                 *inst.model, inst.segment + 1));
        }
        return d;
      }
      case MgmtEvent::Kind::kTerminate:
        return c.terminate_app;
    }
    return c.pop_task;
  }

  [[nodiscard]] static std::size_t segment_task_count(const SimApp& app,
                                                      std::size_t segment) {
    const SimSegment& seg = app.segments[segment];
    return seg.kind == SimSegment::Kind::kCpuGlue ? 1 : seg.count;
  }

  void maybe_start_main() {
    while (!main_busy_) {
      if (!mgmt_.empty()) {
        current_mgmt_ = mgmt_.front();
        mgmt_.pop_front();
        double duration = mgmt_duration(current_mgmt_);
        if (main_idle_streak_) {
          duration += config_.costs.wakeup;
          main_idle_streak_ = false;
        }
        runtime_overhead_ += duration;
        main_busy_ = true;
        main_item_is_sched_ = false;
        main_remaining_ = duration;
        return;
      }
      if (queue_dirty_ && ready_.size() != 0 &&
          now_ + kEps >= next_round_allowed_) {
        start_sched_round();
        return;
      }
      main_idle_streak_ = true;
      return;
    }
  }

  void start_sched_round() {
    // CEDR "periodically pushes work to these threads" (paper §II-A): a
    // round may begin at most once per event-loop period. For blocking API
    // calls this period is the dominant per-call round-trip latency.
    next_round_allowed_ = now_ + config_.costs.loop_period;
    // Snapshot the sharded queue — merged back into global FIFO (push)
    // order, the exact sequence the legacy single deque presented — and run
    // the heuristic now; the decision's virtual cost is charged before the
    // assignments take effect. The per-task effective class mask (failed
    // classes narrowed, present-class fallback) was computed at push time.
    queue_dirty_ = false;
    round_snapshot_ = ready_.snapshot();
    const std::span<const sched::ReadyTask> views(round_snapshot_.views);
    std::vector<sched::PeState> pe_states;
    pe_states.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& w = workers_[i];
      bool excluded = w.quarantined;
      if (excluded && !w.probe_inflight && now_ + kEps >= w.probe_at) {
        excluded = false;  // probe window open: admit for one probe task
      }
      pe_states.push_back(sched::PeState{
          .pe_index = i,
          .cls = w.cls,
          .available_time = std::max(now_, pe_available_[i]),
          .speed = w.speed,
          .quarantined = excluded,
      });
    }
    // The heuristics see (in priority order) the live adapted snapshot, an
    // explicit static override, or the platform tables; execution durations
    // (start_next_on_worker) always come from the ground-truth platform
    // tables, so a mis-calibrated scheduler view shows up as real makespan.
    const std::shared_ptr<const platform::CostModel> learned =
        config_.adapt != nullptr ? config_.adapt->snapshot() : nullptr;
    const platform::CostModel* sched_view =
        learned != nullptr          ? learned.get()
        : config_.sched_costs != nullptr ? config_.sched_costs
                                         : &config_.platform.costs;
    const sched::ScheduleContext ctx{.now = now_, .costs = sched_view};
    sched::ScheduleResult result;
    if (lookahead_ != nullptr) {
      // Cost-snapshot staleness: a new published table invalidates every
      // outstanding reservation (its predicted finishes no longer hold).
      if (static_cast<const void*>(ctx.costs) != last_cost_table_) {
        if (last_cost_table_ != nullptr) ++reservation_epoch_;
        last_cost_table_ = ctx.costs;
      }
      frontier_.reset(pe_states, ctx);
      for (const sched::ReadyTask& v : round_snapshot_.views) {
        frontier_.add_ready(v);
      }
      frontier_meta_.clear();
      if (config_.model == ProgrammingModel::kDagBased &&
          config_.lookahead_depth > 0) {
        build_lookahead_window();
      }
      Stopwatch decision_clock;
      sched::FrontierResult window = lookahead_->schedule_window(frontier_);
      if (config_.sched_decision_us != nullptr) {
        config_.sched_decision_us->record(decision_clock.elapsed_us());
      }
      result.assignments = std::move(window.assignments);
      result.comparisons = window.comparisons;
      for (const sched::Reservation& r : window.reservations) {
        // Overwrite semantics: a window task re-seen next round (its
        // predecessors still queued) takes the newest placement.
        reservations_[frontier_meta_[r.window_index - views.size()]] =
            SimReservation{r.pe_index, r.predicted_finish, reservation_epoch_};
      }
    } else {
      Stopwatch decision_clock;
      result = scheduler_->schedule(views, pe_states, ctx);
      if (config_.sched_decision_us != nullptr) {
        config_.sched_decision_us->record(decision_clock.elapsed_us());
      }
    }
    total_comparisons_ += result.comparisons;
    for (const sched::PeState& pe : pe_states) {
      pe_available_[pe.pe_index] = pe.available_time;
    }
    pending_assignments_.clear();
    for (const sched::Assignment& a : result.assignments) {
      pending_assignments_.emplace_back(views[a.queue_index].task_key,
                                        a.pe_index);
      if (tr() != nullptr) {
        tr()->flow(obs::EventKind::kFlowStep, obs::Category::kSched,
                   "dispatch", 0, 0, now_, views[a.queue_index].task_key);
      }
    }
    double duration = config_.costs.sched_fixed +
                      config_.costs.per_comparison *
                          static_cast<double>(result.comparisons);
    if (config_.sched_round_us != nullptr) {
      // The modeled decision cost on the virtual clock (the wakeup term
      // below is main-loop overhead, not decision time).
      config_.sched_round_us->record(duration * 1e6);
    }
    if (main_idle_streak_) {
      runtime_overhead_ += config_.costs.wakeup;
      duration += config_.costs.wakeup;
      main_idle_streak_ = false;
    }
    total_sched_time_ += config_.costs.sched_fixed +
                         config_.costs.per_comparison *
                             static_cast<double>(result.comparisons);
    ++sched_rounds_;
    if (tr() != nullptr) {
      tr()->complete_span(obs::Category::kSched, sched_span_name_.c_str(), 0,
                          0, now_, duration, "ready",
                          static_cast<double>(views.size()), "assigned",
                          static_cast<double>(result.assignments.size()));
    }
    main_busy_ = true;
    main_item_is_sched_ = true;
    main_remaining_ = duration;
  }

  /// Reservation identity: DAG-mode segment tasks are pushed in a fixed
  /// order, so (instance, segment, ordinal-within-segment) names the same
  /// task at reservation time and at release time. Instances are bounded by
  /// the arrival list and segments/ordinals by the model, so the packed key
  /// never collides within a run.
  [[nodiscard]] static std::uint64_t reservation_key(
      std::size_t instance, std::size_t segment, std::size_t ordinal) noexcept {
    return (static_cast<std::uint64_t>(instance) << 32) |
           (static_cast<std::uint64_t>(segment & 0xffffu) << 16) |
           static_cast<std::uint64_t>(ordinal & 0xffffu);
  }

  /// Widens the in-flight round's frontier past the ready snapshot: for
  /// every instance whose *entire* current segment sits in the snapshot
  /// (nothing executing, nothing deferred on retry backoff), the next
  /// `lookahead_depth` segments join the window as lookahead tasks whose
  /// in-window predecessors are the full prior level — the emulator's
  /// segment-chain analogue of the runtime's DagPlan-driven window
  /// (src/runtime/dispatch.cpp build_lookahead_window).
  void build_lookahead_window() {
    // Group the snapshot's current-segment tasks per instance, preserving
    // first-seen snapshot order so the window layout is deterministic.
    std::unordered_map<std::size_t, std::size_t> group_pos;
    std::vector<std::pair<std::size_t, std::vector<std::size_t>>> groups;
    for (std::size_t i = 0; i < round_snapshot_.entries.size(); ++i) {
      const auto* t = static_cast<const SimTask*>(
          round_snapshot_.entries[i].payload.get());
      const Instance& inst = instances_[t->instance];
      if (inst.terminated || t->segment != inst.segment) continue;
      const auto [it, inserted] =
          group_pos.emplace(t->instance, groups.size());
      if (inserted) groups.emplace_back(t->instance, std::vector<std::size_t>{});
      groups[it->second].second.push_back(i);
    }
    std::vector<std::size_t> level;
    for (auto& [instance_idx, prev] : groups) {
      const Instance& inst = instances_[instance_idx];
      // Partial visibility (tasks already executing, or parked on retry
      // backoff) means predicted finishes for the level are unknowable:
      // skip, exactly as the runtime skips successors with out-of-window
      // predecessors.
      if (prev.size() != inst.outstanding) continue;
      for (std::size_t d = 1; d <= config_.lookahead_depth; ++d) {
        const std::size_t seg_idx = inst.segment + d;
        if (seg_idx >= inst.model->segments.size()) break;
        if (frontier_.size() >= kMaxLookaheadTasks) return;
        // Reserve once: a fresh reservation from an earlier round stands
        // until honored or invalidated — re-placing the same level every
        // round while its predecessors wait in a backlogged queue is pure
        // O(window^2) waste, the cost the lookahead exists to remove.
        // Levels are reserved atomically (ordinal 0 stands in for all),
        // and deeper levels were reserved by the same earlier round.
        const auto held = reservations_.find(
            reservation_key(instance_idx, seg_idx, 0));
        if (held != reservations_.end() &&
            held->second.epoch == reservation_epoch_) {
          break;
        }
        const SimSegment& seg = inst.model->segments[seg_idx];
        const bool glue = seg.kind == SimSegment::Kind::kCpuGlue;
        const platform::KernelId kernel =
            glue ? platform::KernelId::kGeneric : seg.kernel;
        const std::size_t size =
            glue ? static_cast<std::size_t>(seg.glue_work_s *
                                            kGenericUnitsPerSecond)
                 : seg.problem_size;
        const std::size_t bytes = glue ? 0 : seg.data_bytes;
        const std::size_t count = glue ? 1 : seg.count;
        level.clear();
        // Segment levels are barriers: every task in this level depends on
        // the whole previous level. Stage that set once — a 128-wide FFT
        // level then costs one predecessor copy and one earliest-start
        // scan, not 128 of each.
        const std::uint32_t pred_set = frontier_.stage_preds(prev);
        for (std::size_t ordinal = 0; ordinal < count; ++ordinal) {
          if (frontier_.size() >= kMaxLookaheadTasks) return;
          const std::size_t idx = frontier_.add_lookahead_staged(
              sched::ReadyTask{
                  .task_key = 0,
                  .app_instance_id = instance_idx,
                  .kernel = kernel,
                  .problem_size = size,
                  .data_bytes = bytes,
                  .ready_time = now_,
                  .rank = (*inst.ranks)[seg_idx],
                  .class_mask = class_mask_for(kernel, size),
              },
              static_cast<std::uint32_t>(d), pred_set);
          frontier_meta_.push_back(
              reservation_key(instance_idx, seg_idx, ordinal));
          level.push_back(idx);
        }
        prev = level;
      }
    }
  }

  void complete_main_item() {
    main_busy_ = false;
    if (main_item_is_sched_) {
      // Dispatch the decided assignments in snapshot (global FIFO) order —
      // the order the legacy deque walked — gating probes against the
      // *current* worker state; tasks pushed mid-round and assignments a
      // probe absorbed stay queued for the next round.
      std::unordered_map<std::uint64_t, std::size_t> assigned;
      assigned.reserve(pending_assignments_.size());
      for (const auto& [key, pe_index] : pending_assignments_) {
        assigned.emplace(key, pe_index);
      }
      std::vector<sched::ReadyQueueShards::Entry> taken;
      taken.reserve(assigned.size());
      for (const sched::ReadyQueueShards::Entry& entry :
           round_snapshot_.entries) {
        const auto it = assigned.find(entry.view.task_key);
        if (it == assigned.end()) continue;
        Worker& w = workers_[it->second];
        if (w.quarantined) {
          // Quarantined PE in its probe window: exactly one probe task.
          if (w.probe_inflight) continue;
          w.probe_inflight = true;
        }
        taken.push_back(entry);
        dispatch_to_worker(
            it->second,
            std::move(*std::static_pointer_cast<SimTask>(entry.payload)));
      }
      ready_.remove(taken);
      round_snapshot_ = {};
      pending_assignments_.clear();
      return;
    }
    const MgmtEvent event = current_mgmt_;
    Instance& inst = instances_[event.instance];
    switch (event.kind) {
      case MgmtEvent::Kind::kArrival: {
        inst.launch = now_;
        if (config_.model == ProgrammingModel::kDagBased) {
          inst.segment = 0;
          push_segment_tasks(event.instance, 0);
        } else {
          inst.segment = 0;
          app_thread_start_segment(event.instance);
        }
        break;
      }
      case MgmtEvent::Kind::kCompletion: {
        if (config_.model == ProgrammingModel::kDagBased) {
          if (inst.outstanding > 0) --inst.outstanding;
          if (inst.outstanding == 0 && !inst.terminated) {
            ++inst.segment;
            if (inst.segment < inst.model->segments.size()) {
              push_segment_tasks(event.instance, inst.segment);
            } else {
              mgmt_.push_back(
                  MgmtEvent{MgmtEvent::Kind::kTerminate, event.instance});
            }
          }
        }
        break;
      }
      case MgmtEvent::Kind::kTerminate: {
        inst.terminated = true;
        inst.completion = now_;
        if (tr() != nullptr) {
          tr()->instant(obs::Category::kApp, "app_complete",
                        1 + event.instance, 0, now_, "exec_time_s",
                        now_ - inst.launch);
        }
        break;
      }
    }
  }

  // ---- metrics ----------------------------------------------------------

  SimMetrics collect_metrics() const {
    SimMetrics m;
    m.apps = instances_.size();
    m.tasks_executed = tasks_executed_;
    m.sched_rounds = sched_rounds_;
    m.max_ready_queue = max_ready_;
    m.total_comparisons = total_comparisons_;
    m.total_sched_time = total_sched_time_;
    double exec_total = 0.0;
    for (const Instance& inst : instances_) {
      exec_total += inst.completion - inst.launch;
      m.makespan = std::max(m.makespan, inst.completion);
    }
    // The daemon's event loop keeps polling for the workload's whole span;
    // those iterations are part of the paper's "receive, manage, terminate"
    // overhead and shrink per-app as arrivals overlap (Fig. 5's shape).
    m.runtime_overhead =
        runtime_overhead_ +
        config_.costs.poll_cost * (m.makespan / config_.costs.loop_period);
    if (m.apps > 0) {
      m.avg_execution_time = exec_total / static_cast<double>(m.apps);
      m.avg_sched_overhead =
          total_sched_time_ / static_cast<double>(m.apps);
      m.runtime_overhead_per_app =
          m.runtime_overhead / static_cast<double>(m.apps);
    }
    m.pe_busy.reserve(workers_.size());
    for (const Worker& w : workers_) m.pe_busy.push_back(w.busy_work);
    m.faults_injected = faults_injected_;
    m.tasks_retried = tasks_retried_;
    m.pes_quarantined = pes_quarantined_;
    m.pes_reinstated = pes_reinstated_;
    m.tasks_lost = tasks_lost_;
    m.reservation_hits = reservation_hits_;
    m.reservation_stale = reservation_stale_;
    return m;
  }

  // ---- state -------------------------------------------------------------

  SimConfig config_;
  double cores_;
  double cpu_speed_factor_ = 1.0;
  std::unique_ptr<sched::Scheduler> scheduler_;
  /// Non-null iff scheduler_ is a LookaheadScheduler (owned by scheduler_).
  sched::LookaheadScheduler* lookahead_ = nullptr;
  std::unique_ptr<platform::FaultInjector> injector_;
  std::string sched_span_name_;

  // ---- lookahead round state (all untouched for classic heuristics) ----
  struct SimReservation {
    std::size_t pe_index = 0;
    double predicted_finish = 0.0;
    std::uint64_t epoch = 0;
  };
  sched::Frontier frontier_;
  /// Reservation key per lookahead window entry, aligned so that
  /// frontier_meta_[window_index - ready_count] names the entry.
  std::vector<std::uint64_t> frontier_meta_;
  std::unordered_map<std::uint64_t, SimReservation> reservations_;
  std::uint64_t reservation_epoch_ = 0;
  const void* last_cost_table_ = nullptr;
  std::size_t reservation_hits_ = 0;
  std::size_t reservation_stale_ = 0;

  std::vector<Arrival> arrivals_;
  std::size_t arrival_idx_ = 0;

  /// Per-model rank cache: segment_ranks() is pure in (model, platform)
  /// and the platform is fixed for the engine's lifetime, so every arrival
  /// of the same SimApp shares one immutable rank vector. Keys stay valid
  /// because arrival models outlive the engine (Arrival holds `const
  /// SimApp*` into caller-owned storage).
  std::unordered_map<const SimApp*, std::shared_ptr<const std::vector<double>>>
      rank_cache_;

  std::vector<Instance> instances_;
  std::vector<Worker> workers_;
  std::vector<double> pe_available_;

  /// The same sharded ready queue the threaded runtime schedules from;
  /// single-threaded here, so every lock acquisition takes the
  /// uncontended fast path and the snapshot order is exactly push order.
  sched::ReadyQueueShards ready_;
  /// The queue snapshot the in-flight scheduling round decided over; the
  /// dispatch at complete_main_item consumes and clears it.
  sched::ReadyQueueShards::Snapshot round_snapshot_;
  std::uint32_t present_classes_ = 0;
  /// (release time, task) pairs backing off before a retry.
  std::vector<std::pair<double, SimTask>> deferred_;
  bool queue_dirty_ = false;
  std::uint64_t next_key_ = 1;

  double next_round_allowed_ = 0.0;
  std::deque<MgmtEvent> mgmt_;
  MgmtEvent current_mgmt_{};
  bool main_busy_ = false;
  bool main_item_is_sched_ = false;
  bool main_idle_streak_ = true;
  double main_remaining_ = 0.0;
  std::vector<std::pair<std::uint64_t, std::size_t>> pending_assignments_;

  double now_ = 0.0;
  double runtime_overhead_ = 0.0;
  double total_sched_time_ = 0.0;
  std::size_t sched_rounds_ = 0;
  std::uint64_t total_comparisons_ = 0;
  std::size_t tasks_executed_ = 0;
  std::size_t max_ready_ = 0;
  std::size_t faults_injected_ = 0;
  std::size_t tasks_retried_ = 0;
  std::size_t pes_quarantined_ = 0;
  std::size_t pes_reinstated_ = 0;
  std::size_t tasks_lost_ = 0;
};

}  // namespace

StatusOr<SimMetrics> simulate(const SimConfig& config,
                              std::span<const Arrival> arrivals) {
  if (arrivals.empty()) return InvalidArgument("no arrivals to simulate");
  for (const Arrival& a : arrivals) {
    if (a.app == nullptr) return InvalidArgument("arrival with null app");
    if (a.time < 0.0) return InvalidArgument("negative arrival time");
    if (a.app->segments.empty()) {
      return InvalidArgument("application model has no segments");
    }
  }
  return Engine(config, arrivals).run();
}

}  // namespace cedr::sim
