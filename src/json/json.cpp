#include "cedr/json/json.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace cedr::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::int64_t Value::get_int(std::string_view key,
                            std::int64_t fallback) const noexcept {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

double Value::get_double(std::string_view key, double fallback) const noexcept {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const noexcept {
  const Value* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Value::get_string(std::string_view key,
                              std::string_view fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::string(fallback);
}

bool operator==(const Value& a, const Value& b) noexcept {
  if (a.type_ != b.type_) {
    // Allow 3 == 3.0 across the int/double split.
    if (a.is_number() && b.is_number()) return a.as_double() == b.as_double();
    return false;
  }
  switch (a.type_) {
    case Type::kNull: return true;
    case Type::kBool: return a.bool_ == b.bool_;
    case Type::kInt: return a.int_ == b.int_;
    case Type::kDouble: return a.double_ == b.double_;
    case Type::kString: return a.string_ == b.string_;
    case Type::kArray: return a.array_ == b.array_;
    case Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no non-finite literals; emit null like most tolerant encoders.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
  // Keep a trailing ".0" so the value re-parses as a double.
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: append_double(out, double_); return;
    case Type::kString: append_escaped(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) out += indent > 0 ? "," : ",";
        first = false;
        append_newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out += ",";
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_to(out, /*indent=*/2, /*depth=*/0);
  return out;
}

namespace {

/// Recursive-descent parser with line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> parse_document() {
    skip_ws();
    Value root;
    CEDR_RETURN_IF_ERROR(parse_value(root, /*depth=*/0));
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters after document");
    return root;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status error(std::string_view what) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream msg;
    msg << "JSON parse error at line " << line << ", column " << column << ": "
        << what;
    return InvalidArgument(msg.str());
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }
  char take() noexcept { return text_[pos_++]; }

  void skip_ws() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(std::string_view literal) noexcept {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    if (at_end()) return error("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consume("null")) return error("invalid literal");
        out = Value(nullptr);
        return Status::Ok();
      case 't':
        if (!consume("true")) return error("invalid literal");
        out = Value(true);
        return Status::Ok();
      case 'f':
        if (!consume("false")) return error("invalid literal");
        out = Value(false);
        return Status::Ok();
      case '"': return parse_string_value(out);
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  Status parse_array(Value& out, int depth) {
    take();  // '['
    Array items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      take();
      out = Value(std::move(items));
      return Status::Ok();
    }
    while (true) {
      Value item;
      skip_ws();
      CEDR_RETURN_IF_ERROR(parse_value(item, depth + 1));
      items.push_back(std::move(item));
      skip_ws();
      if (at_end()) return error("unterminated array");
      const char c = take();
      if (c == ']') break;
      if (c != ',') return error("expected ',' or ']' in array");
    }
    out = Value(std::move(items));
    return Status::Ok();
  }

  Status parse_object(Value& out, int depth) {
    take();  // '{'
    Object members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      take();
      out = Value(std::move(members));
      return Status::Ok();
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return error("expected object key string");
      std::string key;
      CEDR_RETURN_IF_ERROR(parse_string(key));
      skip_ws();
      if (at_end() || take() != ':') return error("expected ':' after key");
      skip_ws();
      Value member;
      CEDR_RETURN_IF_ERROR(parse_value(member, depth + 1));
      members.insert_or_assign(std::move(key), std::move(member));
      skip_ws();
      if (at_end()) return error("unterminated object");
      const char c = take();
      if (c == '}') break;
      if (c != ',') return error("expected ',' or '}' in object");
    }
    out = Value(std::move(members));
    return Status::Ok();
  }

  Status parse_string_value(Value& out) {
    std::string s;
    CEDR_RETURN_IF_ERROR(parse_string(s));
    out = Value(std::move(s));
    return Status::Ok();
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return error("invalid hex digit in \\u escape");
      }
    }
    out = value;
    return Status::Ok();
  }

  Status parse_string(std::string& out) {
    take();  // opening quote
    out.clear();
    while (true) {
      if (at_end()) return error("unterminated string");
      const char c = take();
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return error("unterminated escape");
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          CEDR_RETURN_IF_ERROR(parse_hex4(cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return error("unpaired high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            CEDR_RETURN_IF_ERROR(parse_hex4(low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return error("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return error("invalid escape character");
      }
    }
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') take();
    if (at_end() || peek() < '0' || peek() > '9') {
      return error("invalid number");
    }
    bool is_floating = false;
    while (!at_end()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        take();
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_floating = true;
        take();
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_floating) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        out = Value(value);
        return Status::Ok();
      }
      // Fall through to double on overflow.
    }
    errno = 0;
    char* end = nullptr;
    const std::string token_str(token);
    const double value = std::strtod(token_str.c_str(), &end);
    if (end != token_str.c_str() + token_str.size() || errno == ERANGE) {
      return error("malformed number");
    }
    out = Value(value);
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

StatusOr<Value> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Status write_file(const std::string& path, const Value& value) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Unavailable("cannot open file for writing: " + path);
  out << value.dump_pretty() << '\n';
  if (!out) return Unavailable("write failed: " + path);
  return Status::Ok();
}

}  // namespace cedr::json
