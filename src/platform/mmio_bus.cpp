#include "cedr/platform/mmio_bus.h"

#include <sstream>

namespace cedr::platform {
namespace {

std::string hex(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

}  // namespace

Status MmioBus::map(std::uint64_t base, std::unique_ptr<MmioDevice> device) {
  if (device == nullptr) return InvalidArgument("cannot map a null device");
  if (base % kDeviceWindowBytes != 0) {
    return InvalidArgument("device base " + hex(base) +
                           " is not window-aligned");
  }
  if (devices_.find(base) != devices_.end()) {
    return AlreadyExists("device window already mapped at " + hex(base));
  }
  devices_.emplace(base, std::move(device));
  return Status::Ok();
}

MmioDevice* MmioBus::at(std::uint64_t base) const noexcept {
  const auto it = devices_.find(base);
  return it == devices_.end() ? nullptr : it->second.get();
}

std::vector<std::uint64_t> MmioBus::bases() const {
  std::vector<std::uint64_t> out;
  out.reserve(devices_.size());
  for (const auto& [base, device] : devices_) out.push_back(base);
  return out;
}

StatusOr<std::pair<MmioDevice*, DeviceReg>> MmioBus::decode(
    std::uint64_t address) {
  if (address % kRegisterBytes != 0) {
    return InvalidArgument("misaligned MMIO access at " + hex(address));
  }
  const std::uint64_t base = address - address % kDeviceWindowBytes;
  const auto it = devices_.find(base);
  if (it == devices_.end()) {
    return NotFound("no device mapped at " + hex(address));
  }
  const std::uint64_t word = (address - base) / kRegisterBytes;
  // Valid registers: kControl..kSizeAux2.
  if (word > static_cast<std::uint64_t>(DeviceReg::kSizeAux2)) {
    return OutOfRange("register offset " + hex(address - base) +
                      " outside the device register file");
  }
  return std::make_pair(it->second.get(), static_cast<DeviceReg>(word));
}

Status MmioBus::write_word(std::uint64_t address, std::uint32_t value) {
  auto target = decode(address);
  if (!target.ok()) return target.status();
  return target->first->write_reg(target->second, value);
}

StatusOr<std::uint32_t> MmioBus::read_word(std::uint64_t address) {
  auto target = decode(address);
  if (!target.ok()) return target.status();
  return target->first->read_reg(target->second);
}

}  // namespace cedr::platform
