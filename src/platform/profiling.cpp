#include "cedr/platform/profiling.h"

#include <map>

namespace cedr::platform {
namespace {

struct Samples {
  std::vector<double> sizes;
  std::vector<double> services;
};

/// Affine least-squares fit y = a + b*x with b clamped nonnegative; falls
/// back to the mean (b = 0) for degenerate sample sets.
KernelCost fit_affine(const Samples& samples) {
  const std::size_t n = samples.sizes.size();
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += samples.sizes[i];
    sy += samples.services[i];
    sxx += samples.sizes[i] * samples.sizes[i];
    sxy += samples.sizes[i] * samples.services[i];
  }
  const double nd = static_cast<double>(n);
  const double denom = nd * sxx - sx * sx;
  KernelCost cost;
  if (denom > 1e-12) {
    double b = (nd * sxy - sx * sy) / denom;
    double a = (sy - b * sx) / nd;
    if (b < 0.0) {  // non-physical slope: fall back to the mean
      b = 0.0;
      a = sy / nd;
    }
    if (a < 0.0) a = 0.0;
    cost.fixed_s = a;
    cost.per_point_s = b;
  } else {
    cost.fixed_s = sy / nd;  // single distinct size: mean only
  }
  return cost;
}

}  // namespace

StatusOr<ProfileResult> profile_costs(const trace::TraceLog& log,
                                      const PlatformConfig& platform,
                                      std::size_t min_samples) {
  CEDR_RETURN_IF_ERROR(platform.validate());
  if (min_samples == 0) min_samples = 1;

  // PE-name -> class resolution from the platform description.
  std::map<std::string, PeClass> pe_classes;
  for (const PeDescriptor& pe : platform.pes) {
    pe_classes.emplace(pe.name, pe.cls);
  }

  ProfileResult result;
  result.costs = platform.costs;
  std::map<std::pair<int, int>, Samples> samples;
  for (const trace::TaskRecord& task : log.tasks()) {
    const auto kernel = kernel_from_name(task.kernel_name);
    const auto pe = pe_classes.find(task.pe_name);
    if (!kernel || pe == pe_classes.end() || task.service_time() <= 0.0) {
      ++result.tasks_skipped;
      continue;
    }
    auto& bucket = samples[{static_cast<int>(*kernel),
                            static_cast<int>(pe->second)}];
    bucket.sizes.push_back(static_cast<double>(task.problem_size));
    bucket.services.push_back(task.service_time());
    ++result.tasks_used;
  }
  if (result.tasks_used == 0) {
    return FailedPrecondition("trace contains no usable task records");
  }

  for (const auto& [key, bucket] : samples) {
    if (bucket.sizes.size() < min_samples) continue;
    const auto kernel = static_cast<KernelId>(key.first);
    const auto cls = static_cast<PeClass>(key.second);
    const KernelCost fitted = fit_affine(bucket);
    result.costs.set(kernel, cls, fitted);
    double mean_service = 0.0;
    for (const double s : bucket.services) mean_service += s;
    mean_service /= static_cast<double>(bucket.services.size());
    result.entries.push_back(ProfiledEntry{
        .kernel = kernel,
        .cls = cls,
        .samples = bucket.sizes.size(),
        .fitted = fitted,
        .mean_service_s = mean_service,
    });
  }
  return result;
}

}  // namespace cedr::platform
