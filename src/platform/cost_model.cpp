#include "cedr/platform/cost_model.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

namespace cedr::platform {

double KernelCost::eval(std::size_t n) const noexcept {
  const double nd = static_cast<double>(n);
  const double nlogn = nd * (n > 1 ? std::log2(nd) : 0.0);
  return fixed_s + per_point_s * nd + per_nlogn_s * nlogn;
}

CostModel::CostModel() {
  transfer_per_byte_.fill(0.0);
  transfer_fixed_.fill(0.0);
}

void CostModel::set(KernelId kernel, PeClass cls, KernelCost cost) noexcept {
  table_[static_cast<std::size_t>(kernel)][static_cast<std::size_t>(cls)] =
      cost;
}

const KernelCost& CostModel::get(KernelId kernel, PeClass cls) const noexcept {
  return table_[static_cast<std::size_t>(kernel)]
               [static_cast<std::size_t>(cls)];
}

void CostModel::set_transfer(PeClass cls, double seconds_per_byte,
                             double fixed_s) noexcept {
  transfer_per_byte_[static_cast<std::size_t>(cls)] = seconds_per_byte;
  transfer_fixed_[static_cast<std::size_t>(cls)] = fixed_s;
}

double CostModel::estimate(KernelId kernel, PeClass cls, std::size_t n,
                           std::size_t bytes) const noexcept {
  if (!pe_class_supports(cls, kernel)) {
    return std::numeric_limits<double>::infinity();
  }
  double cost = get(kernel, cls).eval(n);
  if (cls != PeClass::kCpu) {
    const auto idx = static_cast<std::size_t>(cls);
    cost += transfer_fixed_[idx] +
            transfer_per_byte_[idx] * static_cast<double>(bytes);
  }
  return cost;
}

json::Value CostModel::to_json() const {
  json::Object kernels;
  for (std::size_t k = 0; k < kNumKernelIds; ++k) {
    json::Object classes;
    for (std::size_t c = 0; c < kNumPeClasses; ++c) {
      const KernelCost& cost = table_[k][c];
      classes.emplace(pe_class_name(static_cast<PeClass>(c)),
                      json::Object{
                          {"fixed_s", json::Value(cost.fixed_s)},
                          {"per_point_s", json::Value(cost.per_point_s)},
                          {"per_nlogn_s", json::Value(cost.per_nlogn_s)},
                      });
    }
    kernels.emplace(kernel_name(static_cast<KernelId>(k)),
                    json::Value(std::move(classes)));
  }
  json::Object transfers;
  for (std::size_t c = 0; c < kNumPeClasses; ++c) {
    transfers.emplace(pe_class_name(static_cast<PeClass>(c)),
                      json::Object{
                          {"per_byte_s", json::Value(transfer_per_byte_[c])},
                          {"fixed_s", json::Value(transfer_fixed_[c])},
                      });
  }
  return json::Object{
      {"kernels", json::Value(std::move(kernels))},
      {"transfers", json::Value(std::move(transfers))},
  };
}

StatusOr<CostModel> CostModel::from_json(const json::Value& value) {
  if (!value.is_object()) return InvalidArgument("cost model must be object");
  CostModel model;
  if (const json::Value* kernels = value.find("kernels")) {
    if (!kernels->is_object()) {
      return InvalidArgument("cost model 'kernels' must be object");
    }
    for (const auto& [kname, classes] : kernels->as_object()) {
      const auto kernel = kernel_from_name(kname);
      if (!kernel) return InvalidArgument("unknown kernel name: " + kname);
      if (!classes.is_object()) {
        return InvalidArgument("kernel cost entry must be object");
      }
      // Iterate the document's own keys so a misspelled PE class fails
      // loudly instead of being silently skipped.
      for (const auto& [cname, entry] : classes.as_object()) {
        const auto cls = pe_class_from_name(cname);
        if (!cls) {
          return InvalidArgument("unknown PE class name '" + cname +
                                 "' in kernel '" + kname + "'");
        }
        const KernelCost cost{
            .fixed_s = entry.get_double("fixed_s", 0.0),
            .per_point_s = entry.get_double("per_point_s", 0.0),
            .per_nlogn_s = entry.get_double("per_nlogn_s", 0.0),
        };
        for (const auto& [coeff_key, coeff] :
             {std::pair<const char*, double>{"fixed_s", cost.fixed_s},
              {"per_point_s", cost.per_point_s},
              {"per_nlogn_s", cost.per_nlogn_s}}) {
          if (coeff < 0.0) {
            return InvalidArgument(
                std::string("negative coefficient '") + coeff_key +
                "' for kernel '" + kname + "' class '" + cname + "'");
          }
        }
        model.set(*kernel, *cls, cost);
      }
    }
  }
  if (const json::Value* transfers = value.find("transfers")) {
    if (!transfers->is_object()) {
      return InvalidArgument("cost model 'transfers' must be object");
    }
    for (const auto& [cname, entry] : transfers->as_object()) {
      const auto cls = pe_class_from_name(cname);
      if (!cls) {
        return InvalidArgument("unknown PE class name '" + cname +
                               "' in transfers");
      }
      const double per_byte = entry.get_double("per_byte_s", 0.0);
      const double fixed = entry.get_double("fixed_s", 0.0);
      if (per_byte < 0.0 || fixed < 0.0) {
        return InvalidArgument("negative transfer coefficient for class '" +
                               cname + "'");
      }
      model.set_transfer(*cls, per_byte, fixed);
    }
  }
  return model;
}

}  // namespace cedr::platform
