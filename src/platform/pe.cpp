#include "cedr/platform/pe.h"

namespace cedr::platform {

std::string_view pe_class_name(PeClass cls) noexcept {
  switch (cls) {
    case PeClass::kCpu: return "cpu";
    case PeClass::kFftAccel: return "fft";
    case PeClass::kMmultAccel: return "mmult";
    case PeClass::kGpu: return "gpu";
    case PeClass::kCount: break;
  }
  return "unknown";
}

std::optional<PeClass> pe_class_from_name(std::string_view name) noexcept {
  for (std::size_t c = 0; c < kNumPeClasses; ++c) {
    const auto cls = static_cast<PeClass>(c);
    if (name == pe_class_name(cls)) return cls;
  }
  return std::nullopt;
}

bool pe_class_supports(PeClass cls, KernelId kernel) noexcept {
  switch (cls) {
    case PeClass::kCpu:
      return true;  // every API ships a C/C++ implementation (paper §II-C)
    case PeClass::kFftAccel:
      return kernel == KernelId::kFft || kernel == KernelId::kIfft;
    case PeClass::kMmultAccel:
      return kernel == KernelId::kMmult;
    case PeClass::kGpu:
      // The paper implements FFT and ZIP as CUDA kernels on the Jetson.
      return kernel == KernelId::kFft || kernel == KernelId::kIfft ||
             kernel == KernelId::kZip;
    case PeClass::kCount:
      break;
  }
  return false;
}

bool PeDescriptor::supports(KernelId kernel) const noexcept {
  return pe_class_supports(cls, kernel);
}

}  // namespace cedr::platform
