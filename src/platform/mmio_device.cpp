#include "cedr/platform/mmio_device.h"

#include <algorithm>
#include <cstring>

#include "cedr/kernels/fft.h"
#include "cedr/kernels/mmult.h"
#include "cedr/kernels/zip.h"

namespace cedr::platform {

Status MmioDevice::dma_write_a(std::span<const std::uint8_t> bytes) {
  std::lock_guard lock(mutex_);
  if (status_ == kStatusBusy) {
    return FailedPrecondition("DMA write while device busy");
  }
  operand_a_.assign(bytes.begin(), bytes.end());
  return Status::Ok();
}

Status MmioDevice::dma_write_b(std::span<const std::uint8_t> bytes) {
  std::lock_guard lock(mutex_);
  if (status_ == kStatusBusy) {
    return FailedPrecondition("DMA write while device busy");
  }
  operand_b_.assign(bytes.begin(), bytes.end());
  return Status::Ok();
}

Status MmioDevice::dma_read(std::span<std::uint8_t> bytes) {
  std::lock_guard lock(mutex_);
  if (status_ != kStatusDone) {
    return FailedPrecondition("DMA read before completion");
  }
  if (bytes.size() > result_.size()) {
    return OutOfRange("DMA read larger than result buffer");
  }
  std::copy_n(result_.begin(), bytes.size(), bytes.begin());
  status_ = kStatusIdle;  // readback re-arms the device
  return Status::Ok();
}

Status MmioDevice::write_reg(DeviceReg reg, std::uint32_t value) {
  std::lock_guard lock(mutex_);
  if (status_ == kStatusBusy) {
    return FailedPrecondition("register write while device busy");
  }
  switch (reg) {
    case DeviceReg::kSize:
      reg_size_ = value;
      return Status::Ok();
    case DeviceReg::kMode:
      reg_mode_ = value;
      return Status::Ok();
    case DeviceReg::kSizeAux:
      reg_size_aux_ = value;
      return Status::Ok();
    case DeviceReg::kSizeAux2:
      reg_size_aux2_ = value;
      return Status::Ok();
    case DeviceReg::kControl: {
      if (value != kCmdStart) {
        return InvalidArgument("unsupported control command");
      }
      if (hang_armed_) {
        // Injected hang: the IP core wedges instead of computing. The
        // status register stays busy until the emulated watchdog fires.
        hang_armed_ = false;
        status_ = kStatusBusy;
        polls_remaining_ = 0;
        return Status::Ok();
      }
      // The IP core "runs" now; completion is revealed after latency_polls
      // status reads, emulating the busy window a real worker polls through.
      const Status result = execute();
      status_ = result.ok() ? kStatusBusy : kStatusError;
      polls_remaining_ = result.ok() ? latency_polls(reg_size_) : 0;
      return Status::Ok();
    }
    case DeviceReg::kStatus:
      return InvalidArgument("status register is read-only");
  }
  return InvalidArgument("unknown register");
}

std::uint32_t MmioDevice::read_reg(DeviceReg reg) {
  std::lock_guard lock(mutex_);
  switch (reg) {
    case DeviceReg::kStatus:
      if (status_ == kStatusBusy) {
        if (hang_polls_remaining_ > 0) {
          // Hung operation: busy until the watchdog countdown expires.
          if (--hang_polls_remaining_ == 0) status_ = kStatusError;
        } else {
          if (polls_remaining_ > 0) --polls_remaining_;
          if (polls_remaining_ == 0) status_ = kStatusDone;
        }
      }
      return status_;
    case DeviceReg::kControl: return 0;
    case DeviceReg::kSize: return reg_size_;
    case DeviceReg::kMode: return reg_mode_;
    case DeviceReg::kSizeAux: return reg_size_aux_;
    case DeviceReg::kSizeAux2: return reg_size_aux2_;
  }
  return 0;
}

void MmioDevice::inject_hang(std::uint32_t watchdog_polls) {
  std::lock_guard lock(mutex_);
  hang_armed_ = true;
  hang_polls_remaining_ = std::max<std::uint32_t>(1, watchdog_polls);
}

void MmioDevice::reset() {
  std::lock_guard lock(mutex_);
  status_ = kStatusIdle;
  polls_remaining_ = 0;
  hang_armed_ = false;
  hang_polls_remaining_ = 0;
}

std::uint32_t MmioDevice::latency_polls(std::uint32_t n) const noexcept {
  // One poll per 256 elements, at least one: scales the polling loop with
  // problem size the way the real streaming IP would.
  return std::max<std::uint32_t>(1, n / 256);
}

Status FftDevice::execute() {
  const std::size_t n = reg_size_;
  if (n == 0 || !is_power_of_two(n) || n > 2048) {
    // The paper's IP supports up to 2048-point transforms.
    return InvalidArgument("FFT device size must be a power of two <= 2048");
  }
  if (operand_a_.size() != n * sizeof(cfloat)) {
    return InvalidArgument("FFT device operand size mismatch");
  }
  result_ = operand_a_;
  const std::span<cfloat> data(reinterpret_cast<cfloat*>(result_.data()), n);
  return kernels::fft_inplace(data, /*inverse=*/reg_mode_ != 0);
}

Status ZipDevice::execute() {
  const std::size_t n = reg_size_;
  if (n == 0) return InvalidArgument("ZIP device size is zero");
  if (operand_a_.size() != n * sizeof(cfloat) ||
      operand_b_.size() != n * sizeof(cfloat)) {
    return InvalidArgument("ZIP device operand size mismatch");
  }
  if (reg_mode_ > 3) return InvalidArgument("ZIP device mode out of range");
  result_.resize(n * sizeof(cfloat));
  const std::span<const cfloat> a(
      reinterpret_cast<const cfloat*>(operand_a_.data()), n);
  const std::span<const cfloat> b(
      reinterpret_cast<const cfloat*>(operand_b_.data()), n);
  const std::span<cfloat> out(reinterpret_cast<cfloat*>(result_.data()), n);
  return kernels::zip(a, b, out, static_cast<kernels::ZipOp>(reg_mode_));
}

Status MmultDevice::execute() {
  const std::size_t m = reg_size_;
  const std::size_t k = reg_size_aux_;
  const std::size_t n = reg_size_aux2_;
  if (m == 0 || k == 0 || n == 0) {
    return InvalidArgument("MMULT device dimensions must be nonzero");
  }
  if (operand_a_.size() != m * k * sizeof(float) ||
      operand_b_.size() != k * n * sizeof(float)) {
    return InvalidArgument("MMULT device operand size mismatch");
  }
  result_.resize(m * n * sizeof(float));
  const std::span<const float> a(
      reinterpret_cast<const float*>(operand_a_.data()), m * k);
  const std::span<const float> b(
      reinterpret_cast<const float*>(operand_b_.data()), k * n);
  const std::span<float> c(reinterpret_cast<float*>(result_.data()), m * n);
  return kernels::mmult_blocked(a, b, c, m, k, n);
}

}  // namespace cedr::platform
