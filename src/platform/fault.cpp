#include "cedr/platform/fault.h"

#include <cmath>

namespace cedr::platform {

namespace {

/// splitmix64 step; used to derive independent per-PE seeds from the plan
/// seed and the PE name so streams never depend on PE ordering.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) noexcept {
  // FNV-1a, folded through splitmix for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

Status check_prob(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return InvalidArgument(std::string(what) + " must be in [0, 1]");
  }
  return Status::Ok();
}

StatusOr<FaultKind> fault_kind_from_name(std::string_view name) {
  if (name == "none") return FaultKind::kNone;
  if (name == "fail") return FaultKind::kTransientFail;
  if (name == "latency") return FaultKind::kLatencySpike;
  if (name == "hang") return FaultKind::kDeviceHang;
  return InvalidArgument("unknown fault kind: " + std::string(name));
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransientFail: return "fail";
    case FaultKind::kLatencySpike: return "latency";
    case FaultKind::kDeviceHang: return "hang";
  }
  return "none";
}

// ---------------------------------------------------------------------------
// FaultSpec
// ---------------------------------------------------------------------------

json::Value FaultSpec::to_json() const {
  return json::Object{
      {"fail_prob", json::Value(fail_prob)},
      {"hang_prob", json::Value(hang_prob)},
      {"latency_prob", json::Value(latency_prob)},
      {"latency_spike_s", json::Value(latency_spike_s)},
      {"hang_s", json::Value(hang_s)},
  };
}

StatusOr<FaultSpec> FaultSpec::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("fault spec must be a JSON object");
  }
  FaultSpec spec;
  spec.fail_prob = value.get_double("fail_prob", 0.0);
  spec.hang_prob = value.get_double("hang_prob", 0.0);
  spec.latency_prob = value.get_double("latency_prob", 0.0);
  spec.latency_spike_s = value.get_double("latency_spike_s", 1e-3);
  spec.hang_s = value.get_double("hang_s", 10e-3);
  CEDR_RETURN_IF_ERROR(check_prob(spec.fail_prob, "fail_prob"));
  CEDR_RETURN_IF_ERROR(check_prob(spec.hang_prob, "hang_prob"));
  CEDR_RETURN_IF_ERROR(check_prob(spec.latency_prob, "latency_prob"));
  if (spec.latency_spike_s < 0.0 || spec.hang_s < 0.0) {
    return InvalidArgument("fault durations must be non-negative");
  }
  return spec;
}

// ---------------------------------------------------------------------------
// FaultPolicy
// ---------------------------------------------------------------------------

json::Value FaultPolicy::to_json() const {
  return json::Object{
      {"max_retries", json::Value(static_cast<std::int64_t>(max_retries))},
      {"backoff_base_s", json::Value(backoff_base_s)},
      {"backoff_factor", json::Value(backoff_factor)},
      {"quarantine_threshold",
       json::Value(static_cast<std::int64_t>(quarantine_threshold))},
      {"probe_period_s", json::Value(probe_period_s)},
      {"task_timeout_s", json::Value(task_timeout_s)},
  };
}

StatusOr<FaultPolicy> FaultPolicy::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("fault policy must be a JSON object");
  }
  FaultPolicy policy;
  const std::int64_t retries = value.get_int("max_retries", 3);
  const std::int64_t threshold = value.get_int("quarantine_threshold", 3);
  if (retries < 0 || threshold < 0) {
    return InvalidArgument("retry/quarantine bounds must be non-negative");
  }
  policy.max_retries = static_cast<std::uint32_t>(retries);
  policy.quarantine_threshold = static_cast<std::uint32_t>(threshold);
  policy.backoff_base_s = value.get_double("backoff_base_s", 250e-6);
  policy.backoff_factor = value.get_double("backoff_factor", 2.0);
  policy.probe_period_s = value.get_double("probe_period_s", 20e-3);
  policy.task_timeout_s = value.get_double("task_timeout_s", 1.0);
  if (policy.backoff_base_s < 0.0 || policy.backoff_factor < 1.0 ||
      policy.probe_period_s <= 0.0 || policy.task_timeout_s <= 0.0) {
    return InvalidArgument("fault policy timings out of range");
  }
  return policy;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

bool FaultPlan::empty() const noexcept {
  if (!defaults.quiet() || !scripted.empty()) return false;
  for (const auto& [name, spec] : per_pe) {
    if (!spec.quiet()) return false;
  }
  return true;
}

const FaultSpec& FaultPlan::spec_for(std::string_view pe_name) const {
  const auto it = per_pe.find(std::string(pe_name));
  return it == per_pe.end() ? defaults : it->second;
}

namespace {

Status validate_spec(const FaultSpec& spec, const std::string& who) {
  const auto bad_prob = [](double p) { return !(p >= 0.0 && p <= 1.0); };
  if (bad_prob(spec.fail_prob) || bad_prob(spec.hang_prob) ||
      bad_prob(spec.latency_prob)) {
    return InvalidArgument("fault probabilities of " + who +
                           " must lie in [0, 1]");
  }
  if (spec.latency_spike_s < 0.0 || spec.hang_s < 0.0) {
    return InvalidArgument("fault durations of " + who +
                           " must be non-negative");
  }
  return Status::Ok();
}

}  // namespace

Status FaultPlan::validate() const {
  CEDR_RETURN_IF_ERROR(validate_spec(defaults, "the default spec"));
  for (const auto& [name, spec] : per_pe) {
    CEDR_RETURN_IF_ERROR(validate_spec(spec, "PE '" + name + "'"));
  }
  for (const ScriptedFault& event : scripted) {
    if (event.pe.empty()) {
      return InvalidArgument("scripted fault with empty PE name");
    }
  }
  if (policy.backoff_base_s < 0.0 || policy.backoff_factor <= 0.0) {
    return InvalidArgument(
        "retry backoff needs base >= 0 and factor > 0");
  }
  if (policy.probe_period_s <= 0.0 || policy.task_timeout_s <= 0.0) {
    return InvalidArgument(
        "probe period and task timeout must be positive");
  }
  return Status::Ok();
}

json::Value FaultPlan::to_json() const {
  json::Object per_pe_obj;
  for (const auto& [name, spec] : per_pe) {
    per_pe_obj.emplace(name, spec.to_json());
  }
  json::Array scripted_rows;
  scripted_rows.reserve(scripted.size());
  for (const ScriptedFault& event : scripted) {
    scripted_rows.push_back(json::Object{
        {"pe", json::Value(event.pe)},
        {"task_index", json::Value(event.task_index)},
        {"kind", json::Value(fault_kind_name(event.kind))},
    });
  }
  return json::Object{
      {"seed", json::Value(seed)},
      {"default", defaults.to_json()},
      {"pes", json::Value(std::move(per_pe_obj))},
      {"scripted", json::Value(std::move(scripted_rows))},
      {"policy", policy.to_json()},
  };
}

StatusOr<FaultPlan> FaultPlan::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("fault plan must be a JSON object");
  }
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(value.get_int("seed", 0x5eedfa));
  if (const json::Value* defaults = value.find("default")) {
    auto parsed = FaultSpec::from_json(*defaults);
    if (!parsed.ok()) return parsed.status();
    plan.defaults = *parsed;
  }
  if (const json::Value* pes = value.find("pes")) {
    if (!pes->is_object()) {
      return InvalidArgument("fault plan 'pes' must be an object");
    }
    for (const auto& [name, spec_doc] : pes->as_object()) {
      auto parsed = FaultSpec::from_json(spec_doc);
      if (!parsed.ok()) return parsed.status();
      plan.per_pe.emplace(name, *parsed);
    }
  }
  if (const json::Value* scripted = value.find("scripted")) {
    if (!scripted->is_array()) {
      return InvalidArgument("fault plan 'scripted' must be an array");
    }
    for (const json::Value& row : scripted->as_array()) {
      if (!row.is_object()) {
        return InvalidArgument("scripted fault must be an object");
      }
      auto kind = fault_kind_from_name(row.get_string("kind", "fail"));
      if (!kind.ok()) return kind.status();
      plan.scripted.push_back(ScriptedFault{
          .pe = row.get_string("pe", ""),
          .task_index = static_cast<std::uint64_t>(row.get_int("task_index", 0)),
          .kind = *kind,
      });
    }
  }
  if (const json::Value* policy = value.find("policy")) {
    auto parsed = FaultPolicy::from_json(*policy);
    if (!parsed.ok()) return parsed.status();
    plan.policy = *parsed;
  }
  CEDR_RETURN_IF_ERROR(plan.validate());
  return plan;
}

StatusOr<FaultPlan> FaultPlan::load(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc.ok()) return doc.status();
  return from_json(*doc);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(const FaultPlan& plan,
                             std::span<const PeDescriptor> pes) {
  streams_.reserve(pes.size());
  for (const PeDescriptor& pe : pes) {
    PeStream stream;
    stream.spec = plan.spec_for(pe.name);
    // Seed from (plan seed, PE name): the stream survives PE reordering and
    // never couples to other PEs' draw counts.
    stream.rng.reseed(mix64(plan.seed ^ hash_name(pe.name)));
    for (const ScriptedFault& event : plan.scripted) {
      if (event.pe == pe.name) {
        stream.scripted[event.task_index] = event.kind;
      }
    }
    streams_.push_back(std::move(stream));
  }
}

FaultDecision FaultInjector::next(std::size_t pe_index) {
  if (pe_index >= streams_.size()) return {};
  PeStream& stream = streams_[pe_index];
  const std::uint64_t ordinal = stream.ordinal++;
  // Burn the probabilistic draws unconditionally so scripted events do not
  // shift the rest of the sequence (ordinal k always consumes 3 draws).
  const double u_fail = stream.rng.next_double();
  const double u_hang = stream.rng.next_double();
  const double u_latency = stream.rng.next_double();

  FaultKind kind = FaultKind::kNone;
  if (const auto it = stream.scripted.find(ordinal);
      it != stream.scripted.end()) {
    kind = it->second;
  } else if (u_fail < stream.spec.fail_prob) {
    kind = FaultKind::kTransientFail;
  } else if (u_hang < stream.spec.hang_prob) {
    kind = FaultKind::kDeviceHang;
  } else if (u_latency < stream.spec.latency_prob) {
    kind = FaultKind::kLatencySpike;
  }

  FaultDecision decision;
  decision.kind = kind;
  if (kind == FaultKind::kLatencySpike) {
    decision.duration_s = stream.spec.latency_spike_s;
  } else if (kind == FaultKind::kDeviceHang) {
    decision.duration_s = stream.spec.hang_s;
  }
  return decision;
}

std::uint64_t FaultInjector::decided(std::size_t pe_index) const noexcept {
  return pe_index < streams_.size() ? streams_[pe_index].ordinal : 0;
}

}  // namespace cedr::platform
