#include "cedr/platform/kernel_id.h"

namespace cedr::platform {

std::string_view kernel_name(KernelId id) noexcept {
  switch (id) {
    case KernelId::kFft: return "FFT";
    case KernelId::kIfft: return "IFFT";
    case KernelId::kZip: return "ZIP";
    case KernelId::kMmult: return "MMULT";
    case KernelId::kGeneric: return "GENERIC";
    case KernelId::kCount: break;
  }
  return "UNKNOWN";
}

std::optional<KernelId> kernel_from_name(std::string_view name) noexcept {
  if (name == "FFT") return KernelId::kFft;
  if (name == "IFFT") return KernelId::kIfft;
  if (name == "ZIP") return KernelId::kZip;
  if (name == "MMULT") return KernelId::kMmult;
  if (name == "GENERIC") return KernelId::kGeneric;
  return std::nullopt;
}

}  // namespace cedr::platform
