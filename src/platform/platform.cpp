#include "cedr/platform/platform.h"

#include <set>

namespace cedr::platform {
namespace {

/// Calibration notes
/// -----------------
/// Coefficients are chosen so that (a) relative PE speeds match the paper's
/// hardware (A53 @1.2 GHz vs FFT IP @300 MHz with AXI DMA; Carmel @2.3 GHz
/// vs Volta GPU behind cudaMemcpy/PCIe) and (b) the workload-level
/// magnitudes land in the ranges Figs. 5-10 report (hundreds of ms per app
/// in the oversubscribed region). Absolute values are therefore calibrated,
/// not measured; every trend in the experiments emerges from the mechanisms
/// (queue growth, contention, heuristic complexity), not from these numbers.

void fill_zcu102_costs(CostModel& costs) {
  // ARM Cortex-A53 @ 1.2 GHz software implementations.
  costs.set(KernelId::kFft, PeClass::kCpu,
            {.fixed_s = 20e-6, .per_point_s = 0.0, .per_nlogn_s = 6.0e-8});
  costs.set(KernelId::kIfft, PeClass::kCpu,
            {.fixed_s = 20e-6, .per_point_s = 0.0, .per_nlogn_s = 6.0e-8});
  costs.set(KernelId::kZip, PeClass::kCpu,
            {.fixed_s = 8e-6, .per_point_s = 3.0e-8, .per_nlogn_s = 0.0});
  // MMULT size is the m*k*n product, so per_point is per multiply-add.
  costs.set(KernelId::kMmult, PeClass::kCpu,
            {.fixed_s = 15e-6, .per_point_s = 1.2e-8, .per_nlogn_s = 0.0});
  // GENERIC size is "work units" = nanoseconds on a 1 GHz reference core.
  costs.set(KernelId::kGeneric, PeClass::kCpu,
            {.fixed_s = 1e-6, .per_point_s = 1e-9 * (1.0e9 / 1.2e9),
             .per_nlogn_s = 0.0});

  // Xilinx FFT IP @ 300 MHz: streaming, ~1 sample/cycle once loaded.
  // Profiling-table numbers, measured in isolation: the IP core looks
  // ~2x faster than the NEON software FFT at 1024 points. At runtime the
  // management thread's *CPU occupancy* (DMA staging + status polling on
  // the slow A53) is a multiple of this — see SimCosts::accel_occupancy —
  // which is why the paper finds 3 CPU + 0 FFT fastest (Fig. 10a).
  costs.set(KernelId::kFft, PeClass::kFftAccel,
            {.fixed_s = 1.0e-5, .per_point_s = 55.0 / 300.0e6, .per_nlogn_s = 0.0});
  costs.set(KernelId::kIfft, PeClass::kFftAccel,
            {.fixed_s = 1.0e-5, .per_point_s = 55.0 / 300.0e6, .per_nlogn_s = 0.0});
  // MMULT fabric accelerator: deeply pipelined MACs.
  costs.set(KernelId::kMmult, PeClass::kMmultAccel,
            {.fixed_s = 6e-6, .per_point_s = 2.0e-10, .per_nlogn_s = 0.0});
  // AXI DMA between PS DRAM and fabric BRAM, ~400 MB/s effective.
  costs.set_transfer(PeClass::kFftAccel, 4.0e-9, 7.0e-5);
  costs.set_transfer(PeClass::kMmultAccel, 4.0e-9, 7.0e-5);
}

void fill_jetson_costs(CostModel& costs) {
  // Carmel cores @ 2.3 GHz are roughly 2x the A53 per clock-adjusted op.
  costs.set(KernelId::kFft, PeClass::kCpu,
            {.fixed_s = 9e-6, .per_point_s = 0.0, .per_nlogn_s = 2.6e-8});
  costs.set(KernelId::kIfft, PeClass::kCpu,
            {.fixed_s = 9e-6, .per_point_s = 0.0, .per_nlogn_s = 2.6e-8});
  costs.set(KernelId::kZip, PeClass::kCpu,
            {.fixed_s = 4e-6, .per_point_s = 1.3e-8, .per_nlogn_s = 0.0});
  costs.set(KernelId::kMmult, PeClass::kCpu,
            {.fixed_s = 7e-6, .per_point_s = 5.0e-9, .per_nlogn_s = 0.0});
  costs.set(KernelId::kGeneric, PeClass::kCpu,
            {.fixed_s = 5e-7, .per_point_s = 1e-9 * (1.0e9 / 2.3e9),
             .per_nlogn_s = 0.0});

  // Volta GPU: high throughput, kernel-launch dominated for small sizes.
  costs.set(KernelId::kFft, PeClass::kGpu,
            {.fixed_s = 3.0e-5, .per_point_s = 0.0, .per_nlogn_s = 1.8e-9});
  costs.set(KernelId::kIfft, PeClass::kGpu,
            {.fixed_s = 3.0e-5, .per_point_s = 0.0, .per_nlogn_s = 1.8e-9});
  costs.set(KernelId::kZip, PeClass::kGpu,
            {.fixed_s = 2.5e-5, .per_point_s = 3.0e-10, .per_nlogn_s = 0.0});
  // cudaMemcpy over the internal PCIe/NVLink path, ~4 GB/s effective plus
  // per-call launch latency.
  costs.set_transfer(PeClass::kGpu, 5.0e-10, 4.0e-5);
}

void append_pes(PlatformConfig& config, PeClass cls, std::size_t count,
                double clock_hz) {
  for (std::size_t i = 0; i < count; ++i) {
    config.pes.push_back(PeDescriptor{
        .name = std::string(pe_class_name(cls)) + std::to_string(i),
        .cls = cls,
        .clock_hz = clock_hz,
    });
  }
}

}  // namespace

std::size_t PlatformConfig::count(PeClass cls) const noexcept {
  std::size_t n = 0;
  for (const PeDescriptor& pe : pes) {
    if (pe.cls == cls) ++n;
  }
  return n;
}

Status PlatformConfig::validate() const {
  if (worker_cores == 0) {
    return InvalidArgument("platform needs at least one worker core");
  }
  if (total_app_cores < worker_cores) {
    return InvalidArgument("total_app_cores cannot be below worker_cores");
  }
  if (pes.empty()) return InvalidArgument("platform has no PEs");
  std::set<std::string> names;
  for (const PeDescriptor& pe : pes) {
    if (pe.name.empty()) return InvalidArgument("PE with empty name");
    if (!names.insert(pe.name).second) {
      return InvalidArgument("duplicate PE name: " + pe.name);
    }
    if (pe.clock_hz <= 0.0) {
      return InvalidArgument("PE clock must be positive: " + pe.name);
    }
    if (pe.speed_factor <= 0.0) {
      return InvalidArgument("PE speed factor must be positive: " + pe.name);
    }
  }
  return Status::Ok();
}

json::Value PlatformConfig::to_json() const {
  json::Array pe_rows;
  for (const PeDescriptor& pe : pes) {
    pe_rows.push_back(json::Object{
        {"name", json::Value(pe.name)},
        {"class", json::Value(pe_class_name(pe.cls))},
        {"clock_hz", json::Value(pe.clock_hz)},
        {"speed_factor", json::Value(pe.speed_factor)},
    });
  }
  return json::Object{
      {"name", json::Value(name)},
      {"worker_cores", json::Value(worker_cores)},
      {"total_app_cores", json::Value(total_app_cores)},
      {"pes", json::Value(std::move(pe_rows))},
      {"costs", costs.to_json()},
  };
}

StatusOr<PlatformConfig> PlatformConfig::from_json(const json::Value& value) {
  if (!value.is_object()) return InvalidArgument("platform must be object");
  PlatformConfig config;
  config.name = value.get_string("name", "unnamed");
  config.worker_cores =
      static_cast<std::size_t>(value.get_int("worker_cores", 1));
  config.total_app_cores = static_cast<std::size_t>(
      value.get_int("total_app_cores",
                    static_cast<std::int64_t>(config.worker_cores)));
  const json::Value* pes = value.find("pes");
  if (pes == nullptr || !pes->is_array()) {
    return InvalidArgument("platform 'pes' must be an array");
  }
  for (const json::Value& row : pes->as_array()) {
    PeDescriptor pe;
    pe.name = row.get_string("name", "");
    pe.clock_hz = row.get_double("clock_hz", 1e9);
    pe.speed_factor = row.get_double("speed_factor", 1.0);
    const std::string cls = row.get_string("class", "cpu");
    bool found = false;
    for (std::size_t c = 0; c < kNumPeClasses; ++c) {
      if (cls == pe_class_name(static_cast<PeClass>(c))) {
        pe.cls = static_cast<PeClass>(c);
        found = true;
        break;
      }
    }
    if (!found) return InvalidArgument("unknown PE class: " + cls);
    config.pes.push_back(std::move(pe));
  }
  if (const json::Value* costs = value.find("costs")) {
    auto parsed = CostModel::from_json(*costs);
    if (!parsed.ok()) return parsed.status();
    config.costs = *std::move(parsed);
  }
  CEDR_RETURN_IF_ERROR(config.validate());
  return config;
}

PlatformConfig zcu102(std::size_t cpus, std::size_t ffts, std::size_t mmults) {
  PlatformConfig config;
  config.name = "zcu102";
  // 4 ARM cores total; one is reserved for the CEDR runtime (paper §IV-C),
  // so worker/application threads share the remaining cores.
  config.worker_cores = cpus;
  config.total_app_cores = cpus;
  append_pes(config, PeClass::kCpu, cpus, 1.2e9);
  append_pes(config, PeClass::kFftAccel, ffts, 3.0e8);
  append_pes(config, PeClass::kMmultAccel, mmults, 3.0e8);
  fill_zcu102_costs(config.costs);
  return config;
}

PlatformConfig jetson(std::size_t cpus, std::size_t gpus) {
  PlatformConfig config;
  config.name = "jetson";
  config.worker_cores = cpus;
  // 8 Carmel cores; one reserved for the runtime. The OS spreads API
  // application threads across all remaining 7 cores regardless of the
  // worker count (paper §IV-C).
  config.total_app_cores = 7;
  append_pes(config, PeClass::kCpu, cpus, 2.3e9);
  append_pes(config, PeClass::kGpu, gpus, 1.3e9);
  fill_jetson_costs(config.costs);
  return config;
}

PlatformConfig biglittle(std::size_t big_cpus, std::size_t little_cpus,
                         std::size_t ffts) {
  // The paper's future-work proposal (§VI): "exchange a fraction of the
  // heavyweight CPUs with a larger quantity of lightweight CPUs specialized
  // for worker thread management". LITTLE cores run the same ISA at ~45% of
  // the big cores' throughput but each backs an extra hardware context, so
  // total_app_cores grows with the LITTLE count.
  PlatformConfig config;
  config.name = "biglittle";
  config.worker_cores = big_cpus + little_cpus;
  config.total_app_cores = big_cpus + little_cpus;
  append_pes(config, PeClass::kCpu, big_cpus, 1.2e9);
  for (std::size_t i = 0; i < little_cpus; ++i) {
    config.pes.push_back(PeDescriptor{
        .name = "little" + std::to_string(i),
        .cls = PeClass::kCpu,
        .clock_hz = 6.0e8,
        .speed_factor = 0.45,
    });
  }
  append_pes(config, PeClass::kFftAccel, ffts, 3.0e8);
  fill_zcu102_costs(config.costs);
  return config;
}

PlatformConfig host(std::size_t cpus, std::size_t ffts, std::size_t mmults) {
  PlatformConfig config;
  config.name = "host";
  config.worker_cores = cpus;
  config.total_app_cores = cpus;
  append_pes(config, PeClass::kCpu, cpus, 2.0e9);
  append_pes(config, PeClass::kFftAccel, ffts, 3.0e8);
  append_pes(config, PeClass::kMmultAccel, mmults, 3.0e8);
  fill_zcu102_costs(config.costs);  // host runs functionally; table is nominal
  return config;
}

}  // namespace cedr::platform
