#include "cedr/obs/sampler.h"

#include <chrono>
#include <utility>

namespace cedr::obs {

Sampler::Sampler(double period_s, std::function<void(double)> tick)
    : period_s_(period_s), tick_(std::move(tick)) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  if (period_s_ <= 0.0 || thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Sampler::loop() {
  const auto start = std::chrono::steady_clock::now();
  const auto period = std::chrono::duration<double>(period_s_);
  auto next = start + period;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (cv_.wait_until(lock, next, [this] { return stop_requested_; })) break;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    lock.unlock();
    tick_(elapsed);
    lock.lock();
    next += period;
    // If a tick overran, skip ahead rather than firing a burst.
    const auto now = std::chrono::steady_clock::now();
    while (next <= now) next += period;
  }
}

}  // namespace cedr::obs
