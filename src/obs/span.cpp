#include "cedr/obs/span.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace cedr::obs {

const char* category_name(Category cat) {
  switch (cat) {
    case Category::kRuntime: return "runtime";
    case Category::kSched: return "sched";
    case Category::kWorker: return "worker";
    case Category::kIpc: return "ipc";
    case Category::kApp: return "app";
    case Category::kFault: return "fault";
    case Category::kSim: return "sim";
  }
  return "?";
}

void SpanEvent::set_name(const char* text) {
  if (text == nullptr) {
    name[0] = '\0';
    return;
  }
  std::size_t i = 0;
  for (; i + 1 < kNameCapacity && text[i] != '\0'; ++i) name[i] = text[i];
  name[i] = '\0';
}

SpanTracer::SpanTracer(std::size_t capacity) {
  capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, 16));
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

void SpanTracer::record(const SpanEvent& event) {
  if (!enabled()) return;
  const std::uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Claim the slot: spin until we flip its sequence from even to odd. The
  // window is tiny (a struct copy), so contention here means the ring is
  // severely undersized relative to the writer count. Reload the sequence
  // every iteration (an odd observation must not be spun on forever) and
  // yield periodically so a preempted holder can finish on a loaded core.
  std::uint32_t seq;
  for (int spins = 0;;) {
    seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1u) == 0 &&
        slot.seq.compare_exchange_weak(seq, seq + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      break;
    }
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
  slot.ticket = ticket;
  slot.event = event;
  slot.seq.store(seq + 2, std::memory_order_release);
}

void SpanTracer::complete_span(Category cat, const char* name,
                               std::uint64_t pid, std::uint64_t tid,
                               double start, double duration,
                               const char* arg0_name, double arg0,
                               const char* arg1_name, double arg1) {
  if (!enabled()) return;
  SpanEvent event;
  event.kind = EventKind::kComplete;
  event.category = cat;
  event.set_name(name);
  event.ts = start;
  event.dur = duration;
  event.pid = pid;
  event.tid = tid;
  event.arg0_name = arg0_name;
  event.arg0 = arg0;
  event.arg1_name = arg1_name;
  event.arg1 = arg1;
  record(event);
}

void SpanTracer::instant(Category cat, const char* name, std::uint64_t pid,
                         std::uint64_t tid, double ts, const char* arg0_name,
                         double arg0, const char* arg1_name, double arg1) {
  if (!enabled()) return;
  SpanEvent event;
  event.kind = EventKind::kInstant;
  event.category = cat;
  event.set_name(name);
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.arg0_name = arg0_name;
  event.arg0 = arg0;
  event.arg1_name = arg1_name;
  event.arg1 = arg1;
  record(event);
}

void SpanTracer::flow(EventKind kind, Category cat, const char* name,
                      std::uint64_t pid, std::uint64_t tid, double ts,
                      std::uint64_t flow_id) {
  if (!enabled()) return;
  SpanEvent event;
  event.kind = kind;
  event.category = cat;
  event.set_name(name);
  event.ts = ts;
  event.pid = pid;
  event.tid = tid;
  event.flow_id = flow_id;
  record(event);
}

std::vector<SpanEvent> SpanTracer::snapshot() const {
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<std::pair<std::uint64_t, SpanEvent>> staged;
  staged.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    Slot& slot = slots_[ticket & mask_];
    // Claim the slot the same way a writer would so the copy is race-free
    // under TSAN; a writer that arrives meanwhile simply spins for the
    // duration of one struct copy. Same reload-and-yield discipline as
    // record().
    std::uint32_t seq;
    for (int spins = 0;;) {
      seq = slot.seq.load(std::memory_order_relaxed);
      if ((seq & 1u) == 0 &&
          slot.seq.compare_exchange_weak(seq, seq + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        break;
      }
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    const std::uint64_t stored_ticket = slot.ticket;
    SpanEvent copy = slot.event;
    slot.seq.store(seq + 2, std::memory_order_release);
    // The slot may have been recycled by a faster writer; keep the event
    // only if it still belongs to the window we are iterating.
    if (stored_ticket >= begin && stored_ticket < end) {
      staged.emplace_back(stored_ticket, copy);
    }
  }
  std::sort(staged.begin(), staged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  staged.erase(std::unique(staged.begin(), staged.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               staged.end());
  std::vector<SpanEvent> events;
  events.reserve(staged.size());
  for (auto& [ticket, event] : staged) events.push_back(event);
  return events;
}

std::vector<SpanTracer::TicketedEvent> SpanTracer::drain(
    std::uint64_t& cursor) const {
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t window = end > capacity_ ? end - capacity_ : 0;
  // Events between the cursor and the surviving window were overwritten
  // before we got to them; they are gone for good, so account them now.
  const std::uint64_t begin = std::max(cursor, window);
  if (begin > cursor) {
    drain_dropped_.fetch_add(begin - cursor, std::memory_order_relaxed);
  }
  std::vector<TicketedEvent> staged;
  staged.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    Slot& slot = slots_[ticket & mask_];
    // Same claim protocol as snapshot(): flip the slot odd for one struct
    // copy so a concurrent writer spins briefly instead of racing.
    std::uint32_t seq;
    for (int spins = 0;;) {
      seq = slot.seq.load(std::memory_order_relaxed);
      if ((seq & 1u) == 0 &&
          slot.seq.compare_exchange_weak(seq, seq + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        break;
      }
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    const std::uint64_t stored_ticket = slot.ticket;
    SpanEvent copy = slot.event;
    slot.seq.store(seq + 2, std::memory_order_release);
    if (stored_ticket >= begin && stored_ticket < end) {
      staged.push_back(TicketedEvent{stored_ticket, copy});
    }
  }
  std::sort(staged.begin(), staged.end(),
            [](const TicketedEvent& a, const TicketedEvent& b) {
              return a.ticket < b.ticket;
            });
  staged.erase(std::unique(staged.begin(), staged.end(),
                           [](const TicketedEvent& a, const TicketedEvent& b) {
                             return a.ticket == b.ticket;
                           }),
               staged.end());
  // Slots recycled by writers that lapped the window mid-drain carry
  // tickets >= end (the next drain picks those up); the window events they
  // displaced will never be seen again, so they count as drain drops too.
  const std::uint64_t expected = end - begin;
  if (staged.size() < expected) {
    drain_dropped_.fetch_add(expected - staged.size(),
                             std::memory_order_relaxed);
  }
  cursor = end;
  return staged;
}

}  // namespace cedr::obs
