#include "cedr/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace cedr::obs {

int QuantileHistogram::bucket_index(double value) {
  if (!(value >= 1.0)) return 0;  // underflow bucket, also catches NaN
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5,1)
  const int octave = exp - 1;                   // value in [2^octave, 2^(octave+1))
  if (octave >= kOctaves) return kOctaves * kSubBuckets;  // clamp to top
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets));
  return 1 + octave * kSubBuckets + sub;
}

double QuantileHistogram::bucket_representative(int bucket) const {
  if (bucket == 0) return 0.5;
  const int octave = (bucket - 1) / kSubBuckets;
  const int sub = (bucket - 1) % kSubBuckets;
  const double base = std::ldexp(1.0, octave);
  return base * (1.0 + (static_cast<double>(sub) + 0.5) / kSubBuckets);
}

void QuantileHistogram::record(double value) {
  if (!(value >= 0.0)) value = 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
}

void QuantileHistogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

QuantileHistogram::Delta QuantileHistogram::snapshot_delta(Epoch& epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Delta delta;
  if (count_ < epoch.count) {
    // A reset() intervened; everything recorded since is the new delta.
    delta.count = count_;
    delta.sum = sum_;
  } else {
    delta.count = count_ - epoch.count;
    delta.sum = sum_ - epoch.sum;
  }
  epoch.count = count_;
  epoch.sum = sum_;
  return delta;
}

std::uint64_t QuantileHistogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double QuantileHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double QuantileHistogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double QuantileHistogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double QuantileHistogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double QuantileHistogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the q-quantile is the ceil(q*n)-th smallest sample, so
  // tail quantiles of small samples resolve to the tail (p99 of three
  // samples is the largest one, not the median).
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  constexpr int kTotal = 1 + kOctaves * kSubBuckets;
  for (int bucket = 0; bucket < kTotal; ++bucket) {
    seen += buckets_[bucket];
    if (static_cast<double>(seen) >= rank) {
      return std::clamp(bucket_representative(bucket), min_, max_);
    }
  }
  return max_;
}

json::Value QuantileHistogram::to_json() const {
  return json::Object{
      {"count", json::Value(count())},
      {"sum", json::Value(sum())},
      {"mean", json::Value(mean())},
      {"p50", json::Value(quantile(0.50))},
      {"p95", json::Value(quantile(0.95))},
      {"p99", json::Value(quantile(0.99))},
      {"max", json::Value(max())},
  };
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

QuantileHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<QuantileHistogram>();
  return *slot;
}

void MetricsRegistry::sample(const std::string& name, double t, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& points = series_[name];
  if (points.size() >= kSeriesCapacity) {
    points.erase(points.begin(),
                 points.begin() +
                     static_cast<std::ptrdiff_t>(points.size() -
                                                 kSeriesCapacity + 1));
  }
  points.push_back(SeriesPoint{t, value});
}

std::vector<MetricsRegistry::SeriesPoint> MetricsRegistry::series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  return it != series_.end() ? it->second : std::vector<SeriesPoint>{};
}

json::Value MetricsRegistry::to_json(std::size_t series_tail) const {
  json::Object gauges;
  json::Object series;
  std::vector<std::pair<std::string, QuantileHistogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : gauges_) {
      gauges.emplace(name, json::Value(value));
    }
    for (const auto& [name, points] : series_) {
      json::Array arr;
      const std::size_t begin =
          points.size() > series_tail ? points.size() - series_tail : 0;
      arr.reserve(points.size() - begin);
      for (std::size_t i = begin; i < points.size(); ++i) {
        arr.push_back(json::Object{
            {"t", json::Value(points[i].t)},
            {"v", json::Value(points[i].value)},
        });
      }
      series.emplace(name, json::Value(std::move(arr)));
    }
    hists.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      hists.emplace_back(name, hist.get());
    }
  }
  // Histogram serialization takes each histogram's own mutex; done outside
  // the registry lock to keep lock ordering trivial.
  json::Object histograms;
  for (const auto& [name, hist] : hists) {
    histograms.emplace(name, hist->to_json());
  }
  return json::Object{
      {"gauges", json::Value(std::move(gauges))},
      {"histograms", json::Value(std::move(histograms))},
      {"series", json::Value(std::move(series))},
  };
}

}  // namespace cedr::obs
