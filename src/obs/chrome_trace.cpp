#include "cedr/obs/chrome_trace.h"

#include <algorithm>
#include <set>
#include <utility>

namespace cedr::obs {
namespace {

const char* phase_for(EventKind kind) {
  switch (kind) {
    case EventKind::kComplete: return "X";
    case EventKind::kInstant: return "i";
    case EventKind::kFlowBegin: return "s";
    case EventKind::kFlowStep: return "t";
    case EventKind::kFlowEnd: return "f";
  }
  return "X";
}

}  // namespace

json::Value chrome_trace_json(const std::vector<SpanEvent>& events,
                              const std::vector<TrackName>& tracks) {
  // Sort by timestamp (stably, so same-ts events keep record order) to give
  // Perfetto the monotonic per-track stream it expects.
  std::vector<const SpanEvent*> ordered;
  ordered.reserve(events.size());
  for (const SpanEvent& event : events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanEvent* a, const SpanEvent* b) {
                     return a->ts < b->ts;
                   });

  json::Array rows;
  rows.reserve(events.size() + tracks.size() + 16);

  // Metadata first: explicit track names, then generated ones for any
  // (pid, tid) that shows up in the event stream without a name.
  std::set<std::uint64_t> named_pids;
  std::set<std::pair<std::uint64_t, std::uint64_t>> named_tids;
  for (const TrackName& track : tracks) {
    json::Object args{{"name", json::Value(track.name)}};
    if (track.is_process) {
      named_pids.insert(track.pid);
      rows.push_back(json::Object{
          {"ph", json::Value("M")},
          {"name", json::Value("process_name")},
          {"pid", json::Value(track.pid)},
          {"args", json::Value(std::move(args))},
      });
    } else {
      named_tids.insert({track.pid, track.tid});
      rows.push_back(json::Object{
          {"ph", json::Value("M")},
          {"name", json::Value("thread_name")},
          {"pid", json::Value(track.pid)},
          {"tid", json::Value(track.tid)},
          {"args", json::Value(std::move(args))},
      });
    }
  }
  for (const SpanEvent* event : ordered) {
    if (named_pids.insert(event->pid).second) {
      rows.push_back(json::Object{
          {"ph", json::Value("M")},
          {"name", json::Value("process_name")},
          {"pid", json::Value(event->pid)},
          {"args", json::Object{{"name",
                                 json::Value(event->pid == 0
                                                 ? std::string("runtime")
                                                 : "app " +
                                                       std::to_string(
                                                           event->pid - 1))}}},
      });
    }
    if (named_tids.insert({event->pid, event->tid}).second) {
      rows.push_back(json::Object{
          {"ph", json::Value("M")},
          {"name", json::Value("thread_name")},
          {"pid", json::Value(event->pid)},
          {"tid", json::Value(event->tid)},
          {"args",
           json::Object{{"name", json::Value("track " +
                                             std::to_string(event->tid))}}},
      });
    }
  }

  for (const SpanEvent* event : ordered) {
    json::Object row{
        {"ph", json::Value(phase_for(event->kind))},
        {"name", json::Value(std::string(event->name))},
        {"cat", json::Value(category_name(event->category))},
        {"pid", json::Value(event->pid)},
        {"tid", json::Value(event->tid)},
        {"ts", json::Value(event->ts * 1e6)},
    };
    if (event->kind == EventKind::kComplete) {
      row.emplace("dur", json::Value(event->dur * 1e6));
    }
    if (event->kind == EventKind::kInstant) {
      row.emplace("s", json::Value("t"));  // thread-scoped instant
    }
    if (event->kind == EventKind::kFlowBegin ||
        event->kind == EventKind::kFlowStep ||
        event->kind == EventKind::kFlowEnd) {
      row.emplace("id", json::Value(event->flow_id));
      if (event->kind == EventKind::kFlowEnd) {
        row.emplace("bp", json::Value("e"));  // bind to enclosing slice
      }
    }
    json::Object args;
    if (event->arg0_name != nullptr) {
      args.emplace(event->arg0_name, json::Value(event->arg0));
    }
    if (event->arg1_name != nullptr) {
      args.emplace(event->arg1_name, json::Value(event->arg1));
    }
    if (!args.empty()) row.emplace("args", json::Value(std::move(args)));
    rows.push_back(json::Value(std::move(row)));
  }

  return json::Object{
      {"traceEvents", json::Value(std::move(rows))},
      {"displayTimeUnit", json::Value("ms")},
  };
}

Status write_chrome_trace(const std::string& path,
                          const std::vector<SpanEvent>& events,
                          const std::vector<TrackName>& tracks) {
  return json::write_file(path, chrome_trace_json(events, tracks));
}

}  // namespace cedr::obs
