#include "cedr/obs/segment.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

namespace cedr::obs {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderBytes = 56;
constexpr std::size_t kTrackRecordBytes = 24;
constexpr std::size_t kSpanRecordBytes = 80;

// --- little-endian encode/decode ------------------------------------------

void put_u32(std::vector<char>& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f64(std::vector<char>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

double get_f64(const char* p) { return std::bit_cast<double>(get_u64(p)); }

// --- string table ----------------------------------------------------------

/// Deduplicating NUL-terminated string table; offsets are byte positions.
class StringTable {
 public:
  std::uint32_t intern(const char* text) {
    if (text == nullptr) return kNoString;
    return intern(std::string(text));
  }
  std::uint32_t intern(const std::string& text) {
    const auto it = offsets_.find(text);
    if (it != offsets_.end()) return it->second;
    const auto offset = static_cast<std::uint32_t>(bytes_.size());
    bytes_.insert(bytes_.end(), text.begin(), text.end());
    bytes_.push_back('\0');
    offsets_.emplace(text, offset);
    return offset;
  }
  [[nodiscard]] const std::vector<char>& bytes() const { return bytes_; }

 private:
  std::vector<char> bytes_;
  std::map<std::string, std::uint32_t> offsets_;
};

Status atomic_write(const std::string& path, const std::vector<char>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Internal("cannot open " + tmp + " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status write_segment_file(
    const std::string& path, std::uint64_t seq,
    std::uint64_t dropped_since_prev, const std::vector<TrackName>& tracks,
    const std::vector<SpanTracer::TicketedEvent>& events) {
  // Intern strings in deterministic first-appearance order: track names
  // first, then event names and arg names in stream order. The same event
  // stream therefore always yields byte-identical segments (the emulator
  // determinism test relies on this).
  StringTable strings;
  std::vector<std::uint32_t> track_names;
  track_names.reserve(tracks.size());
  for (const auto& track : tracks) track_names.push_back(strings.intern(track.name));
  struct EventNames {
    std::uint32_t name;
    std::uint32_t arg0;
    std::uint32_t arg1;
  };
  std::vector<EventNames> event_names;
  event_names.reserve(events.size());
  for (const auto& te : events) {
    event_names.push_back(EventNames{strings.intern(te.event.name),
                                     strings.intern(te.event.arg0_name),
                                     strings.intern(te.event.arg1_name)});
  }

  std::vector<char> payload;
  payload.reserve(strings.bytes().size() + tracks.size() * kTrackRecordBytes +
                  events.size() * kSpanRecordBytes);
  payload.insert(payload.end(), strings.bytes().begin(), strings.bytes().end());
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    put_u64(payload, tracks[i].pid);
    put_u64(payload, tracks[i].tid);
    payload.push_back(tracks[i].is_process ? 1 : 0);
    payload.push_back(0);
    payload.push_back(0);
    payload.push_back(0);
    put_u32(payload, track_names[i]);
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i].event;
    payload.push_back(static_cast<char>(e.kind));
    payload.push_back(static_cast<char>(e.category));
    payload.push_back(0);
    payload.push_back(0);
    put_u32(payload, event_names[i].name);
    put_u64(payload, events[i].ticket);
    put_f64(payload, e.ts);
    put_f64(payload, e.dur);
    put_u64(payload, e.pid);
    put_u64(payload, e.tid);
    put_u64(payload, e.flow_id);
    put_u32(payload, event_names[i].arg0);
    put_u32(payload, event_names[i].arg1);
    put_f64(payload, e.arg0);
    put_f64(payload, e.arg1);
  }

  std::vector<char> file;
  file.reserve(kHeaderBytes + payload.size());
  file.insert(file.end(), std::begin(kSegmentMagic), std::end(kSegmentMagic));
  put_u32(file, kSegmentVersion);
  put_u64(file, seq);
  put_u64(file, events.empty() ? 0 : events.front().ticket);
  put_u64(file, events.size());
  put_u64(file, dropped_since_prev);
  put_u32(file, static_cast<std::uint32_t>(tracks.size()));
  put_u32(file, static_cast<std::uint32_t>(strings.bytes().size()));
  put_u32(file, crc32(payload.data(), payload.size()));
  put_u32(file, static_cast<std::uint32_t>(payload.size()));
  file.insert(file.end(), payload.begin(), payload.end());
  return atomic_write(path, file);
}

StatusOr<Segment> read_segment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open segment " + path);
  std::vector<char> file((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  if (file.size() < kHeaderBytes) {
    return InvalidArgument(path + ": truncated header (" +
                           std::to_string(file.size()) + " bytes)");
  }
  if (std::memcmp(file.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return InvalidArgument(path + ": bad magic (not a .cbt segment)");
  }
  const std::uint32_t version = get_u32(file.data() + 4);
  if (version != kSegmentVersion) {
    return InvalidArgument(path + ": unsupported version " +
                           std::to_string(version));
  }
  Segment segment;
  segment.seq = get_u64(file.data() + 8);
  segment.first_ticket = get_u64(file.data() + 16);
  const std::uint64_t record_count = get_u64(file.data() + 24);
  segment.dropped_since_prev = get_u64(file.data() + 32);
  const std::uint32_t track_count = get_u32(file.data() + 40);
  const std::uint32_t table_bytes = get_u32(file.data() + 44);
  const std::uint32_t crc_expected = get_u32(file.data() + 48);
  const std::uint32_t payload_bytes = get_u32(file.data() + 52);
  if (file.size() != kHeaderBytes + payload_bytes) {
    return InvalidArgument(path + ": truncated payload (have " +
                           std::to_string(file.size() - kHeaderBytes) +
                           " bytes, header says " +
                           std::to_string(payload_bytes) + ")");
  }
  const std::uint64_t expected_payload =
      static_cast<std::uint64_t>(table_bytes) +
      static_cast<std::uint64_t>(track_count) * kTrackRecordBytes +
      record_count * kSpanRecordBytes;
  if (expected_payload != payload_bytes) {
    return InvalidArgument(path + ": inconsistent section sizes");
  }
  const char* payload = file.data() + kHeaderBytes;
  const std::uint32_t crc_actual = crc32(payload, payload_bytes);
  if (crc_actual != crc_expected) {
    return InvalidArgument(path + ": CRC mismatch (stored " +
                           std::to_string(crc_expected) + ", computed " +
                           std::to_string(crc_actual) + ")");
  }
  if (table_bytes > 0 && payload[table_bytes - 1] != '\0') {
    return InvalidArgument(path + ": string table not NUL-terminated");
  }

  // One backing string holds the whole table; decoded events point into it.
  // std::vector's move semantics keep element addresses stable, so a moved
  // Segment keeps its pointers valid.
  segment.strings.emplace_back(payload, table_bytes);
  const std::string& table = segment.strings.front();
  const auto string_at = [&](std::uint32_t offset) -> const char* {
    return table.data() + offset;
  };
  const auto check_offset = [&](std::uint32_t offset) {
    return offset < table_bytes;
  };

  const char* cursor = payload + table_bytes;
  segment.tracks.reserve(track_count);
  for (std::uint32_t i = 0; i < track_count; ++i, cursor += kTrackRecordBytes) {
    TrackName track;
    track.pid = get_u64(cursor);
    track.tid = get_u64(cursor + 8);
    track.is_process = cursor[16] != 0;
    const std::uint32_t name_off = get_u32(cursor + 20);
    if (!check_offset(name_off)) {
      return InvalidArgument(path + ": track name offset out of range");
    }
    track.name = string_at(name_off);
    segment.tracks.push_back(std::move(track));
  }
  segment.events.reserve(static_cast<std::size_t>(record_count));
  for (std::uint64_t i = 0; i < record_count; ++i, cursor += kSpanRecordBytes) {
    SpanTracer::TicketedEvent te;
    SpanEvent& e = te.event;
    e.kind = static_cast<EventKind>(static_cast<unsigned char>(cursor[0]));
    e.category = static_cast<Category>(static_cast<unsigned char>(cursor[1]));
    const std::uint32_t name_off = get_u32(cursor + 4);
    if (!check_offset(name_off)) {
      return InvalidArgument(path + ": event name offset out of range");
    }
    e.set_name(string_at(name_off));
    te.ticket = get_u64(cursor + 8);
    e.ts = get_f64(cursor + 16);
    e.dur = get_f64(cursor + 24);
    e.pid = get_u64(cursor + 32);
    e.tid = get_u64(cursor + 40);
    e.flow_id = get_u64(cursor + 48);
    const std::uint32_t arg0_off = get_u32(cursor + 56);
    const std::uint32_t arg1_off = get_u32(cursor + 60);
    if (arg0_off != kNoString) {
      if (!check_offset(arg0_off)) {
        return InvalidArgument(path + ": arg0 name offset out of range");
      }
      e.arg0_name = string_at(arg0_off);
    }
    if (arg1_off != kNoString) {
      if (!check_offset(arg1_off)) {
        return InvalidArgument(path + ": arg1 name offset out of range");
      }
      e.arg1_name = string_at(arg1_off);
    }
    e.arg0 = get_f64(cursor + 64);
    e.arg1 = get_f64(cursor + 72);
    segment.events.push_back(std::move(te));
  }
  return segment;
}

StatusOr<std::vector<std::string>> list_segments(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return NotFound("segment directory not found: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".cbt") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return Internal("cannot list " + dir + ": " + ec.message());
  std::sort(paths.begin(), paths.end());
  return paths;
}

StatusOr<StitchedTrace> stitch_segments(const std::vector<std::string>& paths) {
  StitchedTrace stitched;
  stitched.segments.reserve(paths.size());
  for (const auto& path : paths) {
    auto segment = read_segment(path);
    CEDR_RETURN_IF_ERROR(segment.status());
    stitched.dropped_total += segment.value().dropped_since_prev;
    stitched.segments.push_back(std::move(segment).value());
  }
  // Union the track tables in first-appearance order. Track tables only
  // grow in both runtimes (names are never forgotten while tracing), so the
  // union names every (pid, tid) any surviving segment references.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> seen_threads;
  std::map<std::uint64_t, std::size_t> seen_processes;
  for (const auto& segment : stitched.segments) {
    for (const auto& track : segment.tracks) {
      if (track.is_process) {
        if (seen_processes.emplace(track.pid, stitched.tracks.size()).second) {
          stitched.tracks.push_back(track);
        }
      } else if (seen_threads
                     .emplace(std::make_pair(track.pid, track.tid),
                              stitched.tracks.size())
                     .second) {
        stitched.tracks.push_back(track);
      }
    }
  }
  // Merge the event streams: dedup by ticket (an open segment rewritten
  // just before rotation can coexist with a crashed writer's older copy),
  // then re-sort to monotonic ticket order.
  struct Entry {
    std::uint64_t ticket;
    const SpanEvent* event;
  };
  std::vector<Entry> entries;
  for (const auto& segment : stitched.segments) {
    for (const auto& te : segment.events) {
      entries.push_back(Entry{te.ticket, &te.event});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.ticket < b.ticket;
                   });
  const std::size_t before = entries.size();
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.ticket == b.ticket;
                            }),
                entries.end());
  stitched.duplicates_removed = before - entries.size();
  stitched.events.reserve(entries.size());
  for (const auto& entry : entries) stitched.events.push_back(*entry.event);
  return stitched;
}

// --- SegmentWriter ---------------------------------------------------------

std::string SegmentWriter::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%06llu",
                static_cast<unsigned long long>(seq));
  return config_.dir + "/" + config_.prefix + name + ".cbt";
}

Status SegmentWriter::open() {
  if (config_.dir.empty()) {
    return InvalidArgument("segment directory must not be empty");
  }
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    return Internal("cannot create " + config_.dir + ": " + ec.message());
  }
  // Resume numbering after anything already present so a restarted daemon
  // appends to the directory instead of overwriting history; pre-existing
  // segments count toward the retention bound.
  auto existing = list_segments(config_.dir);
  CEDR_RETURN_IF_ERROR(existing.status());
  for (const auto& path : existing.value()) {
    finalized_.push_back(path);
  }
  if (!finalized_.empty()) {
    const auto parsed = read_segment(finalized_.back());
    seq_ = parsed.ok() ? parsed.value().seq + 1
                       : static_cast<std::uint64_t>(finalized_.size());
  }
  return Status::Ok();
}

Status SegmentWriter::write_open_segment(const std::vector<TrackName>& tracks) {
  CEDR_RETURN_IF_ERROR(write_segment_file(segment_path(seq_), seq_,
                                          pending_dropped_, tracks, pending_));
  open_written_ = true;
  return Status::Ok();
}

Status SegmentWriter::rotate() {
  finalized_.push_back(segment_path(seq_));
  ++seq_;
  ++segments_finalized_;
  open_written_ = false;
  if (config_.max_segments > 0) {
    while (finalized_.size() > config_.max_segments) {
      std::remove(finalized_.front().c_str());
      finalized_.pop_front();
    }
  }
  return Status::Ok();
}

Status SegmentWriter::append(
    const std::vector<SpanTracer::TicketedEvent>& events, std::uint64_t dropped,
    const std::vector<TrackName>& tracks, double now) {
  pending_dropped_ += dropped;
  if (!events.empty() && open_since_ < 0.0) open_since_ = now;
  pending_.insert(pending_.end(), events.begin(), events.end());
  events_written_ += events.size();
  // Size rotation: peel off full segments. A single oversized drain can
  // finalize several segments in one call.
  while (config_.max_segment_events > 0 &&
         pending_.size() >= config_.max_segment_events) {
    const auto split =
        pending_.begin() +
        static_cast<std::ptrdiff_t>(config_.max_segment_events);
    const std::vector<SpanTracer::TicketedEvent> chunk(pending_.begin(), split);
    CEDR_RETURN_IF_ERROR(write_segment_file(segment_path(seq_), seq_,
                                            pending_dropped_, tracks, chunk));
    pending_.erase(pending_.begin(), split);
    pending_dropped_ = 0;
    open_since_ = pending_.empty() ? -1.0 : now;
    CEDR_RETURN_IF_ERROR(rotate());
  }
  // Age rotation: the open segment's oldest event has waited long enough.
  if (!pending_.empty() && config_.max_segment_age_s > 0.0 &&
      open_since_ >= 0.0 && now - open_since_ >= config_.max_segment_age_s) {
    CEDR_RETURN_IF_ERROR(write_open_segment(tracks));
    CEDR_RETURN_IF_ERROR(rotate());
    pending_.clear();
    pending_dropped_ = 0;
    open_since_ = -1.0;
    return Status::Ok();
  }
  // Otherwise durably rewrite the open segment so a SIGKILL after this
  // flush loses nothing that was drained.
  if (!pending_.empty() || pending_dropped_ > 0) {
    return write_open_segment(tracks);
  }
  return Status::Ok();
}

Status SegmentWriter::finalize(const std::vector<TrackName>& tracks) {
  if (pending_.empty() && pending_dropped_ == 0 && !open_written_) {
    return Status::Ok();
  }
  CEDR_RETURN_IF_ERROR(write_open_segment(tracks));
  CEDR_RETURN_IF_ERROR(rotate());
  pending_.clear();
  pending_dropped_ = 0;
  open_since_ = -1.0;
  return Status::Ok();
}

// --- TraceFlusher ----------------------------------------------------------

Status TraceFlusher::flush(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto events = tracer_.drain(cursor_);
  const std::uint64_t dropped = tracer_.consume_dropped();
  if (dropped > 0) {
    dropped_total_.fetch_add(dropped, std::memory_order_relaxed);
  }
  return writer_.append(events, dropped, tracks_fn_(), now);
}

Status TraceFlusher::finish(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto events = tracer_.drain(cursor_);
  const std::uint64_t dropped = tracer_.consume_dropped();
  if (dropped > 0) {
    dropped_total_.fetch_add(dropped, std::memory_order_relaxed);
  }
  const auto tracks = tracks_fn_();
  CEDR_RETURN_IF_ERROR(writer_.append(events, dropped, tracks, now));
  return writer_.finalize(tracks);
}

}  // namespace cedr::obs
