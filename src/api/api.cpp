#include "cedr/cedr.h"

#include <string>

#include "cedr/api/impls.h"
#include "cedr/kernels/fft.h"
#include "cedr/kernels/mmult.h"
#include "cedr/kernels/zip.h"
#include "cedr/runtime/runtime.h"

namespace cedr {

/// Completion latch behind a non-blocking handle.
struct cedr_handle {
  rt::CompletionPtr completion;
};

namespace api {

bool runtime_attached() noexcept {
  return rt::thread_binding().runtime != nullptr;
}

namespace {

/// Dispatches one API invocation: inline on the calling thread when
/// standalone, or through enqueue_kernel when runtime-attached.
Status dispatch_blocking(rt::KernelRequest request) {
  rt::Runtime* runtime = rt::thread_binding().runtime;
  if (runtime == nullptr) {
    // Standalone: run the standard C/C++ implementation directly.
    const task::TaskFn& cpu =
        request.impls[static_cast<std::size_t>(platform::PeClass::kCpu)];
    if (!cpu) return Unimplemented("no CPU implementation for API");
    task::ExecContext ctx;
    return cpu(ctx);
  }
  auto completion = std::make_shared<rt::Completion>();
  CEDR_RETURN_IF_ERROR(runtime->enqueue_kernel(std::move(request), completion));
  // Fig. 4: the application thread sleeps until the worker signals.
  return completion->wait();
}

cedr_handle_t dispatch_nonblocking(rt::KernelRequest request) {
  rt::Runtime* runtime = rt::thread_binding().runtime;
  auto completion = std::make_shared<rt::Completion>();
  if (runtime == nullptr) {
    // Standalone: execute inline; the handle is born complete so WAIT and
    // BARRIER behave identically across both modes.
    const task::TaskFn& cpu =
        request.impls[static_cast<std::size_t>(platform::PeClass::kCpu)];
    if (!cpu) return nullptr;
    task::ExecContext ctx;
    completion->signal(cpu(ctx));
    return new cedr_handle{std::move(completion)};
  }
  const Status status = runtime->enqueue_kernel(std::move(request), completion);
  if (!status.ok()) return nullptr;
  return new cedr_handle{std::move(completion)};
}

rt::KernelRequest fft_request(const cedr_cplx* input, cedr_cplx* output,
                              std::size_t size, bool inverse) {
  return rt::KernelRequest{
      .name = inverse ? "IFFT" : "FFT",
      .kernel = inverse ? platform::KernelId::kIfft : platform::KernelId::kFft,
      .problem_size = size,
      .data_bytes = 2 * size * sizeof(cedr_cplx),
      .impls = make_fft_impls(input, output, size, inverse),
  };
}

rt::KernelRequest zip_request(const cedr_cplx* a, const cedr_cplx* b,
                              cedr_cplx* output, std::size_t size,
                              CedrZipOp op) {
  return rt::KernelRequest{
      .name = "ZIP",
      .kernel = platform::KernelId::kZip,
      .problem_size = size,
      .data_bytes = 3 * size * sizeof(cedr_cplx),
      .impls = make_zip_impls(a, b, output, size,
                              static_cast<kernels::ZipOp>(op)),
  };
}

rt::KernelRequest mmult_request(const float* a, const float* b, float* c,
                                std::size_t m, std::size_t k, std::size_t n) {
  return rt::KernelRequest{
      .name = "MMULT",
      .kernel = platform::KernelId::kMmult,
      .problem_size = m * k * n,
      .data_bytes = (m * k + k * n + m * n) * sizeof(float),
      .impls = make_mmult_impls(a, b, c, m, k, n),
  };
}

Status validate_fft_args(const cedr_cplx* input, cedr_cplx* output,
                         std::size_t size) {
  if (input == nullptr || output == nullptr) {
    return InvalidArgument("CEDR_FFT: null buffer");
  }
  if (!is_power_of_two(size)) {
    return InvalidArgument("CEDR_FFT: size must be a power of two");
  }
  return Status::Ok();
}

}  // namespace
}  // namespace api

Status CEDR_FFT(const cedr_cplx* input, cedr_cplx* output, std::size_t size) {
  CEDR_RETURN_IF_ERROR(api::validate_fft_args(input, output, size));
  return api::dispatch_blocking(api::fft_request(input, output, size, false));
}

Status CEDR_IFFT(const cedr_cplx* input, cedr_cplx* output, std::size_t size) {
  CEDR_RETURN_IF_ERROR(api::validate_fft_args(input, output, size));
  return api::dispatch_blocking(api::fft_request(input, output, size, true));
}

Status CEDR_ZIP(const cedr_cplx* a, const cedr_cplx* b, cedr_cplx* output,
                std::size_t size, CedrZipOp op) {
  if (a == nullptr || b == nullptr || output == nullptr) {
    return InvalidArgument("CEDR_ZIP: null buffer");
  }
  return api::dispatch_blocking(api::zip_request(a, b, output, size, op));
}

Status CEDR_MMULT(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n) {
  if (a == nullptr || b == nullptr || c == nullptr) {
    return InvalidArgument("CEDR_MMULT: null buffer");
  }
  if (m == 0 || k == 0 || n == 0) {
    return InvalidArgument("CEDR_MMULT: zero dimension");
  }
  return api::dispatch_blocking(api::mmult_request(a, b, c, m, k, n));
}

cedr_handle_t CEDR_FFT_NB(const cedr_cplx* input, cedr_cplx* output,
                          std::size_t size) {
  if (!api::validate_fft_args(input, output, size).ok()) return nullptr;
  return api::dispatch_nonblocking(api::fft_request(input, output, size, false));
}

cedr_handle_t CEDR_IFFT_NB(const cedr_cplx* input, cedr_cplx* output,
                           std::size_t size) {
  if (!api::validate_fft_args(input, output, size).ok()) return nullptr;
  return api::dispatch_nonblocking(api::fft_request(input, output, size, true));
}

cedr_handle_t CEDR_ZIP_NB(const cedr_cplx* a, const cedr_cplx* b,
                          cedr_cplx* output, std::size_t size, CedrZipOp op) {
  if (a == nullptr || b == nullptr || output == nullptr) return nullptr;
  return api::dispatch_nonblocking(api::zip_request(a, b, output, size, op));
}

cedr_handle_t CEDR_MMULT_NB(const float* a, const float* b, float* c,
                            std::size_t m, std::size_t k, std::size_t n) {
  if (a == nullptr || b == nullptr || c == nullptr || m == 0 || k == 0 ||
      n == 0) {
    return nullptr;
  }
  return api::dispatch_nonblocking(api::mmult_request(a, b, c, m, k, n));
}

Status CEDR_WAIT(cedr_handle_t handle) {
  if (handle == nullptr) return InvalidArgument("CEDR_WAIT: null handle");
  const Status status = handle->completion->wait();
  delete handle;
  return status;
}

Status CEDR_BARRIER(cedr_handle_t* handles, std::size_t count) {
  if (handles == nullptr && count > 0) {
    return InvalidArgument("CEDR_BARRIER: null handle array");
  }
  Status first_error = Status::Ok();
  for (std::size_t i = 0; i < count; ++i) {
    if (handles[i] == nullptr) {
      if (first_error.ok()) {
        first_error = InvalidArgument("CEDR_BARRIER: null handle");
      }
      continue;
    }
    const Status status = CEDR_WAIT(handles[i]);
    handles[i] = nullptr;
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  return first_error;
}

bool CEDR_POLL(cedr_handle_t handle) {
  return handle != nullptr && handle->completion->done();
}

}  // namespace cedr
