#include "cedr/api/impls.h"

#include <chrono>
#include <cstring>

#include "cedr/kernels/fft.h"
#include "cedr/kernels/mmult.h"

namespace cedr::api {
namespace {

using platform::DeviceReg;

/// Polls the device status register to completion. Returns the final status
/// word. This busy-wait is intentional: it reproduces the driverless MMIO
/// flow where the accelerator's management thread occupies its CPU while
/// the IP core runs — the contention mechanism behind Fig. 10 (a).
std::uint32_t poll_until_done(platform::MmioDevice& device) {
  std::uint32_t status = device.read_reg(DeviceReg::kStatus);
  while (status == platform::kStatusBusy) {
    status = device.read_reg(DeviceReg::kStatus);
  }
  return status;
}

template <typename T>
std::span<const std::uint8_t> as_bytes_of(const T* data, std::size_t count) {
  return {reinterpret_cast<const std::uint8_t*>(data), count * sizeof(T)};
}

template <typename T>
std::span<std::uint8_t> as_writable_bytes_of(T* data, std::size_t count) {
  return {reinterpret_cast<std::uint8_t*>(data), count * sizeof(T)};
}

Status run_fft_on_device(task::ExecContext& ctx, const cfloat* in, cfloat* out,
                         std::size_t n, bool inverse) {
  if (ctx.device == nullptr) {
    return Internal("FFT scheduled to accelerator with no device");
  }
  platform::MmioDevice& dev = *ctx.device;
  CEDR_RETURN_IF_ERROR(dev.dma_write_a(as_bytes_of(in, n)));
  CEDR_RETURN_IF_ERROR(
      dev.write_reg(DeviceReg::kSize, static_cast<std::uint32_t>(n)));
  CEDR_RETURN_IF_ERROR(dev.write_reg(DeviceReg::kMode, inverse ? 1 : 0));
  CEDR_RETURN_IF_ERROR(dev.write_reg(DeviceReg::kControl, platform::kCmdStart));
  if (poll_until_done(dev) != platform::kStatusDone) {
    return Internal("FFT device reported error");
  }
  return dev.dma_read(as_writable_bytes_of(out, n));
}

Status run_zip_on_device(task::ExecContext& ctx, const cfloat* a,
                         const cfloat* b, cfloat* out, std::size_t n,
                         kernels::ZipOp op) {
  if (ctx.device == nullptr) {
    return Internal("ZIP scheduled to accelerator with no device");
  }
  platform::MmioDevice& dev = *ctx.device;
  CEDR_RETURN_IF_ERROR(dev.dma_write_a(as_bytes_of(a, n)));
  CEDR_RETURN_IF_ERROR(dev.dma_write_b(as_bytes_of(b, n)));
  CEDR_RETURN_IF_ERROR(
      dev.write_reg(DeviceReg::kSize, static_cast<std::uint32_t>(n)));
  CEDR_RETURN_IF_ERROR(dev.write_reg(
      DeviceReg::kMode, static_cast<std::uint32_t>(op)));
  CEDR_RETURN_IF_ERROR(dev.write_reg(DeviceReg::kControl, platform::kCmdStart));
  if (poll_until_done(dev) != platform::kStatusDone) {
    return Internal("ZIP device reported error");
  }
  return dev.dma_read(as_writable_bytes_of(out, n));
}

Status run_mmult_on_device(task::ExecContext& ctx, const float* a,
                           const float* b, float* c, std::size_t m,
                           std::size_t k, std::size_t n) {
  if (ctx.device == nullptr) {
    return Internal("MMULT scheduled to accelerator with no device");
  }
  platform::MmioDevice& dev = *ctx.device;
  CEDR_RETURN_IF_ERROR(dev.dma_write_a(as_bytes_of(a, m * k)));
  CEDR_RETURN_IF_ERROR(dev.dma_write_b(as_bytes_of(b, k * n)));
  CEDR_RETURN_IF_ERROR(
      dev.write_reg(DeviceReg::kSize, static_cast<std::uint32_t>(m)));
  CEDR_RETURN_IF_ERROR(
      dev.write_reg(DeviceReg::kSizeAux, static_cast<std::uint32_t>(k)));
  CEDR_RETURN_IF_ERROR(
      dev.write_reg(DeviceReg::kSizeAux2, static_cast<std::uint32_t>(n)));
  CEDR_RETURN_IF_ERROR(dev.write_reg(DeviceReg::kControl, platform::kCmdStart));
  if (poll_until_done(dev) != platform::kStatusDone) {
    return Internal("MMULT device reported error");
  }
  return dev.dma_read(as_writable_bytes_of(c, m * n));
}

}  // namespace

ImplArray make_fft_impls(const cfloat* in, cfloat* out, std::size_t n,
                         bool inverse) {
  ImplArray impls{};
  impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
      [in, out, n, inverse](task::ExecContext&) {
        return kernels::fft({in, n}, {out, n}, inverse);
      };
  const auto device_impl = [in, out, n, inverse](task::ExecContext& ctx) {
    return run_fft_on_device(ctx, in, out, n, inverse);
  };
  // The Xilinx IP tops out at 2048 points; larger transforms fall back to
  // CPU-only support, which runnable_on() then enforces.
  if (n <= 2048) {
    impls[static_cast<std::size_t>(platform::PeClass::kFftAccel)] = device_impl;
  }
  impls[static_cast<std::size_t>(platform::PeClass::kGpu)] = device_impl;
  return impls;
}

ImplArray make_zip_impls(const cfloat* a, const cfloat* b, cfloat* out,
                         std::size_t n, kernels::ZipOp op) {
  ImplArray impls{};
  impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
      [a, b, out, n, op](task::ExecContext&) {
        return kernels::zip({a, n}, {b, n}, {out, n}, op);
      };
  impls[static_cast<std::size_t>(platform::PeClass::kGpu)] =
      [a, b, out, n, op](task::ExecContext& ctx) {
        return run_zip_on_device(ctx, a, b, out, n, op);
      };
  return impls;
}

ImplArray make_mmult_impls(const float* a, const float* b, float* c,
                           std::size_t m, std::size_t k, std::size_t n) {
  ImplArray impls{};
  impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
      [a, b, c, m, k, n](task::ExecContext&) {
        return kernels::mmult_blocked({a, m * k}, {b, k * n}, {c, m * n}, m, k,
                                      n);
      };
  impls[static_cast<std::size_t>(platform::PeClass::kMmultAccel)] =
      [a, b, c, m, k, n](task::ExecContext& ctx) {
        return run_mmult_on_device(ctx, a, b, c, m, k, n);
      };
  return impls;
}

ImplArray make_generic_impls(std::function<void()> fn,
                             std::size_t work_units) {
  ImplArray impls{};
  impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
      [fn = std::move(fn), work_units](task::ExecContext&) {
        if (fn) {
          fn();
        } else if (work_units > 0) {
          // Spin for ~work_units ns to model glue-node service time.
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::nanoseconds(work_units);
          while (std::chrono::steady_clock::now() < deadline) {
          }
        }
        return Status::Ok();
      };
  return impls;
}

}  // namespace cedr::api
