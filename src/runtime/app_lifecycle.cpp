// Application lifecycle: submissions (DAG and API mode), enqueue_kernel,
// app completion bookkeeping and the wait_* entry points. All lifecycle
// state lives under Impl::app_mutex (Level 0 of the lock hierarchy,
// runtime_impl.h); ready-queue pushes go through the sharded queue's own
// leaf locks after the lifecycle lock is released, so submitters never
// serialize against the scheduling round.

#include <chrono>
#include <cmath>
#include <utility>

#include "cedr/common/log.h"
#include "cedr/sched/rank.h"
#include "runtime_impl.h"

namespace cedr::rt {

StatusOr<std::shared_ptr<const DagPlan>> Runtime::Impl::plan_for(
    const std::shared_ptr<const task::AppDescriptor>& app,
    const platform::PlatformConfig& platform) {
  const task::AppDescriptor* key = app.get();
  {
    std::lock_guard lock(plan_mutex);
    auto it = plan_index.find(key);
    if (it != plan_index.end()) {
      plan_lru.splice(plan_lru.begin(), plan_lru, it->second);
      return *it->second;
    }
  }

  // Miss: validate and precompute outside the lock. This is the work the
  // legacy path repeated per instance — topological validation, HEFT
  // upward ranks, in-degree counts — now done once per descriptor.
  const auto topo = app->graph.topological_order();
  if (!topo.ok()) return topo.status();
  auto plan = std::make_shared<DagPlan>();
  plan->descriptor = app;
  const task::TaskGraph& graph = app->graph;
  const std::size_t n = graph.size();
  plan->pred_counts.resize(n);
  plan->ranks.resize(n);
  plan->successors.resize(n);
  plan->preds.resize(n);
  const auto rank_map = sched::upward_ranks(graph, platform);
  for (std::size_t i = 0; i < n; ++i) {
    const task::Task& t = graph.tasks()[i];
    const auto& pred_ids = graph.predecessors(t.id);
    plan->pred_counts[i] = static_cast<std::uint32_t>(pred_ids.size());
    if (pred_ids.empty()) plan->heads.push_back(static_cast<std::uint32_t>(i));
    for (const task::TaskId pred : pred_ids) {
      plan->preds[i].push_back(static_cast<std::uint32_t>(graph.index_of(pred)));
    }
    plan->ranks[i] = rank_map.at(t.id);
    for (const task::TaskId succ : graph.successors(t.id)) {
      plan->successors[i].push_back(
          static_cast<std::uint32_t>(graph.index_of(succ)));
    }
  }

  std::lock_guard lock(plan_mutex);
  auto it = plan_index.find(key);
  if (it != plan_index.end()) {
    // A concurrent submitter built the same plan first; keep theirs.
    plan_lru.splice(plan_lru.begin(), plan_lru, it->second);
    return *it->second;
  }
  plan_lru.push_front(std::shared_ptr<const DagPlan>(std::move(plan)));
  plan_index.emplace(key, plan_lru.begin());
  while (plan_lru.size() > kPlanCacheCapacity) {
    plan_index.erase(plan_lru.back()->descriptor.get());
    plan_lru.pop_back();
  }
  return plan_lru.front();
}

StatusOr<Runtime::Impl::PreparedDag> Runtime::Impl::prepare_dag(
    Runtime& rt, DagSubmission submission) {
  std::shared_ptr<const task::AppDescriptor> app =
      std::move(submission.descriptor);
  if (!app) return InvalidArgument("null application descriptor");
  const std::size_t n = app->graph.size();
  if (n == 0) return InvalidArgument("application graph is empty");
  if (!submission.impls.empty() && submission.impls.size() != n) {
    return InvalidArgument("impls count does not match the task graph");
  }
  auto plan_or = plan_for(app, rt.config_.platform);
  if (!plan_or.ok()) return plan_or.status();
  std::shared_ptr<const DagPlan> plan = std::move(*plan_or);

  PreparedDag out;
  out.instance = acquire_instance();
  AppInstance& instance = *out.instance;
  instance.name = app->name;
  instance.is_dag = true;
  instance.dag = std::move(app);
  instance.tasks_remaining = n;
  instance.remaining_preds.assign(plan->pred_counts.begin(),
                                  plan->pred_counts.end());
  if (!submission.impls.empty()) {
    instance.impls = std::move(submission.impls);
  } else {
    // Legacy descriptor-bound submission: snapshot the implementations so
    // the release path can move them out uniformly.
    instance.impls.reserve(n);
    for (const task::Task& t : instance.dag->graph.tasks()) {
      instance.impls.push_back(t.impls);
    }
  }

  // Head nodes enter the ready queue immediately (paper §II-A). Build them
  // while the instance is still locally owned — after it is published to
  // the apps map, only app_mutex holders may touch it.
  out.heads.reserve(plan->heads.size());
  for (const std::uint32_t head : plan->heads) {
    const task::Task& t = instance.dag->graph.tasks()[head];
    auto inflight = make_task();
    inflight->name = t.name;
    inflight->kernel = t.kernel;
    inflight->problem_size = t.problem_size;
    inflight->data_bytes = t.data_bytes;
    inflight->impls = std::move(instance.impls[head]);
    inflight->is_dag = true;
    inflight->dag_task_index = head;
    inflight->rank = plan->ranks[head];
    out.heads.push_back(std::move(inflight));
  }
  instance.plan = std::move(plan);
  return out;
}

StatusOr<std::uint64_t> Runtime::submit_dag(
    std::shared_ptr<const task::AppDescriptor> app) {
  return submit_dag(DagSubmission{.descriptor = std::move(app), .impls = {}});
}

StatusOr<std::uint64_t> Runtime::submit_dag(DagSubmission submission) {
  std::vector<DagSubmission> one;
  one.push_back(std::move(submission));
  auto results = submit_dag_batch(std::move(one));
  return std::move(results.front());
}

std::vector<StatusOr<std::uint64_t>> Runtime::submit_dag_batch(
    std::vector<DagSubmission> submissions) {
  std::vector<StatusOr<std::uint64_t>> results;
  if (submissions.empty()) return results;

  Stopwatch overhead;
  // Phase 1 — prepare every submission lock-free (plan-cache lookup,
  // instance + head-task construction).
  std::vector<StatusOr<Impl::PreparedDag>> prepared;
  prepared.reserve(submissions.size());
  std::size_t ok_count = 0;
  for (DagSubmission& submission : submissions) {
    prepared.push_back(impl_->prepare_dag(*this, std::move(submission)));
    if (prepared.back().ok()) ++ok_count;
  }

  // Phase 2 — publish all accepted instances under one lifecycle-lock hold:
  // the per-submission critical section of the legacy path, paid once per
  // batch.
  std::vector<std::uint64_t> ids(prepared.size(), 0);
  std::vector<std::size_t> task_counts(prepared.size(), 0);
  double arrival = 0.0;
  bool accepting = false;
  if (ok_count != 0) {
    std::lock_guard lock(impl_->app_mutex);
    accepting = impl_->started && impl_->accepting;
    if (accepting) {
      arrival = now();
      for (std::size_t i = 0; i < prepared.size(); ++i) {
        if (!prepared[i].ok()) continue;
        Impl::PreparedDag& prep = *prepared[i];
        const std::uint64_t id = impl_->next_instance_id++;
        prep.instance->id = id;
        prep.instance->arrival_time = arrival;
        prep.instance->launch_time = arrival;
        ids[i] = id;
        task_counts[i] = prep.instance->tasks_remaining;
        impl_->apps.emplace(id, std::move(prep.instance));
      }
      impl_->submitted.fetch_add(ok_count, std::memory_order_relaxed);
      impl_->runtime_overhead += overhead.elapsed();
    }
  }

  // Phase 3 — trace arrivals and batch-push every head task: one sequence
  // reservation and one lock per touched shard for the whole batch.
  std::vector<sched::ReadyQueueShards::PushItem> items;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (!prepared[i].ok() || !accepting) continue;
    const std::uint64_t id = ids[i];
    tracer_.instant(obs::Category::kApp, "app_arrival", 1 + id, 0, arrival,
                    "tasks", static_cast<double>(task_counts[i]));
    count("apps_submitted_dag");
    for (auto& inflight : prepared[i]->heads) {
      inflight->key =
          impl_->next_task_key.fetch_add(1, std::memory_order_relaxed);
      inflight->app_instance_id = id;
      inflight->enqueue_time = now();
      inflight->first_enqueue_time = inflight->enqueue_time;
      tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                   inflight->name.c_str(), 1 + id, 0, inflight->enqueue_time,
                   inflight->key);
      items.push_back(impl_->ready_item(std::move(inflight)));
    }
  }
  if (!items.empty()) {
    impl_->ready.push_batch(items);
    impl_->sched_epoch.fetch_add(1, std::memory_order_relaxed);
    impl_->wake_main();
  }
  if (accepting && instantiate_us_ != nullptr && ok_count != 0) {
    const double per_instance_us =
        overhead.elapsed() * 1e6 / static_cast<double>(submissions.size());
    for (std::size_t i = 0; i < ok_count; ++i) {
      instantiate_us_->record(per_instance_us);
    }
  }

  results.reserve(prepared.size());
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (!prepared[i].ok()) {
      results.emplace_back(prepared[i].status());
    } else if (!accepting) {
      results.emplace_back(
          FailedPrecondition("runtime is not accepting submissions"));
    } else {
      results.emplace_back(ids[i]);
    }
  }
  return results;
}

StatusOr<std::uint64_t> Runtime::submit_api(std::string app_name,
                                            std::function<void()> main_fn) {
  if (!main_fn) return InvalidArgument("null application main function");

  Stopwatch overhead;
  auto instance = impl_->acquire_instance();
  instance->name = std::move(app_name);
  instance->is_dag = false;
  AppInstance* raw = instance.get();

  std::uint64_t id = 0;
  {
    std::lock_guard lock(impl_->app_mutex);
    if (!impl_->started || !impl_->accepting) {
      return FailedPrecondition("runtime is not accepting submissions");
    }
    id = impl_->next_instance_id++;
    instance->id = id;
    instance->arrival_time = now();
    instance->launch_time = instance->arrival_time;
    impl_->apps.emplace(id, std::move(instance));
    impl_->submitted.fetch_add(1, std::memory_order_relaxed);
    impl_->runtime_overhead += overhead.elapsed();
  }
  tracer_.instant(obs::Category::kApp, "app_arrival", 1 + id, 0,
                  raw->arrival_time);
  count("apps_submitted_api");

  // "A new system thread is spawned that executes that application's main
  // function" (paper §II-C). The binding routes its libCEDR calls here.
  // The AppInstance address is stable (owned by the map via unique_ptr),
  // so spawning after the lock is released is safe. The handle is stored
  // under app_mutex: the spawned thread can run — and set thread_exited —
  // before the move-assignment completes, and the main loop's reaper reads
  // app_thread.joinable() under that lock.
  std::thread app_thread([this, raw, fn = std::move(main_fn)] {
    thread_binding() = ThreadBinding{this, raw->id};
    fn();
    thread_binding() = ThreadBinding{};
    raw->main_done.store(true, std::memory_order_release);
    raw->thread_exited.store(true, std::memory_order_release);
    impl_->wake_main();
  });
  {
    std::lock_guard lock(impl_->app_mutex);
    raw->app_thread = std::move(app_thread);
  }
  impl_->wake_main();
  return id;
}

Status Runtime::enqueue_kernel(KernelRequest request, CompletionPtr completion) {
  const ThreadBinding binding = thread_binding();
  if (binding.runtime != this) {
    return FailedPrecondition(
        "enqueue_kernel called from a thread not bound to this runtime");
  }
  if (!completion) return InvalidArgument("null completion");

  auto inflight = impl_->make_task();
  inflight->app_instance_id = binding.instance_id;
  inflight->name = std::move(request.name);
  inflight->kernel = request.kernel;
  inflight->problem_size = request.problem_size;
  inflight->data_bytes = request.data_bytes;
  inflight->impls = std::move(request.impls);
  inflight->completion = std::move(completion);
  // Single API calls have no DAG context; rank them by their average cost
  // so HEFT_RT still prioritizes heavyweight kernels. Ranks use the live
  // adapted tables when adaptation is on.
  const std::shared_ptr<const platform::CostModel> learned =
      adapt_ != nullptr ? adapt_->snapshot() : nullptr;
  const platform::CostModel& costs =
      learned != nullptr ? *learned : config_.platform.costs;
  double rank_total = 0.0;
  std::size_t rank_count = 0;
  for (const platform::PeDescriptor& pe : config_.platform.pes) {
    const double est = costs.estimate(
        inflight->kernel, pe.cls, inflight->problem_size, inflight->data_bytes);
    if (std::isfinite(est)) {
      rank_total += est;
      ++rank_count;
    }
  }
  inflight->rank = rank_count == 0 ? 0.0 : rank_total / rank_count;

  {
    std::lock_guard lock(impl_->app_mutex);
    auto it = impl_->apps.find(binding.instance_id);
    if (it == impl_->apps.end() || it->second->finished) {
      return FailedPrecondition("application instance is not active");
    }
    // Incrementing under the lifecycle lock pins the app open: it cannot
    // finish until this kernel's completion is processed.
    ++it->second->outstanding_kernels;
  }
  inflight->key = impl_->next_task_key.fetch_add(1, std::memory_order_relaxed);
  inflight->enqueue_time = now();
  inflight->first_enqueue_time = inflight->enqueue_time;
  tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
               inflight->name.c_str(), 1 + binding.instance_id, 0,
               inflight->enqueue_time, inflight->key);
  // "Pushing tasks to the ready queue ... is handled by the application
  // thread" in API-based CEDR (paper §IV-A) — this push is on the app
  // thread, not the main loop. It takes only the task's shard lock, so
  // concurrent app threads enqueueing for different PE classes don't
  // contend with each other or with the dispatching main loop.
  impl_->push_ready(std::move(inflight));
  impl_->sched_epoch.fetch_add(1, std::memory_order_relaxed);
  count("kernels_enqueued");
  impl_->wake_main();
  return Status::Ok();
}

void Runtime::finish_app_locked(AppInstance& app) {
  app.finished = true;
  const double completion = now();
  trace_.add_app(trace::AppRecord{
      .app_instance_id = app.id,
      .app_name = app.name,
      .arrival_time = app.arrival_time,
      .launch_time = app.launch_time,
      .completion_time = completion,
  });
  tracer_.instant(obs::Category::kApp, "app_complete", 1 + app.id, 0,
                  completion, "exec_time_s", completion - app.arrival_time);
  impl_->completed.fetch_add(1, std::memory_order_relaxed);
  count("apps_completed");
}

// ---------------------------------------------------------------------------
// Waiting
// ---------------------------------------------------------------------------

namespace {
/// Resolves the caller's timeout against the configured default: negative
/// means "use RuntimeConfig::default_wait_timeout_s", and a resolved value
/// of 0 means wait forever.
double resolve_timeout(double timeout_s, const RuntimeConfig& config) {
  return timeout_s < 0.0 ? config.default_wait_timeout_s : timeout_s;
}
}  // namespace

Status Runtime::wait_all(double timeout_s) {
  const double deadline = resolve_timeout(timeout_s, config_);
  const auto done = [this] {
    return impl_->completed.load(std::memory_order_relaxed) ==
           impl_->submitted.load(std::memory_order_relaxed);
  };
  std::unique_lock lock(impl_->app_mutex);
  if (deadline == 0.0) {
    impl_->app_done_cv.wait(lock, done);
    return Status::Ok();
  }
  if (!impl_->app_done_cv.wait_for(
          lock, std::chrono::duration<double>(deadline), done)) {
    return Unavailable("wait_all timed out");
  }
  return Status::Ok();
}

Status Runtime::wait_app(std::uint64_t instance_id, double timeout_s) {
  const double deadline = resolve_timeout(timeout_s, config_);
  const auto done = [this, instance_id] {
    auto it = impl_->apps.find(instance_id);
    return it == impl_->apps.end() || it->second->finished;
  };
  std::unique_lock lock(impl_->app_mutex);
  if (deadline == 0.0) {
    impl_->app_done_cv.wait(lock, done);
    return Status::Ok();
  }
  if (!impl_->app_done_cv.wait_for(
          lock, std::chrono::duration<double>(deadline), done)) {
    return Unavailable("wait_app timed out");
  }
  return Status::Ok();
}

}  // namespace cedr::rt
