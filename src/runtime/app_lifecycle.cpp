// Application lifecycle: submissions (DAG and API mode), enqueue_kernel,
// app completion bookkeeping and the wait_* entry points. All lifecycle
// state lives under Impl::app_mutex (Level 0 of the lock hierarchy,
// runtime_impl.h); ready-queue pushes go through the sharded queue's own
// leaf locks after the lifecycle lock is released, so submitters never
// serialize against the scheduling round.

#include <chrono>
#include <cmath>
#include <utility>

#include "cedr/common/log.h"
#include "cedr/sched/rank.h"
#include "runtime_impl.h"

namespace cedr::rt {

StatusOr<std::uint64_t> Runtime::submit_dag(
    std::shared_ptr<const task::AppDescriptor> app) {
  if (!app) return InvalidArgument("null application descriptor");
  const auto topo = app->graph.topological_order();
  if (!topo.ok()) return topo.status();
  if (app->graph.size() == 0) {
    return InvalidArgument("application graph is empty");
  }

  Stopwatch overhead;
  // "Parsing application DAG files" happens here in DAG-based CEDR: the
  // in-degree table and HEFT ranks are built per instance — outside the
  // lifecycle lock, since they depend only on the immutable descriptor.
  auto instance = std::make_unique<AppInstance>();
  instance->name = app->name;
  instance->is_dag = true;
  instance->dag = app;
  instance->tasks_remaining = app->graph.size();
  for (const task::Task& t : app->graph.tasks()) {
    instance->remaining_preds[t.id] = app->graph.predecessors(t.id).size();
  }
  instance->ranks = sched::upward_ranks(app->graph, config_.platform);
  const std::size_t total_tasks = instance->tasks_remaining;

  // Head nodes enter the ready queue immediately (paper §II-A). Build them
  // while the instance is still locally owned — after it is published to
  // the apps map, only app_mutex holders may touch it.
  std::vector<std::shared_ptr<InFlightTask>> heads;
  for (const task::TaskId head : app->graph.head_nodes()) {
    const task::Task& t = app->graph.get(head);
    auto inflight = std::make_shared<InFlightTask>();
    inflight->name = t.name;
    inflight->kernel = t.kernel;
    inflight->problem_size = t.problem_size;
    inflight->data_bytes = t.data_bytes;
    inflight->impls = t.impls;
    inflight->is_dag = true;
    inflight->dag_task_id = t.id;
    inflight->rank = instance->ranks[t.id];
    heads.push_back(std::move(inflight));
  }

  std::uint64_t id = 0;
  double arrival = 0.0;
  {
    std::lock_guard lock(impl_->app_mutex);
    if (!impl_->started || !impl_->accepting) {
      return FailedPrecondition("runtime is not accepting submissions");
    }
    id = impl_->next_instance_id++;
    instance->id = id;
    arrival = now();
    instance->arrival_time = arrival;
    instance->launch_time = arrival;
    impl_->apps.emplace(id, std::move(instance));
    impl_->submitted.fetch_add(1, std::memory_order_relaxed);
    impl_->runtime_overhead += overhead.elapsed();
  }
  tracer_.instant(obs::Category::kApp, "app_arrival", 1 + id, 0, arrival,
                  "tasks", static_cast<double>(total_tasks));
  count("apps_submitted_dag");

  // Pushing outside the lifecycle lock keeps DAG fan-out off the submission
  // critical section; each push takes only its shard's leaf lock.
  for (auto& inflight : heads) {
    inflight->key =
        impl_->next_task_key.fetch_add(1, std::memory_order_relaxed);
    inflight->app_instance_id = id;
    inflight->enqueue_time = now();
    inflight->first_enqueue_time = inflight->enqueue_time;
    tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                 inflight->name.c_str(), 1 + id, 0, inflight->enqueue_time,
                 inflight->key);
    impl_->push_ready(std::move(inflight));
  }
  impl_->sched_epoch.fetch_add(1, std::memory_order_relaxed);
  impl_->wake_main();
  return id;
}

StatusOr<std::uint64_t> Runtime::submit_api(std::string app_name,
                                            std::function<void()> main_fn) {
  if (!main_fn) return InvalidArgument("null application main function");

  Stopwatch overhead;
  auto instance = std::make_unique<AppInstance>();
  instance->name = std::move(app_name);
  instance->is_dag = false;
  AppInstance* raw = instance.get();

  std::uint64_t id = 0;
  {
    std::lock_guard lock(impl_->app_mutex);
    if (!impl_->started || !impl_->accepting) {
      return FailedPrecondition("runtime is not accepting submissions");
    }
    id = impl_->next_instance_id++;
    instance->id = id;
    instance->arrival_time = now();
    instance->launch_time = instance->arrival_time;
    impl_->apps.emplace(id, std::move(instance));
    impl_->submitted.fetch_add(1, std::memory_order_relaxed);
    impl_->runtime_overhead += overhead.elapsed();
  }
  tracer_.instant(obs::Category::kApp, "app_arrival", 1 + id, 0,
                  raw->arrival_time);
  count("apps_submitted_api");

  // "A new system thread is spawned that executes that application's main
  // function" (paper §II-C). The binding routes its libCEDR calls here.
  // The AppInstance address is stable (owned by the map via unique_ptr),
  // so spawning after the lock is released is safe. The handle is stored
  // under app_mutex: the spawned thread can run — and set thread_exited —
  // before the move-assignment completes, and the main loop's reaper reads
  // app_thread.joinable() under that lock.
  std::thread app_thread([this, raw, fn = std::move(main_fn)] {
    thread_binding() = ThreadBinding{this, raw->id};
    fn();
    thread_binding() = ThreadBinding{};
    raw->main_done.store(true, std::memory_order_release);
    raw->thread_exited.store(true, std::memory_order_release);
    impl_->wake_main();
  });
  {
    std::lock_guard lock(impl_->app_mutex);
    raw->app_thread = std::move(app_thread);
  }
  impl_->wake_main();
  return id;
}

Status Runtime::enqueue_kernel(KernelRequest request, CompletionPtr completion) {
  const ThreadBinding binding = thread_binding();
  if (binding.runtime != this) {
    return FailedPrecondition(
        "enqueue_kernel called from a thread not bound to this runtime");
  }
  if (!completion) return InvalidArgument("null completion");

  auto inflight = std::make_shared<InFlightTask>();
  inflight->app_instance_id = binding.instance_id;
  inflight->name = std::move(request.name);
  inflight->kernel = request.kernel;
  inflight->problem_size = request.problem_size;
  inflight->data_bytes = request.data_bytes;
  inflight->impls = std::move(request.impls);
  inflight->completion = std::move(completion);
  // Single API calls have no DAG context; rank them by their average cost
  // so HEFT_RT still prioritizes heavyweight kernels. Ranks use the live
  // adapted tables when adaptation is on.
  const std::shared_ptr<const platform::CostModel> learned =
      adapt_ != nullptr ? adapt_->snapshot() : nullptr;
  const platform::CostModel& costs =
      learned != nullptr ? *learned : config_.platform.costs;
  double rank_total = 0.0;
  std::size_t rank_count = 0;
  for (const platform::PeDescriptor& pe : config_.platform.pes) {
    const double est = costs.estimate(
        inflight->kernel, pe.cls, inflight->problem_size, inflight->data_bytes);
    if (std::isfinite(est)) {
      rank_total += est;
      ++rank_count;
    }
  }
  inflight->rank = rank_count == 0 ? 0.0 : rank_total / rank_count;

  {
    std::lock_guard lock(impl_->app_mutex);
    auto it = impl_->apps.find(binding.instance_id);
    if (it == impl_->apps.end() || it->second->finished) {
      return FailedPrecondition("application instance is not active");
    }
    // Incrementing under the lifecycle lock pins the app open: it cannot
    // finish until this kernel's completion is processed.
    ++it->second->outstanding_kernels;
  }
  inflight->key = impl_->next_task_key.fetch_add(1, std::memory_order_relaxed);
  inflight->enqueue_time = now();
  inflight->first_enqueue_time = inflight->enqueue_time;
  tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
               inflight->name.c_str(), 1 + binding.instance_id, 0,
               inflight->enqueue_time, inflight->key);
  // "Pushing tasks to the ready queue ... is handled by the application
  // thread" in API-based CEDR (paper §IV-A) — this push is on the app
  // thread, not the main loop. It takes only the task's shard lock, so
  // concurrent app threads enqueueing for different PE classes don't
  // contend with each other or with the dispatching main loop.
  impl_->push_ready(std::move(inflight));
  impl_->sched_epoch.fetch_add(1, std::memory_order_relaxed);
  count("kernels_enqueued");
  impl_->wake_main();
  return Status::Ok();
}

void Runtime::finish_app_locked(AppInstance& app) {
  app.finished = true;
  const double completion = now();
  trace_.add_app(trace::AppRecord{
      .app_instance_id = app.id,
      .app_name = app.name,
      .arrival_time = app.arrival_time,
      .launch_time = app.launch_time,
      .completion_time = completion,
  });
  tracer_.instant(obs::Category::kApp, "app_complete", 1 + app.id, 0,
                  completion, "exec_time_s", completion - app.arrival_time);
  impl_->completed.fetch_add(1, std::memory_order_relaxed);
  count("apps_completed");
}

// ---------------------------------------------------------------------------
// Waiting
// ---------------------------------------------------------------------------

namespace {
/// Resolves the caller's timeout against the configured default: negative
/// means "use RuntimeConfig::default_wait_timeout_s", and a resolved value
/// of 0 means wait forever.
double resolve_timeout(double timeout_s, const RuntimeConfig& config) {
  return timeout_s < 0.0 ? config.default_wait_timeout_s : timeout_s;
}
}  // namespace

Status Runtime::wait_all(double timeout_s) {
  const double deadline = resolve_timeout(timeout_s, config_);
  const auto done = [this] {
    return impl_->completed.load(std::memory_order_relaxed) ==
           impl_->submitted.load(std::memory_order_relaxed);
  };
  std::unique_lock lock(impl_->app_mutex);
  if (deadline == 0.0) {
    impl_->app_done_cv.wait(lock, done);
    return Status::Ok();
  }
  if (!impl_->app_done_cv.wait_for(
          lock, std::chrono::duration<double>(deadline), done)) {
    return Unavailable("wait_all timed out");
  }
  return Status::Ok();
}

Status Runtime::wait_app(std::uint64_t instance_id, double timeout_s) {
  const double deadline = resolve_timeout(timeout_s, config_);
  const auto done = [this, instance_id] {
    auto it = impl_->apps.find(instance_id);
    return it == impl_->apps.end() || it->second->finished;
  };
  std::unique_lock lock(impl_->app_mutex);
  if (deadline == 0.0) {
    impl_->app_done_cv.wait(lock, done);
    return Status::Ok();
  }
  if (!impl_->app_done_cv.wait_for(
          lock, std::chrono::duration<double>(deadline), done)) {
    return Unavailable("wait_app timed out");
  }
  return Status::Ok();
}

}  // namespace cedr::rt
