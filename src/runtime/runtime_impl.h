#pragma once
// Private runtime internals shared by the runtime/ translation units
// (runtime.cpp, app_lifecycle.cpp, ready_state.cpp, dispatch.cpp).
//
// Lock hierarchy (docs/scheduling.md) — acquire strictly downward, never
// hold a lower lock while taking a higher one:
//
//   Level 0  app_mutex     application lifecycle: apps map, instance ids,
//                          accepting/started flags, runtime_overhead,
//                          app_done_cv predicates
//   Level 1  health_mutex  per-PE fault-tolerance state (quarantine,
//                          probe windows, consecutive faults)
//   Leaves   event_mutex   completion records + main-loop wakeups
//            shard locks   inside ReadyQueueShards (one per PE class)
//            plan_mutex    per-descriptor scheduling-plan cache (DagPlan)
//            pool_mutex    recycled AppInstance freelist
//            arena mutex   inside SlabArena (control-block freelists)
//
// The three new leaves are never held while taking any other lock: plan
// lookups and misses run before the lifecycle lock is taken, instance
// recycling runs after it is released, and the arena lock lives entirely
// inside allocate/deallocate.
//
// Main-loop-private state (deferred retries, scheduler-blocked bookkeeping,
// PE availability estimates) is touched only by the main event-loop thread
// and needs no lock at all; counters crossing threads are plain atomics.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cedr/common/stopwatch.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sched/frontier.h"
#include "cedr/sched/ready_queue.h"

namespace cedr::rt {

inline constexpr std::string_view kLogTag = "runtime";

/// Size-classed recycling allocator for runtime control blocks
/// (docs/runtime_lifecycle.md). Freed blocks go onto a per-size freelist
/// instead of back to the global heap, so steady-state submission traffic
/// (one InFlightTask shared-state block per task) does no heap work after
/// warm-up. Blocks are only returned to the OS when the arena is destroyed,
/// which also keeps every handed-out address stable for the arena's
/// lifetime. Thread-safe; the internal mutex is a leaf lock.
class SlabArena {
 public:
  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;
  ~SlabArena() {
    for (auto& [bytes, blocks] : free_) {
      for (void* block : blocks) ::operator delete(block);
    }
  }

  [[nodiscard]] void* allocate(std::size_t bytes) {
    {
      std::lock_guard lock(mutex_);
      auto it = free_.find(bytes);
      if (it != free_.end() && !it->second.empty()) {
        void* block = it->second.back();
        it->second.pop_back();
        recycled_.fetch_add(1, std::memory_order_relaxed);
        return block;
      }
    }
    fresh_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
  }

  void deallocate(void* block, std::size_t bytes) {
    std::lock_guard lock(mutex_);
    free_[bytes].push_back(block);
  }

  /// Blocks served from a freelist / from the heap (test visibility).
  [[nodiscard]] std::uint64_t recycled() const noexcept {
    return recycled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fresh() const noexcept {
    return fresh_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::unordered_map<std::size_t, std::vector<void*>> free_;
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> fresh_{0};
};

/// Minimal std allocator over a SlabArena, for allocate_shared: the
/// combined control-block + object node of every InFlightTask comes from —
/// and returns to — the arena's freelists.
template <typename T>
struct SlabAllocator {
  using value_type = T;

  SlabArena* arena = nullptr;

  SlabAllocator() = default;
  explicit SlabAllocator(SlabArena* a) noexcept : arena(a) {}
  template <typename U>
  SlabAllocator(const SlabAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena(other.arena) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena->deallocate(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const SlabAllocator<U>& o) const noexcept {
    return arena == o.arena;
  }
};

/// Immutable per-descriptor scheduling precomputation, shared by every
/// instance submitted against the same AppDescriptor and cached by
/// Impl::plan_for. Everything is keyed by graph *storage index*
/// (TaskGraph::index_of), so per-instance state is flat vectors instead of
/// per-submission hash maps. Holding `descriptor` anchors the key pointer:
/// a cached plan's descriptor address can never be recycled into a
/// different graph while the entry lives.
struct DagPlan {
  std::shared_ptr<const task::AppDescriptor> descriptor;
  std::vector<std::uint32_t> heads;        ///< indices with no predecessors
  std::vector<std::uint32_t> pred_counts;  ///< in-degree by index
  std::vector<double> ranks;               ///< HEFT upward ranks by index
  std::vector<std::vector<std::uint32_t>> successors;  ///< index lists
  /// Predecessor index lists — the lookahead frontier builder walks these
  /// to decide whether a successor's uncompleted predecessors are all
  /// inside the window (docs/scheduling.md "Lookahead rounds").
  std::vector<std::vector<std::uint32_t>> preds;
};

/// A task in flight through the runtime (one DAG node or one API call).
/// Retry state (attempt, failed_class_mask, retry_at) is only touched by
/// the main event loop while the task is out of the ready queue, so it
/// needs no lock.
struct Runtime::InFlightTask {
  std::uint64_t key = 0;  ///< unique per runtime
  std::uint64_t app_instance_id = 0;
  std::string name;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t problem_size = 0;
  std::size_t data_bytes = 0;
  std::array<task::TaskFn, platform::kNumPeClasses> impls{};
  CompletionPtr completion;  ///< API-mode latch; null for DAG tasks
  /// Graph storage index of this node (valid when is_dag): successor
  /// release indexes the instance's flat DagPlan state directly.
  std::uint32_t dag_task_index = 0;
  bool is_dag = false;
  double rank = 0.0;
  double enqueue_time = 0.0;  ///< most recent (re-)enqueue
  // Fault-tolerance state (main-loop private, see above).
  std::uint32_t attempt = 0;           ///< executions beyond the first
  std::uint32_t failed_class_mask = 0; ///< PE classes that already failed it
  double first_enqueue_time = 0.0;     ///< for retry-latency accounting
  double retry_at = 0.0;               ///< backoff release time (deferred)
};

/// One application instance being managed by the runtime. Guarded by the
/// app-lifecycle mutex (Impl::app_mutex) unless noted.
struct Runtime::AppInstance {
  std::uint64_t id = 0;
  std::string name;
  bool is_dag = false;
  double arrival_time = 0.0;
  double launch_time = 0.0;
  bool finished = false;

  // DAG mode (docs/runtime_lifecycle.md): the shared per-descriptor plan
  // plus flat per-instance state, all indexed by graph storage index.
  std::shared_ptr<const task::AppDescriptor> dag;
  std::shared_ptr<const DagPlan> plan;
  std::vector<std::uint32_t> remaining_preds;
  /// Per-task implementation arrays, moved one by one into InFlightTasks as
  /// nodes become ready; for legacy descriptor-bound submissions these are
  /// copies of Task::impls made at prepare time.
  std::vector<std::array<task::TaskFn, platform::kNumPeClasses>> impls;
  std::size_t tasks_remaining = 0;

  // API mode.
  std::thread app_thread;
  std::atomic<bool> main_done{false};
  std::atomic<bool> thread_exited{false};
  /// The reaper claimed `app_thread` for joining (app_mutex). Gates erasure:
  /// `thread_exited` can be observed before the handle is move-assigned in
  /// submit_api, so "not joinable" alone does not mean "safe to destroy".
  bool thread_reaped = false;
  std::int64_t outstanding_kernels = 0;  ///< guarded by app_mutex

  /// Clears every field for freelist reuse, keeping vector/string
  /// capacities. The caller guarantees app_thread is not joinable (the
  /// reaper joined it before the instance was erased).
  void reset_for_reuse() {
    id = 0;
    name.clear();
    is_dag = false;
    arrival_time = 0.0;
    launch_time = 0.0;
    finished = false;
    dag.reset();
    plan.reset();
    remaining_preds.clear();
    impls.clear();
    tasks_remaining = 0;
    main_done.store(false, std::memory_order_relaxed);
    thread_exited.store(false, std::memory_order_relaxed);
    thread_reaped = false;
    outstanding_kernels = 0;
  }
};

/// Emulated accelerator devices owned by one worker.
struct DeviceBundle {
  std::unique_ptr<platform::FftDevice> fft;
  std::unique_ptr<platform::ZipDevice> zip;
  std::unique_ptr<platform::MmultDevice> mmult;

  [[nodiscard]] platform::MmioDevice* for_kernel(
      platform::KernelId kernel) const noexcept {
    switch (kernel) {
      case platform::KernelId::kFft:
      case platform::KernelId::kIfft:
        return fft.get();
      case platform::KernelId::kZip:
        return zip.get();
      case platform::KernelId::kMmult:
        return mmult.get();
      default:
        return nullptr;
    }
  }
};

/// One PE and the worker thread that manages it.
struct Runtime::Worker {
  std::size_t pe_index = 0;
  platform::PeDescriptor pe;
  DeviceBundle devices;
  BlockingQueue<std::shared_ptr<InFlightTask>> mailbox;
  std::thread thread;

  // Fault-tolerance health, guarded by Impl::health_mutex (written only by
  // the main event loop; read by stats() / pe_health() / the sampler).
  std::uint32_t consecutive_faults = 0;
  std::uint64_t faults_seen = 0;
  std::uint64_t quarantines = 0;
  bool quarantined = false;
  bool probe_inflight = false;  ///< a probe task is on this PE right now
  double probe_at = 0.0;        ///< when the next probe may be dispatched

  // Busy-time accounting for the utilization sampler and STATS. Written
  // only by the owning worker thread; read elsewhere without locks, hence
  // atomics (plain store/load, single writer).
  std::atomic<double> busy_seconds{0.0};
  std::atomic<double> busy_since{-1.0};  ///< start of current task, or -1
  std::atomic<std::uint64_t> tasks_done{0};

  /// Busy seconds including the currently running task, at runtime time `t`.
  [[nodiscard]] double busy_at(double t) const {
    double busy = busy_seconds.load(std::memory_order_relaxed);
    const double since = busy_since.load(std::memory_order_relaxed);
    if (since >= 0.0 && t > since) busy += t - since;
    return busy;
  }
};

struct Runtime::Impl {
  explicit Impl(obs::QuantileHistogram* lock_wait_us)
      : ready(lock_wait_us) {}

  // --- Slab arena: declared FIRST so it is destroyed LAST — every
  // InFlightTask control block below (ready shards, deferred, completions,
  // worker mailboxes, apps) returns to it on destruction. -------------------
  SlabArena arena;

  /// Allocates an InFlightTask whose shared control block lives in (and
  /// recycles through) the arena.
  [[nodiscard]] std::shared_ptr<InFlightTask> make_task() {
    return std::allocate_shared<InFlightTask>(SlabAllocator<InFlightTask>(&arena));
  }

  // --- Level 0: application lifecycle. -------------------------------------
  mutable std::mutex app_mutex;
  std::condition_variable app_done_cv;  ///< wakes wait_all / wait_app
  bool started = false;                 ///< app_mutex
  bool accepting = false;               ///< app_mutex
  std::unordered_map<std::uint64_t, std::unique_ptr<AppInstance>> apps;
  /// (id, name) of reaped instances, kept only while tracing so Chrome
  /// trace export can still name their pid tracks; empty in perf mode.
  /// `apps` itself holds live instances only — finished apps are erased by
  /// the reaper so lifecycle scans and daemon memory stay bounded by the
  /// in-flight population, not by total submissions since start.
  std::vector<std::pair<std::uint64_t, std::string>> reaped_app_names;
  std::uint64_t next_instance_id = 1;  ///< app_mutex
  double runtime_overhead = 0.0;       ///< app_mutex

  // --- Level 1: PE health. -------------------------------------------------
  // The vector itself is fixed after start(); health fields inside each
  // Worker are guarded by health_mutex, busy accounting is atomic.
  mutable std::mutex health_mutex;
  std::vector<std::unique_ptr<Worker>> workers;

  // --- Leaf: completion events + main-loop wakeups. ------------------------
  mutable std::mutex event_mutex;
  std::condition_variable event_cv;  ///< wakes the main event loop

  /// One finished execution attempt, as reported by a worker thread.
  struct CompletionRecord {
    std::shared_ptr<InFlightTask> task;
    Status status;
    std::size_t pe_index = 0;
  };
  std::deque<CompletionRecord> completions;  ///< event_mutex

  // --- Leaf: the sharded ready queue (its own per-class locks). ------------
  sched::ReadyQueueShards ready;

  // --- Leaf: per-descriptor scheduling-plan cache. -------------------------
  // Keyed by descriptor address; each cached plan anchors its descriptor so
  // the key can never alias a recycled allocation. Bounded LRU: front = MRU.
  static constexpr std::size_t kPlanCacheCapacity = 128;
  mutable std::mutex plan_mutex;
  std::list<std::shared_ptr<const DagPlan>> plan_lru;
  std::unordered_map<const task::AppDescriptor*,
                     std::list<std::shared_ptr<const DagPlan>>::iterator>
      plan_index;

  /// Cached plan for `app`, building one (topological validation + HEFT
  /// ranks + index tables) on a miss. Misses compute outside the lock.
  StatusOr<std::shared_ptr<const DagPlan>> plan_for(
      const std::shared_ptr<const task::AppDescriptor>& app,
      const platform::PlatformConfig& platform);

  // --- Leaf: recycled AppInstance freelist. --------------------------------
  // Finished instances are reset and parked here instead of freed, so a
  // steady-state daemon reuses the same handful of blocks (and their vector
  // capacities) for every submission.
  static constexpr std::size_t kInstancePoolCapacity = 1024;
  std::mutex pool_mutex;
  std::vector<std::unique_ptr<AppInstance>> instance_pool;

  /// A pooled (already reset) instance, or a fresh one when the pool is dry.
  [[nodiscard]] std::unique_ptr<AppInstance> acquire_instance() {
    {
      std::lock_guard lock(pool_mutex);
      if (!instance_pool.empty()) {
        auto instance = std::move(instance_pool.back());
        instance_pool.pop_back();
        return instance;
      }
    }
    return std::make_unique<AppInstance>();
  }

  /// Resets and parks finished instances up to the pool bound; overflow is
  /// destroyed when `done` goes out of scope at the caller. Call with no
  /// other lock held (pool_mutex is a leaf).
  void recycle_instances(std::vector<std::unique_ptr<AppInstance>>& done) {
    std::lock_guard lock(pool_mutex);
    for (auto& instance : done) {
      if (instance_pool.size() >= kInstancePoolCapacity) break;
      instance->reset_for_reuse();
      instance_pool.push_back(std::move(instance));
    }
  }

  /// One DAG submission after the lock-free prepare step: the instance plus
  /// its head tasks, ready to be published under one app_mutex hold.
  struct PreparedDag {
    std::unique_ptr<AppInstance> instance;
    std::vector<std::shared_ptr<InFlightTask>> heads;
  };

  /// Validates a submission and builds its instance + head tasks. Takes no
  /// locks besides the plan-cache and arena leaves.
  StatusOr<PreparedDag> prepare_dag(Runtime& rt, DagSubmission submission);

  // --- Main-loop private (no lock). ----------------------------------------
  /// Tasks backing off before a retry; released into the ready queue by the
  /// scheduling round once their retry_at time passes.
  std::deque<std::shared_ptr<InFlightTask>> deferred;
  /// Under fault injection a non-empty ready queue can be legitimately
  /// undispatchable (every capable PE quarantined, a probe already in
  /// flight, all retries backing off). Re-running the heuristic before
  /// anything changed would busy-spin the event loop and flood the trace
  /// with empty rounds, so the round records *why* it is blocked: the state
  /// epoch it observed (bumped by every enqueue and completion) and the
  /// earliest timer (backoff release / probe window) that could unblock it.
  bool sched_blocked = false;
  std::uint64_t sched_blocked_epoch = 0;
  double sched_blocked_until = 0.0;
  std::vector<double> pe_available;  ///< scheduler availability estimates

  // --- Main-loop private: frontier lookahead reservations ------------------
  // (docs/scheduling.md "Lookahead rounds"). Only populated when the
  // configured heuristic is a LookaheadScheduler. A reservation is a
  // placement decided for a not-yet-ready DAG task; when its predecessors
  // complete, the release path dispatches straight to the reserved worker
  // unless the reservation has gone stale (epoch mismatch or the target PE
  // quarantined since).
  struct ReservationEntry {
    std::size_t pe_index = 0;
    double predicted_finish = 0.0;
    std::uint64_t epoch = 0;  ///< reservation_epoch when decided
  };
  /// Composite (app instance, dag task index) key. Instance ids are
  /// sequential from 1, so the shift only aliases after 2^32 submissions —
  /// and an alias merely invalidates or redirects one reservation, which
  /// the normal ready path absorbs.
  [[nodiscard]] static std::uint64_t reservation_key(
      std::uint64_t app_instance_id, std::uint32_t dag_task_index) noexcept {
    return (app_instance_id << 32) | dag_task_index;
  }
  std::unordered_map<std::uint64_t, ReservationEntry> reservations;
  /// Bumped on every quarantine/reinstatement transition and whenever the
  /// round's cost table changes (adapt snapshot publish); any outstanding
  /// reservation decided under an older epoch is stale.
  std::uint64_t reservation_epoch = 0;
  const void* last_cost_table = nullptr;  ///< table the last round priced with
  sched::Frontier frontier;               ///< reused across lookahead rounds
  /// (app instance, dag index) identity of window entries past the ready
  /// prefix, aligned with Frontier indices - ready_count.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> frontier_meta;
  std::unordered_map<std::uint64_t, std::size_t> window_of;  ///< build scratch

  /// Widens the current round's window beyond the ready snapshot: BFS over
  /// each ready DAG task's cached plan, admitting a successor once every
  /// uncompleted predecessor is inside the window, up to
  /// RuntimeConfig::lookahead_depth generations. Defined in dispatch.cpp.
  void build_lookahead_window(Runtime& rt,
                              const sched::ReadyQueueShards::Snapshot& snap,
                              double t_now);

  // --- Cross-thread atomics. -----------------------------------------------
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> sched_epoch{0};
  std::atomic<std::size_t> deferred_count{0};  ///< mirrors deferred.size()
  std::atomic<std::uint64_t> next_task_key{1};
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};

  /// Bit per PeClass present on this platform; fixed after start().
  std::uint32_t present_classes = 0;

  std::thread main_thread;
  Stopwatch epoch;

  /// Wakes the main event loop. The empty critical section pairs with the
  /// loop's predicate check so a wake between "predicate false" and "begin
  /// waiting" is never lost.
  void wake_main() {
    { std::lock_guard lock(event_mutex); }
    event_cv.notify_all();
  }

  /// Effective scheduling class mask of a task: classes with a bound
  /// implementation (or every class, for impl-less timing studies),
  /// narrowed away from classes that already faulted this task — unless
  /// that would leave no class present on this platform. Computed at push
  /// time; valid because retry state only changes while the task is out of
  /// the queue.
  [[nodiscard]] std::uint32_t effective_class_mask(
      const InFlightTask& task) const noexcept {
    std::uint32_t mask = 0;
    bool any_impl = false;
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      if (task.impls[c]) {
        mask |= 1u << c;
        any_impl = true;
      }
    }
    if (!any_impl) mask = 0xffffffffu;
    if (task.failed_class_mask != 0) {
      const std::uint32_t narrowed = mask & ~task.failed_class_mask;
      if ((narrowed & present_classes) != 0) mask = narrowed;
    }
    return mask;
  }

  /// Builds the scheduler-facing view of a task whose enqueue_time (and
  /// key) are already set, paired with the task as the queue payload.
  [[nodiscard]] sched::ReadyQueueShards::PushItem ready_item(
      std::shared_ptr<InFlightTask> task) const {
    const sched::ReadyTask view{
        .task_key = task->key,
        .app_instance_id = task->app_instance_id,
        .kernel = task->kernel,
        .problem_size = task->problem_size,
        .data_bytes = task->data_bytes,
        .ready_time = task->enqueue_time,
        .rank = task->rank,
        .class_mask = effective_class_mask(*task),
    };
    return {.view = view, .payload = std::move(task)};
  }

  /// Builds the scheduler-facing view and pushes a task into its shard.
  /// The caller must have set enqueue_time (and key) already.
  void push_ready(std::shared_ptr<InFlightTask> task) {
    auto item = ready_item(std::move(task));
    ready.push(item.view, std::move(item.payload));
  }
};

}  // namespace cedr::rt
