#pragma once
// Private runtime internals shared by the runtime/ translation units
// (runtime.cpp, app_lifecycle.cpp, ready_state.cpp, dispatch.cpp).
//
// Lock hierarchy (docs/scheduling.md) — acquire strictly downward, never
// hold a lower lock while taking a higher one:
//
//   Level 0  app_mutex     application lifecycle: apps map, instance ids,
//                          accepting/started flags, runtime_overhead,
//                          app_done_cv predicates
//   Level 1  health_mutex  per-PE fault-tolerance state (quarantine,
//                          probe windows, consecutive faults)
//   Leaves   event_mutex   completion records + main-loop wakeups
//            shard locks   inside ReadyQueueShards (one per PE class)
//
// Main-loop-private state (deferred retries, scheduler-blocked bookkeeping,
// PE availability estimates) is touched only by the main event-loop thread
// and needs no lock at all; counters crossing threads are plain atomics.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cedr/common/stopwatch.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sched/ready_queue.h"

namespace cedr::rt {

inline constexpr std::string_view kLogTag = "runtime";

/// A task in flight through the runtime (one DAG node or one API call).
/// Retry state (attempt, failed_class_mask, retry_at) is only touched by
/// the main event loop while the task is out of the ready queue, so it
/// needs no lock.
struct Runtime::InFlightTask {
  std::uint64_t key = 0;  ///< unique per runtime
  std::uint64_t app_instance_id = 0;
  std::string name;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t problem_size = 0;
  std::size_t data_bytes = 0;
  std::array<task::TaskFn, platform::kNumPeClasses> impls{};
  CompletionPtr completion;      ///< API-mode latch; null for DAG tasks
  task::TaskId dag_task_id = 0;  ///< valid when is_dag
  bool is_dag = false;
  double rank = 0.0;
  double enqueue_time = 0.0;  ///< most recent (re-)enqueue
  // Fault-tolerance state (main-loop private, see above).
  std::uint32_t attempt = 0;           ///< executions beyond the first
  std::uint32_t failed_class_mask = 0; ///< PE classes that already failed it
  double first_enqueue_time = 0.0;     ///< for retry-latency accounting
  double retry_at = 0.0;               ///< backoff release time (deferred)
};

/// One application instance being managed by the runtime. Guarded by the
/// app-lifecycle mutex (Impl::app_mutex) unless noted.
struct Runtime::AppInstance {
  std::uint64_t id = 0;
  std::string name;
  bool is_dag = false;
  double arrival_time = 0.0;
  double launch_time = 0.0;
  bool finished = false;

  // DAG mode.
  std::shared_ptr<const task::AppDescriptor> dag;
  std::unordered_map<task::TaskId, std::size_t> remaining_preds;
  std::unordered_map<task::TaskId, double> ranks;
  std::size_t tasks_remaining = 0;

  // API mode.
  std::thread app_thread;
  std::atomic<bool> main_done{false};
  std::atomic<bool> thread_exited{false};
  /// The reaper claimed `app_thread` for joining (app_mutex). Gates erasure:
  /// `thread_exited` can be observed before the handle is move-assigned in
  /// submit_api, so "not joinable" alone does not mean "safe to destroy".
  bool thread_reaped = false;
  std::int64_t outstanding_kernels = 0;  ///< guarded by app_mutex
};

/// Emulated accelerator devices owned by one worker.
struct DeviceBundle {
  std::unique_ptr<platform::FftDevice> fft;
  std::unique_ptr<platform::ZipDevice> zip;
  std::unique_ptr<platform::MmultDevice> mmult;

  [[nodiscard]] platform::MmioDevice* for_kernel(
      platform::KernelId kernel) const noexcept {
    switch (kernel) {
      case platform::KernelId::kFft:
      case platform::KernelId::kIfft:
        return fft.get();
      case platform::KernelId::kZip:
        return zip.get();
      case platform::KernelId::kMmult:
        return mmult.get();
      default:
        return nullptr;
    }
  }
};

/// One PE and the worker thread that manages it.
struct Runtime::Worker {
  std::size_t pe_index = 0;
  platform::PeDescriptor pe;
  DeviceBundle devices;
  BlockingQueue<std::shared_ptr<InFlightTask>> mailbox;
  std::thread thread;

  // Fault-tolerance health, guarded by Impl::health_mutex (written only by
  // the main event loop; read by stats() / pe_health() / the sampler).
  std::uint32_t consecutive_faults = 0;
  std::uint64_t faults_seen = 0;
  std::uint64_t quarantines = 0;
  bool quarantined = false;
  bool probe_inflight = false;  ///< a probe task is on this PE right now
  double probe_at = 0.0;        ///< when the next probe may be dispatched

  // Busy-time accounting for the utilization sampler and STATS. Written
  // only by the owning worker thread; read elsewhere without locks, hence
  // atomics (plain store/load, single writer).
  std::atomic<double> busy_seconds{0.0};
  std::atomic<double> busy_since{-1.0};  ///< start of current task, or -1
  std::atomic<std::uint64_t> tasks_done{0};

  /// Busy seconds including the currently running task, at runtime time `t`.
  [[nodiscard]] double busy_at(double t) const {
    double busy = busy_seconds.load(std::memory_order_relaxed);
    const double since = busy_since.load(std::memory_order_relaxed);
    if (since >= 0.0 && t > since) busy += t - since;
    return busy;
  }
};

struct Runtime::Impl {
  explicit Impl(obs::QuantileHistogram* lock_wait_us)
      : ready(lock_wait_us) {}

  // --- Level 0: application lifecycle. -------------------------------------
  mutable std::mutex app_mutex;
  std::condition_variable app_done_cv;  ///< wakes wait_all / wait_app
  bool started = false;                 ///< app_mutex
  bool accepting = false;               ///< app_mutex
  std::unordered_map<std::uint64_t, std::unique_ptr<AppInstance>> apps;
  /// (id, name) of reaped instances, kept only while tracing so Chrome
  /// trace export can still name their pid tracks; empty in perf mode.
  /// `apps` itself holds live instances only — finished apps are erased by
  /// the reaper so lifecycle scans and daemon memory stay bounded by the
  /// in-flight population, not by total submissions since start.
  std::vector<std::pair<std::uint64_t, std::string>> reaped_app_names;
  std::uint64_t next_instance_id = 1;  ///< app_mutex
  double runtime_overhead = 0.0;       ///< app_mutex

  // --- Level 1: PE health. -------------------------------------------------
  // The vector itself is fixed after start(); health fields inside each
  // Worker are guarded by health_mutex, busy accounting is atomic.
  mutable std::mutex health_mutex;
  std::vector<std::unique_ptr<Worker>> workers;

  // --- Leaf: completion events + main-loop wakeups. ------------------------
  mutable std::mutex event_mutex;
  std::condition_variable event_cv;  ///< wakes the main event loop

  /// One finished execution attempt, as reported by a worker thread.
  struct CompletionRecord {
    std::shared_ptr<InFlightTask> task;
    Status status;
    std::size_t pe_index = 0;
  };
  std::deque<CompletionRecord> completions;  ///< event_mutex

  // --- Leaf: the sharded ready queue (its own per-class locks). ------------
  sched::ReadyQueueShards ready;

  // --- Main-loop private (no lock). ----------------------------------------
  /// Tasks backing off before a retry; released into the ready queue by the
  /// scheduling round once their retry_at time passes.
  std::deque<std::shared_ptr<InFlightTask>> deferred;
  /// Under fault injection a non-empty ready queue can be legitimately
  /// undispatchable (every capable PE quarantined, a probe already in
  /// flight, all retries backing off). Re-running the heuristic before
  /// anything changed would busy-spin the event loop and flood the trace
  /// with empty rounds, so the round records *why* it is blocked: the state
  /// epoch it observed (bumped by every enqueue and completion) and the
  /// earliest timer (backoff release / probe window) that could unblock it.
  bool sched_blocked = false;
  std::uint64_t sched_blocked_epoch = 0;
  double sched_blocked_until = 0.0;
  std::vector<double> pe_available;  ///< scheduler availability estimates

  // --- Cross-thread atomics. -----------------------------------------------
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> sched_epoch{0};
  std::atomic<std::size_t> deferred_count{0};  ///< mirrors deferred.size()
  std::atomic<std::uint64_t> next_task_key{1};
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};

  /// Bit per PeClass present on this platform; fixed after start().
  std::uint32_t present_classes = 0;

  std::thread main_thread;
  Stopwatch epoch;

  /// Wakes the main event loop. The empty critical section pairs with the
  /// loop's predicate check so a wake between "predicate false" and "begin
  /// waiting" is never lost.
  void wake_main() {
    { std::lock_guard lock(event_mutex); }
    event_cv.notify_all();
  }

  /// Effective scheduling class mask of a task: classes with a bound
  /// implementation (or every class, for impl-less timing studies),
  /// narrowed away from classes that already faulted this task — unless
  /// that would leave no class present on this platform. Computed at push
  /// time; valid because retry state only changes while the task is out of
  /// the queue.
  [[nodiscard]] std::uint32_t effective_class_mask(
      const InFlightTask& task) const noexcept {
    std::uint32_t mask = 0;
    bool any_impl = false;
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      if (task.impls[c]) {
        mask |= 1u << c;
        any_impl = true;
      }
    }
    if (!any_impl) mask = 0xffffffffu;
    if (task.failed_class_mask != 0) {
      const std::uint32_t narrowed = mask & ~task.failed_class_mask;
      if ((narrowed & present_classes) != 0) mask = narrowed;
    }
    return mask;
  }

  /// Builds the scheduler-facing view and pushes a task into its shard.
  /// The caller must have set enqueue_time (and key) already.
  void push_ready(std::shared_ptr<InFlightTask> task) {
    const sched::ReadyTask view{
        .task_key = task->key,
        .app_instance_id = task->app_instance_id,
        .kernel = task->kernel,
        .problem_size = task->problem_size,
        .data_bytes = task->data_bytes,
        .ready_time = task->enqueue_time,
        .rank = task->rank,
        .class_mask = effective_class_mask(*task),
    };
    ready.push(view, std::move(task));
  }
};

}  // namespace cedr::rt
