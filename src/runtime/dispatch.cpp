// Scheduling rounds and worker threads: snapshot the sharded ready queue,
// run the configured heuristic, dispatch assignments to per-worker
// mailboxes in batches (one wakeup per worker per round), and execute
// tasks on the emulated PEs.
//
// The round runs on the main event-loop thread with no global lock: the
// queue snapshot takes per-shard leaf locks, PE health is read under
// health_mutex, and everything else it touches is main-loop private
// (runtime_impl.h).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "cedr/common/log.h"
#include "runtime_impl.h"

namespace cedr::rt {

void Runtime::run_scheduling_round() {
  // A blocked round stays blocked until new work / a completion bumps the
  // epoch or the earliest unblocking timer (backoff release, probe window)
  // passes; re-running the heuristic before then cannot dispatch anything.
  if (impl_->sched_blocked) {
    if (impl_->sched_epoch.load(std::memory_order_relaxed) ==
            impl_->sched_blocked_epoch &&
        now() < impl_->sched_blocked_until) {
      return;
    }
    impl_->sched_blocked = false;
  }
  // Release deferred retries whose backoff has elapsed. The re-push
  // recomputes the effective class mask, so the retry's failed-class
  // narrowing takes effect on its new shard placement.
  if (!impl_->deferred.empty()) {
    const double release_now = now();
    std::deque<std::shared_ptr<InFlightTask>> still_waiting;
    for (auto& t : impl_->deferred) {
      if (t->retry_at <= release_now) {
        t->enqueue_time = release_now;
        impl_->push_ready(std::move(t));
      } else {
        still_waiting.push_back(std::move(t));
      }
    }
    impl_->deferred = std::move(still_waiting);
    impl_->deferred_count.store(impl_->deferred.size(),
                                std::memory_order_relaxed);
  }
  if (impl_->ready.size() == 0) return;

  // Epoch to blame a blocked round on — captured *before* the snapshot so
  // a task pushed while the round runs (missing from the snapshot, bumping
  // the epoch) always unblocks the next round.
  const std::uint64_t pre_snapshot_epoch =
      impl_->sched_epoch.load(std::memory_order_acquire);
  const sched::ReadyQueueShards::Snapshot snap = impl_->ready.snapshot();
  if (snap.empty()) return;

  const double t_now = now();
  std::vector<sched::PeState> pe_states;
  pe_states.reserve(impl_->workers.size());
  {
    std::lock_guard health(impl_->health_mutex);
    for (std::size_t i = 0; i < impl_->workers.size(); ++i) {
      const Worker& w = *impl_->workers[i];
      // A quarantined PE is hidden from the heuristic, except when its
      // probe window is open: then it is admitted so one probe task can
      // test it.
      bool excluded = w.quarantined;
      if (excluded && !w.probe_inflight && t_now >= w.probe_at) {
        excluded = false;
      }
      pe_states.push_back(sched::PeState{
          .pe_index = i,
          .cls = w.pe.cls,
          .available_time = std::max(t_now, impl_->pe_available[i]),
          .speed = w.pe.speed_factor,
          .quarantined = excluded,
      });
    }
  }

  // With adaptation on, the round schedules against the latest published
  // cost snapshot — one lock-free shared_ptr load, held for the whole round
  // so every finish_time_on comparison sees one consistent table.
  const std::shared_ptr<const platform::CostModel> learned =
      adapt_ != nullptr ? adapt_->snapshot() : nullptr;
  const sched::ScheduleContext ctx{
      .now = t_now,
      .costs = learned != nullptr ? learned.get() : &config_.platform.costs};
  sched::ScheduleResult result;
  double decision_time = 0.0;
  if (lookahead_ != nullptr) {
    // Frontier round (docs/scheduling.md "Lookahead rounds"): widen the
    // snapshot into the visible DAG window, place it in one pass, dispatch
    // the ready prefix now and remember the rest as reservations.
    Stopwatch round_watch;
    // A cost-table change (adapt snapshot publish) invalidates every
    // outstanding reservation: they were priced against the old table.
    if (ctx.costs != impl_->last_cost_table) {
      if (impl_->last_cost_table != nullptr) ++impl_->reservation_epoch;
      impl_->last_cost_table = ctx.costs;
    }
    sched::Frontier& frontier = impl_->frontier;
    frontier.reset(pe_states, ctx);
    for (const sched::ReadyTask& view : snap.views) frontier.add_ready(view);
    impl_->frontier_meta.clear();
    if (config_.lookahead_depth > 0) {
      impl_->build_lookahead_window(*this, snap, t_now);
    }
    Stopwatch decision;
    sched::FrontierResult window = lookahead_->schedule_window(frontier);
    decision_time = decision.elapsed();
    result.assignments = std::move(window.assignments);
    result.comparisons = window.comparisons;
    // Reservations overwrite earlier rounds' decisions for the same task —
    // the freshest window saw the freshest PE availability.
    for (const sched::Reservation& r : window.reservations) {
      impl_->reservations[Impl::reservation_key(
          impl_->frontier_meta[r.window_index - snap.size()].first,
          impl_->frontier_meta[r.window_index - snap.size()].second)] =
          Impl::ReservationEntry{
              .pe_index = r.pe_index,
              .predicted_finish = r.predicted_finish,
              .epoch = impl_->reservation_epoch,
          };
    }
    count("sched.reservations_made", window.reservations.size());
    metrics_.set_gauge("sched.frontier_size",
                       static_cast<double>(frontier.size()));
    lookahead_round_us_->record(round_watch.elapsed_us());
  } else {
    Stopwatch decision;
    result = scheduler_->schedule(snap.views, pe_states, ctx);
    decision_time = decision.elapsed();
  }
  trace_.add_sched(trace::SchedRecord{
      .time = t_now,
      .ready_tasks = snap.size(),
      .assigned = result.assignments.size(),
      .decision_time = decision_time,
  });
  sched_decision_us_->record(decision_time * 1e6);
  tracer_.complete_span(obs::Category::kSched, sched_span_name_.c_str(), 0, 0,
                        t_now, decision_time, "ready",
                        static_cast<double>(snap.size()), "assigned",
                        static_cast<double>(result.assignments.size()));
  count("sched_rounds");
  count("sched_comparisons", result.comparisons);

  // Group assigned tasks into one batch per worker; keep the rest queued.
  // A quarantined PE whose probe window admitted it takes exactly one task
  // (the probe); further assignments to it stay queued for the next round.
  std::vector<std::vector<std::shared_ptr<InFlightTask>>> batches(
      impl_->workers.size());
  std::vector<sched::ReadyQueueShards::Entry> taken;
  taken.reserve(result.assignments.size());
  {
    std::lock_guard health(impl_->health_mutex);
    for (const sched::Assignment& a : result.assignments) {
      Worker& w = *impl_->workers[a.pe_index];
      if (w.quarantined) {
        if (w.probe_inflight) continue;  // one probe at a time
        w.probe_inflight = true;
        count("probes_dispatched");
      }
      const sched::ReadyQueueShards::Entry& entry = snap.entries[a.queue_index];
      batches[a.pe_index].push_back(
          std::static_pointer_cast<InFlightTask>(entry.payload));
      taken.push_back(entry);
    }
  }
  // Remove before dispatching so a task is never simultaneously queued and
  // executing; entries pushed since the snapshot are untouched.
  impl_->ready.remove(taken);
  const std::size_t dispatched = taken.size();
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].empty()) continue;
    for (const auto& task : batches[i]) {
      tracer_.flow(obs::EventKind::kFlowStep, obs::Category::kSched,
                   "dispatch", 0, 0, now(), task->key);
    }
    // Batched handoff: one mailbox lock and one wakeup per worker per
    // round, instead of one of each per task.
    impl_->workers[i]->mailbox.push_batch(std::span(batches[i]));
  }
  for (const sched::PeState& pe : pe_states) {
    impl_->pe_available[pe.pe_index] = pe.available_time;
  }
  if (dispatched == 0 && impl_->ready.size() != 0) {
    // Nothing moved: block further rounds until the state epoch changes or
    // the earliest timer that could free a PE / release a retry fires.
    double until = std::numeric_limits<double>::infinity();
    for (const auto& t : impl_->deferred) {
      until = std::min(until, t->retry_at);
    }
    {
      std::lock_guard health(impl_->health_mutex);
      for (const auto& w : impl_->workers) {
        if (w->quarantined && !w->probe_inflight) {
          until = std::min(until, w->probe_at);
        }
      }
    }
    impl_->sched_blocked = true;
    impl_->sched_blocked_epoch = pre_snapshot_epoch;
    impl_->sched_blocked_until = until;
  }
}

namespace {
/// Bound on lookahead tasks added per round, so a wide burst of deep DAGs
/// cannot make one round's window (and its placement cost) unbounded.
constexpr std::size_t kMaxLookaheadTasks = 512;
}  // namespace

void Runtime::Impl::build_lookahead_window(
    Runtime& rt, const sched::ReadyQueueShards::Snapshot& snap, double t_now) {
  // Level-by-level BFS from the ready DAG tasks over each app's cached
  // DagPlan. A successor joins the window only when *every* uncompleted
  // predecessor is already inside it (in-window predecessor count ==
  // remaining_preds) — a predecessor that is executing, deferred on a retry
  // backoff, or beyond the depth bound keeps it out, so a reservation is
  // never made for a task whose readiness this window cannot predict.
  //
  // Runs under app_mutex (level 0, taken alone): it reads per-instance
  // remaining_preds/impls and the shared plans. The window is bounded by
  // lookahead_depth and kMaxLookaheadTasks, so the hold is short.
  window_of.clear();
  struct LevelItem {
    AppInstance* app;
    std::uint32_t dag_index;
  };
  std::vector<LevelItem> level;
  std::vector<LevelItem> next;
  std::vector<std::size_t> pred_window;
  std::lock_guard lock(app_mutex);
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    const auto* task =
        static_cast<const InFlightTask*>(snap.entries[i].payload.get());
    if (!task->is_dag) continue;
    const auto it = apps.find(task->app_instance_id);
    if (it == apps.end()) continue;
    window_of[reservation_key(task->app_instance_id, task->dag_task_index)] = i;
    level.push_back({it->second.get(), task->dag_task_index});
  }
  for (std::uint32_t depth = 1;
       depth <= rt.config_.lookahead_depth && !level.empty(); ++depth) {
    next.clear();
    for (const LevelItem& item : level) {
      const DagPlan& plan = *item.app->plan;
      for (const std::uint32_t succ : plan.successors[item.dag_index]) {
        const std::uint64_t key = reservation_key(item.app->id, succ);
        if (window_of.find(key) != window_of.end()) continue;
        // Reserve once: a fresh reservation from an earlier round stands
        // until honored or invalidated. Re-placing the same successor every
        // round while its predecessors wait in a backlogged queue would
        // make lookahead rounds quadratically more expensive than the
        // rounds they replace. (Its own successors stay out of the window
        // too — their predecessor is no longer inside it.)
        const auto held = reservations.find(key);
        if (held != reservations.end() &&
            held->second.epoch == reservation_epoch) {
          continue;
        }
        const std::uint32_t remaining = item.app->remaining_preds[succ];
        if (remaining == 0) continue;  // released while this round ran
        pred_window.clear();
        for (const std::uint32_t pred : plan.preds[succ]) {
          const auto w = window_of.find(reservation_key(item.app->id, pred));
          if (w != window_of.end()) pred_window.push_back(w->second);
        }
        if (pred_window.size() != remaining) continue;
        const task::Task& t = item.app->dag->graph.tasks()[succ];
        // Same class-mask derivation as ready_item(): classes with a bound
        // implementation; a fresh task has no failed classes to narrow by.
        std::uint32_t mask = 0;
        for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
          if (item.app->impls[succ][c]) mask |= 1u << c;
        }
        if (mask == 0) mask = 0xffffffffu;
        const std::size_t window_index = frontier.add_lookahead(
            sched::ReadyTask{
                .task_key = 0,  // not yet in flight; identity via frontier_meta
                .app_instance_id = item.app->id,
                .kernel = t.kernel,
                .problem_size = t.problem_size,
                .data_bytes = t.data_bytes,
                .ready_time = t_now,
                .rank = plan.ranks[succ],
                .class_mask = mask,
            },
            depth, pred_window);
        window_of[key] = window_index;
        frontier_meta.emplace_back(item.app->id, succ);
        next.push_back({item.app, succ});
        if (frontier_meta.size() >= kMaxLookaheadTasks) return;
      }
    }
    level.swap(next);
  }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

Status Runtime::execute_on_pe(InFlightTask& task, Worker& worker) {
  const task::TaskFn& impl =
      task.impls[static_cast<std::size_t>(worker.pe.cls)];
  platform::MmioDevice* device = worker.devices.for_kernel(task.kernel);

  if (fault_injector_ != nullptr) {
    const platform::FaultDecision fault =
        fault_injector_->next(worker.pe_index);
    switch (fault.kind) {
      case platform::FaultKind::kNone:
        break;
      case platform::FaultKind::kTransientFail:
        count("faults_injected");
        return Unavailable("injected transient fault on " + worker.pe.name);
      case platform::FaultKind::kLatencySpike:
        // The execution still succeeds, it just takes longer (thermal
        // throttling / contention); the deadline check may still fail it.
        count("faults_injected");
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.duration_s));
        break;
      case platform::FaultKind::kDeviceHang:
        count("faults_injected");
        if (device != nullptr && impl) {
          // Wedge the MMIO device: the impl's polling loop spins until the
          // emulated watchdog flips the status register to kStatusError.
          device->inject_hang();
        } else {
          // CPU-style PE with no device to wedge: the worker is simply
          // unresponsive for the hang dwell (clipped to the task deadline).
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(fault.duration_s,
                       config_.fault_plan.policy.task_timeout_s)));
          return Unavailable("injected PE hang on " + worker.pe.name);
        }
        break;
    }
  }

  // Tasks without implementations (timing/structural studies) are no-ops.
  if (!impl) return Status::Ok();
  task::ExecContext ctx{
      .pe = &worker.pe,
      .device = device,
  };
  Status status = impl(ctx);
  // Recover the device after a failed operation (hang, error) so the next
  // task dispatched here starts from a clean register file.
  if (!status.ok() && device != nullptr) device->reset();
  return status;
}

namespace {
/// Batched completion publication (docs/runtime_lifecycle.md): a worker
/// flushes its pending completions once it has this many, rather than
/// taking event_mutex per task.
constexpr std::size_t kCompletionFlushBatch = 32;
/// A task that ran at least this long flushes immediately: its successors
/// have already waited milliseconds, batching would only add latency.
constexpr double kLongTaskFlushS = 1e-3;
}  // namespace

void Runtime::worker_loop(Worker& worker) {
  // Finished tasks are deposited here and published in batches: one
  // event_mutex acquisition and one wakeup per flush instead of per task.
  // Flush rules — batch full, a long task, or (the latency bound) the
  // mailbox going idle: a worker never sleeps on undelivered completions.
  std::vector<Impl::CompletionRecord> pending;
  pending.reserve(kCompletionFlushBatch);
  const auto flush = [&] {
    if (pending.empty()) return;
    Stopwatch publish;
    {
      std::lock_guard lock(impl_->event_mutex);
      for (Impl::CompletionRecord& rec : pending) {
        impl_->completions.push_back(std::move(rec));
      }
    }
    impl_->event_cv.notify_all();
    if (complete_publish_us_ != nullptr) {
      complete_publish_us_->record(publish.elapsed_us());
    }
    pending.clear();
  };

  for (;;) {
    std::optional<std::shared_ptr<InFlightTask>> item =
        worker.mailbox.try_pop();
    if (!item) {
      flush();  // flush-on-idle: deliver before blocking
      item = worker.mailbox.pop();
      if (!item) break;  // mailbox closed and drained
    }
    std::shared_ptr<InFlightTask> task = std::move(*item);
    const double start = now();
    worker.busy_since.store(start, std::memory_order_relaxed);
    Status status = execute_on_pe(*task, worker);
    const double end = now();
    worker.busy_seconds.store(
        worker.busy_seconds.load(std::memory_order_relaxed) + (end - start),
        std::memory_order_relaxed);
    worker.busy_since.store(-1.0, std::memory_order_relaxed);
    worker.tasks_done.fetch_add(1, std::memory_order_relaxed);
    // Per-task deadline: when fault injection is active, an execution that
    // overran the policy deadline is treated as a failure (and retried) even
    // if it eventually produced a result — the paper's real-time framing.
    if (fault_injector_ != nullptr && status.ok() &&
        end - start > config_.fault_plan.policy.task_timeout_s) {
      count("deadline_misses");
      status = Unavailable("task exceeded deadline on " + worker.pe.name);
    }
    // Feed the online cost estimator with successful executions only;
    // faulted attempts never describe the pairing's true cost, and latency
    // spikes that slipped through are handled by its outlier rejection.
    if (adapt_ != nullptr && status.ok()) {
      adapt_->observe(task->kernel, worker.pe.cls, task->problem_size,
                      task->data_bytes, end - start);
    }
    trace_.add_task(trace::TaskRecord{
        .app_instance_id = task->app_instance_id,
        .app_name = "",
        .task_id = task->key,
        .kernel_name = std::string(platform::kernel_name(task->kernel)),
        .pe_name = worker.pe.name,
        .problem_size = task->problem_size,
        .enqueue_time = task->enqueue_time,
        .start_time = start,
        .end_time = end,
        .attempt = task->attempt,
        .ok = status.ok(),
    });
    count("tasks_executed");
    if (config_.enable_counters) {
      counters_.add(std::string("tasks_on_") + worker.pe.name);
    }
    queue_delay_us_->record((start - task->enqueue_time) * 1e6);
    service_time_us_->record((end - start) * 1e6);
    tracer_.flow(obs::EventKind::kFlowEnd, obs::Category::kWorker, "execute",
                 0, 1 + worker.pe_index, start, task->key);
    tracer_.complete_span(obs::Category::kWorker, task->name.c_str(), 0,
                          1 + worker.pe_index, start, end - start, "attempt",
                          static_cast<double>(task->attempt), "ok",
                          status.ok() ? 1.0 : 0.0);
    // Fig. 4: the worker signals the sleeping application thread directly —
    // but only on success. Failures first go through the main loop's retry
    // machinery; only a terminal failure is signalled (from there).
    if (status.ok() && task->completion) task->completion->signal(status);
    const bool long_task = end - start > kLongTaskFlushS;
    pending.push_back(Impl::CompletionRecord{
        .task = std::move(task),
        .status = std::move(status),
        .pe_index = worker.pe_index,
    });
    if (pending.size() >= kCompletionFlushBatch || long_task) flush();
  }
  flush();
}

}  // namespace cedr::rt
