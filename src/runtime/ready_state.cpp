// The main event loop and completion processing: worker-reported results
// drive PE health (quarantine/probe), bounded retry with backoff, DAG
// successor release and application completion. This TU owns the ready
// state transitions; the scheduling round itself lives in dispatch.cpp.
//
// Locking (runtime_impl.h): completion records are drained under the leaf
// event_mutex, then processed with health_mutex (PE health) and app_mutex
// (lifecycle) taken separately and never together with event_mutex held.

#include <chrono>
#include <cmath>
#include <utility>

#include "cedr/common/log.h"
#include "runtime_impl.h"

namespace cedr::rt {

void Runtime::main_loop() {
  while (true) {
    {
      std::unique_lock lock(impl_->event_mutex);
      impl_->event_cv.wait_for(
          lock, std::chrono::duration<double>(config_.scheduler_period_s),
          [this] {
            // A ready queue the last round could not dispatch from (all
            // capable PEs quarantined / probes pending / retries backing
            // off) is not a wake reason until something changes; otherwise
            // the loop would busy-spin empty scheduling rounds.
            const bool schedulable =
                impl_->ready.size() != 0 &&
                !(impl_->sched_blocked &&
                  impl_->sched_epoch.load(std::memory_order_relaxed) ==
                      impl_->sched_blocked_epoch);
            return impl_->stopping.load(std::memory_order_relaxed) ||
                   !impl_->completions.empty() || schedulable;
          });
      if (impl_->stopping.load(std::memory_order_relaxed) &&
          impl_->completions.empty() && impl_->ready.size() == 0 &&
          impl_->deferred.empty()) {
        break;
      }
    }
    process_completions();
    run_scheduling_round();
  }
}

void Runtime::process_completions() {
  // Drain the records under the leaf event lock, process them without it —
  // workers reporting further completions never wait on this loop's health
  // or lifecycle work.
  std::deque<Impl::CompletionRecord> batch;
  {
    std::lock_guard lock(impl_->event_mutex);
    batch.swap(impl_->completions);
  }
  if (batch.empty()) {
    // Still sweep API apps: an application main returning (main_done) is
    // not a completion record but can finish the app.
    finish_idle_api_apps();
    return;
  }
  Stopwatch overhead;
  bool any_app_finished = false;
  // Released tasks with a still-valid reservation bypass the ready queue:
  // collected here per worker across the whole batch, dispatched with one
  // push_batch per touched worker after the loop (no re-decision round).
  std::vector<std::vector<std::shared_ptr<InFlightTask>>> reserved_batches;
  const platform::FaultPolicy& policy = config_.fault_plan.policy;
  for (Impl::CompletionRecord& rec : batch) {
    // Every completion changes PE health or releases work: any blocked
    // scheduling state is stale now.
    impl_->sched_epoch.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<InFlightTask> inflight = std::move(rec.task);
    const Status status = std::move(rec.status);
    Worker& worker = *impl_->workers[rec.pe_index];
    const double t_now = now();

    if (!status.ok()) {
      {
        // --- PE health: consecutive faults drive quarantine. ---------------
        std::lock_guard health(impl_->health_mutex);
        ++worker.faults_seen;
        tracer_.instant(obs::Category::kFault, "fault", 0,
                        1 + worker.pe_index, t_now, "attempt",
                        static_cast<double>(inflight->attempt));
        if (worker.quarantined) {
          // A failed probe: the PE stays out; schedule the next probe window.
          worker.probe_inflight = false;
          worker.probe_at = t_now + policy.probe_period_s;
          count("probes_failed");
          tracer_.instant(obs::Category::kFault, "probe_failed", 0,
                          1 + worker.pe_index, t_now);
        } else {
          ++worker.consecutive_faults;
          if (policy.quarantine_threshold > 0 &&
              worker.consecutive_faults >= policy.quarantine_threshold) {
            worker.quarantined = true;
            worker.probe_inflight = false;
            worker.probe_at = t_now + policy.probe_period_s;
            ++worker.quarantines;
            // Reservations priced this PE as healthy: all stale now.
            ++impl_->reservation_epoch;
            count("pes_quarantined");
            tracer_.instant(obs::Category::kFault, "pe_quarantined", 0,
                            1 + worker.pe_index, t_now, "consecutive_faults",
                            static_cast<double>(worker.consecutive_faults));
            CEDR_LOG(kWarn, kLogTag)
                << "PE " << worker.pe.name << " quarantined after "
                << worker.consecutive_faults << " consecutive faults";
          }
        }
      }
      // --- Bounded retry with exponential backoff. -------------------------
      // Remember the class that failed so the retry prefers a different PE
      // type (graceful degradation: a quarantined accelerator's work lands
      // on the CPU implementation through the same dispatch table).
      inflight->failed_class_mask |=
          1u << static_cast<unsigned>(worker.pe.cls);
      if (inflight->attempt < policy.max_retries) {
        ++inflight->attempt;
        count("tasks_retried");
        const double backoff =
            policy.backoff_base_s *
            std::pow(policy.backoff_factor,
                     static_cast<double>(inflight->attempt - 1));
        inflight->retry_at = t_now + backoff;
        tracer_.instant(obs::Category::kFault, "retry_backoff", 0,
                        1 + worker.pe_index, t_now, "attempt",
                        static_cast<double>(inflight->attempt), "backoff_s",
                        backoff);
        impl_->deferred.push_back(std::move(inflight));
        impl_->deferred_count.store(impl_->deferred.size(),
                                    std::memory_order_relaxed);
        continue;  // not terminal: no successor release, no app signal
      }
      // Terminal failure: retries exhausted. Only now does the failure
      // become visible to the application.
      count("tasks_failed");
      tracer_.instant(obs::Category::kFault, "task_failed", 0,
                      1 + worker.pe_index, t_now, "attempts",
                      static_cast<double>(inflight->attempt + 1));
      CEDR_LOG(kWarn, kLogTag)
          << "task '" << inflight->name << "' failed after "
          << (inflight->attempt + 1)
          << " attempts: " << status.to_string();
      if (inflight->completion) inflight->completion->signal(status);
    } else {
      // --- Success: reset health, reinstate a probed PE, book recovery. ----
      {
        std::lock_guard health(impl_->health_mutex);
        worker.consecutive_faults = 0;
        worker.probe_inflight = false;
        if (worker.quarantined) {
          worker.quarantined = false;
          // The PE pool changed under outstanding reservations: windows
          // placed without this PE would have decided differently.
          ++impl_->reservation_epoch;
          count("pes_reinstated");
          tracer_.instant(obs::Category::kFault, "pe_reinstated", 0,
                          1 + worker.pe_index, t_now);
          CEDR_LOG(kInfo, kLogTag)
              << "PE " << worker.pe.name << " reinstated after probe success";
        }
      }
      if (inflight->attempt > 0) {
        count("tasks_recovered");
        trace_.add_retry_latency(t_now - inflight->first_enqueue_time);
        tracer_.instant(obs::Category::kFault, "task_recovered", 0,
                        1 + worker.pe_index, t_now, "latency_s",
                        t_now - inflight->first_enqueue_time);
      }
    }

    // --- Application bookkeeping: successor release / finish. --------------
    // DAG successors are built under app_mutex (they read per-instance
    // state) and pushed to the shards afterwards — shard locks are leaves
    // and must not nest inside, but pushing outside keeps the lifecycle
    // lock narrow anyway.
    std::vector<std::shared_ptr<InFlightTask>> released;
    {
      std::lock_guard lock(impl_->app_mutex);
      auto it = impl_->apps.find(inflight->app_instance_id);
      if (it == impl_->apps.end()) continue;
      AppInstance& app = *it->second;
      if (inflight->is_dag) {
        // Successor release is flat index arithmetic over the shared
        // DagPlan — no TaskId hashing, and the implementation arrays move
        // out of the instance instead of being copied from the descriptor.
        const DagPlan& plan = *app.plan;
        for (const std::uint32_t succ :
             plan.successors[inflight->dag_task_index]) {
          if (--app.remaining_preds[succ] != 0) continue;
          const task::Task& t = app.dag->graph.tasks()[succ];
          auto next = impl_->make_task();
          next->key =
              impl_->next_task_key.fetch_add(1, std::memory_order_relaxed);
          next->app_instance_id = app.id;
          next->name = t.name;
          next->kernel = t.kernel;
          next->problem_size = t.problem_size;
          next->data_bytes = t.data_bytes;
          next->impls = std::move(app.impls[succ]);
          next->is_dag = true;
          next->dag_task_index = succ;
          next->rank = plan.ranks[succ];
          released.push_back(std::move(next));
        }
        if (--app.tasks_remaining == 0) {
          finish_app_locked(app);
          any_app_finished = true;
        }
      } else {
        --app.outstanding_kernels;
      }
    }
    for (auto& next : released) {
      next->enqueue_time = now();
      next->first_enqueue_time = next->enqueue_time;
      tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                   next->name.c_str(), 1 + next->app_instance_id, 0,
                   next->enqueue_time, next->key);
      // Honor a lookahead reservation if one exists and is still fresh
      // (same epoch, target PE not quarantined since); otherwise — or when
      // it has gone stale — the task takes the normal ready path and the
      // next round re-decides it.
      if (lookahead_ != nullptr && !impl_->reservations.empty()) {
        const auto it = impl_->reservations.find(Impl::reservation_key(
            next->app_instance_id, next->dag_task_index));
        if (it != impl_->reservations.end()) {
          const Impl::ReservationEntry entry = it->second;
          impl_->reservations.erase(it);
          bool fresh = entry.epoch == impl_->reservation_epoch;
          if (fresh) {
            std::lock_guard health(impl_->health_mutex);
            fresh = !impl_->workers[entry.pe_index]->quarantined;
          }
          if (fresh) {
            if (reserved_batches.empty()) {
              reserved_batches.resize(impl_->workers.size());
            }
            // The reserved PE is committed to this work: fold the predicted
            // finish into the availability estimate later rounds price with.
            impl_->pe_available[entry.pe_index] = std::max(
                impl_->pe_available[entry.pe_index], entry.predicted_finish);
            reserved_batches[entry.pe_index].push_back(std::move(next));
            count("sched.reservation_hits");
            continue;
          }
          count("sched.reservation_stale");
        }
      }
      impl_->push_ready(std::move(next));
    }
  }
  for (std::size_t pe = 0; pe < reserved_batches.size(); ++pe) {
    auto& batch = reserved_batches[pe];
    if (batch.empty()) continue;
    for (const auto& task : batch) {
      tracer_.flow(obs::EventKind::kFlowStep, obs::Category::kSched,
                   "dispatch_reserved", 0, 0, now(), task->key);
    }
    impl_->workers[pe]->mailbox.push_batch(std::span(batch));
  }
  if (finish_idle_api_apps()) any_app_finished = true;
  {
    std::lock_guard lock(impl_->app_mutex);
    impl_->runtime_overhead += overhead.elapsed();
  }
  if (any_app_finished) impl_->app_done_cv.notify_all();
}

bool Runtime::finish_idle_api_apps() {
  // API applications finish when their main returned and no kernels remain.
  // Exited app threads are reaped here: collected under the lifecycle lock,
  // joined outside it.
  //
  // Finished instances are then erased from the map. Completion paths treat
  // a missing id as finished, so the only thing lost is the name — saved
  // aside for trace export when tracing is on. Without this, every
  // lifecycle scan and the map itself grow with total submissions, which
  // under a daemon taking tens of thousands of submissions per second
  // turns this function into the scheduler's bottleneck within seconds.
  bool any_finished = false;
  std::vector<std::thread> exited;
  std::vector<std::unique_ptr<AppInstance>> recycled;
  {
    std::lock_guard lock(impl_->app_mutex);
    for (auto it = impl_->apps.begin(); it != impl_->apps.end();) {
      AppInstance& app = *it->second;
      if (!app.is_dag) {
        if (!app.finished && app.main_done.load(std::memory_order_acquire) &&
            app.outstanding_kernels == 0) {
          finish_app_locked(app);
          any_finished = true;
        }
        if (app.thread_exited.load(std::memory_order_acquire) &&
            app.app_thread.joinable()) {
          exited.push_back(std::move(app.app_thread));
          app.thread_reaped = true;
        }
      }
      // Reap once finished and (for API apps) the thread has been claimed
      // for joining — thread_exited alone is not enough, submit_api may not
      // have move-assigned the handle yet. The join happens after the lock
      // is released; nothing touches the instance after its thread exited.
      if (app.finished && (app.is_dag || app.thread_reaped)) {
        if (config_.obs.tracing) {
          impl_->reaped_app_names.emplace_back(it->first, app.name);
        }
        // Collect under the lock, recycle outside it: pool_mutex is a leaf
        // and must not nest inside app_mutex.
        recycled.push_back(std::move(it->second));
        it = impl_->apps.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : exited) t.join();
  if (!recycled.empty()) impl_->recycle_instances(recycled);
  if (any_finished) impl_->app_done_cv.notify_all();
  return any_finished;
}

}  // namespace cedr::rt
