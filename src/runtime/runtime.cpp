#include "cedr/runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "cedr/common/log.h"
#include "cedr/common/stopwatch.h"
#include "cedr/obs/chrome_trace.h"
#include "cedr/sched/rank.h"

namespace cedr::rt {

namespace {
constexpr std::string_view kLogTag = "runtime";
}  // namespace

// ---------------------------------------------------------------------------
// Thread binding: which runtime/app-instance the current thread belongs to.
// Set around API-application main functions so that libCEDR calls made from
// that thread route into the right runtime (paper §II-C: calls are "linked
// during binary parsing against implementations ... that themselves call an
// enqueue_kernel function inside the CEDR runtime").
// ---------------------------------------------------------------------------

ThreadBinding& thread_binding() noexcept {
  thread_local ThreadBinding binding;
  return binding;
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

/// A task in flight through the runtime (one DAG node or one API call).
struct Runtime::InFlightTask {
  std::uint64_t key = 0;  ///< unique per runtime
  std::uint64_t app_instance_id = 0;
  std::string name;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t problem_size = 0;
  std::size_t data_bytes = 0;
  std::array<task::TaskFn, platform::kNumPeClasses> impls{};
  CompletionPtr completion;      ///< API-mode latch; null for DAG tasks
  task::TaskId dag_task_id = 0;  ///< valid when is_dag
  bool is_dag = false;
  double rank = 0.0;
  double enqueue_time = 0.0;  ///< most recent (re-)enqueue
  // Fault-tolerance state (guarded by the runtime state mutex).
  std::uint32_t attempt = 0;           ///< executions beyond the first
  std::uint32_t failed_class_mask = 0; ///< PE classes that already failed it
  double first_enqueue_time = 0.0;     ///< for retry-latency accounting
  double retry_at = 0.0;               ///< backoff release time (deferred)
};

/// One application instance being managed by the runtime.
struct Runtime::AppInstance {
  std::uint64_t id = 0;
  std::string name;
  bool is_dag = false;
  double arrival_time = 0.0;
  double launch_time = 0.0;
  bool finished = false;

  // DAG mode.
  std::shared_ptr<const task::AppDescriptor> dag;
  std::unordered_map<task::TaskId, std::size_t> remaining_preds;
  std::unordered_map<task::TaskId, double> ranks;
  std::size_t tasks_remaining = 0;

  // API mode.
  std::thread app_thread;
  std::atomic<bool> main_done{false};
  std::atomic<bool> thread_exited{false};
  std::int64_t outstanding_kernels = 0;  ///< guarded by runtime state mutex
};

/// Emulated accelerator devices owned by one worker.
struct DeviceBundle {
  std::unique_ptr<platform::FftDevice> fft;
  std::unique_ptr<platform::ZipDevice> zip;
  std::unique_ptr<platform::MmultDevice> mmult;

  [[nodiscard]] platform::MmioDevice* for_kernel(
      platform::KernelId kernel) const noexcept {
    switch (kernel) {
      case platform::KernelId::kFft:
      case platform::KernelId::kIfft:
        return fft.get();
      case platform::KernelId::kZip:
        return zip.get();
      case platform::KernelId::kMmult:
        return mmult.get();
      default:
        return nullptr;
    }
  }
};

/// One PE and the worker thread that manages it.
struct Runtime::Worker {
  std::size_t pe_index = 0;
  platform::PeDescriptor pe;
  DeviceBundle devices;
  BlockingQueue<std::shared_ptr<InFlightTask>> mailbox;
  std::thread thread;

  // Fault-tolerance health, guarded by the runtime state mutex (only the
  // main event loop reads/writes these, never the worker thread itself).
  std::uint32_t consecutive_faults = 0;
  std::uint64_t faults_seen = 0;
  std::uint64_t quarantines = 0;
  bool quarantined = false;
  bool probe_inflight = false;  ///< a probe task is on this PE right now
  double probe_at = 0.0;        ///< when the next probe may be dispatched

  // Busy-time accounting for the utilization sampler and STATS. Written
  // only by the owning worker thread; read by the sampler / stats() without
  // the state mutex, hence atomics (plain store/load, single writer).
  std::atomic<double> busy_seconds{0.0};
  std::atomic<double> busy_since{-1.0};  ///< start of current task, or -1
  std::atomic<std::uint64_t> tasks_done{0};

  /// Busy seconds including the currently running task, at runtime time `t`.
  [[nodiscard]] double busy_at(double t) const {
    double busy = busy_seconds.load(std::memory_order_relaxed);
    const double since = busy_since.load(std::memory_order_relaxed);
    if (since >= 0.0 && t > since) busy += t - since;
    return busy;
  }
};

struct Runtime::Impl {
  mutable std::mutex mutex;
  std::condition_variable event_cv;      ///< wakes the main event loop
  std::condition_variable app_done_cv;   ///< wakes wait_all / wait_app

  bool started = false;
  bool accepting = false;
  bool stopping = false;

  /// One finished execution attempt, as reported by a worker thread.
  struct CompletionRecord {
    std::shared_ptr<InFlightTask> task;
    Status status;
    std::size_t pe_index = 0;
  };

  std::deque<std::shared_ptr<InFlightTask>> ready_queue;
  /// Tasks backing off before a retry; released into the ready queue by the
  /// scheduling round once their retry_at time passes.
  std::deque<std::shared_ptr<InFlightTask>> deferred;
  std::deque<CompletionRecord> completions;

  /// Under fault injection a non-empty ready queue can be legitimately
  /// undispatchable (every capable PE quarantined, a probe already in
  /// flight, all retries backing off). Re-running the heuristic before
  /// anything changed would busy-spin the event loop and flood the trace
  /// with empty rounds, so the round records *why* it is blocked: the state
  /// epoch it observed (bumped by every enqueue and completion) and the
  /// earliest timer (backoff release / probe window) that could unblock it.
  std::uint64_t sched_epoch = 0;
  bool sched_blocked = false;
  std::uint64_t sched_blocked_epoch = 0;
  double sched_blocked_until = 0.0;
  std::unordered_map<std::uint64_t, std::unique_ptr<AppInstance>> apps;

  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<double> pe_available;  ///< scheduler availability estimates
  std::thread main_thread;

  std::uint64_t next_instance_id = 1;
  std::uint64_t next_task_key = 1;
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};

  Stopwatch epoch;
  double runtime_overhead = 0.0;  ///< guarded by mutex
};

// ---------------------------------------------------------------------------
// Runtime configuration file
// ---------------------------------------------------------------------------

json::Value ObsConfig::to_json() const {
  return json::Object{
      {"tracing", json::Value(tracing)},
      {"ring_capacity", json::Value(ring_capacity)},
      {"sampler_period_s", json::Value(sampler_period_s)},
  };
}

StatusOr<ObsConfig> ObsConfig::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("obs configuration must be a JSON object");
  }
  ObsConfig config;
  config.tracing = value.get_bool("tracing", true);
  const std::int64_t ring = value.get_int(
      "ring_capacity",
      static_cast<std::int64_t>(obs::SpanTracer::kDefaultCapacity));
  if (ring <= 0) return InvalidArgument("obs ring_capacity must be positive");
  config.ring_capacity = static_cast<std::size_t>(ring);
  config.sampler_period_s = value.get_double("sampler_period_s", 0.0);
  return config;
}

json::Value RuntimeConfig::to_json() const {
  return json::Object{
      {"platform", platform.to_json()},
      {"scheduler", json::Value(scheduler)},
      {"scheduler_period_s", json::Value(scheduler_period_s)},
      {"enable_counters", json::Value(enable_counters)},
      {"fault_plan", fault_plan.to_json()},
      {"obs", obs.to_json()},
      {"adapt", adapt.to_json()},
  };
}

StatusOr<RuntimeConfig> RuntimeConfig::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("runtime configuration must be a JSON object");
  }
  RuntimeConfig config;
  if (const json::Value* plat = value.find("platform")) {
    auto parsed = platform::PlatformConfig::from_json(*plat);
    if (!parsed.ok()) return parsed.status();
    config.platform = *std::move(parsed);
  } else {
    return InvalidArgument("runtime configuration missing 'platform'");
  }
  config.scheduler = value.get_string("scheduler", "EFT");
  if (!sched::make_scheduler(config.scheduler).ok()) {
    return InvalidArgument("unknown scheduler: " + config.scheduler);
  }
  config.scheduler_period_s =
      value.get_double("scheduler_period_s", 200e-6);
  if (config.scheduler_period_s <= 0.0) {
    return InvalidArgument("scheduler period must be positive");
  }
  config.enable_counters = value.get_bool("enable_counters", true);
  if (const json::Value* plan = value.find("fault_plan")) {
    auto parsed = platform::FaultPlan::from_json(*plan);
    if (!parsed.ok()) return parsed.status();
    config.fault_plan = *std::move(parsed);
  }
  if (const json::Value* obs = value.find("obs")) {
    auto parsed = ObsConfig::from_json(*obs);
    if (!parsed.ok()) return parsed.status();
    config.obs = *std::move(parsed);
  }
  if (const json::Value* adapt = value.find("adapt")) {
    auto parsed = adapt::AdaptConfig::from_json(*adapt);
    if (!parsed.ok()) return parsed.status();
    config.adapt = *std::move(parsed);
  }
  return config;
}

StatusOr<RuntimeConfig> RuntimeConfig::load(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc.ok()) return doc.status();
  return from_json(*doc);
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)),
      tracer_(config_.obs.ring_capacity),
      impl_(std::make_unique<Impl>()) {
  tracer_.set_enabled(config_.obs.tracing);
  queue_delay_us_ = &metrics_.histogram("queue_delay_us");
  service_time_us_ = &metrics_.histogram("service_time_us");
  sched_decision_us_ = &metrics_.histogram("sched_decision_us");
  sched_span_name_ = "sched " + config_.scheduler;
}

Runtime::~Runtime() {
  const Status status = shutdown();
  if (!status.ok()) {
    CEDR_LOG(kError, kLogTag) << "shutdown in destructor failed: "
                              << status.to_string();
  }
}

double Runtime::now() const noexcept { return impl_->epoch.elapsed(); }

void Runtime::count(const char* name, std::uint64_t delta) {
  // The Runtime Configuration can disable the PAPI-substitute counters
  // entirely (paper Fig. 1: features such as performance counters are
  // enabled or disabled through the configuration input).
  if (config_.enable_counters) counters_.add(name, delta);
}

std::uint64_t Runtime::submitted_apps() const noexcept {
  return impl_->submitted.load(std::memory_order_relaxed);
}

std::uint64_t Runtime::completed_apps() const noexcept {
  return impl_->completed.load(std::memory_order_relaxed);
}

double Runtime::runtime_overhead_s() const noexcept {
  std::lock_guard lock(impl_->mutex);
  return impl_->runtime_overhead;
}

std::vector<PeHealth> Runtime::pe_health() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<PeHealth> out;
  out.reserve(impl_->workers.size());
  for (const auto& worker : impl_->workers) {
    out.push_back(PeHealth{
        .pe_name = worker->pe.name,
        .cls = worker->pe.cls,
        .quarantined = worker->quarantined,
        .consecutive_faults = worker->consecutive_faults,
        .faults_seen = worker->faults_seen,
        .quarantines = worker->quarantines,
    });
  }
  return out;
}

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  out.uptime_s = now();
  out.submitted = submitted_apps();
  out.completed = completed_apps();
  out.inflight = out.submitted - out.completed;
  std::lock_guard lock(impl_->mutex);
  out.ready_tasks = impl_->ready_queue.size();
  out.deferred_tasks = impl_->deferred.size();
  for (const auto& worker : impl_->workers) {
    const std::uint64_t tasks =
        worker->tasks_done.load(std::memory_order_relaxed);
    out.tasks_executed += tasks;
    out.pes.push_back(RuntimeStats::PeBusy{
        .name = worker->pe.name,
        .tasks = tasks,
        .busy_fraction = out.uptime_s > 0.0
                             ? worker->busy_at(out.uptime_s) / out.uptime_s
                             : 0.0,
        .quarantined = worker->quarantined,
    });
  }
  return out;
}

Status Runtime::write_chrome_trace(const std::string& path) const {
  std::vector<obs::TrackName> tracks;
  tracks.push_back({.pid = 0, .is_process = true, .name = "cedr runtime"});
  tracks.push_back({.pid = 0, .tid = 0, .name = "main loop"});
  tracks.push_back({.pid = 0, .tid = obs::kIpcTid, .name = "ipc"});
  {
    std::lock_guard lock(impl_->mutex);
    for (const auto& worker : impl_->workers) {
      tracks.push_back(
          {.pid = 0, .tid = 1 + worker->pe_index, .name = worker->pe.name});
    }
    // App instances are never erased from the map, so every pid that can
    // appear in the span stream gets a name.
    for (const auto& [id, app] : impl_->apps) {
      tracks.push_back({.pid = 1 + id,
                        .is_process = true,
                        .name = app->name + " #" + std::to_string(id)});
    }
  }
  return obs::write_chrome_trace(path, tracer_.snapshot(), tracks);
}

Status Runtime::start() {
  CEDR_RETURN_IF_ERROR(config_.platform.validate());
  CEDR_RETURN_IF_ERROR(config_.fault_plan.validate());
  auto scheduler = sched::make_scheduler(config_.scheduler);
  if (!scheduler.ok()) return scheduler.status();
  scheduler_ = *std::move(scheduler);
  if (!config_.fault_plan.empty()) {
    fault_injector_ = std::make_unique<platform::FaultInjector>(
        config_.fault_plan, config_.platform.pes);
    CEDR_LOG(kInfo, kLogTag) << "fault injection enabled: seed=0x" << std::hex
                             << config_.fault_plan.seed << std::dec;
  }
  if (config_.adapt.enabled) {
    adapt_ = std::make_unique<adapt::OnlineCostEstimator>(
        config_.adapt, config_.platform.costs);
    CEDR_LOG(kInfo, kLogTag) << "online cost adaptation enabled: half_life="
                             << config_.adapt.half_life << " min_samples="
                             << config_.adapt.min_samples;
  }

  std::lock_guard lock(impl_->mutex);
  if (impl_->started) return FailedPrecondition("runtime already started");
  impl_->started = true;
  impl_->accepting = true;
  impl_->epoch.reset();

  // One worker (and mailbox) per PE, mirroring Fig. 1. Accelerator workers
  // own the emulated device they coordinate.
  for (std::size_t i = 0; i < config_.platform.pes.size(); ++i) {
    auto worker = std::make_unique<Worker>();
    worker->pe_index = i;
    worker->pe = config_.platform.pes[i];
    switch (worker->pe.cls) {
      case platform::PeClass::kFftAccel:
        worker->devices.fft = std::make_unique<platform::FftDevice>();
        break;
      case platform::PeClass::kMmultAccel:
        worker->devices.mmult = std::make_unique<platform::MmultDevice>();
        break;
      case platform::PeClass::kGpu:
        // The Jetson GPU hosts FFT and ZIP CUDA kernels (paper §III).
        worker->devices.fft = std::make_unique<platform::FftDevice>();
        worker->devices.zip = std::make_unique<platform::ZipDevice>();
        break;
      default:
        break;
    }
    impl_->workers.push_back(std::move(worker));
  }
  impl_->pe_available.assign(impl_->workers.size(), 0.0);
  for (auto& worker : impl_->workers) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
  impl_->main_thread = std::thread([this] { main_loop(); });
  tracer_.instant(obs::Category::kRuntime, "runtime_start", 0, 0, 0.0);
  if (config_.obs.sampler_period_s > 0.0) {
    // The tick computes each PE's busy fraction over the elapsed interval
    // (not lifetime) so the series shows utilization as it changes.
    sampler_ = std::make_unique<obs::Sampler>(
        config_.obs.sampler_period_s,
        [this, prev_busy = std::vector<double>(impl_->workers.size(), 0.0),
         prev_t = 0.0](double) mutable {
          const double t = now();
          const double interval = t - prev_t;
          std::size_t ready = 0;
          std::size_t deferred = 0;
          {
            std::lock_guard lock(impl_->mutex);
            ready = impl_->ready_queue.size();
            deferred = impl_->deferred.size();
          }
          const double inflight = static_cast<double>(
              submitted_apps() - completed_apps());
          metrics_.set_gauge("ready_queue_depth", static_cast<double>(ready));
          metrics_.set_gauge("deferred_tasks", static_cast<double>(deferred));
          metrics_.set_gauge("inflight_apps", inflight);
          metrics_.sample("ready_queue_depth", t, static_cast<double>(ready));
          metrics_.sample("inflight_apps", t, inflight);
          for (std::size_t i = 0; i < impl_->workers.size(); ++i) {
            const double busy = impl_->workers[i]->busy_at(t);
            const double frac =
                interval > 0.0
                    ? std::clamp((busy - prev_busy[i]) / interval, 0.0, 1.0)
                    : 0.0;
            prev_busy[i] = busy;
            const std::string name = "pe." + impl_->workers[i]->pe.name + ".busy";
            metrics_.set_gauge(name, frac);
            metrics_.sample(name, t, frac);
          }
          if (adapt_ != nullptr) {
            metrics_.set_gauge("adapt.publishes",
                               static_cast<double>(adapt_->publishes()));
            metrics_.set_gauge("adapt.rel_error", adapt_->mean_rel_error());
            for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
              const auto cls = static_cast<platform::PeClass>(c);
              metrics_.set_gauge(
                  "adapt.rel_error." + std::string(platform::pe_class_name(cls)),
                  adapt_->class_rel_error(cls));
            }
          }
          prev_t = t;
        });
    sampler_->start();
  }
  CEDR_LOG(kInfo, kLogTag) << "runtime started: platform="
                           << config_.platform.name
                           << " pes=" << config_.platform.pes.size()
                           << " scheduler=" << config_.scheduler;
  return Status::Ok();
}

Status Runtime::shutdown() {
  {
    std::lock_guard lock(impl_->mutex);
    if (!impl_->started || impl_->stopping) return Status::Ok();
    impl_->accepting = false;
  }
  // Drain all in-flight applications before stopping the machinery.
  const Status drain = wait_all();
  if (sampler_ != nullptr) sampler_->stop();
  tracer_.instant(obs::Category::kRuntime, "runtime_shutdown", 0, 0, now());
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->event_cv.notify_all();
  if (impl_->main_thread.joinable()) impl_->main_thread.join();
  for (auto& worker : impl_->workers) {
    worker->mailbox.close();
  }
  for (auto& worker : impl_->workers) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Join any application threads not yet reaped.
  for (auto& [id, app] : impl_->apps) {
    if (app->app_thread.joinable()) app->app_thread.join();
  }
  CEDR_LOG(kInfo, kLogTag) << "runtime stopped: apps=" << completed_apps();
  return drain;
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

StatusOr<std::uint64_t> Runtime::submit_dag(
    std::shared_ptr<const task::AppDescriptor> app) {
  if (!app) return InvalidArgument("null application descriptor");
  const auto topo = app->graph.topological_order();
  if (!topo.ok()) return topo.status();
  if (app->graph.size() == 0) {
    return InvalidArgument("application graph is empty");
  }

  Stopwatch overhead;
  std::unique_lock lock(impl_->mutex);
  if (!impl_->started || !impl_->accepting) {
    return FailedPrecondition("runtime is not accepting submissions");
  }
  const std::uint64_t id = impl_->next_instance_id++;
  auto instance = std::make_unique<AppInstance>();
  instance->id = id;
  instance->name = app->name;
  instance->is_dag = true;
  instance->arrival_time = now();
  instance->launch_time = instance->arrival_time;
  instance->dag = app;
  instance->tasks_remaining = app->graph.size();
  // "Parsing application DAG files" happens here in DAG-based CEDR: the
  // in-degree table and HEFT ranks are built per instance.
  for (const task::Task& t : app->graph.tasks()) {
    instance->remaining_preds[t.id] = app->graph.predecessors(t.id).size();
  }
  instance->ranks = sched::upward_ranks(app->graph, config_.platform);

  // Head nodes enter the ready queue immediately (paper §II-A).
  for (const task::TaskId head : app->graph.head_nodes()) {
    const task::Task& t = app->graph.get(head);
    auto inflight = std::make_shared<InFlightTask>();
    inflight->key = impl_->next_task_key++;
    inflight->app_instance_id = id;
    inflight->name = t.name;
    inflight->kernel = t.kernel;
    inflight->problem_size = t.problem_size;
    inflight->data_bytes = t.data_bytes;
    inflight->impls = t.impls;
    inflight->is_dag = true;
    inflight->dag_task_id = t.id;
    inflight->rank = instance->ranks[t.id];
    inflight->enqueue_time = now();
    inflight->first_enqueue_time = inflight->enqueue_time;
    tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                 t.name.c_str(), 1 + id, 0, inflight->enqueue_time,
                 inflight->key);
    impl_->ready_queue.push_back(std::move(inflight));
  }
  tracer_.instant(obs::Category::kApp, "app_arrival", 1 + id, 0,
                  instance->arrival_time, "tasks",
                  static_cast<double>(instance->tasks_remaining));
  ++impl_->sched_epoch;
  impl_->apps.emplace(id, std::move(instance));
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  impl_->runtime_overhead += overhead.elapsed();
  count("apps_submitted_dag");
  lock.unlock();
  impl_->event_cv.notify_all();
  return id;
}

StatusOr<std::uint64_t> Runtime::submit_api(std::string app_name,
                                            std::function<void()> main_fn) {
  if (!main_fn) return InvalidArgument("null application main function");

  Stopwatch overhead;
  std::unique_lock lock(impl_->mutex);
  if (!impl_->started || !impl_->accepting) {
    return FailedPrecondition("runtime is not accepting submissions");
  }
  const std::uint64_t id = impl_->next_instance_id++;
  auto instance = std::make_unique<AppInstance>();
  instance->id = id;
  instance->name = std::move(app_name);
  instance->is_dag = false;
  instance->arrival_time = now();
  instance->launch_time = instance->arrival_time;
  AppInstance* raw = instance.get();
  tracer_.instant(obs::Category::kApp, "app_arrival", 1 + id, 0,
                  instance->arrival_time);
  impl_->apps.emplace(id, std::move(instance));
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  count("apps_submitted_api");

  // "A new system thread is spawned that executes that application's main
  // function" (paper §II-C). The binding routes its libCEDR calls here.
  raw->app_thread = std::thread([this, raw, fn = std::move(main_fn)] {
    thread_binding() = ThreadBinding{this, raw->id};
    fn();
    thread_binding() = ThreadBinding{};
    raw->main_done.store(true, std::memory_order_release);
    raw->thread_exited.store(true, std::memory_order_release);
    impl_->event_cv.notify_all();
  });
  impl_->runtime_overhead += overhead.elapsed();
  lock.unlock();
  impl_->event_cv.notify_all();
  return id;
}

Status Runtime::enqueue_kernel(KernelRequest request, CompletionPtr completion) {
  const ThreadBinding binding = thread_binding();
  if (binding.runtime != this) {
    return FailedPrecondition(
        "enqueue_kernel called from a thread not bound to this runtime");
  }
  if (!completion) return InvalidArgument("null completion");

  auto inflight = std::make_shared<InFlightTask>();
  inflight->app_instance_id = binding.instance_id;
  inflight->name = std::move(request.name);
  inflight->kernel = request.kernel;
  inflight->problem_size = request.problem_size;
  inflight->data_bytes = request.data_bytes;
  inflight->impls = std::move(request.impls);
  inflight->completion = std::move(completion);
  // Single API calls have no DAG context; rank them by their average cost
  // so HEFT_RT still prioritizes heavyweight kernels. Ranks use the live
  // adapted tables when adaptation is on.
  const std::shared_ptr<const platform::CostModel> learned =
      adapt_ != nullptr ? adapt_->snapshot() : nullptr;
  const platform::CostModel& costs =
      learned != nullptr ? *learned : config_.platform.costs;
  double rank_total = 0.0;
  std::size_t rank_count = 0;
  for (const platform::PeDescriptor& pe : config_.platform.pes) {
    const double est = costs.estimate(
        inflight->kernel, pe.cls, inflight->problem_size, inflight->data_bytes);
    if (std::isfinite(est)) {
      rank_total += est;
      ++rank_count;
    }
  }
  inflight->rank = rank_count == 0 ? 0.0 : rank_total / rank_count;

  {
    std::lock_guard lock(impl_->mutex);
    auto it = impl_->apps.find(binding.instance_id);
    if (it == impl_->apps.end() || it->second->finished) {
      return FailedPrecondition("application instance is not active");
    }
    inflight->key = impl_->next_task_key++;
    inflight->enqueue_time = now();
    inflight->first_enqueue_time = inflight->enqueue_time;
    tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                 inflight->name.c_str(), 1 + binding.instance_id, 0,
                 inflight->enqueue_time, inflight->key);
    ++impl_->sched_epoch;
    ++it->second->outstanding_kernels;
    // "Pushing tasks to the ready queue ... is handled by the application
    // thread" in API-based CEDR (paper §IV-A) — this push is on the app
    // thread, not the main loop, which is one source of the overhead gap.
    impl_->ready_queue.push_back(std::move(inflight));
  }
  count("kernels_enqueued");
  impl_->event_cv.notify_all();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Main event loop
// ---------------------------------------------------------------------------

void Runtime::main_loop() {
  std::unique_lock lock(impl_->mutex);
  while (true) {
    impl_->event_cv.wait_for(
        lock, std::chrono::duration<double>(config_.scheduler_period_s),
        [this] {
          // A ready queue the last round could not dispatch from (all
          // capable PEs quarantined / probes pending / retries backing
          // off) is not a wake reason until something changes; otherwise
          // the loop would busy-spin empty scheduling rounds.
          const bool schedulable =
              !impl_->ready_queue.empty() &&
              !(impl_->sched_blocked &&
                impl_->sched_epoch == impl_->sched_blocked_epoch);
          return impl_->stopping || !impl_->completions.empty() ||
                 schedulable;
        });
    if (impl_->stopping && impl_->completions.empty() &&
        impl_->ready_queue.empty() && impl_->deferred.empty()) {
      break;
    }
    process_completions();
    run_scheduling_round();
  }
}

void Runtime::process_completions() {
  // Caller holds impl_->mutex.
  Stopwatch overhead;
  bool any_app_finished = false;
  const platform::FaultPolicy& policy = config_.fault_plan.policy;
  while (!impl_->completions.empty()) {
    Impl::CompletionRecord rec = std::move(impl_->completions.front());
    impl_->completions.pop_front();
    // Every completion changes PE health or releases work: any blocked
    // scheduling state is stale now.
    ++impl_->sched_epoch;
    std::shared_ptr<InFlightTask> inflight = std::move(rec.task);
    const Status status = std::move(rec.status);
    Worker& worker = *impl_->workers[rec.pe_index];
    const double t_now = now();

    if (!status.ok()) {
      // --- PE health: consecutive faults drive quarantine. -----------------
      ++worker.faults_seen;
      tracer_.instant(obs::Category::kFault, "fault", 0,
                      1 + worker.pe_index, t_now, "attempt",
                      static_cast<double>(inflight->attempt));
      if (worker.quarantined) {
        // A failed probe: the PE stays out; schedule the next probe window.
        worker.probe_inflight = false;
        worker.probe_at = t_now + policy.probe_period_s;
        count("probes_failed");
        tracer_.instant(obs::Category::kFault, "probe_failed", 0,
                        1 + worker.pe_index, t_now);
      } else {
        ++worker.consecutive_faults;
        if (policy.quarantine_threshold > 0 &&
            worker.consecutive_faults >= policy.quarantine_threshold) {
          worker.quarantined = true;
          worker.probe_inflight = false;
          worker.probe_at = t_now + policy.probe_period_s;
          ++worker.quarantines;
          count("pes_quarantined");
          tracer_.instant(obs::Category::kFault, "pe_quarantined", 0,
                          1 + worker.pe_index, t_now, "consecutive_faults",
                          static_cast<double>(worker.consecutive_faults));
          CEDR_LOG(kWarn, kLogTag)
              << "PE " << worker.pe.name << " quarantined after "
              << worker.consecutive_faults << " consecutive faults";
        }
      }
      // --- Bounded retry with exponential backoff. -------------------------
      // Remember the class that failed so the retry prefers a different PE
      // type (graceful degradation: a quarantined accelerator's work lands
      // on the CPU implementation through the same dispatch table).
      inflight->failed_class_mask |=
          1u << static_cast<unsigned>(worker.pe.cls);
      if (inflight->attempt < policy.max_retries) {
        ++inflight->attempt;
        count("tasks_retried");
        const double backoff =
            policy.backoff_base_s *
            std::pow(policy.backoff_factor,
                     static_cast<double>(inflight->attempt - 1));
        inflight->retry_at = t_now + backoff;
        tracer_.instant(obs::Category::kFault, "retry_backoff", 0,
                        1 + worker.pe_index, t_now, "attempt",
                        static_cast<double>(inflight->attempt), "backoff_s",
                        backoff);
        impl_->deferred.push_back(std::move(inflight));
        continue;  // not terminal: no successor release, no app signal
      }
      // Terminal failure: retries exhausted. Only now does the failure
      // become visible to the application.
      count("tasks_failed");
      tracer_.instant(obs::Category::kFault, "task_failed", 0,
                      1 + worker.pe_index, t_now, "attempts",
                      static_cast<double>(inflight->attempt + 1));
      CEDR_LOG(kWarn, kLogTag)
          << "task '" << inflight->name << "' failed after "
          << (inflight->attempt + 1)
          << " attempts: " << status.to_string();
      if (inflight->completion) inflight->completion->signal(status);
    } else {
      // --- Success: reset health, reinstate a probed PE, book recovery. ----
      worker.consecutive_faults = 0;
      worker.probe_inflight = false;
      if (worker.quarantined) {
        worker.quarantined = false;
        count("pes_reinstated");
        tracer_.instant(obs::Category::kFault, "pe_reinstated", 0,
                        1 + worker.pe_index, t_now);
        CEDR_LOG(kInfo, kLogTag)
            << "PE " << worker.pe.name << " reinstated after probe success";
      }
      if (inflight->attempt > 0) {
        count("tasks_recovered");
        trace_.add_retry_latency(t_now - inflight->first_enqueue_time);
        tracer_.instant(obs::Category::kFault, "task_recovered", 0,
                        1 + worker.pe_index, t_now, "latency_s",
                        t_now - inflight->first_enqueue_time);
      }
    }
    auto it = impl_->apps.find(inflight->app_instance_id);
    if (it == impl_->apps.end()) continue;
    AppInstance& app = *it->second;
    if (inflight->is_dag) {
      // Release DAG successors whose predecessors are all complete.
      for (const task::TaskId succ :
           app.dag->graph.successors(inflight->dag_task_id)) {
        if (--app.remaining_preds[succ] != 0) continue;
        const task::Task& t = app.dag->graph.get(succ);
        auto next = std::make_shared<InFlightTask>();
        next->key = impl_->next_task_key++;
        next->app_instance_id = app.id;
        next->name = t.name;
        next->kernel = t.kernel;
        next->problem_size = t.problem_size;
        next->data_bytes = t.data_bytes;
        next->impls = t.impls;
        next->is_dag = true;
        next->dag_task_id = t.id;
        next->rank = app.ranks[t.id];
        next->enqueue_time = now();
        tracer_.flow(obs::EventKind::kFlowBegin, obs::Category::kApp,
                     t.name.c_str(), 1 + app.id, 0, next->enqueue_time,
                     next->key);
        impl_->ready_queue.push_back(std::move(next));
      }
      if (--app.tasks_remaining == 0) {
        finish_app_locked(app);
        any_app_finished = true;
      }
    } else {
      --app.outstanding_kernels;
    }
  }
  // API applications finish when their main returned and no kernels remain.
  for (auto& [id, app] : impl_->apps) {
    if (!app->is_dag && !app->finished &&
        app->main_done.load(std::memory_order_acquire) &&
        app->outstanding_kernels == 0) {
      finish_app_locked(*app);
      any_app_finished = true;
    }
    if (!app->is_dag && app->thread_exited.load(std::memory_order_acquire) &&
        app->app_thread.joinable()) {
      app->app_thread.join();
    }
  }
  impl_->runtime_overhead += overhead.elapsed();
  if (any_app_finished) impl_->app_done_cv.notify_all();
}

void Runtime::finish_app_locked(AppInstance& app) {
  app.finished = true;
  const double completion = now();
  trace_.add_app(trace::AppRecord{
      .app_instance_id = app.id,
      .app_name = app.name,
      .arrival_time = app.arrival_time,
      .launch_time = app.launch_time,
      .completion_time = completion,
  });
  tracer_.instant(obs::Category::kApp, "app_complete", 1 + app.id, 0,
                  completion, "exec_time_s", completion - app.arrival_time);
  impl_->completed.fetch_add(1, std::memory_order_relaxed);
  count("apps_completed");
}

void Runtime::run_scheduling_round() {
  // Caller holds impl_->mutex.
  // A blocked round stays blocked until new work / a completion bumps the
  // epoch or the earliest unblocking timer (backoff release, probe window)
  // passes; re-running the heuristic before then cannot dispatch anything.
  if (impl_->sched_blocked) {
    if (impl_->sched_epoch == impl_->sched_blocked_epoch &&
        now() < impl_->sched_blocked_until) {
      return;
    }
    impl_->sched_blocked = false;
  }
  // Release deferred retries whose backoff has elapsed.
  if (!impl_->deferred.empty()) {
    const double release_now = now();
    std::deque<std::shared_ptr<InFlightTask>> still_waiting;
    for (auto& t : impl_->deferred) {
      if (t->retry_at <= release_now) {
        t->enqueue_time = release_now;
        impl_->ready_queue.push_back(std::move(t));
      } else {
        still_waiting.push_back(std::move(t));
      }
    }
    impl_->deferred = std::move(still_waiting);
  }
  if (impl_->ready_queue.empty()) return;

  std::uint32_t present_classes = 0;
  for (const auto& worker : impl_->workers) {
    present_classes |= 1u << static_cast<unsigned>(worker->pe.cls);
  }
  std::vector<sched::ReadyTask> views;
  views.reserve(impl_->ready_queue.size());
  for (const auto& t : impl_->ready_queue) {
    // Classes with a bound implementation; tasks with no impls at all
    // (timing-only studies) are admissible anywhere the kernel runs.
    std::uint32_t mask = 0;
    bool any_impl = false;
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      if (t->impls[c]) {
        mask |= 1u << c;
        any_impl = true;
      }
    }
    if (!any_impl) mask = 0xffffffffu;
    // Retries prefer a PE type that has not failed this task yet. The
    // narrowed mask must still name a class that exists on this platform —
    // otherwise the task would become permanently unschedulable — so when
    // every present class has failed it, fall back to the full set.
    if (t->failed_class_mask != 0) {
      const std::uint32_t narrowed = mask & ~t->failed_class_mask;
      if ((narrowed & present_classes) != 0) mask = narrowed;
    }
    views.push_back(sched::ReadyTask{
        .task_key = t->key,
        .app_instance_id = t->app_instance_id,
        .kernel = t->kernel,
        .problem_size = t->problem_size,
        .data_bytes = t->data_bytes,
        .ready_time = t->enqueue_time,
        .rank = t->rank,
        .class_mask = mask,
    });
  }
  const double t_now = now();
  std::vector<sched::PeState> pe_states;
  pe_states.reserve(impl_->workers.size());
  for (std::size_t i = 0; i < impl_->workers.size(); ++i) {
    const Worker& w = *impl_->workers[i];
    // A quarantined PE is hidden from the heuristic, except when its probe
    // window is open: then it is admitted so one probe task can test it.
    bool excluded = w.quarantined;
    if (excluded && !w.probe_inflight && t_now >= w.probe_at) {
      excluded = false;
    }
    pe_states.push_back(sched::PeState{
        .pe_index = i,
        .cls = w.pe.cls,
        .available_time = std::max(t_now, impl_->pe_available[i]),
        .speed = w.pe.speed_factor,
        .quarantined = excluded,
    });
  }

  // With adaptation on, the round schedules against the latest published
  // cost snapshot — one lock-free shared_ptr load, held for the whole round
  // so every finish_time_on comparison sees one consistent table.
  const std::shared_ptr<const platform::CostModel> learned =
      adapt_ != nullptr ? adapt_->snapshot() : nullptr;
  const sched::ScheduleContext ctx{
      .now = t_now,
      .costs = learned != nullptr ? learned.get() : &config_.platform.costs};
  Stopwatch decision;
  const sched::ScheduleResult result =
      scheduler_->schedule(views, pe_states, ctx);
  const double decision_time = decision.elapsed();
  trace_.add_sched(trace::SchedRecord{
      .time = t_now,
      .ready_tasks = views.size(),
      .assigned = result.assignments.size(),
      .decision_time = decision_time,
  });
  sched_decision_us_->record(decision_time * 1e6);
  tracer_.complete_span(obs::Category::kSched, sched_span_name_.c_str(), 0, 0,
                        t_now, decision_time, "ready",
                        static_cast<double>(views.size()), "assigned",
                        static_cast<double>(result.assignments.size()));
  count("sched_rounds");
  count("sched_comparisons", result.comparisons);

  // Dispatch assigned tasks to their worker mailboxes; keep the rest queued.
  // A quarantined PE whose probe window admitted it takes exactly one task
  // (the probe); further assignments to it stay queued for the next round.
  std::vector<std::uint8_t> assigned(impl_->ready_queue.size(), 0);
  for (const sched::Assignment& a : result.assignments) {
    Worker& w = *impl_->workers[a.pe_index];
    if (w.quarantined) {
      if (w.probe_inflight) continue;  // one probe at a time
      w.probe_inflight = true;
      count("probes_dispatched");
    }
    assigned[a.queue_index] = 1;
    tracer_.flow(obs::EventKind::kFlowStep, obs::Category::kSched, "dispatch",
                 0, 0, now(), impl_->ready_queue[a.queue_index]->key);
    w.mailbox.push(impl_->ready_queue[a.queue_index]);
  }
  std::deque<std::shared_ptr<InFlightTask>> remaining;
  std::size_t dispatched = 0;
  for (std::size_t i = 0; i < impl_->ready_queue.size(); ++i) {
    if (!assigned[i]) {
      remaining.push_back(std::move(impl_->ready_queue[i]));
    } else {
      ++dispatched;
    }
  }
  impl_->ready_queue = std::move(remaining);
  for (const sched::PeState& pe : pe_states) {
    impl_->pe_available[pe.pe_index] = pe.available_time;
  }
  if (dispatched == 0 && !impl_->ready_queue.empty()) {
    // Nothing moved: block further rounds until the state epoch changes or
    // the earliest timer that could free a PE / release a retry fires.
    double until = std::numeric_limits<double>::infinity();
    for (const auto& t : impl_->deferred) {
      until = std::min(until, t->retry_at);
    }
    for (const auto& w : impl_->workers) {
      if (w->quarantined && !w->probe_inflight) {
        until = std::min(until, w->probe_at);
      }
    }
    impl_->sched_blocked = true;
    impl_->sched_blocked_epoch = impl_->sched_epoch;
    impl_->sched_blocked_until = until;
  }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

Status Runtime::execute_on_pe(InFlightTask& task, Worker& worker) {
  const task::TaskFn& impl =
      task.impls[static_cast<std::size_t>(worker.pe.cls)];
  platform::MmioDevice* device = worker.devices.for_kernel(task.kernel);

  if (fault_injector_ != nullptr) {
    const platform::FaultDecision fault =
        fault_injector_->next(worker.pe_index);
    switch (fault.kind) {
      case platform::FaultKind::kNone:
        break;
      case platform::FaultKind::kTransientFail:
        count("faults_injected");
        return Unavailable("injected transient fault on " + worker.pe.name);
      case platform::FaultKind::kLatencySpike:
        // The execution still succeeds, it just takes longer (thermal
        // throttling / contention); the deadline check may still fail it.
        count("faults_injected");
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.duration_s));
        break;
      case platform::FaultKind::kDeviceHang:
        count("faults_injected");
        if (device != nullptr && impl) {
          // Wedge the MMIO device: the impl's polling loop spins until the
          // emulated watchdog flips the status register to kStatusError.
          device->inject_hang();
        } else {
          // CPU-style PE with no device to wedge: the worker is simply
          // unresponsive for the hang dwell (clipped to the task deadline).
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(fault.duration_s,
                       config_.fault_plan.policy.task_timeout_s)));
          return Unavailable("injected PE hang on " + worker.pe.name);
        }
        break;
    }
  }

  // Tasks without implementations (timing/structural studies) are no-ops.
  if (!impl) return Status::Ok();
  task::ExecContext ctx{
      .pe = &worker.pe,
      .device = device,
  };
  Status status = impl(ctx);
  // Recover the device after a failed operation (hang, error) so the next
  // task dispatched here starts from a clean register file.
  if (!status.ok() && device != nullptr) device->reset();
  return status;
}

void Runtime::worker_loop(Worker& worker) {
  while (auto item = worker.mailbox.pop()) {
    std::shared_ptr<InFlightTask> task = std::move(*item);
    const double start = now();
    worker.busy_since.store(start, std::memory_order_relaxed);
    Status status = execute_on_pe(*task, worker);
    const double end = now();
    worker.busy_seconds.store(
        worker.busy_seconds.load(std::memory_order_relaxed) + (end - start),
        std::memory_order_relaxed);
    worker.busy_since.store(-1.0, std::memory_order_relaxed);
    worker.tasks_done.fetch_add(1, std::memory_order_relaxed);
    // Per-task deadline: when fault injection is active, an execution that
    // overran the policy deadline is treated as a failure (and retried) even
    // if it eventually produced a result — the paper's real-time framing.
    if (fault_injector_ != nullptr && status.ok() &&
        end - start > config_.fault_plan.policy.task_timeout_s) {
      count("deadline_misses");
      status = Unavailable("task exceeded deadline on " + worker.pe.name);
    }
    // Feed the online cost estimator with successful executions only;
    // faulted attempts never describe the pairing's true cost, and latency
    // spikes that slipped through are handled by its outlier rejection.
    if (adapt_ != nullptr && status.ok()) {
      adapt_->observe(task->kernel, worker.pe.cls, task->problem_size,
                      task->data_bytes, end - start);
    }
    trace_.add_task(trace::TaskRecord{
        .app_instance_id = task->app_instance_id,
        .app_name = "",
        .task_id = task->key,
        .kernel_name = std::string(platform::kernel_name(task->kernel)),
        .pe_name = worker.pe.name,
        .problem_size = task->problem_size,
        .enqueue_time = task->enqueue_time,
        .start_time = start,
        .end_time = end,
        .attempt = task->attempt,
        .ok = status.ok(),
    });
    count("tasks_executed");
    if (config_.enable_counters) {
      counters_.add(std::string("tasks_on_") + worker.pe.name);
    }
    queue_delay_us_->record((start - task->enqueue_time) * 1e6);
    service_time_us_->record((end - start) * 1e6);
    tracer_.flow(obs::EventKind::kFlowEnd, obs::Category::kWorker, "execute",
                 0, 1 + worker.pe_index, start, task->key);
    tracer_.complete_span(obs::Category::kWorker, task->name.c_str(), 0,
                          1 + worker.pe_index, start, end - start, "attempt",
                          static_cast<double>(task->attempt), "ok",
                          status.ok() ? 1.0 : 0.0);
    // Fig. 4: the worker signals the sleeping application thread directly —
    // but only on success. Failures first go through the main loop's retry
    // machinery; only a terminal failure is signalled (from there).
    if (status.ok() && task->completion) task->completion->signal(status);
    {
      std::lock_guard lock(impl_->mutex);
      impl_->completions.push_back(Impl::CompletionRecord{
          .task = std::move(task),
          .status = std::move(status),
          .pe_index = worker.pe_index,
      });
    }
    impl_->event_cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Waiting
// ---------------------------------------------------------------------------

Status Runtime::wait_all(double timeout_s) {
  std::unique_lock lock(impl_->mutex);
  const bool ok = impl_->app_done_cv.wait_for(
      lock, std::chrono::duration<double>(timeout_s), [this] {
        return impl_->completed.load(std::memory_order_relaxed) ==
               impl_->submitted.load(std::memory_order_relaxed);
      });
  if (!ok) return Unavailable("wait_all timed out");
  return Status::Ok();
}

Status Runtime::wait_app(std::uint64_t instance_id, double timeout_s) {
  std::unique_lock lock(impl_->mutex);
  const bool ok = impl_->app_done_cv.wait_for(
      lock, std::chrono::duration<double>(timeout_s), [this, instance_id] {
        auto it = impl_->apps.find(instance_id);
        return it == impl_->apps.end() || it->second->finished;
      });
  if (!ok) return Unavailable("wait_app timed out");
  return Status::Ok();
}

}  // namespace cedr::rt
