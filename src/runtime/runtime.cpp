// Runtime lifecycle and configuration: construction, start()/shutdown(),
// the Runtime Configuration file, and the observability accessors. The
// event loop, submissions and dispatch live in the sibling TUs (see
// runtime_impl.h for the lock hierarchy).

#include "runtime_impl.h"

#include <algorithm>
#include <utility>

#include "cedr/common/log.h"
#include "cedr/obs/chrome_trace.h"

namespace cedr::rt {

// ---------------------------------------------------------------------------
// Thread binding: which runtime/app-instance the current thread belongs to.
// Set around API-application main functions so that libCEDR calls made from
// that thread route into the right runtime (paper §II-C: calls are "linked
// during binary parsing against implementations ... that themselves call an
// enqueue_kernel function inside the CEDR runtime").
// ---------------------------------------------------------------------------

ThreadBinding& thread_binding() noexcept {
  thread_local ThreadBinding binding;
  return binding;
}

// ---------------------------------------------------------------------------
// Runtime configuration file
// ---------------------------------------------------------------------------

json::Value ObsConfig::to_json() const {
  return json::Object{
      {"tracing", json::Value(tracing)},
      {"ring_capacity", json::Value(ring_capacity)},
      {"sampler_period_s", json::Value(sampler_period_s)},
      {"trace_dir", json::Value(trace_dir)},
      {"trace_flush_interval_s", json::Value(trace_flush_interval_s)},
      {"trace_segment_events", json::Value(trace_segment_events)},
      {"trace_segment_age_s", json::Value(trace_segment_age_s)},
      {"trace_retention", json::Value(trace_retention)},
  };
}

StatusOr<ObsConfig> ObsConfig::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("obs configuration must be a JSON object");
  }
  ObsConfig config;
  config.tracing = value.get_bool("tracing", true);
  const std::int64_t ring = value.get_int(
      "ring_capacity",
      static_cast<std::int64_t>(obs::SpanTracer::kDefaultCapacity));
  if (ring <= 0) return InvalidArgument("obs ring_capacity must be positive");
  config.ring_capacity = static_cast<std::size_t>(ring);
  config.sampler_period_s = value.get_double("sampler_period_s", 0.0);
  config.trace_dir = value.get_string("trace_dir", "");
  config.trace_flush_interval_s =
      value.get_double("trace_flush_interval_s", 1.0);
  if (!config.trace_dir.empty() && config.trace_flush_interval_s <= 0.0) {
    return InvalidArgument("obs trace_flush_interval_s must be positive");
  }
  const std::int64_t seg_events = value.get_int("trace_segment_events", 8192);
  if (seg_events <= 0) {
    return InvalidArgument("obs trace_segment_events must be positive");
  }
  config.trace_segment_events = static_cast<std::size_t>(seg_events);
  config.trace_segment_age_s = value.get_double("trace_segment_age_s", 10.0);
  const std::int64_t retention = value.get_int("trace_retention", 64);
  if (retention < 0) {
    return InvalidArgument("obs trace_retention must be >= 0 (0 = unbounded)");
  }
  config.trace_retention = static_cast<std::size_t>(retention);
  return config;
}

json::Value RuntimeConfig::to_json() const {
  return json::Object{
      {"platform", platform.to_json()},
      {"scheduler", json::Value(scheduler)},
      {"scheduler_period_s", json::Value(scheduler_period_s)},
      {"default_wait_timeout_s", json::Value(default_wait_timeout_s)},
      {"enable_counters", json::Value(enable_counters)},
      {"fault_plan", fault_plan.to_json()},
      {"obs", obs.to_json()},
      {"adapt", adapt.to_json()},
      {"lookahead_depth", json::Value(static_cast<std::int64_t>(lookahead_depth))},
  };
}

StatusOr<RuntimeConfig> RuntimeConfig::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("runtime configuration must be a JSON object");
  }
  RuntimeConfig config;
  if (const json::Value* plat = value.find("platform")) {
    auto parsed = platform::PlatformConfig::from_json(*plat);
    if (!parsed.ok()) return parsed.status();
    config.platform = *std::move(parsed);
  } else {
    return InvalidArgument("runtime configuration missing 'platform'");
  }
  config.scheduler = value.get_string("scheduler", "EFT");
  if (!sched::make_scheduler(config.scheduler).ok()) {
    return InvalidArgument("unknown scheduler: " + config.scheduler);
  }
  config.scheduler_period_s =
      value.get_double("scheduler_period_s", 200e-6);
  if (config.scheduler_period_s <= 0.0) {
    return InvalidArgument("scheduler period must be positive");
  }
  config.default_wait_timeout_s =
      value.get_double("default_wait_timeout_s", 300.0);
  if (config.default_wait_timeout_s < 0.0) {
    return InvalidArgument(
        "default_wait_timeout_s must be >= 0 (0 waits forever)");
  }
  config.enable_counters = value.get_bool("enable_counters", true);
  if (const json::Value* plan = value.find("fault_plan")) {
    auto parsed = platform::FaultPlan::from_json(*plan);
    if (!parsed.ok()) return parsed.status();
    config.fault_plan = *std::move(parsed);
  }
  if (const json::Value* obs = value.find("obs")) {
    auto parsed = ObsConfig::from_json(*obs);
    if (!parsed.ok()) return parsed.status();
    config.obs = *std::move(parsed);
  }
  if (const json::Value* adapt = value.find("adapt")) {
    auto parsed = adapt::AdaptConfig::from_json(*adapt);
    if (!parsed.ok()) return parsed.status();
    config.adapt = *std::move(parsed);
  }
  const std::int64_t lookahead = value.get_int("lookahead_depth", 2);
  if (lookahead < 0) {
    return InvalidArgument("lookahead_depth must be >= 0");
  }
  config.lookahead_depth = static_cast<std::size_t>(lookahead);
  return config;
}

StatusOr<RuntimeConfig> RuntimeConfig::load(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc.ok()) return doc.status();
  return from_json(*doc);
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)), tracer_(config_.obs.ring_capacity) {
  tracer_.set_enabled(config_.obs.tracing);
  queue_delay_us_ = &metrics_.histogram("queue_delay_us");
  service_time_us_ = &metrics_.histogram("service_time_us");
  sched_decision_us_ = &metrics_.histogram("sched_decision_us");
  instantiate_us_ = &metrics_.histogram("instantiate_us");
  complete_publish_us_ = &metrics_.histogram("complete_publish_us");
  lookahead_round_us_ = &metrics_.histogram("lookahead_round_us");
  sched_span_name_ = "sched " + config_.scheduler;
  // The sharded ready queue times contended shard-lock acquisitions into
  // this histogram (docs/observability.md); metrics_ outlives impl_.
  impl_ = std::make_unique<Impl>(&metrics_.histogram("sched_lock_wait_us"));
}

Runtime::~Runtime() {
  const Status status = shutdown();
  if (!status.ok()) {
    CEDR_LOG(kError, kLogTag) << "shutdown in destructor failed: "
                              << status.to_string();
  }
}

double Runtime::now() const noexcept { return impl_->epoch.elapsed(); }

void Runtime::count(const char* name, std::uint64_t delta) {
  // The Runtime Configuration can disable the PAPI-substitute counters
  // entirely (paper Fig. 1: features such as performance counters are
  // enabled or disabled through the configuration input).
  if (config_.enable_counters) counters_.add(name, delta);
}

std::uint64_t Runtime::submitted_apps() const noexcept {
  return impl_->submitted.load(std::memory_order_relaxed);
}

std::uint64_t Runtime::completed_apps() const noexcept {
  return impl_->completed.load(std::memory_order_relaxed);
}

double Runtime::runtime_overhead_s() const noexcept {
  std::lock_guard lock(impl_->app_mutex);
  return impl_->runtime_overhead;
}

std::vector<PeHealth> Runtime::pe_health() const {
  std::lock_guard lock(impl_->health_mutex);
  std::vector<PeHealth> out;
  out.reserve(impl_->workers.size());
  for (const auto& worker : impl_->workers) {
    out.push_back(PeHealth{
        .pe_name = worker->pe.name,
        .cls = worker->pe.cls,
        .quarantined = worker->quarantined,
        .consecutive_faults = worker->consecutive_faults,
        .faults_seen = worker->faults_seen,
        .quarantines = worker->quarantines,
    });
  }
  return out;
}

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  out.uptime_s = now();
  out.submitted = submitted_apps();
  out.completed = completed_apps();
  out.inflight = out.submitted - out.completed;
  // Queue depths are lock-free; only the quarantine flags take a (narrow)
  // lock, so a stats poll never contends with submissions or dispatch.
  out.ready_tasks = impl_->ready.size();
  out.deferred_tasks = impl_->deferred_count.load(std::memory_order_relaxed);
  std::lock_guard lock(impl_->health_mutex);
  for (const auto& worker : impl_->workers) {
    const std::uint64_t tasks =
        worker->tasks_done.load(std::memory_order_relaxed);
    out.tasks_executed += tasks;
    out.pes.push_back(RuntimeStats::PeBusy{
        .name = worker->pe.name,
        .tasks = tasks,
        .busy_fraction = out.uptime_s > 0.0
                             ? worker->busy_at(out.uptime_s) / out.uptime_s
                             : 0.0,
        .quarantined = worker->quarantined,
    });
  }
  return out;
}

std::vector<obs::TrackName> Runtime::trace_tracks() const {
  std::vector<obs::TrackName> tracks;
  tracks.push_back({.pid = 0, .is_process = true, .name = "cedr runtime"});
  tracks.push_back({.pid = 0, .tid = 0, .name = "main loop"});
  tracks.push_back({.pid = 0, .tid = obs::kIpcTid, .name = "ipc"});
  for (const auto& worker : impl_->workers) {
    tracks.push_back(
        {.pid = 0, .tid = 1 + worker->pe_index, .name = worker->pe.name});
  }
  {
    std::lock_guard lock(impl_->app_mutex);
    // Live instances plus names saved when finished instances were reaped
    // (kept only while tracing), so every pid in the span stream is named.
    // Names are never forgotten while tracing, so each snapshot of this
    // table is a superset of earlier ones — the property the .cbt stitcher
    // relies on when unioning per-segment track tables.
    for (const auto& [id, app] : impl_->apps) {
      tracks.push_back({.pid = 1 + id,
                        .is_process = true,
                        .name = app->name + " #" + std::to_string(id)});
    }
    for (const auto& [id, name] : impl_->reaped_app_names) {
      tracks.push_back({.pid = 1 + id,
                        .is_process = true,
                        .name = name + " #" + std::to_string(id)});
    }
  }
  return tracks;
}

Status Runtime::write_chrome_trace(const std::string& path) const {
  return obs::write_chrome_trace(path, tracer_.snapshot(), trace_tracks());
}

Status Runtime::start() {
  CEDR_RETURN_IF_ERROR(config_.platform.validate());
  CEDR_RETURN_IF_ERROR(config_.fault_plan.validate());
  auto scheduler = sched::make_scheduler(config_.scheduler);
  if (!scheduler.ok()) return scheduler.status();
  scheduler_ = *std::move(scheduler);
  lookahead_ = dynamic_cast<sched::LookaheadScheduler*>(scheduler_.get());
  if (lookahead_ != nullptr) {
    CEDR_LOG(kInfo, kLogTag) << "frontier lookahead enabled: scheduler="
                             << config_.scheduler << " depth="
                             << config_.lookahead_depth;
  }
  if (!config_.fault_plan.empty()) {
    fault_injector_ = std::make_unique<platform::FaultInjector>(
        config_.fault_plan, config_.platform.pes);
    CEDR_LOG(kInfo, kLogTag) << "fault injection enabled: seed=0x" << std::hex
                             << config_.fault_plan.seed << std::dec;
  }
  if (config_.adapt.enabled) {
    adapt_ = std::make_unique<adapt::OnlineCostEstimator>(
        config_.adapt, config_.platform.costs);
    CEDR_LOG(kInfo, kLogTag) << "online cost adaptation enabled: half_life="
                             << config_.adapt.half_life << " min_samples="
                             << config_.adapt.min_samples;
  }

  if (!config_.obs.trace_dir.empty()) {
    // Continuous trace pipeline: fail start() outright if the segment
    // directory cannot be created — better than silently tracing nowhere.
    flusher_ = std::make_unique<obs::TraceFlusher>(
        tracer_,
        obs::SegmentWriter::Config{
            .dir = config_.obs.trace_dir,
            .max_segment_events = config_.obs.trace_segment_events,
            .max_segment_age_s = config_.obs.trace_segment_age_s,
            .max_segments = config_.obs.trace_retention,
        },
        [this] { return trace_tracks(); });
    const Status opened = flusher_->open();
    if (!opened.ok()) {
      flusher_.reset();
      return opened;
    }
  }

  std::lock_guard lock(impl_->app_mutex);
  if (impl_->started) return FailedPrecondition("runtime already started");
  impl_->started = true;
  impl_->accepting = true;
  impl_->epoch.reset();

  // One worker (and mailbox) per PE, mirroring Fig. 1. Accelerator workers
  // own the emulated device they coordinate.
  for (std::size_t i = 0; i < config_.platform.pes.size(); ++i) {
    auto worker = std::make_unique<Worker>();
    worker->pe_index = i;
    worker->pe = config_.platform.pes[i];
    impl_->present_classes |= 1u << static_cast<unsigned>(worker->pe.cls);
    switch (worker->pe.cls) {
      case platform::PeClass::kFftAccel:
        worker->devices.fft = std::make_unique<platform::FftDevice>();
        break;
      case platform::PeClass::kMmultAccel:
        worker->devices.mmult = std::make_unique<platform::MmultDevice>();
        break;
      case platform::PeClass::kGpu:
        // The Jetson GPU hosts FFT and ZIP CUDA kernels (paper §III).
        worker->devices.fft = std::make_unique<platform::FftDevice>();
        worker->devices.zip = std::make_unique<platform::ZipDevice>();
        break;
      default:
        break;
    }
    impl_->workers.push_back(std::move(worker));
  }
  impl_->pe_available.assign(impl_->workers.size(), 0.0);
  for (auto& worker : impl_->workers) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
  impl_->main_thread = std::thread([this] { main_loop(); });
  tracer_.instant(obs::Category::kRuntime, "runtime_start", 0, 0, 0.0);
  if (config_.obs.sampler_period_s > 0.0) {
    // The tick computes each PE's busy fraction over the elapsed interval
    // (not lifetime) so the series shows utilization as it changes.
    sampler_ = std::make_unique<obs::Sampler>(
        config_.obs.sampler_period_s,
        [this, prev_busy = std::vector<double>(impl_->workers.size(), 0.0),
         queue_epoch = obs::QuantileHistogram::Epoch{},
         service_epoch = obs::QuantileHistogram::Epoch{},
         sched_epoch = obs::QuantileHistogram::Epoch{},
         prev_t = 0.0](double) mutable {
          const double t = now();
          const double interval = t - prev_t;
          // Queue depths are lock-free atomics; per-shard depths expose
          // where ready work is class-constrained (docs/observability.md).
          const auto depths = impl_->ready.depths();
          const std::size_t ready = impl_->ready.size();
          const std::size_t deferred =
              impl_->deferred_count.load(std::memory_order_relaxed);
          const double inflight = static_cast<double>(
              submitted_apps() - completed_apps());
          metrics_.set_gauge("ready_queue_depth", static_cast<double>(ready));
          metrics_.set_gauge("deferred_tasks", static_cast<double>(deferred));
          metrics_.set_gauge("inflight_apps", inflight);
          for (std::size_t s = 0; s < sched::ReadyQueueShards::kShardCount;
               ++s) {
            metrics_.set_gauge(
                "ready_queue_depth." +
                    std::string(sched::ReadyQueueShards::shard_name(s)),
                static_cast<double>(depths[s]));
          }
          metrics_.sample("ready_queue_depth", t, static_cast<double>(ready));
          metrics_.sample("inflight_apps", t, inflight);
          for (std::size_t i = 0; i < impl_->workers.size(); ++i) {
            const double busy = impl_->workers[i]->busy_at(t);
            const double frac =
                interval > 0.0
                    ? std::clamp((busy - prev_busy[i]) / interval, 0.0, 1.0)
                    : 0.0;
            prev_busy[i] = busy;
            const std::string name = "pe." + impl_->workers[i]->pe.name + ".busy";
            metrics_.set_gauge(name, frac);
            metrics_.sample(name, t, frac);
          }
          // Interval-rate gauges from the sampler's private delta epochs:
          // dashboards get "what happened since the last tick" without
          // reset()ing the histograms out from under lifetime consumers.
          const auto publish_rate = [&](const char* name,
                                        obs::QuantileHistogram* hist,
                                        obs::QuantileHistogram::Epoch& epoch) {
            const auto delta = hist->snapshot_delta(epoch);
            metrics_.set_gauge(
                std::string(name) + ".rate_per_s",
                interval > 0.0
                    ? static_cast<double>(delta.count) / interval
                    : 0.0);
            metrics_.set_gauge(std::string(name) + ".interval_mean",
                               delta.mean());
          };
          publish_rate("queue_delay_us", queue_delay_us_, queue_epoch);
          publish_rate("service_time_us", service_time_us_, service_epoch);
          publish_rate("sched_decision_us", sched_decision_us_, sched_epoch);
          if (flusher_ != nullptr) {
            metrics_.set_gauge("obs.trace_dropped_total",
                               static_cast<double>(flusher_->dropped_total()));
            metrics_.set_gauge(
                "obs.trace_segments",
                static_cast<double>(flusher_->writer().segments_finalized()));
          }
          if (adapt_ != nullptr) {
            metrics_.set_gauge("adapt.publishes",
                               static_cast<double>(adapt_->publishes()));
            metrics_.set_gauge("adapt.rel_error", adapt_->mean_rel_error());
            for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
              const auto cls = static_cast<platform::PeClass>(c);
              metrics_.set_gauge(
                  "adapt.rel_error." + std::string(platform::pe_class_name(cls)),
                  adapt_->class_rel_error(cls));
            }
          }
          prev_t = t;
        });
    sampler_->start();
  }
  if (flusher_ != nullptr) {
    // Dedicated thread (not the metrics tick): a slow disk may stall a
    // flush for longer than the sampler period, and utilization series
    // should not gap when it does.
    flush_sampler_ = std::make_unique<obs::Sampler>(
        config_.obs.trace_flush_interval_s, [this](double) {
          const Status flushed = flusher_->flush(now());
          if (!flushed.ok()) {
            CEDR_LOG(kWarn, kLogTag)
                << "trace flush failed: " << flushed.to_string();
          }
        });
    flush_sampler_->start();
    CEDR_LOG(kInfo, kLogTag) << "trace pipeline enabled: dir="
                             << config_.obs.trace_dir << " flush_interval="
                             << config_.obs.trace_flush_interval_s << "s";
  }
  CEDR_LOG(kInfo, kLogTag) << "runtime started: platform="
                           << config_.platform.name
                           << " pes=" << config_.platform.pes.size()
                           << " scheduler=" << config_.scheduler;
  return Status::Ok();
}

Status Runtime::shutdown() {
  {
    std::lock_guard lock(impl_->app_mutex);
    if (!impl_->started || impl_->stopping.load(std::memory_order_relaxed)) {
      return Status::Ok();
    }
    impl_->accepting = false;
  }
  // Drain all in-flight applications before stopping the machinery.
  const Status drain = wait_all();
  if (sampler_ != nullptr) sampler_->stop();
  if (flush_sampler_ != nullptr) flush_sampler_->stop();
  tracer_.instant(obs::Category::kRuntime, "runtime_shutdown", 0, 0, now());
  impl_->stopping.store(true, std::memory_order_release);
  impl_->wake_main();
  if (impl_->main_thread.joinable()) impl_->main_thread.join();
  for (auto& worker : impl_->workers) {
    worker->mailbox.close();
  }
  for (auto& worker : impl_->workers) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Join any application threads not yet reaped. Collect under the lock,
  // join outside it (the threads have already exited their main functions).
  std::vector<std::thread> app_threads;
  {
    std::lock_guard lock(impl_->app_mutex);
    for (auto& [id, app] : impl_->apps) {
      if (app->app_thread.joinable()) {
        app_threads.push_back(std::move(app->app_thread));
      }
    }
  }
  for (std::thread& t : app_threads) t.join();
  if (flusher_ != nullptr) {
    // Tail flush after every producer has quiesced: whatever the periodic
    // flush missed (including the runtime_shutdown instant above) lands in
    // the final, finalized segment.
    const Status flushed = flusher_->finish(now());
    if (!flushed.ok()) {
      CEDR_LOG(kWarn, kLogTag)
          << "final trace flush failed: " << flushed.to_string();
    }
  }
  CEDR_LOG(kInfo, kLogTag) << "runtime stopped: apps=" << completed_apps();
  return drain;
}

}  // namespace cedr::rt
