// Offline profiling-driven cost tables (declared in
// cedr/platform/profiling.h). The implementation lives in cedr::adapt so
// the offline trace fit and the online OnlineCostEstimator share one
// least-squares core (cedr/adapt/fit.h) instead of duplicating it.

#include <map>
#include <utility>
#include <vector>

#include "cedr/adapt/fit.h"
#include "cedr/platform/profiling.h"

namespace cedr::platform {

StatusOr<ProfileResult> profile_costs(const trace::TraceLog& log,
                                      const PlatformConfig& platform,
                                      std::size_t min_samples) {
  CEDR_RETURN_IF_ERROR(platform.validate());
  if (min_samples == 0) min_samples = 1;

  // PE-name -> class resolution from the platform description.
  std::map<std::string, PeClass> pe_classes;
  for (const PeDescriptor& pe : platform.pes) {
    pe_classes.emplace(pe.name, pe.cls);
  }

  ProfileResult result;
  result.costs = platform.costs;
  std::map<std::pair<int, int>, std::vector<adapt::FitSample>> samples;
  for (const trace::TaskRecord& task : log.tasks()) {
    const auto kernel = kernel_from_name(task.kernel_name);
    const auto pe = pe_classes.find(task.pe_name);
    if (!kernel || pe == pe_classes.end() || task.service_time() <= 0.0) {
      ++result.tasks_skipped;
      continue;
    }
    samples[{static_cast<int>(*kernel), static_cast<int>(pe->second)}]
        .push_back(adapt::FitSample{
            .n = static_cast<double>(task.problem_size),
            .service_s = task.service_time(),
        });
    ++result.tasks_used;
  }
  if (result.tasks_used == 0) {
    return FailedPrecondition("trace contains no usable task records");
  }

  for (const auto& [key, bucket] : samples) {
    if (bucket.size() < min_samples) continue;
    const auto kernel = static_cast<KernelId>(key.first);
    const auto cls = static_cast<PeClass>(key.second);
    const KernelCost fitted = adapt::fit_affine(bucket);
    result.costs.set(kernel, cls, fitted);
    double mean_service = 0.0;
    for (const adapt::FitSample& s : bucket) mean_service += s.service_s;
    mean_service /= static_cast<double>(bucket.size());
    result.entries.push_back(ProfiledEntry{
        .kernel = kernel,
        .cls = cls,
        .samples = bucket.size(),
        .fitted = fitted,
        .mean_service_s = mean_service,
    });
  }
  return result;
}

}  // namespace cedr::platform
