#include "cedr/adapt/fit.h"

#include <algorithm>
#include <cmath>

namespace cedr::adapt {
namespace {

// Prior covariance magnitude, in *normalized* units (features and target
// are both scaled to O(1) by the first observation). Large enough that the
// ridge bias on fitted coefficients is negligible (~1e-8 relative) after a
// handful of samples, small enough that the rank-1 covariance update does
// not lose the residual to floating-point cancellation (the absolute
// rounding noise of a P-sized subtraction is ~eps * P ~ 1e-8, which the
// forgetting factor would otherwise amplify geometrically).
constexpr double kInitialCovariance = 1.0e8;

double nlogn(double n) noexcept {
  return n > 1.0 ? n * std::log2(n) : 0.0;
}

}  // namespace

RlsFit::RlsFit(FitBasis basis, double half_life_samples) {
  dim_ = basis == FitBasis::kAffine ? 2 : 3;
  lambda_ = half_life_samples > 0.0
                ? std::exp2(-1.0 / half_life_samples)
                : 1.0;
  for (std::size_t i = 0; i < kMaxDim; ++i) {
    for (std::size_t j = 0; j < kMaxDim; ++j) {
      p_[i][j] = i == j ? kInitialCovariance : 0.0;
    }
  }
}

void RlsFit::features(double n, std::array<double, kMaxDim>& phi)
    const noexcept {
  phi[0] = 1.0;
  phi[1] = n / scale_[1];
  phi[2] = dim_ > 2 ? nlogn(n) / scale_[2] : 0.0;
}

void RlsFit::update(double n, double service_s) {
  if (samples_ == 0) {
    // Normalize features *and* target by the first sample's magnitudes so
    // the whole regression runs in O(1) units regardless of problem-size
    // or service-time scale — this keeps the covariance update numerically
    // tame (see kInitialCovariance above).
    first_n_ = n;
    scale_[0] = 1.0;
    scale_[1] = std::max(n, 1.0);
    scale_[2] = std::max(nlogn(n), 1.0);
    scale_y_ = std::max(std::abs(service_s), 1e-12);
  } else if (n != first_n_) {
    multi_size_ = true;
  }
  ++samples_;

  // Exponentially-decayed mean of the observations (same decay as the fit).
  mean_weight_ = lambda_ * mean_weight_ + 1.0;
  mean_ += (service_s - mean_) / mean_weight_;

  const double y = service_s / scale_y_;
  std::array<double, kMaxDim> phi{};
  features(n, phi);

  // Standard EW-RLS update: K = P phi / (lambda + phi' P phi);
  // theta += K (y - theta' phi); P = (P - K phi' P) / lambda.
  std::array<double, kMaxDim> p_phi{};
  for (std::size_t i = 0; i < dim_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) acc += p_[i][j] * phi[j];
    p_phi[i] = acc;
  }
  double denom = lambda_;
  for (std::size_t i = 0; i < dim_; ++i) denom += phi[i] * p_phi[i];

  double predicted = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) predicted += theta_[i] * phi[i];
  const double err = y - predicted;

  std::array<double, kMaxDim> gain{};
  for (std::size_t i = 0; i < dim_; ++i) gain[i] = p_phi[i] / denom;
  for (std::size_t i = 0; i < dim_; ++i) theta_[i] += gain[i] * err;
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      p_[i][j] = (p_[i][j] - gain[i] * p_phi[j]) / lambda_;
    }
  }
  // Symmetrize (the update is symmetric in exact arithmetic; rounding
  // drift compounds under the forgetting factor) and cap covariance
  // growth at the prior — directions the data stops exciting would
  // otherwise wind up by 1/lambda per step without bound.
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = i + 1; j < dim_; ++j) {
      const double avg = 0.5 * (p_[i][j] + p_[j][i]);
      p_[i][j] = avg;
      p_[j][i] = avg;
    }
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    if (p_[i][i] > kInitialCovariance) p_[i][i] = kInitialCovariance;
  }
}

double RlsFit::predict(double n) const noexcept {
  if (samples_ == 0) return 0.0;
  std::array<double, kMaxDim> phi{};
  features(n, phi);
  double out = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) out += theta_[i] * phi[i];
  return out * scale_y_;
}

std::array<double, 3> RlsFit::raw_coefficients() const noexcept {
  return {theta_[0] * scale_y_ / scale_[0], theta_[1] * scale_y_ / scale_[1],
          dim_ > 2 ? theta_[2] * scale_y_ / scale_[2] : 0.0};
}

platform::KernelCost RlsFit::coefficients() const noexcept {
  const auto raw = raw_coefficients();
  return platform::KernelCost{
      .fixed_s = std::max(raw[0], 0.0),
      .per_point_s = std::max(raw[1], 0.0),
      .per_nlogn_s = std::max(raw[2], 0.0),
  };
}

platform::KernelCost fit_affine(const std::vector<FitSample>& samples) {
  RlsFit fit(FitBasis::kAffine, RlsFit::kNoDecay);
  double sum = 0.0;
  for (const FitSample& s : samples) {
    fit.update(s.n, s.service_s);
    sum += s.service_s;
  }
  if (samples.empty()) return {};
  const double mean = sum / static_cast<double>(samples.size());
  // A single distinct size can't separate slope from intercept, and a
  // negative slope is non-physical measurement noise: both fall back to
  // the mean, matching the offline profiler's historic behaviour.
  if (!fit.multi_size() || fit.raw_coefficients()[1] < 0.0) {
    return platform::KernelCost{.fixed_s = std::max(mean, 0.0)};
  }
  return fit.coefficients();
}

}  // namespace cedr::adapt
