#include "cedr/adapt/online_estimator.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace cedr::adapt {
namespace {

// Floor for predictions used as outlier/relative-error denominators.
constexpr double kTinySeconds = 1.0e-12;

}  // namespace

json::Value AdaptConfig::to_json() const {
  return json::Object{
      {"enabled", json::Value(enabled)},
      {"half_life", json::Value(half_life)},
      {"min_samples", json::Value(min_samples)},
      {"outlier_threshold", json::Value(outlier_threshold)},
      {"publish_interval", json::Value(publish_interval)},
  };
}

StatusOr<AdaptConfig> AdaptConfig::from_json(const json::Value& value) {
  if (!value.is_object()) {
    return InvalidArgument("adapt config must be object");
  }
  AdaptConfig config;
  config.enabled = value.get_bool("enabled", config.enabled);
  config.half_life = value.get_double("half_life", config.half_life);
  config.min_samples = static_cast<std::size_t>(value.get_int(
      "min_samples", static_cast<std::int64_t>(config.min_samples)));
  config.outlier_threshold =
      value.get_double("outlier_threshold", config.outlier_threshold);
  config.publish_interval = static_cast<std::size_t>(value.get_int(
      "publish_interval", static_cast<std::int64_t>(config.publish_interval)));
  if (config.half_life <= 0.0) {
    return InvalidArgument("adapt 'half_life' must be positive");
  }
  if (config.min_samples == 0) {
    return InvalidArgument("adapt 'min_samples' must be positive");
  }
  if (config.outlier_threshold <= 1.0) {
    return InvalidArgument("adapt 'outlier_threshold' must exceed 1.0");
  }
  if (config.publish_interval == 0) {
    return InvalidArgument("adapt 'publish_interval' must be positive");
  }
  return config;
}

OnlineCostEstimator::OnlineCostEstimator(AdaptConfig config,
                                         platform::CostModel preset)
    : config_(std::move(config)), preset_(std::move(preset)) {
  snapshot_.store(std::make_shared<const platform::CostModel>(preset_),
                  std::memory_order_release);
}

double OnlineCostEstimator::blend_for(std::size_t samples) const noexcept {
  if (samples < config_.min_samples) return 0.0;
  const double progress =
      static_cast<double>(samples - config_.min_samples + 1) /
      static_cast<double>(config_.min_samples);
  return std::min(progress, 1.0);
}

void OnlineCostEstimator::observe(platform::KernelId kernel,
                                  platform::PeClass cls, std::size_t n,
                                  std::size_t bytes, double service_s) {
  if (!pe_class_supports(cls, kernel) || !(service_s > 0.0)) return;

  // The learned polynomial models compute time only; the preset transfer
  // term (DMA / cudaMemcpy) is subtracted from the observation up front so
  // accelerator fits aren't double-charged when estimate() re-adds it.
  double adjusted = service_s;
  if (cls != platform::PeClass::kCpu) {
    const double transfer = preset_.estimate(kernel, cls, n, bytes) -
                            preset_.get(kernel, cls).eval(n);
    adjusted = std::max(service_s - transfer, kTinySeconds);
  }
  const double nd = static_cast<double>(n);

  std::lock_guard<std::mutex> lock(mutex_);
  observations_.fetch_add(1, std::memory_order_relaxed);
  auto [it, inserted] = pairs_.try_emplace(
      std::pair<int, int>{static_cast<int>(kernel), static_cast<int>(cls)},
      config_.half_life);
  PairState& pair = it->second;

  const double predicted = pair.fit.predict(nd);
  if (pair.fit.samples() >= config_.min_samples) {
    const double ratio = adjusted / std::max(predicted, kTinySeconds);
    if (ratio > config_.outlier_threshold ||
        ratio < 1.0 / config_.outlier_threshold) {
      ++pair.rejected;
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  if (pair.fit.samples() >= 1) {
    // Decayed mean relative error of the pre-update prediction; tracks how
    // well the served model explains fresh observations.
    const double rel =
        std::abs(adjusted - predicted) / std::max(predicted, kTinySeconds);
    const double lambda = std::exp2(-1.0 / config_.half_life);
    pair.rel_error_weight = lambda * pair.rel_error_weight + 1.0;
    pair.rel_error += (rel - pair.rel_error) / pair.rel_error_weight;
  }
  pair.fit.update(nd, adjusted);

  if (++accepted_since_publish_ >= config_.publish_interval) {
    accepted_since_publish_ = 0;
    publish_locked();
  }
}

void OnlineCostEstimator::publish_locked() {
  auto model = std::make_shared<platform::CostModel>(preset_);
  for (const auto& [key, pair] : pairs_) {
    const double blend = blend_for(pair.fit.samples());
    if (blend <= 0.0) continue;
    const auto kernel = static_cast<platform::KernelId>(key.first);
    const auto cls = static_cast<platform::PeClass>(key.second);
    const platform::KernelCost learned = pair.fit.coefficients();
    const platform::KernelCost& base = preset_.get(kernel, cls);
    model->set(kernel, cls,
               platform::KernelCost{
                   .fixed_s = (1.0 - blend) * base.fixed_s +
                              blend * learned.fixed_s,
                   .per_point_s = (1.0 - blend) * base.per_point_s +
                                  blend * learned.per_point_s,
                   .per_nlogn_s = (1.0 - blend) * base.per_nlogn_s +
                                  blend * learned.per_nlogn_s,
               });
  }
  snapshot_.store(std::shared_ptr<const platform::CostModel>(std::move(model)),
                  std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const platform::CostModel> OnlineCostEstimator::snapshot()
    const {
  return snapshot_.load(std::memory_order_acquire);
}

std::vector<PairStats> OnlineCostEstimator::pair_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PairStats> stats;
  stats.reserve(pairs_.size());
  for (const auto& [key, pair] : pairs_) {
    const auto kernel = static_cast<platform::KernelId>(key.first);
    const auto cls = static_cast<platform::PeClass>(key.second);
    stats.push_back(PairStats{
        .kernel = kernel,
        .cls = cls,
        .samples = pair.fit.samples(),
        .rejected = pair.rejected,
        .blend = blend_for(pair.fit.samples()),
        .rel_error = pair.rel_error,
        .learned = pair.fit.coefficients(),
        .preset = preset_.get(kernel, cls),
    });
  }
  return stats;
}

std::uint64_t OnlineCostEstimator::observations() const noexcept {
  return observations_.load(std::memory_order_relaxed);
}

std::uint64_t OnlineCostEstimator::rejected() const noexcept {
  return rejected_.load(std::memory_order_relaxed);
}

std::uint64_t OnlineCostEstimator::publishes() const noexcept {
  return publishes_.load(std::memory_order_relaxed);
}

double OnlineCostEstimator::mean_rel_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& [key, pair] : pairs_) {
    if (pair.fit.samples() < 2) continue;
    sum += pair.rel_error;
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double OnlineCostEstimator::class_rel_error(platform::PeClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& [key, pair] : pairs_) {
    if (key.second != static_cast<int>(cls) || pair.fit.samples() < 2) {
      continue;
    }
    sum += pair.rel_error;
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

json::Value OnlineCostEstimator::to_json() const {
  json::Array pairs;
  for (const PairStats& s : pair_stats()) {
    pairs.emplace_back(json::Object{
        {"kernel", json::Value(platform::kernel_name(s.kernel))},
        {"class", json::Value(platform::pe_class_name(s.cls))},
        {"samples", json::Value(s.samples)},
        {"rejected", json::Value(s.rejected)},
        {"blend", json::Value(s.blend)},
        {"rel_error", json::Value(s.rel_error)},
        {"learned",
         json::Object{
             {"fixed_s", json::Value(s.learned.fixed_s)},
             {"per_point_s", json::Value(s.learned.per_point_s)},
             {"per_nlogn_s", json::Value(s.learned.per_nlogn_s)},
         }},
        {"static",
         json::Object{
             {"fixed_s", json::Value(s.preset.fixed_s)},
             {"per_point_s", json::Value(s.preset.per_point_s)},
             {"per_nlogn_s", json::Value(s.preset.per_nlogn_s)},
         }},
    });
  }
  return json::Object{
      {"enabled", json::Value(config_.enabled)},
      {"config", config_.to_json()},
      {"observations", json::Value(static_cast<std::size_t>(observations()))},
      {"rejected", json::Value(static_cast<std::size_t>(rejected()))},
      {"publishes", json::Value(static_cast<std::size_t>(publishes()))},
      {"mean_rel_error", json::Value(mean_rel_error())},
      {"pairs", json::Value(std::move(pairs))},
  };
}

}  // namespace cedr::adapt
