#include "cedr/scenario/scenario.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "cedr/workload/workload.h"

namespace cedr::scenario {
namespace {

// ---- raw document model --------------------------------------------------

/// One scalar or single-line list value, with its source line for errors.
struct ScnValue {
  enum class Kind { kString, kInt, kDouble, kBool, kList };
  Kind kind = Kind::kString;
  std::string str;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::vector<ScnValue> list;
  int line = 0;

  /// Canonical text form (strings unquoted — sweep axis values).
  [[nodiscard]] std::string text() const {
    switch (kind) {
      case Kind::kString: return str;
      case Kind::kInt: return std::to_string(i);
      case Kind::kDouble: return format_double(d);
      case Kind::kBool: return b ? "true" : "false";
      case Kind::kList: return "<list>";
    }
    return {};
  }
};

struct ScnTable {
  std::map<std::string, ScnValue> entries;
  int line = 0;
};

struct ScnDoc {
  ScnTable root;
  std::map<std::string, ScnTable> tables;
  std::map<std::string, std::vector<ScnTable>> arrays;
  /// Section order as written (for [sweep] axis order... tables is sorted,
  /// so remember insertion order of keys needing it).
  std::vector<std::string> sweep_key_order;
};

Status err_at(int line, const std::string& message) {
  return InvalidArgument("line " + std::to_string(line) + ": " + message);
}

bool is_bare_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-' || c == '.';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strips a trailing `#` comment, honoring double-quoted strings.
std::string_view strip_comment(std::string_view line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // escaped char never ends the string
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '#') {
      return line.substr(0, i);
    }
  }
  return line;
}

/// Parses one scalar token (no lists). `token` must be fully consumed.
StatusOr<ScnValue> parse_scalar(std::string_view token, int line) {
  ScnValue v;
  v.line = line;
  if (token.empty()) return err_at(line, "missing value");
  if (token.front() == '"') {
    if (token.size() < 2 || token.back() != '"') {
      return err_at(line, "unterminated string");
    }
    v.kind = ScnValue::Kind::kString;
    const std::string_view body = token.substr(1, token.size() - 2);
    for (std::size_t i = 0; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '"') return err_at(line, "stray '\"' inside string");
      if (c != '\\') {
        v.str.push_back(c);
        continue;
      }
      if (++i >= body.size()) return err_at(line, "dangling escape in string");
      switch (body[i]) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case 'n': v.str.push_back('\n'); break;
        case 't': v.str.push_back('\t'); break;
        default:
          return err_at(line, std::string("unknown escape '\\") + body[i] +
                                  "' in string");
      }
    }
    return v;
  }
  if (token == "true" || token == "false") {
    v.kind = ScnValue::Kind::kBool;
    v.b = token == "true";
    return v;
  }
  // Integer: optional sign then digits only.
  bool integral = !token.empty();
  for (std::size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (i == 0 && (c == '+' || c == '-')) continue;
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      integral = false;
      break;
    }
  }
  if (integral && token != "+" && token != "-") {
    errno = 0;
    char* end = nullptr;
    const std::string owned(token);
    const long long parsed = std::strtoll(owned.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return err_at(line, "integer out of range: " + owned);
    }
    v.kind = ScnValue::Kind::kInt;
    v.i = parsed;
    return v;
  }
  // Float.
  {
    char* end = nullptr;
    const std::string owned(token);
    const double parsed = std::strtod(owned.c_str(), &end);
    if (end != nullptr && *end == '\0' && end != owned.c_str()) {
      v.kind = ScnValue::Kind::kDouble;
      v.d = parsed;
      return v;
    }
  }
  return err_at(line, "unrecognized value '" + std::string(token) +
                          "' (strings must be quoted)");
}

/// Splits a single-line list body `a, b, c` at top-level commas.
StatusOr<ScnValue> parse_value(std::string_view token, int line) {
  if (!token.empty() && token.front() == '[') {
    if (token.back() != ']') {
      return err_at(line, "unterminated list (lists are single-line)");
    }
    ScnValue v;
    v.kind = ScnValue::Kind::kList;
    v.line = line;
    std::string_view body = trim(token.substr(1, token.size() - 2));
    if (body.empty()) return v;
    std::size_t start = 0;
    bool in_string = false;
    for (std::size_t i = 0; i <= body.size(); ++i) {
      const bool at_end = i == body.size();
      const char c = at_end ? ',' : body[i];
      if (!at_end && in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
        continue;
      }
      if (!at_end && c == '"') {
        in_string = true;
        continue;
      }
      if (c == ',') {
        auto item = parse_scalar(trim(body.substr(start, i - start)), line);
        if (!item.ok()) return item.status();
        if (item->kind == ScnValue::Kind::kList) {
          return err_at(line, "nested lists are not supported");
        }
        v.list.push_back(*std::move(item));
        start = i + 1;
      }
    }
    if (in_string) return err_at(line, "unterminated string in list");
    return v;
  }
  return parse_scalar(token, line);
}

StatusOr<ScnDoc> parse_doc(std::string_view text) {
  ScnDoc doc;
  ScnTable* current = &doc.root;
  std::string current_name;  // "" = root
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
    const std::string_view line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      const bool is_array = line.size() >= 2 && line[1] == '[';
      const std::string_view closer = is_array ? "]]" : "]";
      const std::size_t open = is_array ? 2 : 1;
      if (line.size() < open + closer.size() ||
          line.substr(line.size() - closer.size()) != closer) {
        return err_at(line_no, "malformed section header");
      }
      const std::string_view name =
          trim(line.substr(open, line.size() - open - closer.size()));
      if (name.empty()) return err_at(line_no, "empty section name");
      for (const char c : name) {
        if (!is_bare_key_char(c)) {
          return err_at(line_no, "invalid character in section name '" +
                                     std::string(name) + "'");
        }
      }
      const std::string key(name);
      if (is_array) {
        if (doc.tables.count(key) != 0) {
          return err_at(line_no, "section [[" + key +
                                     "]] conflicts with earlier [" + key + "]");
        }
        doc.arrays[key].push_back(ScnTable{{}, line_no});
        current = &doc.arrays[key].back();
      } else {
        if (doc.arrays.count(key) != 0) {
          return err_at(line_no, "section [" + key +
                                     "] conflicts with earlier [[" + key +
                                     "]]");
        }
        if (doc.tables.count(key) != 0) {
          return err_at(line_no, "duplicate section [" + key + "]");
        }
        doc.tables.emplace(key, ScnTable{{}, line_no});
        current = &doc.tables[key];
      }
      current_name = key;
      continue;
    }

    const std::size_t eq = [&] {
      bool in_string = false;
      for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_string) {
          if (c == '\\') ++i;
          else if (c == '"') in_string = false;
        } else if (c == '"') {
          in_string = true;
        } else if (c == '=') {
          return i;
        }
      }
      return std::string_view::npos;
    }();
    if (eq == std::string_view::npos) {
      return err_at(line_no, "expected 'key = value' or a [section] header");
    }
    const std::string_view key = trim(line.substr(0, eq));
    if (key.empty()) return err_at(line_no, "missing key before '='");
    for (const char c : key) {
      if (!is_bare_key_char(c)) {
        return err_at(line_no,
                      "invalid character in key '" + std::string(key) + "'");
      }
    }
    auto value = parse_value(trim(line.substr(eq + 1)), line_no);
    if (!value.ok()) return value.status();
    const std::string key_owned(key);
    if (current->entries.count(key_owned) != 0) {
      return err_at(line_no, "duplicate key '" + key_owned + "'" +
                                 (current_name.empty()
                                      ? std::string()
                                      : " in [" + current_name + "]"));
    }
    if (current_name == "sweep") doc.sweep_key_order.push_back(key_owned);
    current->entries.emplace(key_owned, *std::move(value));
  }
  return doc;
}

// ---- strict field mapping ------------------------------------------------

/// Rejects keys outside `allowed` with a single-line error naming the
/// section — malformed configs fail loudly instead of half-applying.
Status check_keys(const ScnTable& table, const std::string& section,
                  std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : table.entries) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return err_at(value.line, "unknown key '" + key + "'" +
                                    (section.empty() ? std::string()
                                                     : " in [" + section + "]"));
    }
  }
  return Status::Ok();
}

const ScnValue* find(const ScnTable& table, std::string_view key) {
  const auto it = table.entries.find(std::string(key));
  return it == table.entries.end() ? nullptr : &it->second;
}

Status read_string(const ScnTable& t, std::string_view key, std::string* out) {
  const ScnValue* v = find(t, key);
  if (v == nullptr) return Status::Ok();
  if (v->kind != ScnValue::Kind::kString) {
    return err_at(v->line, "'" + std::string(key) + "' must be a string");
  }
  *out = v->str;
  return Status::Ok();
}

Status read_double(const ScnTable& t, std::string_view key, double* out) {
  const ScnValue* v = find(t, key);
  if (v == nullptr) return Status::Ok();
  if (v->kind == ScnValue::Kind::kDouble) *out = v->d;
  else if (v->kind == ScnValue::Kind::kInt) *out = static_cast<double>(v->i);
  else return err_at(v->line, "'" + std::string(key) + "' must be a number");
  return Status::Ok();
}

Status read_size(const ScnTable& t, std::string_view key, std::size_t* out) {
  const ScnValue* v = find(t, key);
  if (v == nullptr) return Status::Ok();
  if (v->kind != ScnValue::Kind::kInt || v->i < 0) {
    return err_at(v->line,
                  "'" + std::string(key) + "' must be a non-negative integer");
  }
  *out = static_cast<std::size_t>(v->i);
  return Status::Ok();
}

Status read_u32(const ScnTable& t, std::string_view key, std::uint32_t* out) {
  std::size_t wide = *out;
  CEDR_RETURN_IF_ERROR(read_size(t, key, &wide));
  *out = static_cast<std::uint32_t>(wide);
  return Status::Ok();
}

Status read_u64(const ScnTable& t, std::string_view key, std::uint64_t* out) {
  const ScnValue* v = find(t, key);
  if (v == nullptr) return Status::Ok();
  if (v->kind != ScnValue::Kind::kInt || v->i < 0) {
    return err_at(v->line,
                  "'" + std::string(key) + "' must be a non-negative integer");
  }
  *out = static_cast<std::uint64_t>(v->i);
  return Status::Ok();
}

Status read_bool(const ScnTable& t, std::string_view key, bool* out) {
  const ScnValue* v = find(t, key);
  if (v == nullptr) return Status::Ok();
  if (v->kind != ScnValue::Kind::kBool) {
    return err_at(v->line,
                  "'" + std::string(key) + "' must be true or false");
  }
  *out = v->b;
  return Status::Ok();
}

Status read_fault_spec(const ScnTable& t, platform::FaultSpec* spec) {
  CEDR_RETURN_IF_ERROR(read_double(t, "fail_prob", &spec->fail_prob));
  CEDR_RETURN_IF_ERROR(read_double(t, "hang_prob", &spec->hang_prob));
  CEDR_RETURN_IF_ERROR(read_double(t, "latency_prob", &spec->latency_prob));
  CEDR_RETURN_IF_ERROR(
      read_double(t, "latency_spike_s", &spec->latency_spike_s));
  CEDR_RETURN_IF_ERROR(read_double(t, "hang_s", &spec->hang_s));
  return Status::Ok();
}

StatusOr<platform::FaultKind> fault_kind_from_text(const ScnValue& v) {
  if (v.kind != ScnValue::Kind::kString) {
    return err_at(v.line, "'kind' must be a string");
  }
  if (v.str == "fail") return platform::FaultKind::kTransientFail;
  if (v.str == "latency") return platform::FaultKind::kLatencySpike;
  if (v.str == "hang") return platform::FaultKind::kDeviceHang;
  return err_at(v.line, "unknown fault kind '" + v.str +
                            "' (expected fail, latency or hang)");
}

constexpr std::string_view kFaultsPrefix = "faults.pe.";

StatusOr<Scenario> scenario_from_doc(const ScnDoc& doc) {
  Scenario s;
  CEDR_RETURN_IF_ERROR(check_keys(
      doc.root, "",
      {"name", "seed", "trials", "scheduler", "model", "max_virtual_time_s",
       "sched_cost_scale"}));
  CEDR_RETURN_IF_ERROR(read_string(doc.root, "name", &s.name));
  CEDR_RETURN_IF_ERROR(read_u64(doc.root, "seed", &s.seed));
  CEDR_RETURN_IF_ERROR(read_size(doc.root, "trials", &s.trials));
  CEDR_RETURN_IF_ERROR(read_string(doc.root, "scheduler", &s.scheduler));
  CEDR_RETURN_IF_ERROR(read_string(doc.root, "model", &s.model));
  CEDR_RETURN_IF_ERROR(
      read_double(doc.root, "max_virtual_time_s", &s.max_virtual_time_s));
  CEDR_RETURN_IF_ERROR(
      read_double(doc.root, "sched_cost_scale", &s.sched_cost_scale));

  for (const auto& [section, table] : doc.tables) {
    if (section == "platform") {
      CEDR_RETURN_IF_ERROR(check_keys(
          table, section,
          {"preset", "cpus", "ffts", "mmults", "gpus", "big", "little"}));
      CEDR_RETURN_IF_ERROR(read_string(table, "preset", &s.platform.preset));
      CEDR_RETURN_IF_ERROR(read_size(table, "cpus", &s.platform.cpus));
      CEDR_RETURN_IF_ERROR(read_size(table, "ffts", &s.platform.ffts));
      CEDR_RETURN_IF_ERROR(read_size(table, "mmults", &s.platform.mmults));
      CEDR_RETURN_IF_ERROR(read_size(table, "gpus", &s.platform.gpus));
      CEDR_RETURN_IF_ERROR(read_size(table, "big", &s.platform.big));
      CEDR_RETURN_IF_ERROR(read_size(table, "little", &s.platform.little));
    } else if (section == "arrival") {
      CEDR_RETURN_IF_ERROR(check_keys(
          table, section,
          {"process", "rate_mbps", "jitter", "burst_ratio", "burst_fraction",
           "burst_cycle_s", "think_s", "clients"}));
      CEDR_RETURN_IF_ERROR(read_string(table, "process", &s.arrival.process));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "rate_mbps", &s.arrival.rate_mbps));
      CEDR_RETURN_IF_ERROR(read_double(table, "jitter", &s.arrival.jitter));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "burst_ratio", &s.arrival.burst_ratio));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "burst_fraction", &s.arrival.burst_fraction));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "burst_cycle_s", &s.arrival.burst_cycle_s));
      CEDR_RETURN_IF_ERROR(read_double(table, "think_s", &s.arrival.think_s));
      CEDR_RETURN_IF_ERROR(read_size(table, "clients", &s.arrival.clients));
    } else if (section == "adapt") {
      CEDR_RETURN_IF_ERROR(check_keys(table, section,
                                      {"enabled", "half_life", "min_samples",
                                       "outlier_threshold",
                                       "publish_interval"}));
      s.adapt.enabled = true;  // presence of the section enables adaptation
      CEDR_RETURN_IF_ERROR(read_bool(table, "enabled", &s.adapt.enabled));
      CEDR_RETURN_IF_ERROR(read_double(table, "half_life", &s.adapt.half_life));
      CEDR_RETURN_IF_ERROR(
          read_size(table, "min_samples", &s.adapt.min_samples));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "outlier_threshold", &s.adapt.outlier_threshold));
      CEDR_RETURN_IF_ERROR(
          read_size(table, "publish_interval", &s.adapt.publish_interval));
    } else if (section == "faults") {
      CEDR_RETURN_IF_ERROR(check_keys(
          table, section,
          {"seed", "fail_prob", "hang_prob", "latency_prob", "latency_spike_s",
           "hang_s", "max_retries", "backoff_base_s", "backoff_factor",
           "quarantine_threshold", "probe_period_s", "task_timeout_s"}));
      s.has_faults = true;
      CEDR_RETURN_IF_ERROR(read_u64(table, "seed", &s.faults.seed));
      CEDR_RETURN_IF_ERROR(read_fault_spec(table, &s.faults.defaults));
      platform::FaultPolicy& p = s.faults.policy;
      CEDR_RETURN_IF_ERROR(read_u32(table, "max_retries", &p.max_retries));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "backoff_base_s", &p.backoff_base_s));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "backoff_factor", &p.backoff_factor));
      CEDR_RETURN_IF_ERROR(
          read_u32(table, "quarantine_threshold", &p.quarantine_threshold));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "probe_period_s", &p.probe_period_s));
      CEDR_RETURN_IF_ERROR(
          read_double(table, "task_timeout_s", &p.task_timeout_s));
    } else if (section.rfind(kFaultsPrefix, 0) == 0) {
      const std::string pe_name(section.substr(kFaultsPrefix.size()));
      if (pe_name.empty()) {
        return err_at(table.line, "empty PE name in [" + section + "]");
      }
      CEDR_RETURN_IF_ERROR(check_keys(table, section,
                                      {"fail_prob", "hang_prob",
                                       "latency_prob", "latency_spike_s",
                                       "hang_s"}));
      s.has_faults = true;
      platform::FaultSpec spec = s.faults.defaults;
      CEDR_RETURN_IF_ERROR(read_fault_spec(table, &spec));
      s.faults.per_pe[pe_name] = spec;
    } else if (section == "sweep") {
      for (const std::string& key : doc.sweep_key_order) {
        const ScnValue& v = table.entries.at(key);
        if (v.kind != ScnValue::Kind::kList || v.list.empty()) {
          return err_at(v.line, "sweep axis '" + key +
                                    "' must be a non-empty list");
        }
        SweepAxis axis;
        axis.key = key;
        for (const ScnValue& item : v.list) axis.values.push_back(item.text());
        s.sweep.push_back(std::move(axis));
      }
    } else {
      return err_at(table.line, "unknown section [" + section + "]");
    }
  }

  for (const auto& [section, entries] : doc.arrays) {
    if (section == "app") {
      for (const ScnTable& table : entries) {
        CEDR_RETURN_IF_ERROR(check_keys(table, "[app]",
                                        {"kind", "instances", "start_offset_s",
                                         "scale", "nonblocking"}));
        AppSpec app;
        CEDR_RETURN_IF_ERROR(read_string(table, "kind", &app.kind));
        if (app.kind.empty()) {
          return err_at(table.line, "[[app]] entry is missing 'kind'");
        }
        CEDR_RETURN_IF_ERROR(read_size(table, "instances", &app.instances));
        CEDR_RETURN_IF_ERROR(
            read_double(table, "start_offset_s", &app.start_offset_s));
        CEDR_RETURN_IF_ERROR(read_size(table, "scale", &app.scale));
        CEDR_RETURN_IF_ERROR(read_bool(table, "nonblocking", &app.nonblocking));
        s.apps.push_back(std::move(app));
      }
    } else if (section == "faults.scripted") {
      for (const ScnTable& table : entries) {
        CEDR_RETURN_IF_ERROR(
            check_keys(table, "[faults.scripted]", {"pe", "task_index",
                                                    "kind"}));
        s.has_faults = true;
        platform::ScriptedFault scripted;
        CEDR_RETURN_IF_ERROR(read_string(table, "pe", &scripted.pe));
        if (scripted.pe.empty()) {
          return err_at(table.line, "[[faults.scripted]] entry needs 'pe'");
        }
        CEDR_RETURN_IF_ERROR(
            read_u64(table, "task_index", &scripted.task_index));
        if (const ScnValue* v = find(table, "kind")) {
          auto kind = fault_kind_from_text(*v);
          if (!kind.ok()) return kind.status();
          scripted.kind = *kind;
        }
        s.faults.scripted.push_back(std::move(scripted));
      }
    } else {
      return err_at(entries.front().line,
                    "unknown section [[" + section + "]]");
    }
  }

  CEDR_RETURN_IF_ERROR(s.validate());
  return s;
}

// ---- emission ------------------------------------------------------------

void emit_kv(std::string& out, std::string_view key, const std::string& str) {
  out += key;
  out += " = \"";
  for (const char c : str) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += "\"\n";
}

void emit_kv(std::string& out, std::string_view key, double v) {
  out += key;
  out += " = ";
  out += format_double(v);
  out += '\n';
}

void emit_kv(std::string& out, std::string_view key, std::uint64_t v) {
  out += key;
  out += " = ";
  out += std::to_string(v);
  out += '\n';
}

void emit_kv(std::string& out, std::string_view key, std::uint32_t v) {
  emit_kv(out, key, static_cast<std::uint64_t>(v));
}

void emit_kv(std::string& out, std::string_view key, bool v) {
  out += key;
  out += " = ";
  out += v ? "true" : "false";
  out += '\n';
}

void emit_fault_spec(std::string& out, const platform::FaultSpec& spec) {
  emit_kv(out, "fail_prob", spec.fail_prob);
  emit_kv(out, "hang_prob", spec.hang_prob);
  emit_kv(out, "latency_prob", spec.latency_prob);
  emit_kv(out, "latency_spike_s", spec.latency_spike_s);
  emit_kv(out, "hang_s", spec.hang_s);
}

}  // namespace

std::string format_double(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  // Ensure the token re-parses as a float even when it prints integral.
  std::string text(buf);
  if (text.find_first_of(".eEnif") == std::string::npos) text += ".0";
  return text;
}

std::string Scenario::to_text() const {
  std::string out;
  out += "# canonical scenario emission (docs/scenarios.md)\n";
  emit_kv(out, "name", name);
  emit_kv(out, "seed", seed);
  emit_kv(out, "trials", trials);
  emit_kv(out, "scheduler", scheduler);
  emit_kv(out, "model", model);
  emit_kv(out, "max_virtual_time_s", max_virtual_time_s);
  emit_kv(out, "sched_cost_scale", sched_cost_scale);

  out += "\n[platform]\n";
  emit_kv(out, "preset", platform.preset);
  emit_kv(out, "cpus", platform.cpus);
  emit_kv(out, "ffts", platform.ffts);
  emit_kv(out, "mmults", platform.mmults);
  emit_kv(out, "gpus", platform.gpus);
  emit_kv(out, "big", platform.big);
  emit_kv(out, "little", platform.little);

  out += "\n[arrival]\n";
  emit_kv(out, "process", arrival.process);
  emit_kv(out, "rate_mbps", arrival.rate_mbps);
  emit_kv(out, "jitter", arrival.jitter);
  emit_kv(out, "burst_ratio", arrival.burst_ratio);
  emit_kv(out, "burst_fraction", arrival.burst_fraction);
  emit_kv(out, "burst_cycle_s", arrival.burst_cycle_s);
  emit_kv(out, "think_s", arrival.think_s);
  emit_kv(out, "clients", arrival.clients);

  if (adapt.enabled) {
    out += "\n[adapt]\n";
    emit_kv(out, "enabled", adapt.enabled);
    emit_kv(out, "half_life", adapt.half_life);
    emit_kv(out, "min_samples", adapt.min_samples);
    emit_kv(out, "outlier_threshold", adapt.outlier_threshold);
    emit_kv(out, "publish_interval", adapt.publish_interval);
  }

  if (has_faults) {
    out += "\n[faults]\n";
    emit_kv(out, "seed", faults.seed);
    emit_fault_spec(out, faults.defaults);
    emit_kv(out, "max_retries", faults.policy.max_retries);
    emit_kv(out, "backoff_base_s", faults.policy.backoff_base_s);
    emit_kv(out, "backoff_factor", faults.policy.backoff_factor);
    emit_kv(out, "quarantine_threshold", faults.policy.quarantine_threshold);
    emit_kv(out, "probe_period_s", faults.policy.probe_period_s);
    emit_kv(out, "task_timeout_s", faults.policy.task_timeout_s);
    for (const auto& [pe, spec] : faults.per_pe) {
      out += "\n[faults.pe." + pe + "]\n";
      emit_fault_spec(out, spec);
    }
    for (const platform::ScriptedFault& scripted : faults.scripted) {
      out += "\n[[faults.scripted]]\n";
      emit_kv(out, "pe", scripted.pe);
      emit_kv(out, "task_index", scripted.task_index);
      std::string kind = "fail";
      if (scripted.kind == platform::FaultKind::kLatencySpike) kind = "latency";
      if (scripted.kind == platform::FaultKind::kDeviceHang) kind = "hang";
      emit_kv(out, "kind", kind);
    }
  }

  for (const AppSpec& app : apps) {
    out += "\n[[app]]\n";
    emit_kv(out, "kind", app.kind);
    emit_kv(out, "instances", app.instances);
    emit_kv(out, "start_offset_s", app.start_offset_s);
    emit_kv(out, "scale", app.scale);
    emit_kv(out, "nonblocking", app.nonblocking);
  }

  if (!sweep.empty()) {
    out += "\n[sweep]\n";
    for (const SweepAxis& axis : sweep) {
      out += axis.key;
      out += " = [";
      for (std::size_t i = 0; i < axis.values.size(); ++i) {
        if (i > 0) out += ", ";
        // Axis values re-parse through apply_override, which accepts bare
        // text for every sweepable key; quote them so strings stay strings.
        out += '"';
        out += axis.values[i];
        out += '"';
      }
      out += "]\n";
    }
  }
  return out;
}

Status Scenario::validate() const {
  if (trials == 0) return InvalidArgument("trials must be >= 1");
  if (model != "api" && model != "dag") {
    return InvalidArgument("model must be 'api' or 'dag', got '" + model +
                           "'");
  }
  if (platform.preset != "zcu102" && platform.preset != "jetson" &&
      platform.preset != "biglittle" && platform.preset != "host") {
    return InvalidArgument("unknown platform preset '" + platform.preset +
                           "' (expected zcu102, jetson, biglittle or host)");
  }
  if (!(max_virtual_time_s > 0.0)) {
    return InvalidArgument("max_virtual_time_s must be > 0");
  }
  if (!(sched_cost_scale > 0.0)) {
    return InvalidArgument("sched_cost_scale must be > 0");
  }
  if (apps.empty()) {
    return InvalidArgument("scenario declares no [[app]] entries");
  }
  for (const AppSpec& app : apps) {
    if (app.kind != "pulse_doppler" && app.kind != "wifi_tx" &&
        app.kind != "lane_detection") {
      return InvalidArgument(
          "unknown app kind '" + app.kind +
          "' (expected pulse_doppler, wifi_tx or lane_detection)");
    }
    if (app.instances == 0) {
      return InvalidArgument("app '" + app.kind + "' has zero instances");
    }
    if (app.scale == 0) {
      return InvalidArgument("app '" + app.kind + "' has zero scale");
    }
    if (app.start_offset_s < 0.0) {
      return InvalidArgument("app '" + app.kind +
                             "' has a negative start offset");
    }
  }
  {
    auto process = workload::arrival_process_from_name(arrival.process);
    if (!process.ok()) return process.status();
    workload::ArrivalSpec spec;
    spec.process = *process;
    spec.rate_mbps = arrival.rate_mbps;
    spec.jitter = arrival.jitter;
    spec.burst_ratio = arrival.burst_ratio;
    spec.burst_fraction = arrival.burst_fraction;
    spec.burst_cycle_s = arrival.burst_cycle_s;
    spec.think_s = arrival.think_s;
    spec.clients = arrival.clients;
    CEDR_RETURN_IF_ERROR(spec.validate());
  }
  if (has_faults) CEDR_RETURN_IF_ERROR(faults.validate());
  if (adapt.enabled) {
    if (!(adapt.half_life > 0.0)) {
      return InvalidArgument("adapt half_life must be > 0");
    }
    if (!(adapt.outlier_threshold > 1.0)) {
      return InvalidArgument("adapt outlier_threshold must be > 1");
    }
  }
  std::set<std::string> axis_keys;
  for (const SweepAxis& axis : sweep) {
    if (axis.values.empty()) {
      return InvalidArgument("sweep axis '" + axis.key + "' is empty");
    }
    if (!axis_keys.insert(axis.key).second) {
      return InvalidArgument("duplicate sweep axis '" + axis.key + "'");
    }
  }
  return Status::Ok();
}

StatusOr<Scenario> parse_scenario(std::string_view text) {
  auto doc = parse_doc(text);
  if (!doc.ok()) return doc.status();
  return scenario_from_doc(*doc);
}

StatusOr<Scenario> load_scenario(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound(path + ": cannot open scenario file");
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  auto scenario = parse_scenario(text);
  if (!scenario.ok()) {
    return Status(scenario.status().code(),
                  path + ": " + scenario.status().message());
  }
  if (scenario->name.empty()) {
    // Default the name to the file stem (directory and extension stripped).
    std::string stem = path;
    if (const std::size_t slash = stem.find_last_of('/');
        slash != std::string::npos) {
      stem.erase(0, slash + 1);
    }
    if (const std::size_t dot = stem.find_last_of('.');
        dot != std::string::npos && dot > 0) {
      stem.erase(dot);
    }
    scenario->name = stem;
  }
  return scenario;
}

namespace {

template <typename T>
Status parse_number_text(std::string_view key, std::string_view value,
                         T* out) {
  const std::string owned(value);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0' || end == owned.c_str()) {
    return InvalidArgument("sweep value '" + owned + "' for '" +
                           std::string(key) + "' is not a number");
  }
  if constexpr (std::is_integral_v<T>) {
    if (parsed < 0 || parsed != static_cast<double>(static_cast<T>(parsed))) {
      return InvalidArgument("sweep value '" + owned + "' for '" +
                             std::string(key) +
                             "' is not a non-negative integer");
    }
    *out = static_cast<T>(parsed);
  } else {
    *out = parsed;
  }
  return Status::Ok();
}

}  // namespace

Status apply_override(Scenario& s, std::string_view key,
                      std::string_view value) {
  // The sweepable surface (docs/scenarios.md): strings assign directly,
  // numbers parse from canonical text.
  if (key == "scheduler") { s.scheduler = value; return Status::Ok(); }
  if (key == "model") { s.model = value; return Status::Ok(); }
  if (key == "seed") return parse_number_text(key, value, &s.seed);
  if (key == "trials") return parse_number_text(key, value, &s.trials);
  if (key == "sched_cost_scale") {
    return parse_number_text(key, value, &s.sched_cost_scale);
  }
  if (key == "platform.preset") {
    s.platform.preset = value;
    return Status::Ok();
  }
  if (key == "platform.cpus") {
    return parse_number_text(key, value, &s.platform.cpus);
  }
  if (key == "platform.ffts") {
    return parse_number_text(key, value, &s.platform.ffts);
  }
  if (key == "platform.mmults") {
    return parse_number_text(key, value, &s.platform.mmults);
  }
  if (key == "platform.gpus") {
    return parse_number_text(key, value, &s.platform.gpus);
  }
  if (key == "arrival.process") {
    s.arrival.process = value;
    return Status::Ok();
  }
  if (key == "arrival.rate_mbps") {
    return parse_number_text(key, value, &s.arrival.rate_mbps);
  }
  if (key == "arrival.jitter") {
    return parse_number_text(key, value, &s.arrival.jitter);
  }
  if (key == "arrival.burst_ratio") {
    return parse_number_text(key, value, &s.arrival.burst_ratio);
  }
  if (key == "arrival.burst_fraction") {
    return parse_number_text(key, value, &s.arrival.burst_fraction);
  }
  if (key == "arrival.burst_cycle_s") {
    return parse_number_text(key, value, &s.arrival.burst_cycle_s);
  }
  if (key == "arrival.think_s") {
    return parse_number_text(key, value, &s.arrival.think_s);
  }
  if (key == "arrival.clients") {
    return parse_number_text(key, value, &s.arrival.clients);
  }
  if (key == "faults.fail_prob") {
    s.has_faults = true;
    return parse_number_text(key, value, &s.faults.defaults.fail_prob);
  }
  return InvalidArgument("'" + std::string(key) + "' is not a sweepable key");
}

StatusOr<std::vector<Scenario>> expand_sweep(const Scenario& scenario) {
  CEDR_RETURN_IF_ERROR(scenario.validate());
  if (scenario.sweep.empty()) return std::vector<Scenario>{scenario};

  std::vector<Scenario> out;
  std::vector<std::size_t> index(scenario.sweep.size(), 0);
  while (true) {
    Scenario point = scenario;
    point.sweep.clear();
    std::string suffix;
    for (std::size_t axis = 0; axis < scenario.sweep.size(); ++axis) {
      const SweepAxis& a = scenario.sweep[axis];
      const std::string& value = a.values[index[axis]];
      CEDR_RETURN_IF_ERROR(apply_override(point, a.key, value));
      if (!suffix.empty()) suffix += ',';
      suffix += a.key + "=" + value;
    }
    point.name = scenario.name + "/" + suffix;
    CEDR_RETURN_IF_ERROR(point.validate());
    out.push_back(std::move(point));

    std::size_t axis = scenario.sweep.size();
    while (axis > 0) {
      --axis;
      if (++index[axis] < scenario.sweep[axis].values.size()) break;
      index[axis] = 0;
      if (axis == 0) return out;
    }
  }
}

}  // namespace cedr::scenario
