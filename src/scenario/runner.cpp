#include "cedr/scenario/runner.h"

#include <algorithm>
#include <cmath>

#include "cedr/common/math_util.h"
#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/metrics.h"
#include "cedr/obs/span.h"
#include "cedr/platform/platform.h"

namespace cedr::scenario {
namespace {

/// Returns a copy of `costs` with every (kernel, class) polynomial scaled by
/// `scale`. Transfer coefficients stay unscaled: the miscalibration knob
/// models wrong *profiling tables*, and data-movement costs come from the
/// interconnect, not the profiles.
platform::CostModel scaled_costs(const platform::CostModel& costs,
                                 double scale) {
  platform::CostModel out = costs;
  for (std::size_t k = 0; k < platform::kNumKernelIds; ++k) {
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      const auto kernel = static_cast<platform::KernelId>(k);
      const auto cls = static_cast<platform::PeClass>(c);
      platform::KernelCost cost = costs.get(kernel, cls);
      cost.fixed_s *= scale;
      cost.per_point_s *= scale;
      cost.per_nlogn_s *= scale;
      out.set(kernel, cls, cost);
    }
  }
  return out;
}

}  // namespace

StatusOr<CompiledScenario> compile_scenario(const Scenario& scenario) {
  CEDR_RETURN_IF_ERROR(scenario.validate());
  if (!scenario.sweep.empty()) {
    return InvalidArgument("scenario '" + scenario.name +
                           "' still carries sweep axes; expand_sweep first");
  }

  CompiledScenario compiled;
  compiled.name = scenario.name;
  compiled.seed = scenario.seed;
  compiled.trials = scenario.trials;
  compiled.adapt = scenario.adapt;

  const PlatformSpec& p = scenario.platform;
  if (p.preset == "zcu102") {
    compiled.config.platform = platform::zcu102(p.cpus, p.ffts, p.mmults);
  } else if (p.preset == "jetson") {
    compiled.config.platform = platform::jetson(p.cpus, p.gpus);
  } else if (p.preset == "biglittle") {
    compiled.config.platform = platform::biglittle(p.big, p.little, p.ffts);
  } else if (p.preset == "host") {
    compiled.config.platform = platform::host(p.cpus, p.ffts, p.mmults);
  } else {
    return InvalidArgument("unknown platform preset '" + p.preset + "'");
  }
  compiled.config.scheduler = scenario.scheduler;
  compiled.config.model = scenario.model == "dag"
                              ? sim::ProgrammingModel::kDagBased
                              : sim::ProgrammingModel::kApiBased;
  compiled.config.max_virtual_time_s = scenario.max_virtual_time_s;
  if (scenario.has_faults) compiled.config.faults = scenario.faults;

  auto process = workload::arrival_process_from_name(scenario.arrival.process);
  if (!process.ok()) return process.status();
  compiled.arrival.process = *process;
  compiled.arrival.rate_mbps = scenario.arrival.rate_mbps;
  compiled.arrival.jitter = scenario.arrival.jitter;
  compiled.arrival.burst_ratio = scenario.arrival.burst_ratio;
  compiled.arrival.burst_fraction = scenario.arrival.burst_fraction;
  compiled.arrival.burst_cycle_s = scenario.arrival.burst_cycle_s;
  compiled.arrival.think_s = scenario.arrival.think_s;
  compiled.arrival.clients = scenario.arrival.clients;
  CEDR_RETURN_IF_ERROR(compiled.arrival.validate());

  std::vector<sim::SimApp> apps;
  apps.reserve(scenario.apps.size());
  for (const AppSpec& spec : scenario.apps) {
    if (spec.kind == "pulse_doppler") {
      apps.push_back(sim::make_pulse_doppler_model(spec.nonblocking));
    } else if (spec.kind == "wifi_tx") {
      apps.push_back(sim::make_wifi_tx_model(spec.nonblocking));
    } else if (spec.kind == "lane_detection") {
      apps.push_back(
          sim::make_lane_detection_model(spec.scale, spec.nonblocking));
    } else {
      return InvalidArgument("unknown app kind '" + spec.kind + "'");
    }
  }
  compiled.apps =
      std::make_shared<const std::vector<sim::SimApp>>(std::move(apps));
  for (std::size_t i = 0; i < scenario.apps.size(); ++i) {
    workload::Stream stream;
    stream.app = &(*compiled.apps)[i];
    stream.instances = scenario.apps[i].instances;
    stream.start_offset_s = scenario.apps[i].start_offset_s;
    const std::vector<double> ranks =
        stream.app->segment_ranks(compiled.config.platform);
    stream.service_estimate_s = ranks.empty() ? 0.0 : ranks.front();
    compiled.streams.push_back(stream);
  }

  if (scenario.sched_cost_scale != 1.0) {
    compiled.sched_costs = std::make_shared<const platform::CostModel>(
        scaled_costs(compiled.config.platform.costs,
                     scenario.sched_cost_scale));
    compiled.config.sched_costs = compiled.sched_costs.get();
  }
  return compiled;
}

StatusOr<ScenarioResult> run_scenario(const CompiledScenario& compiled) {
  sim::SimConfig config = compiled.config;

  std::unique_ptr<adapt::OnlineCostEstimator> estimator;
  if (compiled.adapt.enabled) {
    adapt::AdaptConfig adapt_config;
    adapt_config.enabled = true;
    adapt_config.half_life = compiled.adapt.half_life;
    adapt_config.min_samples = compiled.adapt.min_samples;
    adapt_config.outlier_threshold = compiled.adapt.outlier_threshold;
    adapt_config.publish_interval = compiled.adapt.publish_interval;
    // The estimator warms up from the *scheduler's* (possibly
    // mis-calibrated) view, the table adaptation exists to correct.
    estimator = std::make_unique<adapt::OnlineCostEstimator>(
        adapt_config, config.sched_costs != nullptr
                          ? *config.sched_costs
                          : config.platform.costs);
    config.adapt = estimator.get();
  }

  obs::QuantileHistogram queue_delay;
  obs::QuantileHistogram service_time;
  obs::QuantileHistogram sched_round;
  config.queue_delay_us = &queue_delay;
  config.service_time_us = &service_time;
  config.sched_round_us = &sched_round;

  double apps = 0, tasks = 0, rounds = 0, max_ready = 0, comparisons = 0;
  double makespan = 0, exec = 0, sched = 0, sched_total = 0, rtov = 0,
         rtov_per_app = 0;
  double faults_injected = 0, tasks_retried = 0, pes_quarantined = 0,
         pes_reinstated = 0, tasks_lost = 0;
  double reservation_hits = 0, reservation_stale = 0;
  std::vector<double> exec_times;
  exec_times.reserve(compiled.trials);

  for (std::size_t trial = 0; trial < compiled.trials; ++trial) {
    const std::uint64_t seed =
        compiled.seed + trial * 0x9e3779b9ull + 1;  // repo trial discipline
    auto arrivals =
        workload::generate_arrivals(compiled.streams, compiled.arrival, seed);
    if (!arrivals.ok()) return arrivals.status();
    auto metrics = sim::simulate(config, *arrivals);
    if (!metrics.ok()) return metrics.status();
    const sim::SimMetrics& m = *metrics;
    apps += static_cast<double>(m.apps);
    tasks += static_cast<double>(m.tasks_executed);
    rounds += static_cast<double>(m.sched_rounds);
    max_ready += static_cast<double>(m.max_ready_queue);
    comparisons += static_cast<double>(m.total_comparisons);
    makespan += m.makespan;
    exec += m.avg_execution_time;
    sched += m.avg_sched_overhead;
    sched_total += m.total_sched_time;
    rtov += m.runtime_overhead;
    rtov_per_app += m.runtime_overhead_per_app;
    faults_injected += static_cast<double>(m.faults_injected);
    tasks_retried += static_cast<double>(m.tasks_retried);
    pes_quarantined += static_cast<double>(m.pes_quarantined);
    pes_reinstated += static_cast<double>(m.pes_reinstated);
    tasks_lost += static_cast<double>(m.tasks_lost);
    reservation_hits += static_cast<double>(m.reservation_hits);
    reservation_stale += static_cast<double>(m.reservation_stale);
    exec_times.push_back(m.avg_execution_time);
  }
  const double n = static_cast<double>(compiled.trials);

  ScenarioResult result;
  result.name = compiled.name;
  result.trials.rate_mbps = compiled.arrival.rate_mbps;
  result.trials.trials = compiled.trials;
  result.trials.exec_time_stddev = stddev(exec_times);
  sim::SimMetrics& mean = result.trials.mean;
  mean.apps = static_cast<std::size_t>(apps / n);
  mean.tasks_executed = static_cast<std::size_t>(tasks / n);
  mean.sched_rounds = static_cast<std::size_t>(rounds / n);
  mean.max_ready_queue = static_cast<std::size_t>(max_ready / n);
  mean.total_comparisons = static_cast<std::uint64_t>(comparisons / n);
  mean.makespan = makespan / n;
  mean.avg_execution_time = exec / n;
  mean.avg_sched_overhead = sched / n;
  mean.total_sched_time = sched_total / n;
  mean.runtime_overhead = rtov / n;
  mean.runtime_overhead_per_app = rtov_per_app / n;
  mean.faults_injected = static_cast<std::size_t>(faults_injected / n);
  mean.tasks_retried = static_cast<std::size_t>(tasks_retried / n);
  mean.pes_quarantined = static_cast<std::size_t>(pes_quarantined / n);
  mean.pes_reinstated = static_cast<std::size_t>(pes_reinstated / n);
  mean.tasks_lost = static_cast<std::size_t>(tasks_lost / n);
  mean.reservation_hits = static_cast<std::size_t>(reservation_hits / n);
  mean.reservation_stale = static_cast<std::size_t>(reservation_stale / n);

  MetricSummary& s = result.summary;
  s["makespan_ms"] = makespan / n * 1e3;
  s["exec_ms"] = exec / n * 1e3;
  s["exec_stddev_ms"] = result.trials.exec_time_stddev * 1e3;
  s["sched_ms"] = sched / n * 1e3;
  s["rtov_ms"] = rtov_per_app / n * 1e3;
  s["tasks"] = tasks / n;
  s["rounds"] = rounds / n;
  s["comparisons"] = comparisons / n;
  s["max_ready"] = max_ready / n;
  s["queue_delay_p50_us"] = queue_delay.quantile(0.50);
  s["queue_delay_p95_us"] = queue_delay.quantile(0.95);
  s["service_p50_us"] = service_time.quantile(0.50);
  s["service_p95_us"] = service_time.quantile(0.95);
  s["sched_round_p50_us"] = sched_round.quantile(0.50);
  s["sched_round_p95_us"] = sched_round.quantile(0.95);
  if (!compiled.config.faults.empty()) {
    s["faults_injected"] = faults_injected / n;
    s["tasks_retried"] = tasks_retried / n;
    s["pes_quarantined"] = pes_quarantined / n;
    s["pes_reinstated"] = pes_reinstated / n;
    s["tasks_lost"] = tasks_lost / n;
  }
  // Gated on the scheduler, not the observed counts: golden bands fail on
  // *new* metrics, so classic-heuristic scenarios must not grow keys — and
  // a lookahead scenario must keep its keys even in a zero-hit trial.
  if (compiled.config.scheduler == "HEFT_LA" ||
      compiled.config.scheduler == "EFT_LA") {
    s["reservation_hits"] = reservation_hits / n;
    s["reservation_stale"] = reservation_stale / n;
  }
  if (estimator != nullptr) {
    s["adapt_observations"] =
        static_cast<double>(estimator->observations());
    s["adapt_publishes"] = static_cast<double>(estimator->publishes());
    s["adapt_rel_error"] = estimator->mean_rel_error();
  }
  return result;
}

StatusOr<ScenarioResult> run_scenario(const Scenario& scenario) {
  auto compiled = compile_scenario(scenario);
  if (!compiled.ok()) return compiled.status();
  return run_scenario(*compiled);
}

Status write_scenario_trace(const CompiledScenario& compiled,
                            const std::string& path) {
  obs::SpanTracer tracer;
  sim::SimConfig config = compiled.config;
  config.tracer = &tracer;
  auto arrivals = workload::generate_arrivals(compiled.streams,
                                              compiled.arrival,
                                              compiled.seed + 1);
  if (!arrivals.ok()) return arrivals.status();
  auto metrics = sim::simulate(config, *arrivals);
  if (!metrics.ok()) return metrics.status();

  // Track names mirror the engine's instance numbering (arrival order,
  // stable-sorted by time) — same convention as tools/cedr_sim.cpp.
  std::vector<sim::Arrival> sorted = *std::move(arrivals);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const sim::Arrival& a, const sim::Arrival& b) {
                     return a.time < b.time;
                   });
  std::vector<obs::TrackName> tracks;
  tracks.push_back(
      {0, 0, true, "cedr scenario " + compiled.name});
  tracks.push_back({0, 0, false, "main loop"});
  for (std::size_t i = 0; i < config.platform.pes.size(); ++i) {
    tracks.push_back({0, 1 + i, false, config.platform.pes[i].name});
  }
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    tracks.push_back(
        {1 + i, 0, true, sorted[i].app->name + " #" + std::to_string(i)});
  }
  return obs::write_chrome_trace(path, tracer.snapshot(), tracks);
}

}  // namespace cedr::scenario
