#include "cedr/scenario/band.h"

#include <algorithm>
#include <cmath>

#include "cedr/scenario/scenario.h"

namespace cedr::scenario {

json::Value BandFile::to_json() const {
  json::Object scenarios_obj;
  for (const auto& [name, metrics] : scenarios) {
    json::Object metrics_obj;
    for (const auto& [metric, band] : metrics) {
      metrics_obj[metric] = json::Array{band.first, band.second};
    }
    scenarios_obj[name] = json::Value(std::move(metrics_obj));
  }
  json::Object root;
  root["scenarios"] = json::Value(std::move(scenarios_obj));
  return json::Value(std::move(root));
}

StatusOr<BandFile> BandFile::from_json(const json::Value& value) {
  if (!value.is_object()) return InvalidArgument("band file must be an object");
  const json::Value* scenarios = value.find("scenarios");
  if (scenarios == nullptr || !scenarios->is_object()) {
    return InvalidArgument("band file is missing the 'scenarios' object");
  }
  BandFile out;
  for (const auto& [name, metrics] : scenarios->as_object()) {
    if (!metrics.is_object()) {
      return InvalidArgument("bands for scenario '" + name +
                             "' must be an object");
    }
    auto& entry = out.scenarios[name];
    for (const auto& [metric, band] : metrics.as_object()) {
      if (!band.is_array() || band.as_array().size() != 2 ||
          !band.as_array()[0].is_number() || !band.as_array()[1].is_number()) {
        return InvalidArgument("band '" + name + "'.'" + metric +
                               "' must be a [lo, hi] number pair");
      }
      const double lo = band.as_array()[0].as_double();
      const double hi = band.as_array()[1].as_double();
      if (!(lo <= hi)) {
        return InvalidArgument("band '" + name + "'.'" + metric +
                               "' has lo > hi");
      }
      entry[metric] = {lo, hi};
    }
  }
  return out;
}

StatusOr<BandFile> BandFile::load(const std::string& path) {
  auto value = json::parse_file(path);
  if (!value.ok()) return value.status();
  auto bands = from_json(*value);
  if (!bands.ok()) {
    return Status(bands.status().code(),
                  path + ": " + bands.status().message());
  }
  return bands;
}

Status BandFile::save(const std::string& path) const {
  return json::write_file(path, to_json());
}

BandFile make_bands(const std::map<std::string, MetricSummary>& summaries,
                    const BandMargins& margins) {
  BandFile bands;
  for (const auto& [name, metrics] : summaries) {
    auto& entry = bands.scenarios[name];
    for (const auto& [metric, value] : metrics) {
      const double slack =
          std::max(std::abs(value) * margins.rel, margins.abs);
      entry[metric] = {std::max(0.0, value - slack), value + slack};
    }
  }
  return bands;
}

std::string BandViolation::to_string() const {
  if (kind == "missing-scenario") {
    return "FAIL " + scenario + ": banded scenario missing from this run";
  }
  if (kind == "new-scenario") {
    return "FAIL " + scenario + ": scenario has no golden band (regenerate?)";
  }
  if (kind == "missing-metric") {
    return "FAIL " + scenario + " " + metric +
           ": banded metric missing from this run";
  }
  if (kind == "new-metric") {
    return "FAIL " + scenario + " " + metric +
           ": metric has no golden band (regenerate?)";
  }
  return "FAIL " + scenario + " " + metric + ": " + format_double(value) +
         " outside [" + format_double(lo) + ", " + format_double(hi) + "]";
}

BandCheckResult check_bands(
    const BandFile& bands,
    const std::map<std::string, MetricSummary>& summaries) {
  BandCheckResult result;
  for (const auto& [name, metrics] : bands.scenarios) {
    const auto run = summaries.find(name);
    if (run == summaries.end()) {
      result.violations.push_back({name, "", 0.0, 0.0, 0.0,
                                   "missing-scenario"});
      continue;
    }
    for (const auto& [metric, band] : metrics) {
      const auto observed = run->second.find(metric);
      if (observed == run->second.end()) {
        result.violations.push_back({name, metric, 0.0, band.first,
                                     band.second, "missing-metric"});
        continue;
      }
      ++result.metrics_checked;
      const double v = observed->second;
      if (v < band.first || v > band.second || std::isnan(v)) {
        result.violations.push_back({name, metric, v, band.first, band.second,
                                     "out-of-band"});
      }
    }
    for (const auto& [metric, value] : run->second) {
      if (metrics.count(metric) == 0) {
        result.violations.push_back({name, metric, value, 0.0, 0.0,
                                     "new-metric"});
      }
    }
  }
  for (const auto& [name, metrics] : summaries) {
    if (bands.scenarios.count(name) == 0) {
      result.violations.push_back({name, "", 0.0, 0.0, 0.0, "new-scenario"});
    }
  }
  std::stable_sort(result.violations.begin(), result.violations.end(),
                   [](const BandViolation& a, const BandViolation& b) {
                     if (a.scenario != b.scenario) {
                       return a.scenario < b.scenario;
                     }
                     return a.metric < b.metric;
                   });
  return result;
}

}  // namespace cedr::scenario
