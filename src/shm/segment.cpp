// Segment creation, attach-time validation, mapping lifecycle.

#include "cedr/shm/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <utility>

namespace cedr::shm {
namespace {

constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

/// Anonymous memory-backed fd: memfd_create where available, else an
/// immediately-unlinked shm_open file (same backing, a name briefly
/// exists).
int anonymous_fd() {
#ifdef MFD_CLOEXEC
  const int fd = ::memfd_create("cedr-shm", MFD_CLOEXEC);
  if (fd >= 0 || errno != ENOSYS) return fd;
#endif
  char name[64];
  std::snprintf(name, sizeof name, "/cedr-shm-%d-%p", ::getpid(),
                static_cast<void*>(name));
  const int shm_fd = ::shm_open(name, O_RDWR | O_CREAT | O_EXCL, 0600);
  if (shm_fd >= 0) ::shm_unlink(name);
  return shm_fd;
}

}  // namespace

Segment& Segment::operator=(Segment&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    if (fd_ >= 0) ::close(fd_);
    base_ = std::exchange(other.base_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Segment::~Segment() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<Segment> Segment::create(const SegmentOptions& options) {
  if (!is_power_of_two(options.sub_slots) ||
      !is_power_of_two(options.cpl_slots)) {
    return InvalidArgument("shm ring slot counts must be powers of two");
  }
  SegmentLayout layout{};
  layout.sub_slots = options.sub_slots;
  layout.cpl_slots = options.cpl_slots;
  layout.sub_slot_bytes = sizeof(SubRecord);
  layout.cpl_slot_bytes = sizeof(CplRecord);
  layout.arena_bytes =
      static_cast<std::uint32_t>(align_up(options.arena_bytes));
  layout.sub_ring_off = kHeaderBytes;
  layout.cpl_ring_off =
      layout.sub_ring_off +
      static_cast<std::uint64_t>(layout.sub_slots) * sizeof(SubRecord);
  layout.arena_off =
      layout.cpl_ring_off +
      static_cast<std::uint64_t>(layout.cpl_slots) * sizeof(CplRecord);
  layout.total_bytes = layout.arena_off + layout.arena_bytes;
  layout.daemon_pid = static_cast<std::uint64_t>(::getpid());

  const int fd = anonymous_fd();
  if (fd < 0) {
    return Unavailable(std::string("shm segment fd: ") + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(layout.total_bytes)) < 0) {
    const int err = errno;
    ::close(fd);
    return Unavailable(std::string("ftruncate(shm): ") + std::strerror(err));
  }
  void* base = ::mmap(nullptr, layout.total_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    return Unavailable(std::string("mmap(shm): ") + std::strerror(err));
  }

  // The mapping is zero-filled; construct the header in place. The atomics
  // are trivially zero-initialized by placement-new of the whole header.
  auto* header = new (base) SegmentHeader{};
  header->layout = layout;
  header->header_crc = layout_crc(layout);
  header->version = kVersion;
  // Magic last: an attacher that races creation sees no magic, not a
  // half-written header.
  header->magic = kMagic;

  Segment segment;
  segment.base_ = base;
  segment.bytes_ = layout.total_bytes;
  segment.fd_ = fd;
  return segment;
}

Status validate_header(const SegmentHeader& header, std::size_t file_bytes) {
  if (header.magic != kMagic) return InvalidArgument("shm segment: bad magic");
  if (header.version != kVersion) {
    return InvalidArgument("shm segment: version " +
                           std::to_string(header.version) + " != " +
                           std::to_string(kVersion));
  }
  if (header.header_crc != layout_crc(header.layout)) {
    return Aborted("shm segment: header CRC mismatch (torn or corrupt)");
  }
  const SegmentLayout& l = header.layout;
  if (!is_power_of_two(l.sub_slots) || !is_power_of_two(l.cpl_slots)) {
    return InvalidArgument("shm segment: ring sizes not powers of two");
  }
  if (l.sub_slot_bytes != sizeof(SubRecord) ||
      l.cpl_slot_bytes != sizeof(CplRecord)) {
    return InvalidArgument("shm segment: record size mismatch");
  }
  if (l.sub_ring_off < kHeaderBytes ||
      l.cpl_ring_off !=
          l.sub_ring_off + std::uint64_t{l.sub_slots} * sizeof(SubRecord) ||
      l.arena_off !=
          l.cpl_ring_off + std::uint64_t{l.cpl_slots} * sizeof(CplRecord) ||
      l.total_bytes != l.arena_off + l.arena_bytes) {
    return InvalidArgument("shm segment: inconsistent offsets");
  }
  if (l.total_bytes > file_bytes) {
    return Aborted("shm segment: file truncated (" +
                    std::to_string(file_bytes) + " < " +
                    std::to_string(l.total_bytes) + " bytes)");
  }
  return Status::Ok();
}

StatusOr<Segment> Segment::attach(int fd) {
  struct stat st {};
  if (::fstat(fd, &st) < 0) {
    const int err = errno;
    ::close(fd);
    return Unavailable(std::string("fstat(shm): ") + std::strerror(err));
  }
  const auto file_bytes = static_cast<std::size_t>(st.st_size);
  if (file_bytes < sizeof(SegmentHeader)) {
    ::close(fd);
    return Aborted("shm segment: smaller than its header");
  }
  void* base =
      ::mmap(nullptr, file_bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    return Unavailable(std::string("mmap(shm): ") + std::strerror(err));
  }
  const auto* header = static_cast<const SegmentHeader*>(base);
  if (const Status s = validate_header(*header, file_bytes); !s.ok()) {
    ::munmap(base, file_bytes);
    ::close(fd);
    return s;
  }
  Segment segment;
  segment.base_ = base;
  segment.bytes_ = file_bytes;
  segment.fd_ = fd;
  return segment;
}

SpscRing<SubRecord> Segment::sub_ring() const noexcept {
  SegmentHeader* h = header();
  return SpscRing<SubRecord>(
      &h->sub_head, &h->sub_tail,
      static_cast<char*>(base_) + h->layout.sub_ring_off, h->layout.sub_slots);
}

SpscRing<CplRecord> Segment::cpl_ring() const noexcept {
  SegmentHeader* h = header();
  return SpscRing<CplRecord>(
      &h->cpl_head, &h->cpl_tail,
      static_cast<char*>(base_) + h->layout.cpl_ring_off, h->layout.cpl_slots);
}

}  // namespace cedr::shm
