// SCM_RIGHTS helpers (fdpass.h).

#include "cedr/shm/fdpass.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace cedr::shm {

ssize_t send_with_fds(int sock, const void* data, std::size_t len,
                      const std::vector<int>& fds) {
  msghdr msg{};
  iovec iov{};
  iov.iov_base = const_cast<void*>(data);
  iov.iov_len = len;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;

  // Control buffer sized for the fixed maximum; cmsg macros demand aligned
  // storage that outlives the call.
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * kMaxPassedFds)];
  if (!fds.empty() && fds.size() <= kMaxPassedFds) {
    std::memset(control, 0, sizeof control);
    msg.msg_control = control;
    msg.msg_controllen = CMSG_SPACE(sizeof(int) * fds.size());
    cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int) * fds.size());
    std::memcpy(CMSG_DATA(cmsg), fds.data(), sizeof(int) * fds.size());
  }
  return ::sendmsg(sock, &msg, MSG_NOSIGNAL);
}

ssize_t recv_with_fds(int sock, void* buf, std::size_t len,
                      std::vector<int>& fds_out) {
  msghdr msg{};
  iovec iov{};
  iov.iov_base = buf;
  iov.iov_len = len;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * kMaxPassedFds)];
  msg.msg_control = control;
  msg.msg_controllen = sizeof control;

  const ssize_t n = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
  if (n <= 0) return n;
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS) {
      continue;
    }
    const std::size_t count =
        (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
    int received[kMaxPassedFds];
    std::memcpy(received, CMSG_DATA(cmsg),
                sizeof(int) * (count < kMaxPassedFds ? count : kMaxPassedFds));
    for (std::size_t i = 0; i < count && i < kMaxPassedFds; ++i) {
      fds_out.push_back(received[i]);
    }
  }
  return n;
}

}  // namespace cedr::shm
