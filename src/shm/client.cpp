// ShmClient: SHMOPEN handshake, ring-based submission, doorbell waits.

#include "cedr/shm/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "cedr/common/stopwatch.h"
#include "cedr/shm/fdpass.h"

namespace cedr::shm {
namespace {

/// Reads and discards the eventfd counter so the next poll() blocks.
void drain_eventfd(int fd) {
  std::uint64_t count = 0;
  while (::read(fd, &count, sizeof count) == sizeof count) {
  }
}

void close_if_open(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

ShmClient::~ShmClient() {
  if (control_fd_ >= 0) {
    // Best effort: the daemon also reaps the session on EOF.
    (void)::send(control_fd_, "BYE\n", 4, MSG_NOSIGNAL);
  }
  close_if_open(control_fd_);
  close_if_open(sub_doorbell_fd_);
  close_if_open(cpl_doorbell_fd_);
}

Status ShmClient::connect_control_socket() {
  sockaddr_un addr{};
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("socket path too long: " + socket_path_);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  Stopwatch window;
  std::uint32_t backoff_ms = config_.backoff_initial_ms;
  std::string last_error;
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Unavailable(std::string("socket(): ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      control_fd_ = fd;
      return Status::Ok();
    }
    last_error = std::strerror(errno);
    ::close(fd);
    if (window.elapsed() + static_cast<double>(backoff_ms) * 1e-3 >
        config_.connect_timeout_s) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, config_.backoff_max_ms);
    if (backoff_ms == 0) backoff_ms = 1;
  }
  return Unavailable("cannot connect to daemon at " + socket_path_ + ": " +
                     last_error);
}

Status ShmClient::connect() {
  if (connected()) return Status::Ok();
  CEDR_RETURN_IF_ERROR(connect_control_socket());

  if (::send(control_fd_, "SHMOPEN\n", 8, MSG_NOSIGNAL) != 8) {
    const Status s =
        Unavailable(std::string("SHMOPEN send: ") + std::strerror(errno));
    close_if_open(control_fd_);
    return s;
  }

  // Read the reply line, collecting the SCM_RIGHTS descriptors that ride
  // with it. SHMOPEN is the first command on this fresh connection, so the
  // reply is the first line and the fds belong to it.
  std::string reply;
  std::vector<int> fds;
  while (reply.find('\n') == std::string::npos) {
    char buf[512];
    const ssize_t n = recv_with_fds(control_fd_, buf, sizeof buf, fds);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      for (int fd : fds) ::close(fd);
      close_if_open(control_fd_);
      return Unavailable("daemon closed connection during SHMOPEN");
    }
    reply.append(buf, static_cast<std::size_t>(n));
  }
  reply.resize(reply.find('\n'));

  if (reply.rfind("OK", 0) != 0 || fds.size() < 3) {
    for (int fd : fds) ::close(fd);
    close_if_open(control_fd_);
    return Unavailable("daemon did not offer the shm lane: " +
                       (reply.empty() ? std::string("(no reply)") : reply));
  }
  const int segment_fd = fds[0];
  sub_doorbell_fd_ = fds[1];
  cpl_doorbell_fd_ = fds[2];
  for (std::size_t i = 3; i < fds.size(); ++i) ::close(fds[i]);

  auto segment = Segment::attach(segment_fd);  // owns segment_fd either way
  if (!segment.ok()) {
    close_if_open(sub_doorbell_fd_);
    close_if_open(cpl_doorbell_fd_);
    close_if_open(control_fd_);
    return segment.status();
  }
  segment_ = std::move(segment).value();
  segment_.header()->client_pid.store(static_cast<std::uint64_t>(::getpid()),
                                      std::memory_order_release);
  sub_ring_ = segment_.sub_ring();
  cpl_ring_ = segment_.cpl_ring();
  arena_used_ = 0;
  return Status::Ok();
}

StatusOr<std::uint32_t> ShmClient::stage(std::string_view payload) {
  if (!connected()) return FailedPrecondition("shm client not connected");
  // 8-byte aligned bump allocation keeps records' arena reads aligned.
  const std::uint32_t off = (arena_used_ + 7u) & ~7u;
  if (payload.size() > segment_.arena_bytes() ||
      off > segment_.arena_bytes() - payload.size()) {
    return ResourceExhausted("shm arena exhausted (" +
                             std::to_string(segment_.arena_bytes()) +
                             " bytes)");
  }
  std::memcpy(segment_.arena() + off, payload.data(), payload.size());
  arena_used_ = off + static_cast<std::uint32_t>(payload.size());
  return off;
}

Status ShmClient::wait_on_cpl_doorbell(int timeout_ms) {
  SegmentHeader* h = segment_.header();
  // Arm, then re-check: a completion published between the check and the
  // poll() would otherwise be a lost wakeup.
  h->cpl_doorbell_armed.store(1, std::memory_order_release);
  if (cpl_ring_.front() != nullptr ||
      h->poisoned.load(std::memory_order_acquire) != 0) {
    h->cpl_doorbell_armed.store(0, std::memory_order_release);
    return Status::Ok();
  }
  pollfd pfd{cpl_doorbell_fd_, POLLIN, 0};
  // Bounded slices so `timeout_ms < 0` still notices a vanished daemon.
  const int slice = timeout_ms < 0 ? 200 : std::min(timeout_ms, 200);
  const int rc = ::poll(&pfd, 1, slice);
  h->cpl_doorbell_armed.store(0, std::memory_order_release);
  if (rc > 0) drain_eventfd(cpl_doorbell_fd_);
  if (rc < 0 && errno != EINTR) {
    return Unavailable(std::string("poll(doorbell): ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status ShmClient::wait_for_sub_slot(int timeout_ms) {
  Stopwatch waited;
  bool counted = false;
  while (true) {
    if (segment_.header()->poisoned.load(std::memory_order_acquire) != 0) {
      return Aborted("shm session poisoned by the daemon");
    }
    if (sub_ring_.acquire() != nullptr) return Status::Ok();
    if (!counted) {
      ++full_ring_waits_;
      counted = true;
    }
    if (timeout_ms >= 0 && waited.elapsed() * 1e3 > timeout_ms) {
      return Unavailable("shm submission ring full (timeout)");
    }
    // The daemon frees submission slots as it posts completions, so the
    // completion doorbell is the right thing to sleep on.
    CEDR_RETURN_IF_ERROR(wait_on_cpl_doorbell(
        timeout_ms < 0
            ? -1
            : timeout_ms - static_cast<int>(waited.elapsed() * 1e3)));
  }
}

StatusOr<std::uint64_t> ShmClient::push_record(Opcode opcode,
                                               std::uint16_t flags,
                                               std::uint32_t arg_off,
                                               std::uint32_t arg_len,
                                               std::string_view inline_payload,
                                               int timeout_ms) {
  if (!connected()) return FailedPrecondition("shm client not connected");
  CEDR_RETURN_IF_ERROR(wait_for_sub_slot(timeout_ms));
  SubRecord* rec = sub_ring_.acquire();
  std::memset(rec, 0, sizeof *rec);
  rec->opcode = static_cast<std::uint16_t>(opcode);
  rec->flags = flags;
  rec->seq = next_seq_++;
  rec->arg_off = arg_off;
  rec->arg_len = arg_len;
  if (!inline_payload.empty()) {
    std::memcpy(rec->inline_arg, inline_payload.data(), inline_payload.size());
  }
  rec->crc = sub_record_crc(*rec);
  const std::uint64_t seq = rec->seq;
  sub_ring_.publish();
  ++submitted_;

  SegmentHeader* h = segment_.header();
  if (h->sub_doorbell_armed.exchange(0, std::memory_order_acq_rel) != 0) {
    const std::uint64_t one = 1;
    (void)::write(sub_doorbell_fd_, &one, sizeof one);
  }
  return seq;
}

StatusOr<std::uint64_t> ShmClient::submit_staged(std::uint32_t arg_off,
                                                 std::uint32_t arg_len,
                                                 int timeout_ms) {
  return push_record(Opcode::kSubmitDag, kArgInArena, arg_off, arg_len, {},
                     timeout_ms);
}

StatusOr<std::uint64_t> ShmClient::submit_dag_json(std::string_view json_doc,
                                                   int timeout_ms) {
  if (json_doc.size() <= kSubInlineBytes) {
    return push_record(Opcode::kSubmitDag, kArgInline, 0,
                       static_cast<std::uint32_t>(json_doc.size()), json_doc,
                       timeout_ms);
  }
  if (json_doc != staged_doc_) {
    auto off = stage(json_doc);
    if (!off.ok()) return off.status();
    staged_doc_.assign(json_doc);
    staged_off_ = *off;
  }
  return submit_staged(staged_off_,
                       static_cast<std::uint32_t>(json_doc.size()),
                       timeout_ms);
}

StatusOr<std::uint64_t> ShmClient::nop(int timeout_ms) {
  return push_record(Opcode::kNop, 0, 0, 0, {}, timeout_ms);
}

bool ShmClient::consume_one(Completion& out) {
  const CplRecord* rec = cpl_ring_.front();
  if (rec == nullptr) return false;
  out.seq = rec->seq;
  out.status = static_cast<CplStatus>(rec->status);
  out.value = rec->value;
  out.msg.assign(rec->msg,
                 std::min<std::size_t>(rec->msg_len, kCplMsgBytes));
  cpl_ring_.release();
  ++completed_;
  if (out.status == CplStatus::kBusy) ++busy_;
  // Stall recovery: the daemon backs off a full completion ring after
  // arming the submission doorbell. Freeing a slot here is what unblocks
  // it, so kick the doorbell when unconsumed submissions remain.
  SegmentHeader* h = segment_.header();
  if (sub_ring_.size() != 0 &&
      h->sub_doorbell_armed.load(std::memory_order_acquire) != 0 &&
      h->sub_doorbell_armed.exchange(0, std::memory_order_acq_rel) != 0) {
    const std::uint64_t one = 1;
    (void)::write(sub_doorbell_fd_, &one, sizeof one);
  }
  return true;
}

std::size_t ShmClient::poll_completions(std::vector<Completion>& out) {
  std::size_t drained = 0;
  Completion c;
  while (consume_one(c)) {
    out.push_back(std::move(c));
    ++drained;
  }
  return drained;
}

StatusOr<Completion> ShmClient::wait_completion(std::uint64_t seq,
                                                int timeout_ms) {
  if (!connected()) return FailedPrecondition("shm client not connected");
  Stopwatch waited;
  Completion c;
  while (true) {
    // Completions arrive in submission order, so anything before `seq` is
    // simply consumed on the way.
    while (consume_one(c)) {
      if (c.seq == seq) return c;
      if (c.seq > seq) {
        return NotFound("completion " + std::to_string(seq) +
                        " already consumed");
      }
    }
    if (segment_.header()->poisoned.load(std::memory_order_acquire) != 0 &&
        cpl_ring_.front() == nullptr) {
      return Aborted("shm session poisoned by the daemon");
    }
    if (timeout_ms >= 0 && waited.elapsed() * 1e3 > timeout_ms) {
      return Unavailable("timed out waiting for shm completion " +
                         std::to_string(seq));
    }
    CEDR_RETURN_IF_ERROR(wait_on_cpl_doorbell(
        timeout_ms < 0
            ? -1
            : timeout_ms - static_cast<int>(waited.elapsed() * 1e3)));
  }
}

Status ShmClient::wait_all(int timeout_ms) {
  if (!connected()) return FailedPrecondition("shm client not connected");
  Stopwatch waited;
  Completion c;
  while (completed_ < submitted_) {
    if (consume_one(c)) continue;
    if (segment_.header()->poisoned.load(std::memory_order_acquire) != 0) {
      return Aborted("shm session poisoned by the daemon");
    }
    if (timeout_ms >= 0 && waited.elapsed() * 1e3 > timeout_ms) {
      return Unavailable("timed out draining shm completions (" +
                         std::to_string(completed_) + "/" +
                         std::to_string(submitted_) + ")");
    }
    CEDR_RETURN_IF_ERROR(wait_on_cpl_doorbell(
        timeout_ms < 0
            ? -1
            : timeout_ms - static_cast<int>(waited.elapsed() * 1e3)));
  }
  return Status::Ok();
}

}  // namespace cedr::shm
