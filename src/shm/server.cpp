// ShmServer: session lifecycle, batched ring drain, completion posting.

#include "cedr/shm/server.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "cedr/apps/executable_dag.h"
#include "cedr/common/log.h"
#include "cedr/obs/chrome_trace.h"

namespace cedr::shm {
namespace {

constexpr std::string_view kLogTag = "shm";

/// Fills a zeroed completion slot and stamps its CRC.
void fill_completion(CplRecord& cpl, std::uint64_t seq, CplStatus status,
                     std::uint64_t value, std::string_view msg) {
  cpl.status = static_cast<std::uint16_t>(status);
  cpl.seq = seq;
  cpl.value = value;
  const std::size_t n = std::min<std::size_t>(msg.size(), kCplMsgBytes);
  cpl.msg_len = static_cast<std::uint16_t>(n);
  if (n > 0) std::memcpy(cpl.msg, msg.data(), n);
  cpl.crc = cpl_record_crc(cpl);
}

}  // namespace

ShmServer::Session::~Session() {
  if (sub_doorbell_fd >= 0) ::close(sub_doorbell_fd);
  if (cpl_doorbell_fd >= 0) ::close(cpl_doorbell_fd);
}

ShmServer::ShmServer(rt::Runtime& runtime, ShmServerOptions options,
                     std::function<bool()> admit)
    : runtime_(runtime), options_(options), admit_(std::move(admit)) {
  if (options_.drain_batch == 0) options_.drain_batch = 1;
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  runtime_.metrics().set_gauge("shm.sessions", 0.0);
  runtime_.metrics().set_gauge("shm.sub_ring_depth", 0.0);
}

ShmServer::~ShmServer() { close_all(); }

StatusOr<ShmServer::OpenInfo> ShmServer::open_session(std::uint64_t id) {
  {
    std::lock_guard lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      return ResourceExhausted("shm session limit reached (" +
                               std::to_string(options_.max_sessions) + ")");
    }
    if (sessions_.count(id) != 0) {
      return AlreadyExists("connection already has a shm session");
    }
  }
  auto segment = Segment::create(options_.segment);
  if (!segment.ok()) return segment.status();

  auto session = std::make_shared<Session>();
  session->id = id;
  session->segment = std::move(segment).value();
  session->sub_doorbell_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  session->cpl_doorbell_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (session->sub_doorbell_fd < 0 || session->cpl_doorbell_fd < 0) {
    return Unavailable(std::string("eventfd(): ") + std::strerror(errno));
  }

  OpenInfo info;
  info.fds = {session->segment.fd(), session->sub_doorbell_fd,
              session->cpl_doorbell_fd};
  const SegmentLayout& layout = session->segment.header()->layout;
  info.reply = "OK sub_slots=" + std::to_string(layout.sub_slots) +
               " cpl_slots=" + std::to_string(layout.cpl_slots) +
               " arena=" + std::to_string(layout.arena_bytes) + "\n";

  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      return ResourceExhausted("shm session limit reached (" +
                               std::to_string(options_.max_sessions) + ")");
    }
    sessions_.emplace(id, session);
    active = sessions_.size();
  }
  runtime_.counters().add("shm.sessions_opened_total");
  runtime_.metrics().set_gauge("shm.sessions", static_cast<double>(active));
  CEDR_LOG(kInfo, kLogTag) << "session " << id << " opened ("
                           << layout.sub_slots << "+" << layout.cpl_slots
                           << " slots, " << layout.arena_bytes
                           << " B arena)";
  return info;
}

void ShmServer::close_session(std::uint64_t id) {
  std::shared_ptr<Session> session;
  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
    active = sessions_.size();
  }
  // A drain job may still hold the session; the flag makes it stop at the
  // next record and the shared_ptr keeps the mapping valid until then.
  session->closed.store(true, std::memory_order_release);
  runtime_.metrics().set_gauge("shm.sessions", static_cast<double>(active));
  CEDR_LOG(kInfo, kLogTag) << "session " << id << " reaped";
}

void ShmServer::close_all() {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard lock(mutex_);
    ids.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) close_session(id);
}

std::size_t ShmServer::session_count() {
  std::lock_guard lock(mutex_);
  return sessions_.size();
}

std::shared_ptr<ShmServer::Session> ShmServer::find(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void ShmServer::poll_fds(std::vector<std::pair<std::uint64_t, int>>& out) {
  std::lock_guard lock(mutex_);
  for (const auto& [id, session] : sessions_) {
    out.emplace_back(id, session->sub_doorbell_fd);
  }
}

void ShmServer::doorbell_rang(std::uint64_t id) {
  auto session = find(id);
  if (session == nullptr) return;
  std::uint64_t count = 0;
  while (::read(session->sub_doorbell_fd, &count, sizeof count) ==
         sizeof count) {
  }
  runtime_.counters().add("shm.doorbell_wakes_total");
}

void ShmServer::claim_drains(std::vector<std::uint64_t>& out) {
  double depth = 0.0;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [id, session] : sessions_) {
      SegmentHeader* h = session->segment.header();
      if (h->poisoned.load(std::memory_order_acquire) != 0) continue;
      const std::uint64_t pending = session->segment.sub_ring().size();
      depth += static_cast<double>(pending);
      if (pending == 0) continue;
      if (!session->drain_inflight.exchange(true,
                                            std::memory_order_acq_rel)) {
        out.push_back(id);
      }
    }
  }
  runtime_.metrics().set_gauge("shm.sub_ring_depth", depth);
}

void ShmServer::ring_cpl_doorbell(Session& session) {
  SegmentHeader* h = session.segment.header();
  if (h->cpl_doorbell_armed.exchange(0, std::memory_order_acq_rel) != 0) {
    const std::uint64_t one = 1;
    (void)!::write(session.cpl_doorbell_fd, &one, sizeof one);
  }
}

void ShmServer::process_record(Session& session, const SubRecord& rec,
                               CplRecord& cpl) {
  runtime_.counters().add("shm.records_total");
  switch (static_cast<Opcode>(rec.opcode)) {
    case Opcode::kNop:
      runtime_.counters().add("shm.nops_total");
      fill_completion(cpl, rec.seq, CplStatus::kOk, rec.seq, {});
      return;
    case Opcode::kSubmitDag:
      break;
    default:
      fill_completion(cpl, rec.seq, CplStatus::kError, 0, "unknown opcode");
      return;
  }

  // Locate the payload (inline or arena), bounds-checked against the
  // layout the daemon itself wrote — a malicious or buggy offset cannot
  // read outside the segment.
  const char* payload = nullptr;
  if ((rec.flags & kArgInline) != 0) {
    if (rec.arg_len > kSubInlineBytes) {
      fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                      "inline length too large");
      return;
    }
    payload = rec.inline_arg;
  } else if ((rec.flags & kArgInArena) != 0) {
    const std::uint32_t arena_bytes = session.segment.arena_bytes();
    if (rec.arg_len > arena_bytes || rec.arg_off > arena_bytes - rec.arg_len) {
      fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                      "arena range out of bounds");
      return;
    }
    payload = session.segment.arena() + rec.arg_off;
  } else {
    fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                    "record carries no payload");
    return;
  }

  if (admit_ && !admit_()) {
    runtime_.counters().add("shm.busy_total");
    fill_completion(cpl, rec.seq, CplStatus::kBusy, options_.busy_retry_ms,
                    {});
    return;
  }

  // Parse once per distinct document (the memo), instantiate per record:
  // every submission still builds fresh buffers and a fresh descriptor,
  // only the text -> JSON step is shared.
  const std::string_view doc(payload, rec.arg_len);
  if (!session.doc_valid || doc != session.doc_cache) {
    auto parsed = json::parse(doc);
    if (!parsed.ok()) {
      fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                      parsed.status().to_string());
      return;
    }
    session.doc_cache.assign(doc);
    session.doc_value = std::move(parsed).value();
    session.doc_valid = true;
  }
  auto dag = apps::instantiate_dag(session.doc_value);
  if (!dag.ok()) {
    fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                    dag.status().to_string());
    return;
  }
  auto instance = runtime_.submit_dag(dag->descriptor);
  if (!instance.ok()) {
    fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                    instance.status().to_string());
    return;
  }
  runtime_.counters().add("shm.submits_total");
  fill_completion(cpl, rec.seq, CplStatus::kOk, *instance, {});
}

bool ShmServer::drain(std::uint64_t id) {
  auto session = find(id);
  if (session == nullptr) return false;
  const double start = runtime_.now();

  SpscRing<SubRecord> sub = session->segment.sub_ring();
  SpscRing<CplRecord> cpl = session->segment.cpl_ring();
  SegmentHeader* header = session->segment.header();
  std::size_t processed = 0;
  bool more = false;
  bool poisoned = false;

  while (processed < options_.drain_batch) {
    if (session->closed.load(std::memory_order_acquire)) break;
    const SubRecord* rec = sub.front();
    if (rec == nullptr) break;
    // Completion-ring credit: without a free completion slot the record
    // stays in the submission ring, pushing back-pressure to the client.
    CplRecord* slot = cpl.acquire();
    if (slot == nullptr) {
      runtime_.counters().add("shm.cpl_full_stalls_total");
      break;
    }
    if (rec->crc != sub_record_crc(*rec)) {
      // A bad CRC means the ring can no longer be trusted record by
      // record; latch the poison flag instead of resyncing by guesswork.
      runtime_.counters().add("shm.crc_rejected_total");
      header->poisoned.store(1, std::memory_order_release);
      poisoned = true;
      CEDR_LOG(kWarn, kLogTag)
          << "session " << id << " poisoned: record CRC mismatch at seq "
          << rec->seq;
      break;
    }
    std::memset(slot, 0, sizeof *slot);
    process_record(*session, *rec, *slot);
    cpl.publish();
    sub.release();
    ++processed;
  }

  if (processed > 0 || poisoned) ring_cpl_doorbell(*session);
  if (processed > 0) {
    runtime_.metrics().histogram("shm_drain_batch").record(
        static_cast<double>(processed));
    runtime_.tracer().complete_span(obs::Category::kIpc, "shm.drain", 0,
                                    obs::kIpcTid, start,
                                    runtime_.now() - start, "records",
                                    static_cast<double>(processed));
  }

  if (!poisoned && !session->closed.load(std::memory_order_acquire)) {
    if (processed >= options_.drain_batch && sub.front() != nullptr) {
      // Batch bound hit with work left: yield the worker, ask for a
      // redispatch so sessions round-robin across the pool.
      more = true;
    } else {
      // Going idle (or completion-ring full): arm the doorbell, then
      // re-check — a record published between the empty check and the arm
      // would otherwise sleep until the next client submission.
      header->sub_doorbell_armed.store(1, std::memory_order_release);
      if (sub.front() != nullptr && cpl.acquire() != nullptr) {
        header->sub_doorbell_armed.store(0, std::memory_order_release);
        more = true;
      }
    }
  }
  session->drain_inflight.store(false, std::memory_order_release);
  return more;
}

}  // namespace cedr::shm
