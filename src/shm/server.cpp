// ShmServer: session lifecycle, batched ring drain, completion posting.

#include "cedr/shm/server.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "cedr/apps/dag_template.h"
#include "cedr/common/log.h"
#include "cedr/obs/chrome_trace.h"

namespace cedr::shm {
namespace {

constexpr std::string_view kLogTag = "shm";

/// Fills a zeroed completion slot and stamps its CRC.
void fill_completion(CplRecord& cpl, std::uint64_t seq, CplStatus status,
                     std::uint64_t value, std::string_view msg) {
  cpl.status = static_cast<std::uint16_t>(status);
  cpl.seq = seq;
  cpl.value = value;
  const std::size_t n = std::min<std::size_t>(msg.size(), kCplMsgBytes);
  cpl.msg_len = static_cast<std::uint16_t>(n);
  if (n > 0) std::memcpy(cpl.msg, msg.data(), n);
  cpl.crc = cpl_record_crc(cpl);
}

}  // namespace

ShmServer::Session::~Session() {
  if (sub_doorbell_fd >= 0) ::close(sub_doorbell_fd);
  if (cpl_doorbell_fd >= 0) ::close(cpl_doorbell_fd);
}

ShmServer::ShmServer(rt::Runtime& runtime, ShmServerOptions options,
                     std::function<bool()> admit)
    : runtime_(runtime), options_(options), admit_(std::move(admit)) {
  if (options_.drain_batch == 0) options_.drain_batch = 1;
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  runtime_.metrics().set_gauge("shm.sessions", 0.0);
  runtime_.metrics().set_gauge("shm.sub_ring_depth", 0.0);
}

ShmServer::~ShmServer() { close_all(); }

StatusOr<ShmServer::OpenInfo> ShmServer::open_session(std::uint64_t id) {
  {
    std::lock_guard lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      return ResourceExhausted("shm session limit reached (" +
                               std::to_string(options_.max_sessions) + ")");
    }
    if (sessions_.count(id) != 0) {
      return AlreadyExists("connection already has a shm session");
    }
  }
  auto segment = Segment::create(options_.segment);
  if (!segment.ok()) return segment.status();

  auto session = std::make_shared<Session>();
  session->id = id;
  session->segment = std::move(segment).value();
  session->sub_doorbell_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  session->cpl_doorbell_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (session->sub_doorbell_fd < 0 || session->cpl_doorbell_fd < 0) {
    return Unavailable(std::string("eventfd(): ") + std::strerror(errno));
  }

  OpenInfo info;
  info.fds = {session->segment.fd(), session->sub_doorbell_fd,
              session->cpl_doorbell_fd};
  const SegmentLayout& layout = session->segment.header()->layout;
  info.reply = "OK sub_slots=" + std::to_string(layout.sub_slots) +
               " cpl_slots=" + std::to_string(layout.cpl_slots) +
               " arena=" + std::to_string(layout.arena_bytes) + "\n";

  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      return ResourceExhausted("shm session limit reached (" +
                               std::to_string(options_.max_sessions) + ")");
    }
    sessions_.emplace(id, session);
    active = sessions_.size();
  }
  runtime_.counters().add("shm.sessions_opened_total");
  runtime_.metrics().set_gauge("shm.sessions", static_cast<double>(active));
  CEDR_LOG(kInfo, kLogTag) << "session " << id << " opened ("
                           << layout.sub_slots << "+" << layout.cpl_slots
                           << " slots, " << layout.arena_bytes
                           << " B arena)";
  return info;
}

void ShmServer::close_session(std::uint64_t id) {
  std::shared_ptr<Session> session;
  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
    active = sessions_.size();
  }
  // A drain job may still hold the session; the flag makes it stop at the
  // next record and the shared_ptr keeps the mapping valid until then.
  session->closed.store(true, std::memory_order_release);
  runtime_.metrics().set_gauge("shm.sessions", static_cast<double>(active));
  CEDR_LOG(kInfo, kLogTag) << "session " << id << " reaped";
}

void ShmServer::close_all() {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard lock(mutex_);
    ids.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) close_session(id);
}

std::size_t ShmServer::session_count() {
  std::lock_guard lock(mutex_);
  return sessions_.size();
}

std::shared_ptr<ShmServer::Session> ShmServer::find(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void ShmServer::poll_fds(std::vector<std::pair<std::uint64_t, int>>& out) {
  std::lock_guard lock(mutex_);
  for (const auto& [id, session] : sessions_) {
    out.emplace_back(id, session->sub_doorbell_fd);
  }
}

void ShmServer::doorbell_rang(std::uint64_t id) {
  auto session = find(id);
  if (session == nullptr) return;
  std::uint64_t count = 0;
  while (::read(session->sub_doorbell_fd, &count, sizeof count) ==
         sizeof count) {
  }
  runtime_.counters().add("shm.doorbell_wakes_total");
}

void ShmServer::claim_drains(std::vector<std::uint64_t>& out) {
  double depth = 0.0;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [id, session] : sessions_) {
      SegmentHeader* h = session->segment.header();
      if (h->poisoned.load(std::memory_order_acquire) != 0) continue;
      const std::uint64_t pending = session->segment.sub_ring().size();
      depth += static_cast<double>(pending);
      if (pending == 0) continue;
      if (!session->drain_inflight.exchange(true,
                                            std::memory_order_acq_rel)) {
        out.push_back(id);
      }
    }
  }
  runtime_.metrics().set_gauge("shm.sub_ring_depth", depth);
}

void ShmServer::ring_cpl_doorbell(Session& session) {
  SegmentHeader* h = session.segment.header();
  if (h->cpl_doorbell_armed.exchange(0, std::memory_order_acq_rel) != 0) {
    const std::uint64_t one = 1;
    (void)!::write(session.cpl_doorbell_fd, &one, sizeof one);
  }
}

bool ShmServer::process_record(Session& session, const SubRecord& rec,
                               CplRecord& cpl,
                               std::vector<rt::DagSubmission>& submissions) {
  runtime_.counters().add("shm.records_total");
  switch (static_cast<Opcode>(rec.opcode)) {
    case Opcode::kNop:
      runtime_.counters().add("shm.nops_total");
      fill_completion(cpl, rec.seq, CplStatus::kOk, rec.seq, {});
      return true;
    case Opcode::kSubmitDag:
      break;
    default:
      fill_completion(cpl, rec.seq, CplStatus::kError, 0, "unknown opcode");
      return true;
  }

  // Locate the payload (inline or arena), bounds-checked against the
  // layout the daemon itself wrote — a malicious or buggy offset cannot
  // read outside the segment.
  const char* payload = nullptr;
  if ((rec.flags & kArgInline) != 0) {
    if (rec.arg_len > kSubInlineBytes) {
      fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                      "inline length too large");
      return true;
    }
    payload = rec.inline_arg;
  } else if ((rec.flags & kArgInArena) != 0) {
    const std::uint32_t arena_bytes = session.segment.arena_bytes();
    if (rec.arg_len > arena_bytes || rec.arg_off > arena_bytes - rec.arg_len) {
      fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                      "arena range out of bounds");
      return true;
    }
    payload = session.segment.arena() + rec.arg_off;
  } else {
    fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                    "record carries no payload");
    return true;
  }

  if (admit_ && !admit_()) {
    runtime_.counters().add("shm.busy_total");
    fill_completion(cpl, rec.seq, CplStatus::kBusy, options_.busy_retry_ms,
                    {});
    return true;
  }

  // Compile once per distinct document — across sessions and lanes, via the
  // process-wide template cache — and materialize only the per-instance
  // state here: fresh buffers plus implementation arrays. The buffer pool
  // stays alive through the impl arrays' CPU-slot closures, so dropping the
  // Instance struct after the move is safe.
  const std::string_view doc(payload, rec.arg_len);
  auto tmpl = apps::TemplateCache::global().get_or_compile(doc);
  if (!tmpl.ok()) {
    fill_completion(cpl, rec.seq, CplStatus::kError, 0,
                    tmpl.status().to_string());
    return true;
  }
  apps::DagTemplate::Instance instance = (*tmpl)->instantiate();
  submissions.push_back(rt::DagSubmission{
      .descriptor = std::move(instance.descriptor),
      .impls = std::move(instance.impls),
  });
  return false;
}

bool ShmServer::drain(std::uint64_t id) {
  auto session = find(id);
  if (session == nullptr) return false;
  const double start = runtime_.now();

  SpscRing<SubRecord> sub = session->segment.sub_ring();
  SpscRing<CplRecord> cpl = session->segment.cpl_ring();
  SegmentHeader* header = session->segment.header();
  bool more = false;
  bool poisoned = false;

  // Phase 1 — classify a window of records. The window is bounded by the
  // drain batch and by completion-ring credit: a record is only consumed
  // when its completion slot is free, so a client that stops reading
  // completions back-pressures into its own submission ring. Completion
  // slots are staged via the multi-slot producer API and made visible all
  // at once in phase 3.
  const std::uint64_t readable = sub.readable();
  std::uint64_t window =
      std::min<std::uint64_t>(options_.drain_batch, readable);
  if (const std::uint64_t credit = cpl.free_slots(); window > credit) {
    runtime_.counters().add("shm.cpl_full_stalls_total");
    window = credit;
  }

  std::uint64_t processed = 0;
  std::vector<rt::DagSubmission> submissions;
  /// (completion-slot offset, record seq) of each deferred SUBMITDAG, in
  /// submission order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> submit_slots;
  for (std::uint64_t i = 0; i < window; ++i) {
    if (session->closed.load(std::memory_order_acquire)) break;
    const SubRecord* rec = sub.peek(i);
    if (rec->crc != sub_record_crc(*rec)) {
      // A bad CRC means the ring can no longer be trusted record by
      // record; latch the poison flag instead of resyncing by guesswork.
      // Records classified before this one are still submitted/published.
      runtime_.counters().add("shm.crc_rejected_total");
      header->poisoned.store(1, std::memory_order_release);
      poisoned = true;
      CEDR_LOG(kWarn, kLogTag)
          << "session " << id << " poisoned: record CRC mismatch at seq "
          << rec->seq;
      break;
    }
    CplRecord* slot = cpl.producer_slot(i);
    std::memset(slot, 0, sizeof *slot);
    if (!process_record(*session, *rec, *slot, submissions)) {
      submit_slots.emplace_back(i, rec->seq);
    }
    ++processed;
  }

  // Phase 2 — one runtime batch submission for every valid SUBMITDAG in the
  // window: one lifecycle-lock hold and one ready-queue push for the whole
  // drain instead of one of each per record.
  if (!submissions.empty()) {
    auto results = runtime_.submit_dag_batch(std::move(submissions));
    for (std::size_t k = 0; k < results.size(); ++k) {
      CplRecord& slot = *cpl.producer_slot(submit_slots[k].first);
      const std::uint64_t seq = submit_slots[k].second;
      if (results[k].ok()) {
        runtime_.counters().add("shm.submits_total");
        fill_completion(slot, seq, CplStatus::kOk, *results[k], {});
      } else {
        fill_completion(slot, seq, CplStatus::kError, 0,
                        results[k].status().to_string());
      }
    }
  }

  // Phase 3 — publish every staged completion and return every consumed
  // submission slot with one cursor store each, then ring the doorbell at
  // most once.
  if (processed > 0) {
    cpl.publish(processed);
    sub.release(processed);
  }
  if (processed > 0 || poisoned) ring_cpl_doorbell(*session);
  if (processed > 0) {
    runtime_.metrics().histogram("shm_drain_batch").record(
        static_cast<double>(processed));
    runtime_.tracer().complete_span(obs::Category::kIpc, "shm.drain", 0,
                                    obs::kIpcTid, start,
                                    runtime_.now() - start, "records",
                                    static_cast<double>(processed));
  }

  if (!poisoned && !session->closed.load(std::memory_order_acquire)) {
    if (processed >= options_.drain_batch && sub.front() != nullptr) {
      // Batch bound hit with work left: yield the worker, ask for a
      // redispatch so sessions round-robin across the pool.
      more = true;
    } else {
      // Going idle (or completion-ring full): arm the doorbell, then
      // re-check — a record published between the empty check and the arm
      // would otherwise sleep until the next client submission.
      header->sub_doorbell_armed.store(1, std::memory_order_release);
      if (sub.front() != nullptr && cpl.acquire() != nullptr) {
        header->sub_doorbell_armed.store(0, std::memory_order_release);
        more = true;
      }
    }
  }
  session->drain_inflight.store(false, std::memory_order_release);
  return more;
}

}  // namespace cedr::shm
