#include "cedr/kernels/fft.h"

#include <algorithm>
#include <cmath>

namespace cedr::kernels {
namespace {

/// Twiddle factors are cached per (size, direction): the runtime issues
/// thousands of same-size transforms per frame, and recomputing sincos
/// dominates small FFTs otherwise. Thread-local avoids locking in worker
/// threads.
struct TwiddleCache {
  std::size_t size = 0;
  bool inverse = false;
  std::vector<cfloat> factors;  // w^0 .. w^(size/2 - 1)
};

const std::vector<cfloat>& twiddles(std::size_t n, bool inverse) {
  thread_local TwiddleCache cache;
  if (cache.size == n && cache.inverse == inverse) return cache.factors;
  cache.size = n;
  cache.inverse = inverse;
  cache.factors.resize(n / 2);
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = sign * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
    cache.factors[k] = cfloat(static_cast<float>(std::cos(angle)),
                              static_cast<float>(std::sin(angle)));
  }
  return cache.factors;
}

}  // namespace

std::vector<std::uint32_t> bit_reverse_table(std::size_t n) {
  std::vector<std::uint32_t> table(n);
  const unsigned bits = log2_exact(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t rev = 0;
    std::uint32_t v = static_cast<std::uint32_t>(i);
    for (unsigned b = 0; b < bits; ++b) {
      rev = (rev << 1) | (v & 1u);
      v >>= 1;
    }
    table[i] = rev;
  }
  return table;
}

Status fft_inplace(std::span<cfloat> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return InvalidArgument("FFT of empty buffer");
  if (!is_power_of_two(n)) {
    return InvalidArgument("FFT size must be a power of two, got " +
                           std::to_string(n));
  }
  if (n > (std::size_t{1} << 24)) {
    return OutOfRange("FFT size exceeds 2^24");
  }
  if (n == 1) return Status::Ok();

  // Bit-reversal permutation.
  const unsigned bits = log2_exact(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    std::size_t v = i;
    for (unsigned b = 0; b < bits; ++b) {
      rev = (rev << 1) | (v & 1u);
      v >>= 1;
    }
    if (rev > i) std::swap(data[i], data[rev]);
  }

  // Iterative butterflies; twiddles for the full size are strided per stage.
  const std::vector<cfloat>& w = twiddles(n, inverse);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cfloat t = w[k * stride] * data[base + k + half];
        const cfloat u = data[base + k];
        data[base + k] = u + t;
        data[base + k + half] = u - t;
      }
    }
  }

  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n);
    for (cfloat& v : data) v *= scale;
  }
  return Status::Ok();
}

Status fft(std::span<const cfloat> in, std::span<cfloat> out, bool inverse) {
  if (in.size() != out.size()) {
    return InvalidArgument("FFT input/output size mismatch");
  }
  std::copy(in.begin(), in.end(), out.begin());
  return fft_inplace(out, inverse);
}

std::vector<cfloat> dft_reference(std::span<const cfloat> in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<cfloat> out(n);
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * kPi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += std::complex<double>(in[t].real(), in[t].imag()) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (inverse) acc /= static_cast<double>(n);
    out[k] = cfloat(static_cast<float>(acc.real()),
                    static_cast<float>(acc.imag()));
  }
  return out;
}

std::vector<float> magnitude(std::span<const cfloat> spectrum) {
  std::vector<float> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    out[i] = std::abs(spectrum[i]);
  }
  return out;
}

}  // namespace cedr::kernels
