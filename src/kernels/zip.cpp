#include "cedr/kernels/zip.h"

namespace cedr::kernels {

Status zip(std::span<const cfloat> a, std::span<const cfloat> b,
           std::span<cfloat> out, ZipOp op) {
  if (a.size() != b.size() || a.size() != out.size()) {
    return InvalidArgument("zip operand size mismatch");
  }
  switch (op) {
    case ZipOp::kMultiply:
      for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
      break;
    case ZipOp::kConjugateMultiply:
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] = a[i] * std::conj(b[i]);
      }
      break;
    case ZipOp::kAdd:
      for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
      break;
    case ZipOp::kSubtract:
      for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
      break;
  }
  return Status::Ok();
}

void scale(std::span<const cfloat> a, cfloat scale_factor,
           std::span<cfloat> out) {
  const std::size_t n = std::min(a.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * scale_factor;
}

}  // namespace cedr::kernels
