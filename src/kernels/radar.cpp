#include "cedr/kernels/radar.h"

#include <cmath>

#include "cedr/kernels/fft.h"
#include "cedr/kernels/zip.h"

namespace cedr::kernels {

std::vector<cfloat> make_chirp(std::size_t chirp_len, double bandwidth_hz,
                               double sample_rate_hz) {
  std::vector<cfloat> chirp(chirp_len);
  const double duration = static_cast<double>(chirp_len) / sample_rate_hz;
  const double rate = bandwidth_hz / duration;  // Hz per second sweep
  for (std::size_t i = 0; i < chirp_len; ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    // Start at -B/2 so the chirp is centered on baseband.
    const double phase =
        2.0 * kPi * (-0.5 * bandwidth_hz * t + 0.5 * rate * t * t);
    chirp[i] = cfloat(static_cast<float>(std::cos(phase)),
                      static_cast<float>(std::sin(phase)));
  }
  return chirp;
}

std::vector<cfloat> synthesize_echo(const RadarParams& params,
                                    std::span<const cfloat> chirp,
                                    const RadarTarget& target,
                                    double noise_stddev, Rng& rng) {
  const std::size_t n = params.samples_per_pulse;
  std::vector<cfloat> cube(params.num_pulses * n);
  for (std::size_t p = 0; p < params.num_pulses; ++p) {
    // Doppler advances the echo phase pulse-to-pulse at the PRF.
    const double slow_time = static_cast<double>(p) / params.prf_hz;
    const double phase = 2.0 * kPi * target.doppler_hz * slow_time;
    const cfloat rotation(static_cast<float>(std::cos(phase)),
                          static_cast<float>(std::sin(phase)));
    cfloat* pulse = &cube[p * n];
    for (std::size_t i = 0; i < chirp.size(); ++i) {
      const std::size_t idx = target.range_bin + i;
      if (idx >= n) break;
      pulse[idx] += static_cast<float>(target.magnitude) * chirp[i] * rotation;
    }
    if (noise_stddev > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        pulse[i] += cfloat(static_cast<float>(rng.normal(0.0, noise_stddev)),
                           static_cast<float>(rng.normal(0.0, noise_stddev)));
      }
    }
  }
  return cube;
}

Status matched_filter(std::span<const cfloat> pulse,
                      std::span<const cfloat> chirp_freq,
                      std::span<cfloat> out) {
  if (pulse.size() != chirp_freq.size() || pulse.size() != out.size()) {
    return InvalidArgument("matched_filter span size mismatch");
  }
  std::vector<cfloat> freq(pulse.size());
  CEDR_RETURN_IF_ERROR(fft(pulse, freq, /*inverse=*/false));
  CEDR_RETURN_IF_ERROR(
      zip(freq, chirp_freq, std::span<cfloat>(freq), ZipOp::kConjugateMultiply));
  CEDR_RETURN_IF_ERROR(fft_inplace(freq, /*inverse=*/true));
  std::copy(freq.begin(), freq.end(), out.begin());
  return Status::Ok();
}

Status doppler_fft(std::span<const cfloat> compressed, std::size_t num_pulses,
                   std::size_t samples_per_pulse, std::span<cfloat> out) {
  if (compressed.size() != num_pulses * samples_per_pulse ||
      out.size() != compressed.size()) {
    return InvalidArgument("doppler_fft cube size mismatch");
  }
  std::vector<cfloat> column(num_pulses);
  for (std::size_t r = 0; r < samples_per_pulse; ++r) {
    for (std::size_t p = 0; p < num_pulses; ++p) {
      column[p] = compressed[p * samples_per_pulse + r];
    }
    CEDR_RETURN_IF_ERROR(fft_inplace(column, /*inverse=*/false));
    for (std::size_t p = 0; p < num_pulses; ++p) {
      out[p * samples_per_pulse + r] = column[p];
    }
  }
  return Status::Ok();
}

RadarTarget find_peak(std::span<const cfloat> range_doppler,
                      const RadarParams& params) {
  RadarTarget best;
  const std::size_t n = params.samples_per_pulse;
  float best_mag = -1.0f;
  std::size_t best_doppler_bin = 0;
  for (std::size_t d = 0; d < params.num_pulses; ++d) {
    for (std::size_t r = 0; r < n; ++r) {
      const float mag = std::abs(range_doppler[d * n + r]);
      if (mag > best_mag) {
        best_mag = mag;
        best.range_bin = r;
        best_doppler_bin = d;
      }
    }
  }
  best.magnitude = best_mag;
  // Wrap the upper half of the Doppler spectrum to negative frequencies.
  double bin = static_cast<double>(best_doppler_bin);
  if (bin >= static_cast<double>(params.num_pulses) / 2.0) {
    bin -= static_cast<double>(params.num_pulses);
  }
  best.doppler_hz = bin * params.prf_hz / static_cast<double>(params.num_pulses);
  // v = f_d * c / (2 * f_c) for a monostatic radar.
  best.velocity_mps =
      best.doppler_hz * params.speed_of_light / (2.0 * params.carrier_hz);
  return best;
}

}  // namespace cedr::kernels
