#include "cedr/kernels/conv.h"

#include <algorithm>

#include "cedr/kernels/fft.h"
#include "cedr/kernels/zip.h"

namespace cedr::kernels {
namespace {

/// In-place 2-D FFT over a rows x cols complex buffer (both powers of two):
/// row transforms followed by column transforms through a gather/scatter
/// column buffer.
Status fft2d_inplace(std::span<cfloat> data, std::size_t rows,
                     std::size_t cols, bool inverse) {
  for (std::size_t r = 0; r < rows; ++r) {
    CEDR_RETURN_IF_ERROR(fft_inplace(data.subspan(r * cols, cols), inverse));
  }
  std::vector<cfloat> column(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) column[r] = data[r * cols + c];
    CEDR_RETURN_IF_ERROR(fft_inplace(column, inverse));
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = column[r];
  }
  return Status::Ok();
}

}  // namespace

std::vector<float> conv1d_direct(std::span<const float> a,
                                 std::span<const float> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<float> out(a.size() + b.size() - 1, 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

StatusOr<std::vector<float>> conv1d_fft(std::span<const float> a,
                                        std::span<const float> b) {
  if (a.empty() || b.empty()) {
    return InvalidArgument("conv1d_fft of empty sequence");
  }
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  std::vector<cfloat> fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = cfloat(a[i], 0.0f);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = cfloat(b[i], 0.0f);
  CEDR_RETURN_IF_ERROR(fft_inplace(fa, /*inverse=*/false));
  CEDR_RETURN_IF_ERROR(fft_inplace(fb, /*inverse=*/false));
  CEDR_RETURN_IF_ERROR(zip(fa, fb, std::span<cfloat>(fa), ZipOp::kMultiply));
  CEDR_RETURN_IF_ERROR(fft_inplace(fa, /*inverse=*/true));
  std::vector<float> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

Status circular_conv_fft(std::span<const cfloat> a, std::span<const cfloat> b,
                         std::span<cfloat> out) {
  if (a.size() != b.size() || a.size() != out.size()) {
    return InvalidArgument("circular_conv_fft size mismatch");
  }
  std::vector<cfloat> fa(a.begin(), a.end());
  std::vector<cfloat> fb(b.begin(), b.end());
  CEDR_RETURN_IF_ERROR(fft_inplace(fa, /*inverse=*/false));
  CEDR_RETURN_IF_ERROR(fft_inplace(fb, /*inverse=*/false));
  CEDR_RETURN_IF_ERROR(zip(fa, fb, std::span<cfloat>(fa), ZipOp::kMultiply));
  CEDR_RETURN_IF_ERROR(fft_inplace(fa, /*inverse=*/true));
  std::copy(fa.begin(), fa.end(), out.begin());
  return Status::Ok();
}

Status conv2d_direct(std::span<const float> image, std::size_t rows,
                     std::size_t cols, std::span<const float> kernel,
                     std::size_t ksize, std::span<float> out) {
  if (image.size() != rows * cols || out.size() != rows * cols) {
    return InvalidArgument("conv2d buffer size mismatch");
  }
  if (ksize == 0 || ksize % 2 == 0 || kernel.size() != ksize * ksize) {
    return InvalidArgument("conv2d kernel must be square with odd size");
  }
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(ksize / 2);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      float acc = 0.0f;
      for (std::ptrdiff_t kr = -half; kr <= half; ++kr) {
        const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r) + kr;
        if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(rows)) continue;
        for (std::ptrdiff_t kc = -half; kc <= half; ++kc) {
          const std::ptrdiff_t cc = static_cast<std::ptrdiff_t>(c) + kc;
          if (cc < 0 || cc >= static_cast<std::ptrdiff_t>(cols)) continue;
          // Convolution (kernel flipped), matching conv1d semantics.
          const float kval =
              kernel[static_cast<std::size_t>(half - kr) * ksize +
                     static_cast<std::size_t>(half - kc)];
          acc += kval * image[static_cast<std::size_t>(rr) * cols +
                              static_cast<std::size_t>(cc)];
        }
      }
      out[r * cols + c] = acc;
    }
  }
  return Status::Ok();
}

Status conv2d_fft(std::span<const float> image, std::size_t rows,
                  std::size_t cols, std::span<const float> kernel,
                  std::size_t ksize, std::span<float> out) {
  if (image.size() != rows * cols || out.size() != rows * cols) {
    return InvalidArgument("conv2d buffer size mismatch");
  }
  if (ksize == 0 || ksize % 2 == 0 || kernel.size() != ksize * ksize) {
    return InvalidArgument("conv2d kernel must be square with odd size");
  }
  // Zero-pad to powers of two covering the full linear convolution.
  const std::size_t prow = next_power_of_two(rows + ksize - 1);
  const std::size_t pcol = next_power_of_two(cols + ksize - 1);
  std::vector<cfloat> fimg(prow * pcol), fker(prow * pcol);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      fimg[r * pcol + c] = cfloat(image[r * cols + c], 0.0f);
    }
  }
  for (std::size_t r = 0; r < ksize; ++r) {
    for (std::size_t c = 0; c < ksize; ++c) {
      fker[r * pcol + c] = cfloat(kernel[r * ksize + c], 0.0f);
    }
  }
  CEDR_RETURN_IF_ERROR(fft2d_inplace(fimg, prow, pcol, /*inverse=*/false));
  CEDR_RETURN_IF_ERROR(fft2d_inplace(fker, prow, pcol, /*inverse=*/false));
  CEDR_RETURN_IF_ERROR(
      zip(fimg, fker, std::span<cfloat>(fimg), ZipOp::kMultiply));
  CEDR_RETURN_IF_ERROR(fft2d_inplace(fimg, prow, pcol, /*inverse=*/true));
  // Crop the "same" window: full conv index (r + half, c + half).
  const std::size_t half = ksize / 2;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[r * cols + c] = fimg[(r + half) * pcol + (c + half)].real();
    }
  }
  return Status::Ok();
}

std::vector<float> gaussian_kernel(std::size_t ksize, double sigma) {
  std::vector<float> kernel(ksize * ksize, 0.0f);
  const double half = static_cast<double>(ksize / 2);
  double total = 0.0;
  for (std::size_t r = 0; r < ksize; ++r) {
    for (std::size_t c = 0; c < ksize; ++c) {
      const double dr = static_cast<double>(r) - half;
      const double dc = static_cast<double>(c) - half;
      const double v = std::exp(-(dr * dr + dc * dc) / (2.0 * sigma * sigma));
      kernel[r * ksize + c] = static_cast<float>(v);
      total += v;
    }
  }
  const float norm = static_cast<float>(1.0 / total);
  for (float& v : kernel) v *= norm;
  return kernel;
}

}  // namespace cedr::kernels
