#include "cedr/kernels/image.h"

#include <algorithm>
#include <cmath>

#include "cedr/common/math_util.h"
#include "cedr/kernels/conv.h"

namespace cedr::kernels {

GrayImage rgb_to_gray(const RgbImage& rgb) {
  GrayImage out(rgb.rows, rgb.cols);
  for (std::size_t i = 0; i < rgb.rows * rgb.cols; ++i) {
    const float r = static_cast<float>(rgb.pixels[3 * i]) / 255.0f;
    const float g = static_cast<float>(rgb.pixels[3 * i + 1]) / 255.0f;
    const float b = static_cast<float>(rgb.pixels[3 * i + 2]) / 255.0f;
    out.pixels[i] = 0.299f * r + 0.587f * g + 0.114f * b;
  }
  return out;
}

StatusOr<GrayImage> gaussian_blur_fft(const GrayImage& in, std::size_t ksize,
                                      double sigma) {
  const std::vector<float> kernel = gaussian_kernel(ksize, sigma);
  GrayImage out(in.rows, in.cols);
  CEDR_RETURN_IF_ERROR(conv2d_fft(in.pixels, in.rows, in.cols, kernel, ksize,
                                  out.pixels));
  return out;
}

GrayImage sobel_magnitude(const GrayImage& in) {
  GrayImage out(in.rows, in.cols);
  if (in.rows < 3 || in.cols < 3) return out;
  for (std::size_t r = 1; r + 1 < in.rows; ++r) {
    for (std::size_t c = 1; c + 1 < in.cols; ++c) {
      const float gx = -in.at(r - 1, c - 1) + in.at(r - 1, c + 1) -
                       2.0f * in.at(r, c - 1) + 2.0f * in.at(r, c + 1) -
                       in.at(r + 1, c - 1) + in.at(r + 1, c + 1);
      const float gy = -in.at(r - 1, c - 1) - 2.0f * in.at(r - 1, c) -
                       in.at(r - 1, c + 1) + in.at(r + 1, c - 1) +
                       2.0f * in.at(r + 1, c) + in.at(r + 1, c + 1);
      out.at(r, c) = std::sqrt(gx * gx + gy * gy);
    }
  }
  return out;
}

GrayImage threshold(const GrayImage& in, float level) {
  GrayImage out(in.rows, in.cols);
  for (std::size_t i = 0; i < in.pixels.size(); ++i) {
    out.pixels[i] = in.pixels[i] >= level ? 1.0f : 0.0f;
  }
  return out;
}

std::vector<HoughLine> hough_lines(const GrayImage& binary,
                                   std::size_t max_lines,
                                   std::uint32_t min_votes) {
  constexpr std::size_t kThetaBins = 180;
  const double diag = std::hypot(static_cast<double>(binary.rows),
                                 static_cast<double>(binary.cols));
  const std::size_t rho_bins = 2 * static_cast<std::size_t>(diag) + 1;
  const double rho_offset = diag;  // map rho in [-diag, diag] to [0, rho_bins)

  std::vector<std::uint32_t> acc(kThetaBins * rho_bins, 0);
  std::vector<double> sins(kThetaBins), coss(kThetaBins);
  for (std::size_t t = 0; t < kThetaBins; ++t) {
    const double theta = kPi * static_cast<double>(t) / kThetaBins;
    sins[t] = std::sin(theta);
    coss[t] = std::cos(theta);
  }

  for (std::size_t r = 0; r < binary.rows; ++r) {
    for (std::size_t c = 0; c < binary.cols; ++c) {
      if (binary.at(r, c) <= 0.0f) continue;
      for (std::size_t t = 0; t < kThetaBins; ++t) {
        const double rho = static_cast<double>(c) * coss[t] +
                           static_cast<double>(r) * sins[t];
        const auto bin = static_cast<std::size_t>(rho + rho_offset + 0.5);
        if (bin < rho_bins) ++acc[t * rho_bins + bin];
      }
    }
  }

  // Peak extraction with non-maximum suppression in a 5x5 (theta, rho) patch.
  std::vector<HoughLine> lines;
  std::vector<std::uint8_t> suppressed(acc.size(), 0);
  while (lines.size() < max_lines) {
    std::uint32_t best = 0;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (!suppressed[i] && acc[i] > best) {
        best = acc[i];
        best_idx = i;
      }
    }
    if (best < min_votes) break;
    const std::size_t t = best_idx / rho_bins;
    const std::size_t b = best_idx % rho_bins;
    lines.push_back(HoughLine{
        .rho = static_cast<double>(b) - rho_offset,
        .theta = kPi * static_cast<double>(t) / kThetaBins,
        .votes = best,
    });
    // Suppress a window around the found peak so near-duplicates are skipped.
    constexpr std::ptrdiff_t kWindowTheta = 8;
    constexpr std::ptrdiff_t kWindowRho = 20;
    for (std::ptrdiff_t dt = -kWindowTheta; dt <= kWindowTheta; ++dt) {
      // theta wraps at pi with rho sign flip; plain clamping is sufficient
      // for suppression purposes.
      const std::ptrdiff_t tt = static_cast<std::ptrdiff_t>(t) + dt;
      if (tt < 0 || tt >= static_cast<std::ptrdiff_t>(kThetaBins)) continue;
      for (std::ptrdiff_t db = -kWindowRho; db <= kWindowRho; ++db) {
        const std::ptrdiff_t bb = static_cast<std::ptrdiff_t>(b) + db;
        if (bb < 0 || bb >= static_cast<std::ptrdiff_t>(rho_bins)) continue;
        suppressed[static_cast<std::size_t>(tt) * rho_bins +
                   static_cast<std::size_t>(bb)] = 1;
      }
    }
  }
  return lines;
}

RgbImage synthesize_road(std::size_t rows, std::size_t cols, RoadTruth& truth,
                         double noise_stddev, Rng& rng) {
  RgbImage img(rows, cols);
  // Road geometry: markings start at the bottom corners' inner third and
  // converge toward a vanishing point slightly above the image center.
  const double bottom = static_cast<double>(rows - 1);
  const double vanish_row = 0.35 * static_cast<double>(rows);
  const double vanish_col = 0.5 * static_cast<double>(cols);
  const double left_bottom = 0.22 * static_cast<double>(cols);
  const double right_bottom = 0.78 * static_cast<double>(cols);

  truth.left_offset = left_bottom;
  truth.left_slope = (vanish_col - left_bottom) / (vanish_row - bottom);
  truth.right_offset = right_bottom;
  truth.right_slope = (vanish_col - right_bottom) / (vanish_row - bottom);

  auto put = [&](std::size_t r, std::size_t c, std::uint8_t red,
                 std::uint8_t green, std::uint8_t blue) {
    std::uint8_t* px = &img.pixels[3 * (r * cols + c)];
    px[0] = red;
    px[1] = green;
    px[2] = blue;
  };

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (static_cast<double>(r) < vanish_row) {
        put(r, c, 110, 150, 200);  // sky
      } else {
        put(r, c, 55, 55, 60);  // asphalt
      }
    }
  }

  const double marking_half_width = std::max(1.5, 0.006 * static_cast<double>(cols));
  for (std::size_t r = static_cast<std::size_t>(vanish_row); r < rows; ++r) {
    const double dy = static_cast<double>(r) - bottom;
    for (const bool left : {true, false}) {
      const double center = left ? left_bottom + truth.left_slope * dy
                                 : right_bottom + truth.right_slope * dy;
      // Perspective: markings get thinner toward the vanishing point.
      const double depth =
          (static_cast<double>(r) - vanish_row) / (bottom - vanish_row);
      const double width = marking_half_width * std::max(0.25, depth);
      const auto lo = static_cast<std::ptrdiff_t>(std::floor(center - width));
      const auto hi = static_cast<std::ptrdiff_t>(std::ceil(center + width));
      for (std::ptrdiff_t c = lo; c <= hi; ++c) {
        if (c < 0 || c >= static_cast<std::ptrdiff_t>(cols)) continue;
        put(r, static_cast<std::size_t>(c), 240, 240, 230);  // paint
      }
    }
  }

  if (noise_stddev > 0.0) {
    for (std::uint8_t& channel : img.pixels) {
      const double noisy =
          static_cast<double>(channel) + rng.normal(0.0, noise_stddev * 255.0);
      channel = static_cast<std::uint8_t>(clamp(noisy, 0.0, 255.0));
    }
  }
  return img;
}

}  // namespace cedr::kernels
