#include "cedr/kernels/wifi.h"

#include <algorithm>
#include <array>
#include <limits>

namespace cedr::kernels {
namespace {

constexpr unsigned kConstraint = 7;
constexpr unsigned kNumStates = 1u << (kConstraint - 1);  // 64
constexpr unsigned kG0 = 0133;  // octal, 0b1011011
constexpr unsigned kG1 = 0171;  // octal, 0b1111001

/// Parity (xor-reduction) of the low 7 bits of v.
inline std::uint8_t parity7(unsigned v) noexcept {
  v &= 0x7f;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<std::uint8_t>(v & 1u);
}

}  // namespace

BitVec scramble(std::span<const std::uint8_t> bits, std::uint8_t seed) {
  BitVec out(bits.size());
  unsigned state = seed & 0x7f;
  if (state == 0) state = 1;  // all-zero LFSR would emit a constant stream
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // x^7 + x^4 + 1: feedback is bit6 ^ bit3 of the shift register.
    const std::uint8_t feedback =
        static_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1u);
    out[i] = static_cast<std::uint8_t>((bits[i] ^ feedback) & 1u);
    state = ((state << 1) | feedback) & 0x7f;
  }
  return out;
}

BitVec convolutional_encode(std::span<const std::uint8_t> bits) {
  BitVec out;
  out.reserve(bits.size() * 2);
  unsigned shift = 0;  // 7-bit window, newest bit in the MSB position
  for (const std::uint8_t bit : bits) {
    shift = ((shift >> 1) | (static_cast<unsigned>(bit & 1u) << 6)) & 0x7f;
    out.push_back(parity7(shift & kG0));
    out.push_back(parity7(shift & kG1));
  }
  return out;
}

StatusOr<BitVec> viterbi_decode(std::span<const std::uint8_t> coded) {
  if (coded.size() % 2 != 0) {
    return InvalidArgument("coded length must be even for rate-1/2 decode");
  }
  const std::size_t steps = coded.size() / 2;
  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;

  // Decoder state s is the encoder shift register minus its oldest bit
  // (s = shift >> 1, 6 bits). A step with `input` forms the 7-bit window
  // w = s | (input << 6), emits parity(w & G0/G1), and moves to s' = w >> 1.
  std::array<unsigned, kNumStates> metric;
  metric.fill(kInf);
  metric[0] = 0;
  std::vector<std::array<std::uint8_t, kNumStates>> decisions(steps);

  for (std::size_t t = 0; t < steps; ++t) {
    const std::uint8_t r0 = coded[2 * t] & 1u;
    const std::uint8_t r1 = coded[2 * t + 1] & 1u;
    std::array<unsigned, kNumStates> next;
    next.fill(kInf);
    auto& decision = decisions[t];
    for (unsigned state = 0; state < kNumStates; ++state) {
      if (metric[state] >= kInf) continue;
      for (unsigned input = 0; input < 2; ++input) {
        // Mirror the encoder: shift register gains `input` in bit 6.
        const unsigned window = (state | (input << 6)) & 0x7f;
        const std::uint8_t e0 = parity7(window & kG0);
        const std::uint8_t e1 = parity7(window & kG1);
        const unsigned branch =
            static_cast<unsigned>(e0 != r0) + static_cast<unsigned>(e1 != r1);
        const unsigned next_state = window >> 1;  // drop the oldest bit
        const unsigned candidate = metric[state] + branch;
        if (candidate < next[next_state]) {
          next[next_state] = candidate;
          // Record the predecessor state's low 6 bits plus the input bit.
          decision[next_state] =
              static_cast<std::uint8_t>((state << 1) | input);
        }
      }
    }
    metric = next;
  }

  // Trace back from the best final state (state 0 for terminated input).
  unsigned state = 0;
  unsigned best = metric[0];
  for (unsigned s = 1; s < kNumStates; ++s) {
    if (metric[s] < best) {
      best = metric[s];
      state = s;
    }
  }
  BitVec decoded(steps);
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint8_t d = decisions[t][state];
    decoded[t] = d & 1u;
    state = (d >> 1) & 0x3f;
  }
  return decoded;
}

StatusOr<BitVec> interleave(std::span<const std::uint8_t> bits,
                            std::size_t depth) {
  if (depth == 0 || bits.size() % depth != 0) {
    return InvalidArgument("interleave length must be a multiple of depth");
  }
  const std::size_t rows = bits.size() / depth;
  BitVec out(bits.size());
  std::size_t w = 0;
  for (std::size_t c = 0; c < depth; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[w++] = bits[r * depth + c];
    }
  }
  return out;
}

StatusOr<BitVec> deinterleave(std::span<const std::uint8_t> bits,
                              std::size_t depth) {
  if (depth == 0 || bits.size() % depth != 0) {
    return InvalidArgument("deinterleave length must be a multiple of depth");
  }
  const std::size_t rows = bits.size() / depth;
  BitVec out(bits.size());
  std::size_t rdx = 0;
  for (std::size_t c = 0; c < depth; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[r * depth + c] = bits[rdx++];
    }
  }
  return out;
}

StatusOr<std::vector<cfloat>> qpsk_modulate(std::span<const std::uint8_t> bits) {
  if (bits.size() % 2 != 0) {
    return InvalidArgument("QPSK needs an even number of bits");
  }
  const float a = 0.70710678f;  // 1/sqrt(2): unit-energy constellation
  std::vector<cfloat> symbols(bits.size() / 2);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    // Gray mapping: bit0 -> I sign, bit1 -> Q sign.
    const float re = bits[2 * i] ? -a : a;
    const float im = bits[2 * i + 1] ? -a : a;
    symbols[i] = cfloat(re, im);
  }
  return symbols;
}

BitVec qpsk_demodulate(std::span<const cfloat> symbols) {
  BitVec bits(symbols.size() * 2);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    bits[2 * i] = symbols[i].real() < 0.0f ? 1 : 0;
    bits[2 * i + 1] = symbols[i].imag() < 0.0f ? 1 : 0;
  }
  return bits;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

StatusOr<std::vector<std::uint8_t>> pack_bits(
    std::span<const std::uint8_t> bits) {
  if (bits.size() % 8 != 0) {
    return InvalidArgument("bit count must be a multiple of 8 to pack");
  }
  std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bytes[i / 8] |= static_cast<std::uint8_t>((bits[i] & 1u) << (i % 8));
  }
  return bytes;
}

BitVec unpack_bytes(std::span<const std::uint8_t> bytes) {
  BitVec bits(bytes.size() * 8);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = (bytes[i / 8] >> (i % 8)) & 1u;
  }
  return bits;
}

}  // namespace cedr::kernels
