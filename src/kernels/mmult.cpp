#include "cedr/kernels/mmult.h"

#include <algorithm>

namespace cedr::kernels {
namespace {

Status check_shapes(std::size_t a, std::size_t b, std::size_t c, std::size_t m,
                    std::size_t k, std::size_t n) {
  if (m == 0 || k == 0 || n == 0) {
    return InvalidArgument("mmult dimensions must be nonzero");
  }
  if (a != m * k || b != k * n || c != m * n) {
    return InvalidArgument("mmult operand sizes inconsistent with shape");
  }
  return Status::Ok();
}

}  // namespace

Status mmult(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n) {
  CEDR_RETURN_IF_ERROR(check_shapes(a.size(), b.size(), c.size(), m, k, n));
  // i-k-j loop order keeps the B row streaming and C row hot.
  std::fill(c.begin(), c.end(), 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      const float* brow = &b[p * n];
      float* crow = &c[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
  return Status::Ok();
}

Status mmult_blocked(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t m, std::size_t k,
                     std::size_t n, std::size_t block) {
  CEDR_RETURN_IF_ERROR(check_shapes(a.size(), b.size(), c.size(), m, k, n));
  if (block == 0) block = 64;
  std::fill(c.begin(), c.end(), 0.0f);
  for (std::size_t ii = 0; ii < m; ii += block) {
    const std::size_t i_end = std::min(ii + block, m);
    for (std::size_t pp = 0; pp < k; pp += block) {
      const std::size_t p_end = std::min(pp + block, k);
      for (std::size_t jj = 0; jj < n; jj += block) {
        const std::size_t j_end = std::min(jj + block, n);
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t p = pp; p < p_end; ++p) {
            const float aip = a[i * k + p];
            const float* brow = &b[p * n];
            float* crow = &c[i * n];
            for (std::size_t j = jj; j < j_end; ++j) crow[j] += aip * brow[j];
          }
        }
      }
    }
  }
  return Status::Ok();
}

void transpose(std::span<const float> in, std::span<float> out, std::size_t m,
               std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out[j * m + i] = in[i * n + j];
    }
  }
}

}  // namespace cedr::kernels
