#include "cedr/apps/lane_detection.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cedr/cedr.h"
#include "cedr/kernels/conv.h"
#include "cedr/kernels/fft.h"

namespace cedr::apps {
namespace {

/// Batch of same-length 1-D transforms over contiguous rows of `data`
/// (count rows of length len). Issues CEDR_FFT/CEDR_IFFT per row, all in
/// flight at once when nonblocking.
Status transform_rows(cfloat* data, std::size_t count, std::size_t len,
                      bool inverse, bool nonblocking, std::size_t& counter) {
  counter += count;
  if (nonblocking) {
    std::vector<cedr_handle_t> handles(count);
    for (std::size_t r = 0; r < count; ++r) {
      cfloat* row = data + r * len;
      handles[r] = inverse ? CEDR_IFFT_NB(row, row, len)
                           : CEDR_FFT_NB(row, row, len);
      if (handles[r] == nullptr) return Internal("CEDR FFT_NB rejected");
    }
    return CEDR_BARRIER(handles.data(), handles.size());
  }
  for (std::size_t r = 0; r < count; ++r) {
    cfloat* row = data + r * len;
    CEDR_RETURN_IF_ERROR(inverse ? CEDR_IFFT(row, row, len)
                                 : CEDR_FFT(row, row, len));
  }
  return Status::Ok();
}

/// Element-wise product of `count` rows against the kernel spectrum rows.
Status zip_rows(cfloat* data, const cfloat* kernel_spectrum, std::size_t count,
                std::size_t len, bool nonblocking) {
  if (nonblocking) {
    std::vector<cedr_handle_t> handles(count);
    for (std::size_t r = 0; r < count; ++r) {
      cfloat* row = data + r * len;
      handles[r] = CEDR_ZIP_NB(row, kernel_spectrum + r * len, row, len,
                               CedrZipOp::kMultiply);
      if (handles[r] == nullptr) return Internal("CEDR_ZIP_NB rejected");
    }
    return CEDR_BARRIER(handles.data(), handles.size());
  }
  for (std::size_t r = 0; r < count; ++r) {
    cfloat* row = data + r * len;
    CEDR_RETURN_IF_ERROR(CEDR_ZIP(row, kernel_spectrum + r * len, row, len,
                                  CedrZipOp::kMultiply));
  }
  return Status::Ok();
}

void transpose_complex(const std::vector<cfloat>& in, std::vector<cfloat>& out,
                       std::size_t rows, std::size_t cols) {
  out.resize(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[c * rows + r] = in[r * cols + c];
    }
  }
}

/// dx/dy slope of a Hough line (y = row grows downward).
double hough_slope(const kernels::HoughLine& line) noexcept {
  const double c = std::cos(line.theta);
  if (std::abs(c) < 1e-9) return 0.0;  // horizontal line: slope ~ 0 in dx/dy
  return -std::sin(line.theta) / c;
}

}  // namespace

StatusOr<kernels::GrayImage> gaussian_blur_cedr(const kernels::GrayImage& in,
                                                std::size_t ksize, double sigma,
                                                bool nonblocking,
                                                std::size_t& fft_calls,
                                                std::size_t& ifft_calls) {
  if (ksize == 0 || ksize % 2 == 0) {
    return InvalidArgument("Gaussian kernel size must be odd");
  }
  const std::size_t rows = in.rows;
  const std::size_t cols = in.cols;
  const std::size_t prow = next_power_of_two(rows + ksize - 1);
  const std::size_t pcol = next_power_of_two(cols + ksize - 1);
  const std::size_t rows_eff = rows + ksize - 1;  // nonzero padded rows

  // Padded image, row-major prow x pcol.
  std::vector<cfloat> rowbuf(prow * pcol, cfloat(0.0f, 0.0f));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      rowbuf[r * pcol + c] = cfloat(in.at(r, c), 0.0f);
    }
  }

  // Kernel spectrum, precomputed once per frame on the CPU and stored in
  // the transposed (column-major) layout the ZIP stage consumes.
  const std::vector<float> kern = kernels::gaussian_kernel(ksize, sigma);
  std::vector<cfloat> kbuf(prow * pcol, cfloat(0.0f, 0.0f));
  for (std::size_t r = 0; r < ksize; ++r) {
    for (std::size_t c = 0; c < ksize; ++c) {
      kbuf[r * pcol + c] = cfloat(kern[r * ksize + c], 0.0f);
    }
  }
  for (std::size_t r = 0; r < ksize; ++r) {
    CEDR_RETURN_IF_ERROR(
        kernels::fft_inplace({&kbuf[r * pcol], pcol}, /*inverse=*/false));
  }
  std::vector<cfloat> kbuf_t;
  transpose_complex(kbuf, kbuf_t, prow, pcol);
  for (std::size_t c = 0; c < pcol; ++c) {
    CEDR_RETURN_IF_ERROR(
        kernels::fft_inplace({&kbuf_t[c * prow], prow}, /*inverse=*/false));
  }

  // Forward: row transforms (zero rows skipped — their spectra are zero),
  // corner turn, column transforms.
  CEDR_RETURN_IF_ERROR(transform_rows(rowbuf.data(), rows_eff, pcol,
                                      /*inverse=*/false, nonblocking,
                                      fft_calls));
  std::vector<cfloat> colbuf;
  transpose_complex(rowbuf, colbuf, prow, pcol);
  CEDR_RETURN_IF_ERROR(transform_rows(colbuf.data(), pcol, prow,
                                      /*inverse=*/false, nonblocking,
                                      fft_calls));

  // Pointwise product with the kernel spectrum (the ZIP stage).
  CEDR_RETURN_IF_ERROR(
      zip_rows(colbuf.data(), kbuf_t.data(), pcol, prow, nonblocking));

  // Inverse: column transforms, corner turn, row transforms over the crop.
  CEDR_RETURN_IF_ERROR(transform_rows(colbuf.data(), pcol, prow,
                                      /*inverse=*/true, nonblocking,
                                      ifft_calls));
  transpose_complex(colbuf, rowbuf, pcol, prow);
  CEDR_RETURN_IF_ERROR(transform_rows(rowbuf.data(), rows_eff, pcol,
                                      /*inverse=*/true, nonblocking,
                                      ifft_calls));

  // Crop the "same" window (offset by the kernel half-width).
  const std::size_t half = ksize / 2;
  kernels::GrayImage out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out.at(r, c) = rowbuf[(r + half) * pcol + (c + half)].real();
    }
  }
  return out;
}

StatusOr<LaneDetectionResult> run_lane_detection(
    const LaneDetectionConfig& cfg) {
  Rng rng(cfg.seed);
  LaneDetectionResult result;
  const kernels::RgbImage frame = kernels::synthesize_road(
      cfg.rows, cfg.cols, result.truth, cfg.noise_stddev, rng);

  // CPU glue: luma conversion.
  kernels::GrayImage gray = kernels::rgb_to_gray(frame);

  // Convolution-intensive core: repeated frequency-domain smoothing.
  for (std::size_t pass = 0; pass < cfg.smoothing_passes; ++pass) {
    auto blurred =
        gaussian_blur_cedr(gray, cfg.gaussian_ksize, cfg.gaussian_sigma,
                           cfg.nonblocking, result.fft_calls,
                           result.ifft_calls);
    if (!blurred.ok()) return blurred.status();
    gray = *std::move(blurred);
  }

  // CPU glue: edges and lane-line extraction.
  const kernels::GrayImage edges = kernels::sobel_magnitude(gray);
  const kernels::GrayImage binary =
      kernels::threshold(edges, cfg.edge_threshold);
  const std::vector<kernels::HoughLine> lines =
      kernels::hough_lines(binary, /*max_lines=*/8, /*min_votes=*/40);

  for (const kernels::HoughLine& line : lines) {
    const double slope = hough_slope(line);
    if (std::abs(slope) < 0.05 || std::abs(slope) > 8.0) continue;
    if (slope < 0.0 && !result.lanes.left) {
      result.lanes.left = line;
    } else if (slope > 0.0 && !result.lanes.right) {
      result.lanes.right = line;
    }
  }
  std::size_t edge_pixels = 0;
  for (const float v : binary.pixels) edge_pixels += v > 0.0f ? 1 : 0;
  result.lanes.edge_pixels = edge_pixels;

  result.both_lanes_found =
      result.lanes.left.has_value() && result.lanes.right.has_value();
  if (result.lanes.left) {
    result.left_slope_error =
        std::abs(hough_slope(*result.lanes.left) - result.truth.left_slope);
  }
  if (result.lanes.right) {
    result.right_slope_error =
        std::abs(hough_slope(*result.lanes.right) - result.truth.right_slope);
  }
  return result;
}

}  // namespace cedr::apps
