#include "cedr/apps/executable_dag.h"

#include "cedr/apps/dag_template.h"

namespace cedr::apps {

Status BufferPool::add_cfloat(const std::string& name, std::size_t elems) {
  if (name.empty() || elems == 0) {
    return InvalidArgument("buffer needs a name and a nonzero size");
  }
  if (cfloats_.count(name) != 0 || floats_.count(name) != 0) {
    return AlreadyExists("duplicate buffer name: " + name);
  }
  cfloats_.emplace(name, std::vector<cfloat>(elems));
  return Status::Ok();
}

Status BufferPool::add_float(const std::string& name, std::size_t elems) {
  if (name.empty() || elems == 0) {
    return InvalidArgument("buffer needs a name and a nonzero size");
  }
  if (cfloats_.count(name) != 0 || floats_.count(name) != 0) {
    return AlreadyExists("duplicate buffer name: " + name);
  }
  floats_.emplace(name, std::vector<float>(elems));
  return Status::Ok();
}

std::vector<cfloat>* BufferPool::cfloat_buffer(const std::string& name) {
  const auto it = cfloats_.find(name);
  return it == cfloats_.end() ? nullptr : &it->second;
}

std::vector<float>* BufferPool::float_buffer(const std::string& name) {
  const auto it = floats_.find(name);
  return it == floats_.end() ? nullptr : &it->second;
}

StatusOr<ExecutableDag> instantiate_dag(const json::Value& doc) {
  // One-off compile + instantiate (callers that resubmit the same document
  // should hold a DagTemplate — or go through TemplateCache — instead).
  auto tmpl = DagTemplate::compile(doc);
  if (!tmpl.ok()) return tmpl.status();
  DagTemplate::Instance inst = (*tmpl)->instantiate();

  // Legacy contract: the returned descriptor is private to this instance
  // and carries the bound implementations inside its tasks, so holding the
  // descriptor alone (as submit_dag does) keeps the buffers alive.
  auto app = std::make_shared<task::AppDescriptor>(*inst.descriptor);
  const auto& tasks = app->graph.tasks();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    app->graph.get(tasks[i].id).impls = std::move(inst.impls[i]);
  }
  return ExecutableDag{.descriptor = std::move(app),
                       .buffers = std::move(inst.buffers)};
}

StatusOr<ExecutableDag> load_executable_dag(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc.ok()) return doc.status();
  return instantiate_dag(*doc);
}

}  // namespace cedr::apps
