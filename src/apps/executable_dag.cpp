#include "cedr/apps/executable_dag.h"

#include "cedr/api/impls.h"
#include "cedr/task/dag_loader.h"

namespace cedr::apps {

Status BufferPool::add_cfloat(const std::string& name, std::size_t elems) {
  if (name.empty() || elems == 0) {
    return InvalidArgument("buffer needs a name and a nonzero size");
  }
  if (cfloats_.count(name) != 0 || floats_.count(name) != 0) {
    return AlreadyExists("duplicate buffer name: " + name);
  }
  cfloats_.emplace(name, std::vector<cfloat>(elems));
  return Status::Ok();
}

Status BufferPool::add_float(const std::string& name, std::size_t elems) {
  if (name.empty() || elems == 0) {
    return InvalidArgument("buffer needs a name and a nonzero size");
  }
  if (cfloats_.count(name) != 0 || floats_.count(name) != 0) {
    return AlreadyExists("duplicate buffer name: " + name);
  }
  floats_.emplace(name, std::vector<float>(elems));
  return Status::Ok();
}

std::vector<cfloat>* BufferPool::cfloat_buffer(const std::string& name) {
  const auto it = cfloats_.find(name);
  return it == cfloats_.end() ? nullptr : &it->second;
}

std::vector<float>* BufferPool::float_buffer(const std::string& name) {
  const auto it = floats_.find(name);
  return it == floats_.end() ? nullptr : &it->second;
}

namespace {

/// Looks up the named cfloat buffer referenced by args[key].
StatusOr<std::vector<cfloat>*> cfloat_arg(BufferPool& pool,
                                          const json::Value& args,
                                          const std::string& key,
                                          const std::string& task_name) {
  const std::string name = args.get_string(key, "");
  if (name.empty()) {
    return InvalidArgument("task " + task_name + " missing arg '" + key + "'");
  }
  std::vector<cfloat>* buffer = pool.cfloat_buffer(name);
  if (buffer == nullptr) {
    return NotFound("task " + task_name + ": no cfloat buffer '" + name + "'");
  }
  return buffer;
}

StatusOr<std::vector<float>*> float_arg(BufferPool& pool,
                                        const json::Value& args,
                                        const std::string& key,
                                        const std::string& task_name) {
  const std::string name = args.get_string(key, "");
  if (name.empty()) {
    return InvalidArgument("task " + task_name + " missing arg '" + key + "'");
  }
  std::vector<float>* buffer = pool.float_buffer(name);
  if (buffer == nullptr) {
    return NotFound("task " + task_name + ": no float buffer '" + name + "'");
  }
  return buffer;
}

/// Binds implementations and cost metadata for one parsed task.
Status bind_task(task::Task& t, const json::Value& row,
                 const std::shared_ptr<BufferPool>& pool) {
  const json::Value* args = row.find("args");
  const json::Value empty_args = json::Object{};
  if (args == nullptr) args = &empty_args;
  if (!args->is_object()) {
    return InvalidArgument("task " + t.name + " 'args' must be an object");
  }

  switch (t.kernel) {
    case platform::KernelId::kFft:
    case platform::KernelId::kIfft: {
      auto in = cfloat_arg(*pool, *args, "in", t.name);
      if (!in.ok()) return in.status();
      auto out = cfloat_arg(*pool, *args, "out", t.name);
      if (!out.ok()) return out.status();
      if ((*in)->size() != (*out)->size()) {
        return InvalidArgument("task " + t.name + ": in/out size mismatch");
      }
      const std::size_t n = (*out)->size();
      if (!is_power_of_two(n)) {
        return InvalidArgument("task " + t.name +
                               ": FFT buffers must be power-of-two sized");
      }
      if (t.problem_size == 0) t.problem_size = n;
      if (t.data_bytes == 0) t.data_bytes = 2 * n * sizeof(cfloat);
      // The lambdas capture the pool shared_ptr: buffers live as long as
      // any task implementation does.
      t.impls = api::make_fft_impls((*in)->data(), (*out)->data(), n,
                                    t.kernel == platform::KernelId::kIfft);
      auto keep_alive = pool;
      t.impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
          [fn = t.impls[static_cast<std::size_t>(platform::PeClass::kCpu)],
           keep_alive](task::ExecContext& ctx) { return fn(ctx); };
      return Status::Ok();
    }
    case platform::KernelId::kZip: {
      auto a = cfloat_arg(*pool, *args, "a", t.name);
      if (!a.ok()) return a.status();
      auto b = cfloat_arg(*pool, *args, "b", t.name);
      if (!b.ok()) return b.status();
      auto out = cfloat_arg(*pool, *args, "out", t.name);
      if (!out.ok()) return out.status();
      if ((*a)->size() != (*b)->size() || (*a)->size() != (*out)->size()) {
        return InvalidArgument("task " + t.name + ": zip size mismatch");
      }
      const auto op = args->get_int("op", 0);
      if (op < 0 || op > 3) {
        return InvalidArgument("task " + t.name + ": zip op out of range");
      }
      const std::size_t n = (*out)->size();
      if (t.problem_size == 0) t.problem_size = n;
      if (t.data_bytes == 0) t.data_bytes = 3 * n * sizeof(cfloat);
      t.impls = api::make_zip_impls((*a)->data(), (*b)->data(), (*out)->data(),
                                    n, static_cast<kernels::ZipOp>(op));
      auto keep_alive = pool;
      t.impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
          [fn = t.impls[static_cast<std::size_t>(platform::PeClass::kCpu)],
           keep_alive](task::ExecContext& ctx) { return fn(ctx); };
      return Status::Ok();
    }
    case platform::KernelId::kMmult: {
      auto a = float_arg(*pool, *args, "a", t.name);
      if (!a.ok()) return a.status();
      auto b = float_arg(*pool, *args, "b", t.name);
      if (!b.ok()) return b.status();
      auto c = float_arg(*pool, *args, "c", t.name);
      if (!c.ok()) return c.status();
      const auto m = static_cast<std::size_t>(args->get_int("m", 0));
      const auto k = static_cast<std::size_t>(args->get_int("k", 0));
      const auto n = static_cast<std::size_t>(args->get_int("n", 0));
      if (m == 0 || k == 0 || n == 0) {
        return InvalidArgument("task " + t.name + ": MMULT needs m/k/n");
      }
      if ((*a)->size() != m * k || (*b)->size() != k * n ||
          (*c)->size() != m * n) {
        return InvalidArgument("task " + t.name +
                               ": MMULT buffer sizes inconsistent");
      }
      if (t.problem_size == 0) t.problem_size = m * k * n;
      if (t.data_bytes == 0) {
        t.data_bytes = (m * k + k * n + m * n) * sizeof(float);
      }
      t.impls =
          api::make_mmult_impls((*a)->data(), (*b)->data(), (*c)->data(), m,
                                k, n);
      auto keep_alive = pool;
      t.impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
          [fn = t.impls[static_cast<std::size_t>(platform::PeClass::kCpu)],
           keep_alive](task::ExecContext& ctx) { return fn(ctx); };
      return Status::Ok();
    }
    case platform::KernelId::kGeneric: {
      const auto work_ns = static_cast<std::size_t>(
          args->get_int("work_ns",
                        static_cast<std::int64_t>(t.problem_size)));
      if (t.problem_size == 0) t.problem_size = work_ns;
      t.impls = api::make_generic_impls({}, work_ns);
      return Status::Ok();
    }
    default:
      return Unimplemented("no standard binding for kernel " +
                           std::string(platform::kernel_name(t.kernel)));
  }
}

}  // namespace

StatusOr<ExecutableDag> instantiate_dag(const json::Value& doc) {
  // Structure first (reuses the loader's validation).
  auto parsed = task::app_from_json(doc);
  if (!parsed.ok()) return parsed.status();

  auto pool = std::make_shared<BufferPool>();
  if (const json::Value* buffers = doc.find("buffers")) {
    if (!buffers->is_object()) {
      return InvalidArgument("'buffers' must be an object");
    }
    for (const auto& [name, spec] : buffers->as_object()) {
      const auto elems = static_cast<std::size_t>(spec.get_int("elems", 0));
      const std::string kind = spec.get_string("kind", "cfloat");
      if (kind == "cfloat") {
        CEDR_RETURN_IF_ERROR(pool->add_cfloat(name, elems));
      } else if (kind == "float") {
        CEDR_RETURN_IF_ERROR(pool->add_float(name, elems));
      } else {
        return InvalidArgument("buffer '" + name + "': unknown kind " + kind);
      }
    }
  }

  // Re-walk the task rows to bind implementations (rows and parsed tasks
  // share ids; app_from_json validated the correspondence).
  auto app = std::make_shared<task::AppDescriptor>(std::move(*parsed));
  for (const json::Value& row : doc.find("tasks")->as_array()) {
    const auto id = static_cast<task::TaskId>(row.find("id")->as_int());
    CEDR_RETURN_IF_ERROR(bind_task(app->graph.get(id), row, pool));
  }
  return ExecutableDag{.descriptor = std::move(app), .buffers = pool};
}

StatusOr<ExecutableDag> load_executable_dag(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc.ok()) return doc.status();
  return instantiate_dag(*doc);
}

}  // namespace cedr::apps
