#include "cedr/apps/pulse_doppler.h"

#include <cmath>
#include <vector>

#include "cedr/cedr.h"
#include "cedr/kernels/fft.h"

namespace cedr::apps {

StatusOr<PulseDopplerResult> run_pulse_doppler(const PulseDopplerConfig& cfg) {
  const std::size_t n = cfg.params.samples_per_pulse;
  const std::size_t pulses = cfg.params.num_pulses;
  if (!is_power_of_two(n) || !is_power_of_two(pulses)) {
    return InvalidArgument("pulse/sample counts must be powers of two");
  }

  // Synthesize the dwell with known ground truth (no radar hardware here).
  Rng rng(cfg.seed);
  kernels::RadarTarget truth = cfg.truth;
  truth.velocity_mps = truth.doppler_hz * cfg.params.speed_of_light /
                       (2.0 * cfg.params.carrier_hz);
  const std::vector<cfloat> chirp =
      kernels::make_chirp(n / 4, 0.4 * cfg.params.sample_rate_hz,
                          cfg.params.sample_rate_hz);
  const std::vector<cfloat> cube =
      kernels::synthesize_echo(cfg.params, chirp, truth, cfg.noise_stddev, rng);

  // Reference spectrum of the zero-padded chirp (transmitted waveform); the
  // application computes it once per dwell with one more CEDR_FFT.
  std::vector<cfloat> chirp_padded(n);
  std::copy(chirp.begin(), chirp.end(), chirp_padded.begin());
  std::vector<cfloat> chirp_freq(n);
  CEDR_RETURN_IF_ERROR(CEDR_FFT(chirp_padded.data(), chirp_freq.data(), n));

  // Range compression: FFT -> conj ZIP -> IFFT per pulse.
  std::vector<cfloat> pulse_freq(pulses * n);
  std::vector<cfloat> compressed(pulses * n);
  if (cfg.nonblocking) {
    // Overlap every pulse's chain: issue stage k for all pulses, barrier,
    // then stage k+1 — each stage is fully parallel across pulses.
    std::vector<cedr_handle_t> handles(pulses);
    for (std::size_t p = 0; p < pulses; ++p) {
      handles[p] = CEDR_FFT_NB(&cube[p * n], &pulse_freq[p * n], n);
      if (handles[p] == nullptr) return Internal("CEDR_FFT_NB rejected");
    }
    CEDR_RETURN_IF_ERROR(CEDR_BARRIER(handles.data(), handles.size()));
    for (std::size_t p = 0; p < pulses; ++p) {
      handles[p] = CEDR_ZIP_NB(&pulse_freq[p * n], chirp_freq.data(),
                               &pulse_freq[p * n], n,
                               CedrZipOp::kConjugateMultiply);
      if (handles[p] == nullptr) return Internal("CEDR_ZIP_NB rejected");
    }
    CEDR_RETURN_IF_ERROR(CEDR_BARRIER(handles.data(), handles.size()));
    for (std::size_t p = 0; p < pulses; ++p) {
      handles[p] = CEDR_IFFT_NB(&pulse_freq[p * n], &compressed[p * n], n);
      if (handles[p] == nullptr) return Internal("CEDR_IFFT_NB rejected");
    }
    CEDR_RETURN_IF_ERROR(CEDR_BARRIER(handles.data(), handles.size()));
  } else {
    for (std::size_t p = 0; p < pulses; ++p) {
      CEDR_RETURN_IF_ERROR(CEDR_FFT(&cube[p * n], &pulse_freq[p * n], n));
      CEDR_RETURN_IF_ERROR(CEDR_ZIP(&pulse_freq[p * n], chirp_freq.data(),
                                    &pulse_freq[p * n], n,
                                    CedrZipOp::kConjugateMultiply));
      CEDR_RETURN_IF_ERROR(CEDR_IFFT(&pulse_freq[p * n], &compressed[p * n], n));
    }
  }

  // Corner turn (CPU glue), then Doppler FFT per range bin.
  std::vector<cfloat> slow_time(pulses * n);  // [range][pulse]
  for (std::size_t p = 0; p < pulses; ++p) {
    for (std::size_t r = 0; r < n; ++r) {
      slow_time[r * pulses + p] = compressed[p * n + r];
    }
  }
  std::vector<cfloat> doppler(pulses * n);
  if (cfg.nonblocking) {
    std::vector<cedr_handle_t> handles(n);
    for (std::size_t r = 0; r < n; ++r) {
      handles[r] =
          CEDR_FFT_NB(&slow_time[r * pulses], &doppler[r * pulses], pulses);
      if (handles[r] == nullptr) return Internal("CEDR_FFT_NB rejected");
    }
    CEDR_RETURN_IF_ERROR(CEDR_BARRIER(handles.data(), handles.size()));
  } else {
    for (std::size_t r = 0; r < n; ++r) {
      CEDR_RETURN_IF_ERROR(
          CEDR_FFT(&slow_time[r * pulses], &doppler[r * pulses], pulses));
    }
  }

  // Back to [doppler][range] layout for the peak search.
  std::vector<cfloat> range_doppler(pulses * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t d = 0; d < pulses; ++d) {
      range_doppler[d * n + r] = doppler[r * pulses + d];
    }
  }

  PulseDopplerResult result;
  result.truth = truth;
  result.estimate = kernels::find_peak(range_doppler, cfg.params);
  result.velocity_error_mps =
      std::abs(result.estimate.velocity_mps - truth.velocity_mps);
  // Matched filter peaks where the echo *ends* relative to pulse start; the
  // chirp reference is aligned to its first sample, so the peak lands on
  // the target's delay bin.
  result.range_correct =
      std::llabs(static_cast<long long>(result.estimate.range_bin) -
                 static_cast<long long>(truth.range_bin)) <= 1;
  return result;
}

}  // namespace cedr::apps
