#include "cedr/apps/wifi_tx.h"

#include <algorithm>

#include "cedr/cedr.h"
#include "cedr/common/rng.h"
#include "cedr/kernels/wifi.h"

namespace cedr::apps {
namespace {

constexpr std::size_t kTailBits = 6;        // flushes the K=7 encoder
constexpr std::size_t kInterleaveDepth = 7; // divides (64+6)*2 = 140

/// CPU glue of one packet: payload bits -> frequency-domain QPSK grid.
StatusOr<std::vector<cfloat>> build_packet_grid(
    const std::vector<std::uint8_t>& payload, const WifiTxConfig& cfg) {
  using namespace cedr::kernels;
  // Scramble, append tail zeros, convolutionally encode (the FEC), then
  // interleave to spread burst errors across subcarriers.
  BitVec scrambled = scramble(payload, cfg.scrambler_seed);
  scrambled.insert(scrambled.end(), kTailBits, 0);
  const BitVec coded = convolutional_encode(scrambled);
  auto interleaved = interleave(coded, kInterleaveDepth);
  if (!interleaved.ok()) return interleaved.status();
  auto symbols = qpsk_modulate(*interleaved);
  if (!symbols.ok()) return symbols.status();
  if (symbols->size() > cfg.ofdm_size) {
    return InvalidArgument("payload does not fit the OFDM symbol");
  }
  // Map onto the first subcarriers; the rest stay null (guard band).
  std::vector<cfloat> grid(cfg.ofdm_size, cfloat(0.0f, 0.0f));
  std::copy(symbols->begin(), symbols->end(), grid.begin());
  return grid;
}

}  // namespace

StatusOr<WifiTxResult> run_wifi_tx(const WifiTxConfig& cfg) {
  if (!is_power_of_two(cfg.ofdm_size)) {
    return InvalidArgument("OFDM size must be a power of two");
  }
  if (cfg.payload_bits % 8 != 0 || cfg.payload_bits == 0) {
    return InvalidArgument("payload bits must be a positive multiple of 8");
  }

  Rng rng(cfg.seed);
  WifiTxResult result;
  result.symbols.resize(cfg.num_packets);
  result.payloads.resize(cfg.num_packets);
  std::vector<std::vector<cfloat>> grids(cfg.num_packets);

  // CPU glue for every packet first; in non-blocking mode all IFFTs are
  // then issued at once, which is the parallelism the paper's non-blocking
  // APIs exist to expose.
  for (std::size_t p = 0; p < cfg.num_packets; ++p) {
    std::vector<std::uint8_t> payload(cfg.payload_bits);
    for (auto& bit : payload) bit = static_cast<std::uint8_t>(rng.next_below(2));
    result.payloads[p] = payload;
    auto grid = build_packet_grid(payload, cfg);
    if (!grid.ok()) return grid.status();
    grids[p] = *std::move(grid);
    result.symbols[p].resize(cfg.ofdm_size);
  }

  if (cfg.nonblocking) {
    std::vector<cedr_handle_t> handles(cfg.num_packets);
    for (std::size_t p = 0; p < cfg.num_packets; ++p) {
      handles[p] = CEDR_IFFT_NB(grids[p].data(), result.symbols[p].data(),
                                cfg.ofdm_size);
      if (handles[p] == nullptr) return Internal("CEDR_IFFT_NB rejected");
    }
    CEDR_RETURN_IF_ERROR(CEDR_BARRIER(handles.data(), handles.size()));
  } else {
    for (std::size_t p = 0; p < cfg.num_packets; ++p) {
      CEDR_RETURN_IF_ERROR(CEDR_IFFT(grids[p].data(), result.symbols[p].data(),
                                     cfg.ofdm_size));
    }
  }
  return result;
}

StatusOr<std::vector<std::uint8_t>> decode_wifi_symbol(
    const std::vector<cfloat>& symbol, const WifiTxConfig& cfg) {
  using namespace cedr::kernels;
  if (symbol.size() != cfg.ofdm_size) {
    return InvalidArgument("symbol length mismatch");
  }
  // FFT back to the subcarrier grid (the receiver side of the OFDM link).
  std::vector<cfloat> grid(cfg.ofdm_size);
  CEDR_RETURN_IF_ERROR(CEDR_FFT(symbol.data(), grid.data(), cfg.ofdm_size));
  const std::size_t coded_bits = (cfg.payload_bits + kTailBits) * 2;
  const std::size_t used_symbols = coded_bits / 2;
  const BitVec bits =
      qpsk_demodulate(std::span<const cfloat>(grid.data(), used_symbols));
  auto deinterleaved = deinterleave(bits, kInterleaveDepth);
  if (!deinterleaved.ok()) return deinterleaved.status();
  auto decoded = viterbi_decode(*deinterleaved);
  if (!decoded.ok()) return decoded.status();
  decoded->resize(cfg.payload_bits);  // drop tail bits
  // The 802.11 scrambler is self-inverse under the same seed.
  return scramble(*decoded, cfg.scrambler_seed);
}

}  // namespace cedr::apps
