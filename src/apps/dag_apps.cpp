#include "cedr/apps/dag_apps.h"

#include <cmath>

#include "cedr/api/impls.h"
#include "cedr/kernels/fft.h"
#include "cedr/kernels/wifi.h"

namespace cedr::apps {
namespace {

/// Mutable working set of one Pulse Doppler DAG instance; every task
/// implementation closes over one shared instance of this.
struct PdState {
  PulseDopplerConfig cfg;
  kernels::RadarTarget truth;
  std::vector<cfloat> chirp_padded;
  std::vector<cfloat> chirp_freq;
  std::vector<cfloat> cube;        // [pulse][sample]
  std::vector<cfloat> pulse_freq;  // [pulse][sample]
  std::vector<cfloat> compressed;  // [pulse][sample]
  std::vector<cfloat> slow_time;   // [range][pulse]
  std::vector<cfloat> doppler;     // [range][pulse]
  PulseDopplerResult result;
};

}  // namespace

StatusOr<PulseDopplerDag> make_pulse_doppler_dag(
    const PulseDopplerConfig& cfg) {
  const std::size_t n = cfg.params.samples_per_pulse;
  const std::size_t pulses = cfg.params.num_pulses;
  if (!is_power_of_two(n) || !is_power_of_two(pulses)) {
    return InvalidArgument("pulse/sample counts must be powers of two");
  }

  auto state = std::make_shared<PdState>();
  state->cfg = cfg;
  state->truth = cfg.truth;
  state->truth.velocity_mps = state->truth.doppler_hz *
                              cfg.params.speed_of_light /
                              (2.0 * cfg.params.carrier_hz);
  Rng rng(cfg.seed);
  const std::vector<cfloat> chirp =
      kernels::make_chirp(n / 4, 0.4 * cfg.params.sample_rate_hz,
                          cfg.params.sample_rate_hz);
  state->cube = kernels::synthesize_echo(cfg.params, chirp, state->truth,
                                         cfg.noise_stddev, rng);
  state->chirp_padded.assign(n, cfloat(0.0f, 0.0f));
  std::copy(chirp.begin(), chirp.end(), state->chirp_padded.begin());
  state->chirp_freq.resize(n);
  state->pulse_freq.resize(pulses * n);
  state->compressed.resize(pulses * n);
  state->slow_time.resize(pulses * n);
  state->doppler.resize(pulses * n);

  auto app = std::make_shared<task::AppDescriptor>();
  app->name = "pulse_doppler_dag";
  task::TaskId next_id = 0;

  auto add_node = [&](std::string name, platform::KernelId kernel,
                      std::size_t size, std::size_t bytes,
                      api::ImplArray impls) {
    task::Task t;
    t.id = next_id++;
    t.name = std::move(name);
    t.kernel = kernel;
    t.problem_size = size;
    t.data_bytes = bytes;
    t.impls = std::move(impls);
    const Status s = app->graph.add_task(std::move(t));
    (void)s;  // ids are sequential, duplicates impossible
    return next_id - 1;
  };

  // Node 0: reference chirp spectrum.
  const task::TaskId chirp_fft = add_node(
      "chirp_fft", platform::KernelId::kFft, n, 2 * n * sizeof(cfloat),
      api::make_fft_impls(state->chirp_padded.data(), state->chirp_freq.data(),
                          n, /*inverse=*/false));

  // Range compression chains, one per pulse.
  std::vector<task::TaskId> ifft_nodes;
  ifft_nodes.reserve(pulses);
  for (std::size_t p = 0; p < pulses; ++p) {
    const cfloat* in = &state->cube[p * n];
    cfloat* freq = &state->pulse_freq[p * n];
    cfloat* out = &state->compressed[p * n];
    const task::TaskId fft_p = add_node(
        "range_fft_" + std::to_string(p), platform::KernelId::kFft, n,
        2 * n * sizeof(cfloat),
        api::make_fft_impls(in, freq, n, /*inverse=*/false));
    const task::TaskId zip_p = add_node(
        "match_zip_" + std::to_string(p), platform::KernelId::kZip, n,
        3 * n * sizeof(cfloat),
        api::make_zip_impls(freq, state->chirp_freq.data(), freq, n,
                            kernels::ZipOp::kConjugateMultiply));
    const task::TaskId ifft_p = add_node(
        "range_ifft_" + std::to_string(p), platform::KernelId::kIfft, n,
        2 * n * sizeof(cfloat),
        api::make_fft_impls(freq, out, n, /*inverse=*/true));
    CEDR_RETURN_IF_ERROR(app->graph.add_edge(fft_p, zip_p));
    CEDR_RETURN_IF_ERROR(app->graph.add_edge(chirp_fft, zip_p));
    CEDR_RETURN_IF_ERROR(app->graph.add_edge(zip_p, ifft_p));
    ifft_nodes.push_back(ifft_p);
  }

  // Corner turn (CPU glue): [pulse][range] -> [range][pulse].
  const task::TaskId corner = add_node(
      "corner_turn", platform::KernelId::kGeneric, pulses * n, 0,
      api::make_generic_impls([state, pulses, n] {
        for (std::size_t p = 0; p < pulses; ++p) {
          for (std::size_t r = 0; r < n; ++r) {
            state->slow_time[r * pulses + p] = state->compressed[p * n + r];
          }
        }
      }));
  for (const task::TaskId node : ifft_nodes) {
    CEDR_RETURN_IF_ERROR(app->graph.add_edge(node, corner));
  }

  // Doppler FFT per range bin.
  std::vector<task::TaskId> doppler_nodes;
  doppler_nodes.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const task::TaskId d = add_node(
        "doppler_fft_" + std::to_string(r), platform::KernelId::kFft, pulses,
        2 * pulses * sizeof(cfloat),
        api::make_fft_impls(&state->slow_time[r * pulses],
                            &state->doppler[r * pulses], pulses,
                            /*inverse=*/false));
    CEDR_RETURN_IF_ERROR(app->graph.add_edge(corner, d));
    doppler_nodes.push_back(d);
  }

  // Final peak search (CPU glue).
  const task::TaskId peak = add_node(
      "peak_search", platform::KernelId::kGeneric, pulses * n, 0,
      api::make_generic_impls([state, pulses, n] {
        std::vector<cfloat> range_doppler(pulses * n);
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t d = 0; d < pulses; ++d) {
            range_doppler[d * n + r] = state->doppler[r * pulses + d];
          }
        }
        PulseDopplerResult& res = state->result;
        res.truth = state->truth;
        res.estimate = kernels::find_peak(range_doppler, state->cfg.params);
        res.velocity_error_mps =
            std::abs(res.estimate.velocity_mps - res.truth.velocity_mps);
        res.range_correct =
            std::llabs(static_cast<long long>(res.estimate.range_bin) -
                       static_cast<long long>(res.truth.range_bin)) <= 1;
      }));
  for (const task::TaskId node : doppler_nodes) {
    CEDR_RETURN_IF_ERROR(app->graph.add_edge(node, peak));
  }

  PulseDopplerDag dag;
  dag.descriptor = app;
  dag.result = [state] { return state->result; };
  return dag;
}

namespace {

struct TxState {
  WifiTxConfig cfg;
  std::vector<std::vector<cfloat>> grids;
  WifiTxResult result;
};

/// CPU glue of one WiFi TX packet, shared with the API-based variant's
/// logic (duplicated here deliberately: DAG apps ship their own node code
/// in the shared object).
Status build_grid(TxState& state, std::size_t p) {
  using namespace cedr::kernels;
  const WifiTxConfig& cfg = state.cfg;
  BitVec scrambled =
      scramble(state.result.payloads[p], cfg.scrambler_seed);
  scrambled.insert(scrambled.end(), 6, 0);
  const BitVec coded = convolutional_encode(scrambled);
  auto interleaved = interleave(coded, 7);
  if (!interleaved.ok()) return interleaved.status();
  auto symbols = qpsk_modulate(*interleaved);
  if (!symbols.ok()) return symbols.status();
  if (symbols->size() > cfg.ofdm_size) {
    return InvalidArgument("payload does not fit the OFDM symbol");
  }
  auto& grid = state.grids[p];
  grid.assign(cfg.ofdm_size, cfloat(0.0f, 0.0f));
  std::copy(symbols->begin(), symbols->end(), grid.begin());
  return Status::Ok();
}

}  // namespace

StatusOr<WifiTxDag> make_wifi_tx_dag(const WifiTxConfig& cfg) {
  if (!is_power_of_two(cfg.ofdm_size)) {
    return InvalidArgument("OFDM size must be a power of two");
  }
  if (cfg.payload_bits % 8 != 0 || cfg.payload_bits == 0) {
    return InvalidArgument("payload bits must be a positive multiple of 8");
  }
  auto state = std::make_shared<TxState>();
  state->cfg = cfg;
  state->grids.resize(cfg.num_packets);
  state->result.symbols.assign(cfg.num_packets,
                               std::vector<cfloat>(cfg.ofdm_size));
  state->result.payloads.resize(cfg.num_packets);
  Rng rng(cfg.seed);
  for (std::size_t p = 0; p < cfg.num_packets; ++p) {
    state->result.payloads[p].resize(cfg.payload_bits);
    for (auto& bit : state->result.payloads[p]) {
      bit = static_cast<std::uint8_t>(rng.next_below(2));
    }
    // Grids are built inside DAG glue nodes at execution time, but buffer
    // storage must exist now for the IFFT impls to capture stable pointers.
    state->grids[p].assign(cfg.ofdm_size, cfloat(0.0f, 0.0f));
  }

  auto app = std::make_shared<task::AppDescriptor>();
  app->name = "wifi_tx_dag";
  task::TaskId next_id = 0;
  for (std::size_t p = 0; p < cfg.num_packets; ++p) {
    task::Task glue;
    glue.id = next_id++;
    glue.name = "packet_glue_" + std::to_string(p);
    glue.kernel = platform::KernelId::kGeneric;
    glue.problem_size = 30'000;  // ~30 us of reference-core work
    glue.impls = api::make_generic_impls([state, p] {
      const Status s = build_grid(*state, p);
      if (!s.ok()) state->result.symbols[p].clear();
    });
    CEDR_RETURN_IF_ERROR(app->graph.add_task(std::move(glue)));

    task::Task ifft;
    ifft.id = next_id++;
    ifft.name = "ofdm_ifft_" + std::to_string(p);
    ifft.kernel = platform::KernelId::kIfft;
    ifft.problem_size = cfg.ofdm_size;
    ifft.data_bytes = 2 * cfg.ofdm_size * sizeof(cfloat);
    ifft.impls = api::make_fft_impls(state->grids[p].data(),
                                     state->result.symbols[p].data(),
                                     cfg.ofdm_size, /*inverse=*/true);
    CEDR_RETURN_IF_ERROR(app->graph.add_task(std::move(ifft)));
    CEDR_RETURN_IF_ERROR(app->graph.add_edge(next_id - 2, next_id - 1));
  }

  WifiTxDag dag;
  dag.descriptor = app;
  dag.result = [state] { return state->result; };
  return dag;
}

}  // namespace cedr::apps
