#include "cedr/apps/dag_template.h"

#include <utility>

#include "cedr/apps/executable_dag.h"
#include "cedr/common/math_util.h"
#include "cedr/task/dag_loader.h"

namespace cedr::apps {

namespace {

/// Resolves args[key] to a buffer-spec index, enforcing presence and kind.
StatusOr<std::size_t> spec_arg(
    const std::unordered_map<std::string, std::size_t>& by_name,
    const std::vector<BufferSpec>& specs, const json::Value& args,
    const std::string& key, bool want_float, const std::string& task_name) {
  const std::string name = args.get_string(key, "");
  if (name.empty()) {
    return InvalidArgument("task " + task_name + " missing arg '" + key + "'");
  }
  const auto it = by_name.find(name);
  if (it == by_name.end() || specs[it->second].is_float != want_float) {
    return NotFound("task " + task_name + ": no " +
                    (want_float ? "float" : "cfloat") + " buffer '" + name +
                    "'");
  }
  return it->second;
}

}  // namespace

StatusOr<std::shared_ptr<const DagTemplate>> DagTemplate::compile(
    const json::Value& doc) {
  // Structure first (reuses the loader's validation, including acyclicity),
  // so a cached template never needs a topological check again.
  auto parsed = task::app_from_json(doc);
  if (!parsed.ok()) return parsed.status();

  auto tmpl = std::shared_ptr<DagTemplate>(new DagTemplate());
  std::unordered_map<std::string, std::size_t> by_name;
  if (const json::Value* buffers = doc.find("buffers")) {
    if (!buffers->is_object()) {
      return InvalidArgument("'buffers' must be an object");
    }
    for (const auto& [name, spec] : buffers->as_object()) {
      const auto elems = static_cast<std::size_t>(spec.get_int("elems", 0));
      const std::string kind = spec.get_string("kind", "cfloat");
      if (kind != "cfloat" && kind != "float") {
        return InvalidArgument("buffer '" + name + "': unknown kind " + kind);
      }
      if (name.empty() || elems == 0) {
        return InvalidArgument("buffer needs a name and a nonzero size");
      }
      if (by_name.count(name) != 0) {
        return AlreadyExists("duplicate buffer name: " + name);
      }
      by_name.emplace(name, tmpl->specs_.size());
      tmpl->specs_.push_back(BufferSpec{
          .name = name, .is_float = kind == "float", .elems = elems});
    }
  }

  // Bind each task row into a resolved plan; cost metadata (problem_size,
  // data_bytes defaults) lands in the skeleton so it is computed once.
  auto app = std::make_shared<task::AppDescriptor>(std::move(*parsed));
  tmpl->bindings_.resize(app->graph.size());
  for (const json::Value& row : doc.find("tasks")->as_array()) {
    const auto id = static_cast<task::TaskId>(row.find("id")->as_int());
    task::Task& t = app->graph.get(id);
    Binding& plan = tmpl->bindings_[app->graph.index_of(id)];
    plan.kernel = t.kernel;

    const json::Value* args = row.find("args");
    const json::Value empty_args = json::Object{};
    if (args == nullptr) args = &empty_args;
    if (!args->is_object()) {
      return InvalidArgument("task " + t.name + " 'args' must be an object");
    }
    const std::vector<BufferSpec>& specs = tmpl->specs_;
    switch (t.kernel) {
      case platform::KernelId::kFft:
      case platform::KernelId::kIfft: {
        auto in = spec_arg(by_name, specs, *args, "in", false, t.name);
        if (!in.ok()) return in.status();
        auto out = spec_arg(by_name, specs, *args, "out", false, t.name);
        if (!out.ok()) return out.status();
        if (specs[*in].elems != specs[*out].elems) {
          return InvalidArgument("task " + t.name + ": in/out size mismatch");
        }
        const std::size_t n = specs[*out].elems;
        if (!is_power_of_two(n)) {
          return InvalidArgument("task " + t.name +
                                 ": FFT buffers must be power-of-two sized");
        }
        plan.a = *in;
        plan.b = *out;
        plan.n = n;
        plan.inverse = t.kernel == platform::KernelId::kIfft;
        if (t.problem_size == 0) t.problem_size = n;
        if (t.data_bytes == 0) t.data_bytes = 2 * n * sizeof(cfloat);
        break;
      }
      case platform::KernelId::kZip: {
        auto a = spec_arg(by_name, specs, *args, "a", false, t.name);
        if (!a.ok()) return a.status();
        auto b = spec_arg(by_name, specs, *args, "b", false, t.name);
        if (!b.ok()) return b.status();
        auto out = spec_arg(by_name, specs, *args, "out", false, t.name);
        if (!out.ok()) return out.status();
        if (specs[*a].elems != specs[*b].elems ||
            specs[*a].elems != specs[*out].elems) {
          return InvalidArgument("task " + t.name + ": zip size mismatch");
        }
        const auto op = args->get_int("op", 0);
        if (op < 0 || op > 3) {
          return InvalidArgument("task " + t.name + ": zip op out of range");
        }
        plan.a = *a;
        plan.b = *b;
        plan.c = *out;
        plan.n = specs[*out].elems;
        plan.op = static_cast<kernels::ZipOp>(op);
        if (t.problem_size == 0) t.problem_size = plan.n;
        if (t.data_bytes == 0) t.data_bytes = 3 * plan.n * sizeof(cfloat);
        break;
      }
      case platform::KernelId::kMmult: {
        auto a = spec_arg(by_name, specs, *args, "a", true, t.name);
        if (!a.ok()) return a.status();
        auto b = spec_arg(by_name, specs, *args, "b", true, t.name);
        if (!b.ok()) return b.status();
        auto c = spec_arg(by_name, specs, *args, "c", true, t.name);
        if (!c.ok()) return c.status();
        const auto m = static_cast<std::size_t>(args->get_int("m", 0));
        const auto k = static_cast<std::size_t>(args->get_int("k", 0));
        const auto n = static_cast<std::size_t>(args->get_int("n", 0));
        if (m == 0 || k == 0 || n == 0) {
          return InvalidArgument("task " + t.name + ": MMULT needs m/k/n");
        }
        if (specs[*a].elems != m * k || specs[*b].elems != k * n ||
            specs[*c].elems != m * n) {
          return InvalidArgument("task " + t.name +
                                 ": MMULT buffer sizes inconsistent");
        }
        plan.a = *a;
        plan.b = *b;
        plan.c = *c;
        plan.m = m;
        plan.k = k;
        plan.n = n;
        if (t.problem_size == 0) t.problem_size = m * k * n;
        if (t.data_bytes == 0) {
          t.data_bytes = (m * k + k * n + m * n) * sizeof(float);
        }
        break;
      }
      case platform::KernelId::kGeneric: {
        plan.work_ns = static_cast<std::size_t>(args->get_int(
            "work_ns", static_cast<std::int64_t>(t.problem_size)));
        if (t.problem_size == 0) t.problem_size = plan.work_ns;
        break;
      }
      default:
        return Unimplemented("no standard binding for kernel " +
                             std::string(platform::kernel_name(t.kernel)));
    }
  }
  tmpl->skeleton_ = std::move(app);
  return std::shared_ptr<const DagTemplate>(std::move(tmpl));
}

DagTemplate::Instance DagTemplate::instantiate() const {
  Instance out;
  out.descriptor = skeleton_;
  out.buffers = std::make_shared<BufferPool>();

  // Allocate the declared buffers and pin their storage addresses once;
  // bindings index this table instead of re-hashing names per argument.
  std::vector<cfloat*> cbufs(specs_.size(), nullptr);
  std::vector<float*> fbufs(specs_.size(), nullptr);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const BufferSpec& spec = specs_[i];
    if (spec.is_float) {
      (void)out.buffers->add_float(spec.name, spec.elems);
      fbufs[i] = out.buffers->float_buffer(spec.name)->data();
    } else {
      (void)out.buffers->add_cfloat(spec.name, spec.elems);
      cbufs[i] = out.buffers->cfloat_buffer(spec.name)->data();
    }
  }

  out.impls.resize(bindings_.size());
  const auto pool = out.buffers;
  for (std::size_t i = 0; i < bindings_.size(); ++i) {
    const Binding& plan = bindings_[i];
    api::ImplArray& impls = out.impls[i];
    switch (plan.kernel) {
      case platform::KernelId::kFft:
      case platform::KernelId::kIfft:
        impls = api::make_fft_impls(cbufs[plan.a], cbufs[plan.b], plan.n,
                                    plan.inverse);
        break;
      case platform::KernelId::kZip:
        impls = api::make_zip_impls(cbufs[plan.a], cbufs[plan.b],
                                    cbufs[plan.c], plan.n, plan.op);
        break;
      case platform::KernelId::kMmult:
        impls = api::make_mmult_impls(fbufs[plan.a], fbufs[plan.b],
                                      fbufs[plan.c], plan.m, plan.k, plan.n);
        break;
      case platform::KernelId::kGeneric:
        impls = api::make_generic_impls({}, plan.work_ns);
        continue;  // no buffers to keep alive
      default:
        continue;
    }
    // The CPU slot owns the pool: buffers live as long as any of this
    // task's implementations can still run (the raw pointers the
    // accelerator slots captured stay valid through the same array).
    impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
        [fn = impls[static_cast<std::size_t>(platform::PeClass::kCpu)],
         keep_alive = pool](task::ExecContext& ctx) { return fn(ctx); };
  }
  return out;
}

// ---------------------------------------------------------------------------
// TemplateCache
// ---------------------------------------------------------------------------

std::uint64_t TemplateCache::fnv1a64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

TemplateCache::TemplateCache(std::size_t capacity, HashFn hash)
    : capacity_(capacity == 0 ? 1 : capacity),
      hash_(hash != nullptr ? hash : &fnv1a64) {}

TemplateCache& TemplateCache::global() {
  static TemplateCache cache;
  return cache;
}

StatusOr<std::shared_ptr<const DagTemplate>> TemplateCache::get_or_compile(
    std::string_view text) {
  const std::uint64_t hash = hash_(text);
  {
    std::lock_guard lock(mutex_);
    const auto chain = index_.find(hash);
    if (chain != index_.end()) {
      for (const EntryList::iterator it : chain->second) {
        // Same hash is not same document: a collision (or an injected
        // degenerate hash in tests) must never serve the wrong template.
        if (it->text != text) continue;
        hits_.fetch_add(1, std::memory_order_relaxed);
        entries_.splice(entries_.begin(), entries_, it);  // move to MRU
        return it->tmpl;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Compile outside the lock: a slow parse never blocks concurrent hits.
  auto doc = json::parse(text);
  if (!doc.ok()) return doc.status();
  auto compiled = DagTemplate::compile(*doc);
  if (!compiled.ok()) return compiled.status();

  std::lock_guard lock(mutex_);
  // Double-check: another thread may have compiled the same text while we
  // did; keep the first insert so both callers share one template.
  if (const auto chain = index_.find(hash); chain != index_.end()) {
    for (const EntryList::iterator it : chain->second) {
      if (it->text == text) {
        entries_.splice(entries_.begin(), entries_, it);
        return it->tmpl;
      }
    }
  }
  entries_.push_front(Entry{
      .hash = hash, .text = std::string(text), .tmpl = *compiled});
  index_[hash].push_back(entries_.begin());
  while (entries_.size() > capacity_) {
    const EntryList::iterator victim = std::prev(entries_.end());
    auto& chain = index_[victim->hash];
    std::erase(chain, victim);
    if (chain.empty()) index_.erase(victim->hash);
    entries_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return *compiled;
}

TemplateCache::Stats TemplateCache::stats() const noexcept {
  return Stats{
      .hits = hits_.load(std::memory_order_relaxed),
      .misses = misses_.load(std::memory_order_relaxed),
      .evictions = evictions_.load(std::memory_order_relaxed),
  };
}

std::size_t TemplateCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace cedr::apps
