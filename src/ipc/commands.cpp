// IpcServer command execution: one protocol line in, one reply line out.
//
// Runs on the event-loop thread for cheap verbs and on the worker pool for
// slow ones (see server.cpp for the classification); everything it touches
// on the runtime is already thread-safe, so no IpcServer lock is held
// while a command executes. Each command records a span on the IPC trace
// lane and an `ipc_cmd_us.<verb>` latency sample measured from event-loop
// admission (parse time) to completion — for pooled verbs that includes
// time spent queued behind other slow commands.

#include <dlfcn.h>

#include <fstream>
#include <sstream>

#include "cedr/apps/dag_template.h"
#include "cedr/common/log.h"
#include "cedr/ipc/ipc.h"
#include "cedr/obs/chrome_trace.h"
#include "ipc_internal.h"

namespace cedr::ipc {
namespace {

constexpr std::string_view kLogTag = "ipc";

StatusOr<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

obs::QuantileHistogram& IpcServer::cmd_histogram(const std::string& verb) {
  const int index = cmd_verb_index(verb);
  if (index >= 0) return *cmd_hist_[index];
  return runtime_.metrics().histogram("ipc_cmd_us." + verb);
}

std::string IpcServer::handle_command(const std::string& line,
                                      double admit_time) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;

  // Every command becomes a span on the IPC lane of the live trace, and an
  // admission-to-completion latency sample in ipc_cmd_us.<verb>.
  struct CommandScope {
    IpcServer& server;
    std::string verb;
    double start;
    ~CommandScope() {
      const double end = server.runtime_.now();
      server.runtime_.tracer().complete_span(obs::Category::kIpc, verb.c_str(),
                                             0, obs::kIpcTid, start,
                                             end - start);
      server.cmd_histogram(verb).record((end - start) * 1e6);
    }
  } scope{*this, verb, admit_time};

  if (verb == "SUBMIT") {
    std::string so_path;
    std::string app_name;
    in >> so_path >> app_name;
    if (so_path.empty()) return "ERR SUBMIT requires a shared-object path\n";
    if (app_name.empty()) app_name = so_path;
    // The paper's flow: the shared object application is parsed (dlopen)
    // and a new system thread executes its main function.
    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
      return std::string("ERR dlopen: ") + ::dlerror() + "\n";
    }
    using AppMain = void (*)();
    auto app_main =
        reinterpret_cast<AppMain>(::dlsym(handle, "cedr_app_main"));
    if (app_main == nullptr) {
      ::dlclose(handle);
      return "ERR shared object does not export cedr_app_main\n";
    }
    {
      std::lock_guard lock(objects_mutex_);
      loaded_objects_.push_back(handle);
    }
    auto instance = runtime_.submit_api(app_name, [app_main] { app_main(); });
    if (!instance.ok()) {
      return "ERR " + instance.status().to_string() + "\n";
    }
    CEDR_LOG(kInfo, kLogTag) << "submitted " << app_name << " as instance "
                             << *instance;
    return "OK " + std::to_string(*instance) + "\n";
  }

  if (verb == "SUBMITDAG") {
    // DAG-based submission: the JSON document compiles into a DagTemplate
    // (standard-module implementations resolved over its declared buffers)
    // through the process-wide template cache shared with the shm lane, so
    // resubmitting the same document skips parse + validate entirely; only
    // the per-instance buffers and impl arrays are built per command.
    std::string json_path;
    std::string app_name;
    in >> json_path >> app_name;
    if (json_path.empty()) return "ERR SUBMITDAG requires a JSON path\n";
    auto text = read_text_file(json_path);
    if (!text.ok()) return "ERR " + text.status().to_string() + "\n";
    auto tmpl = apps::TemplateCache::global().get_or_compile(*text);
    if (!tmpl.ok()) return "ERR " + tmpl.status().to_string() + "\n";
    apps::DagTemplate::Instance inst = (*tmpl)->instantiate();
    auto instance = runtime_.submit_dag(rt::DagSubmission{
        .descriptor = std::move(inst.descriptor),
        .impls = std::move(inst.impls),
    });
    if (!instance.ok()) {
      return "ERR " + instance.status().to_string() + "\n";
    }
    CEDR_LOG(kInfo, kLogTag) << "submitted DAG " << json_path
                             << " as instance " << *instance;
    return "OK " + std::to_string(*instance) + "\n";
  }

  if (verb == "STATUS") {
    return "OK submitted=" + std::to_string(runtime_.submitted_apps()) +
           " completed=" + std::to_string(runtime_.completed_apps()) + "\n";
  }

  if (verb == "STATS") {
    const rt::RuntimeStats stats = runtime_.stats();
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "OK uptime_s=" << stats.uptime_s << " submitted=" << stats.submitted
        << " completed=" << stats.completed << " inflight=" << stats.inflight
        << " ready=" << stats.ready_tasks
        << " deferred=" << stats.deferred_tasks
        << " tasks=" << stats.tasks_executed << " pe_busy=";
    for (std::size_t i = 0; i < stats.pes.size(); ++i) {
      if (i > 0) out << ',';
      out << stats.pes[i].name << ':' << stats.pes[i].busy_fraction;
      if (stats.pes[i].quarantined) out << "(q)";
    }
    out << "\n";
    return out.str();
  }

  if (verb == "METRICS") {
    const rt::RuntimeStats stats = runtime_.stats();
    json::Object stats_obj{
        {"uptime_s", json::Value(stats.uptime_s)},
        {"submitted", json::Value(stats.submitted)},
        {"completed", json::Value(stats.completed)},
        {"inflight", json::Value(stats.inflight)},
        {"ready_tasks", json::Value(stats.ready_tasks)},
        {"deferred_tasks", json::Value(stats.deferred_tasks)},
        {"tasks_executed", json::Value(stats.tasks_executed)},
    };
    json::Object pe_busy;
    for (const auto& pe : stats.pes) {
      pe_busy.emplace(pe.name, json::Object{
                                   {"busy", json::Value(pe.busy_fraction)},
                                   {"tasks", json::Value(pe.tasks)},
                                   {"quarantined", json::Value(pe.quarantined)},
                               });
    }
    stats_obj.emplace("pes", json::Value(std::move(pe_busy)));
    // Refresh the template-cache gauges on demand so the snapshot below
    // (and cedr_top's lifecycle row) always reflects the current cache.
    const apps::TemplateCache::Stats cache_stats =
        apps::TemplateCache::global().stats();
    runtime_.metrics().set_gauge("runtime.template_cache_hits",
                                 static_cast<double>(cache_stats.hits));
    runtime_.metrics().set_gauge("runtime.template_cache_misses",
                                 static_cast<double>(cache_stats.misses));
    runtime_.metrics().set_gauge("runtime.template_cache_evictions",
                                 static_cast<double>(cache_stats.evictions));
    const json::Value doc = json::Object{
        {"metrics", runtime_.metrics().to_json()},
        {"counters", runtime_.counters().to_json()},
        {"stats", json::Value(std::move(stats_obj))},
    };
    // dump() is compact (single line), so the reply stays one LF-terminated
    // protocol line.
    return "OK " + doc.dump() + "\n";
  }

  if (verb == "COSTS") {
    // Static vs learned cost tables from the online estimator. Served even
    // while applications are in flight: pair_stats() takes the estimator's
    // mutex briefly but never blocks the scheduling hot path (the
    // schedulers read lock-free snapshots, not this reporting view).
    const adapt::OnlineCostEstimator* estimator = runtime_.adapt_estimator();
    if (estimator == nullptr) {
      const json::Value doc = json::Object{{"enabled", json::Value(false)}};
      return "OK " + doc.dump() + "\n";
    }
    return "OK " + estimator->to_json().dump() + "\n";
  }

  if (verb == "WAIT") {
    const Status status = runtime_.wait_all();
    return status.ok() ? "OK\n" : "ERR " + status.to_string() + "\n";
  }

  if (verb == "SHUTDOWN") {
    // "...it serializes all the logs it has collected relating to task
    // execution ... for later offline analysis" (paper §II-A).
    if (!trace_path_.empty()) {
      // Performance counters (faults_injected, tasks_retried,
      // pes_quarantined, ...) ride along in the same document so the
      // offline report sees the fault-tolerance story too.
      json::Value doc = runtime_.trace_log().to_json();
      doc.as_object().emplace("counters", runtime_.counters().to_json());
      // The live-metrics snapshot rides along so offline analysis sees the
      // same quantiles the METRICS command served while running.
      doc.as_object().emplace("metrics", runtime_.metrics().to_json());
      const Status status = json::write_file(trace_path_, doc);
      if (!status.ok()) {
        CEDR_LOG(kWarn, kLogTag) << "trace serialization failed: "
                                 << status.to_string();
      }
    }
    // The worker notifies wait_for_shutdown() only after this reply is
    // deposited (worker_loop), and the loop's teardown pass flushes it, so
    // the client reads OK before the daemon closes the connection.
    return "OK\n";
  }

  return "ERR unknown command: " + verb + "\n";
}

}  // namespace cedr::ipc
