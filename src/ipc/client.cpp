// IpcClient: persistent connection, buffered reads, connect backoff.
//
// One connection is opened lazily on the first command and reused for every
// later round-trip; replies are read through a LineFramer so a reply costs
// a handful of read(2) calls instead of one per byte. The destructor sends
// BYE (best effort) so the daemon reaps the connection promptly.
//
// Two failure behaviours matter to callers:
//   * connect: retried with exponential backoff inside
//     IpcClientConfig::connect_timeout_s, so tools no longer race daemon
//     startup with external sleep loops;
//   * a connection the daemon dropped between round-trips: idempotent verbs
//     reconnect and retry once; SUBMIT/SUBMITDAG surface Unavailable
//     instead, because retrying a submission that may have been applied
//     could double-submit the application.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "cedr/common/stopwatch.h"
#include "cedr/ipc/ipc.h"
#include "ipc_internal.h"

namespace cedr::ipc {
namespace {

bool is_submit_command(const std::string& command) {
  return command.rfind("SUBMIT", 0) == 0;  // SUBMIT and SUBMITDAG
}

/// Parses "BUSY <retry-after-ms>" into a ResourceExhausted status.
Status busy_status(const std::string& reply) {
  std::uint32_t retry_ms = 0;
  if (std::sscanf(reply.c_str(), "BUSY %u", &retry_ms) == 1 && retry_ms > 0) {
    return ResourceExhausted("daemon saturated; retry after " +
                             std::to_string(retry_ms) + " ms");
  }
  return ResourceExhausted("daemon saturated");
}

}  // namespace

IpcClient::~IpcClient() {
  if (fd_ >= 0) {
    (void)write_all(fd_, "BYE\n");  // best effort; server also reaps on EOF
    ::close(fd_);
  }
}

Status IpcClient::ensure_connected() {
  if (fd_ >= 0) return Status::Ok();
  sockaddr_un addr{};
  CEDR_RETURN_IF_ERROR(fill_sockaddr(socket_path_, addr));
  Stopwatch window;
  std::uint32_t backoff_ms = config_.backoff_initial_ms;
  std::string last_error;
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Unavailable(std::string("socket(): ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      fd_ = fd;
      framer_.clear();
      return Status::Ok();
    }
    last_error = std::strerror(errno);
    ::close(fd);
    // Retry while the window allows: the daemon may still be binding its
    // socket (smoke tests start both sides concurrently).
    if (window.elapsed() + static_cast<double>(backoff_ms) * 1e-3 >
        config_.connect_timeout_s) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, config_.backoff_max_ms);
    if (backoff_ms == 0) backoff_ms = 1;
  }
  return Unavailable("cannot connect to daemon at " + socket_path_ + ": " +
                     last_error);
}

void IpcClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  framer_.clear();
}

StatusOr<std::string> IpcClient::round_trip(const std::string& command) {
  // One transparent reconnect-and-retry for idempotent verbs: a persistent
  // connection can be stale if the daemon restarted or reaped us.
  const int max_attempts = is_submit_command(command) ? 1 : 2;
  Status failure = Unavailable("unreachable");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const bool fresh = fd_ < 0;
    CEDR_RETURN_IF_ERROR(ensure_connected());
    if (!write_all(fd_, command + "\n")) {
      disconnect();
      failure = Unavailable("failed to send command");
      if (fresh) break;  // brand-new connection already broken: don't loop
      continue;
    }
    std::string reply;
    bool got_reply = framer_.next_line(reply);
    while (!got_reply) {
      char buf[16384];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n > 0) {
        framer_.append(buf, static_cast<std::size_t>(n));
        got_reply = framer_.next_line(reply);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    if (!got_reply) {
      disconnect();
      failure = Unavailable("daemon closed connection");
      if (fresh) break;
      continue;
    }
    if (reply.rfind("BUSY", 0) == 0) return busy_status(reply);
    if (reply.rfind("ERR", 0) == 0) {
      return Internal(reply.size() > 4 ? reply.substr(4) : "daemon error");
    }
    return reply;
  }
  return failure;
}

StatusOr<std::vector<std::string>> IpcClient::pipeline(
    const std::vector<std::string>& commands) {
  if (commands.empty()) return std::vector<std::string>{};
  CEDR_RETURN_IF_ERROR(ensure_connected());
  std::string batch;
  for (const std::string& command : commands) {
    batch += command;
    batch += '\n';
  }
  if (!write_all(fd_, batch)) {
    disconnect();
    return Unavailable("failed to send pipelined batch");
  }
  std::vector<std::string> replies;
  replies.reserve(commands.size());
  std::string line;
  while (replies.size() < commands.size()) {
    if (framer_.next_line(line)) {
      replies.push_back(line);
      continue;
    }
    char buf[16384];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      framer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Mid-batch close: some commands may have been applied. Surface the
    // break rather than retrying (a batch may contain SUBMITs).
    disconnect();
    return Unavailable("daemon closed connection mid-batch after " +
                       std::to_string(replies.size()) + " of " +
                       std::to_string(commands.size()) + " replies");
  }
  return replies;
}

StatusOr<std::uint64_t> IpcClient::submit(const std::string& so_path,
                                          const std::string& app_name) {
  auto reply = round_trip("SUBMIT " + so_path +
                          (app_name.empty() ? "" : " " + app_name));
  if (!reply.ok()) return reply.status();
  // "OK <id>"
  const std::size_t space = reply->find(' ');
  if (space == std::string::npos) return Internal("malformed SUBMIT reply");
  return static_cast<std::uint64_t>(
      std::strtoull(reply->c_str() + space + 1, nullptr, 10));
}

StatusOr<std::uint64_t> IpcClient::submit_dag(const std::string& json_path) {
  auto reply = round_trip("SUBMITDAG " + json_path);
  if (!reply.ok()) return reply.status();
  const std::size_t space = reply->find(' ');
  if (space == std::string::npos) return Internal("malformed SUBMITDAG reply");
  return static_cast<std::uint64_t>(
      std::strtoull(reply->c_str() + space + 1, nullptr, 10));
}

StatusOr<std::pair<std::uint64_t, std::uint64_t>> IpcClient::status() {
  auto reply = round_trip("STATUS");
  if (!reply.ok()) return reply.status();
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  if (std::sscanf(reply->c_str(), "OK submitted=%lu completed=%lu",
                  &submitted, &completed) != 2) {
    return Internal("malformed STATUS reply: " + *reply);
  }
  return std::make_pair(submitted, completed);
}

StatusOr<std::string> IpcClient::stats() {
  auto reply = round_trip("STATS");
  if (!reply.ok()) return reply.status();
  if (reply->rfind("OK ", 0) != 0) {
    return Internal("malformed STATS reply: " + *reply);
  }
  return reply->substr(3);
}

StatusOr<json::Value> IpcClient::metrics() {
  auto reply = round_trip("METRICS");
  if (!reply.ok()) return reply.status();
  if (reply->rfind("OK ", 0) != 0) {
    return Internal("malformed METRICS reply: " + *reply);
  }
  auto doc = json::parse(std::string_view(*reply).substr(3));
  if (!doc.ok()) {
    return Internal("METRICS reply is not valid JSON: " +
                    doc.status().to_string());
  }
  return doc;
}

StatusOr<json::Value> IpcClient::costs() {
  auto reply = round_trip("COSTS");
  if (!reply.ok()) return reply.status();
  if (reply->rfind("OK ", 0) != 0) {
    return Internal("malformed COSTS reply: " + *reply);
  }
  auto doc = json::parse(std::string_view(*reply).substr(3));
  if (!doc.ok()) {
    return Internal("COSTS reply is not valid JSON: " +
                    doc.status().to_string());
  }
  return doc;
}

Status IpcClient::wait_all() { return round_trip("WAIT").status(); }

Status IpcClient::shutdown() { return round_trip("SHUTDOWN").status(); }

}  // namespace cedr::ipc
