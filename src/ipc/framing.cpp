#include "cedr/ipc/framing.h"

namespace cedr::ipc {

void LineFramer::append(const char* data, std::size_t size) {
  if (overflowed_) return;  // connection is already condemned; drop bytes
  // Compact once the consumed prefix dominates, so a long-lived pipelined
  // connection does not grow the buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, size);
}

bool LineFramer::next_line(std::string& line) {
  if (overflowed_) return false;
  const std::size_t lf = buf_.find('\n', pos_);
  if (lf == std::string::npos) {
    if (buffered() > kMaxLine) overflowed_ = true;
    return false;
  }
  if (lf - pos_ > kMaxLine) {
    overflowed_ = true;
    return false;
  }
  line.assign(buf_, pos_, lf - pos_);
  pos_ = lf + 1;
  return true;
}

void LineFramer::clear() {
  buf_.clear();
  pos_ = 0;
  overflowed_ = false;
}

}  // namespace cedr::ipc
