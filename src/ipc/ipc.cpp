#include "cedr/ipc/ipc.h"

#include <dlfcn.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "cedr/apps/executable_dag.h"
#include "cedr/common/log.h"
#include "cedr/obs/chrome_trace.h"

namespace cedr::ipc {
namespace {

constexpr std::string_view kLogTag = "ipc";

Status fill_sockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("socket path empty or too long: " + path);
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return Status::Ok();
}

/// Reads one LF-terminated line (without the LF). Empty optional on EOF.
bool read_line(int fd, std::string& line) {
  line.clear();
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return !line.empty();
    if (c == '\n') return true;
    line += c;
    // Defensive cap, sized for METRICS replies (a full registry snapshot is
    // a few KB; 1 MB leaves ample headroom without risking unbounded reads).
    if (line.size() > (1u << 20)) return true;
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

IpcServer::IpcServer(rt::Runtime& runtime, std::string socket_path,
                     std::string trace_path)
    : runtime_(runtime),
      socket_path_(std::move(socket_path)),
      trace_path_(std::move(trace_path)) {}

IpcServer::~IpcServer() {
  stop();
  std::lock_guard lock(objects_mutex_);
  for (void* handle : loaded_objects_) {
    if (handle != nullptr) ::dlclose(handle);
  }
}

Status IpcServer::start() {
  sockaddr_un addr{};
  CEDR_RETURN_IF_ERROR(fill_sockaddr(socket_path_, addr));
  ::unlink(socket_path_.c_str());  // stale socket from a previous run
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Unavailable(std::string("socket(): ") + std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable(std::string("bind(): ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable(std::string("listen(): ") + std::strerror(errno));
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  CEDR_LOG(kInfo, kLogTag) << "daemon listening on " << socket_path_;
  return Status::Ok();
}

void IpcServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown()/close() only read the fd value; the accept thread may still
  // be blocked in accept(listen_fd_), so the fd variable itself must not be
  // written until that thread has been joined.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

void IpcServer::wait_for_shutdown() {
  std::unique_lock lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_.load(std::memory_order_acquire);
  });
}

void IpcServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (running_.load(std::memory_order_acquire)) continue;
      break;
    }
    std::string line;
    if (read_line(client, line)) {
      const std::string reply = handle_command(line);
      write_all(client, reply);
    }
    ::close(client);
    if (shutdown_requested_.load(std::memory_order_acquire)) break;
  }
}

std::string IpcServer::handle_command(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;

  // Every command becomes a span on the IPC lane of the live trace.
  const double cmd_start = runtime_.now();
  struct CommandSpan {
    rt::Runtime& runtime;
    std::string verb;
    double start;
    ~CommandSpan() {
      runtime.tracer().complete_span(obs::Category::kIpc, verb.c_str(), 0,
                                     obs::kIpcTid, start,
                                     runtime.now() - start);
    }
  } span{runtime_, verb, cmd_start};

  if (verb == "SUBMIT") {
    std::string so_path;
    std::string app_name;
    in >> so_path >> app_name;
    if (so_path.empty()) return "ERR SUBMIT requires a shared-object path\n";
    if (app_name.empty()) app_name = so_path;
    // The paper's flow: the shared object application is parsed (dlopen)
    // and a new system thread executes its main function.
    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
      return std::string("ERR dlopen: ") + ::dlerror() + "\n";
    }
    using AppMain = void (*)();
    auto app_main =
        reinterpret_cast<AppMain>(::dlsym(handle, "cedr_app_main"));
    if (app_main == nullptr) {
      ::dlclose(handle);
      return "ERR shared object does not export cedr_app_main\n";
    }
    {
      std::lock_guard lock(objects_mutex_);
      loaded_objects_.push_back(handle);
    }
    auto instance = runtime_.submit_api(app_name, [app_main] { app_main(); });
    if (!instance.ok()) {
      return "ERR " + instance.status().to_string() + "\n";
    }
    CEDR_LOG(kInfo, kLogTag) << "submitted " << app_name << " as instance "
                             << *instance;
    return "OK " + std::to_string(*instance) + "\n";
  }

  if (verb == "SUBMITDAG") {
    // DAG-based submission: the JSON document is parsed into an application
    // DAG with standard-module implementations bound over its declared
    // buffers, then scheduled node by node (the pre-CEDR-API flow).
    std::string json_path;
    std::string app_name;
    in >> json_path >> app_name;
    if (json_path.empty()) return "ERR SUBMITDAG requires a JSON path\n";
    auto dag = apps::load_executable_dag(json_path);
    if (!dag.ok()) return "ERR " + dag.status().to_string() + "\n";
    auto instance = runtime_.submit_dag(dag->descriptor);
    if (!instance.ok()) {
      return "ERR " + instance.status().to_string() + "\n";
    }
    CEDR_LOG(kInfo, kLogTag) << "submitted DAG " << json_path
                             << " as instance " << *instance;
    return "OK " + std::to_string(*instance) + "\n";
  }

  if (verb == "STATUS") {
    return "OK submitted=" + std::to_string(runtime_.submitted_apps()) +
           " completed=" + std::to_string(runtime_.completed_apps()) + "\n";
  }

  if (verb == "STATS") {
    const rt::RuntimeStats stats = runtime_.stats();
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "OK uptime_s=" << stats.uptime_s << " submitted=" << stats.submitted
        << " completed=" << stats.completed << " inflight=" << stats.inflight
        << " ready=" << stats.ready_tasks
        << " deferred=" << stats.deferred_tasks
        << " tasks=" << stats.tasks_executed << " pe_busy=";
    for (std::size_t i = 0; i < stats.pes.size(); ++i) {
      if (i > 0) out << ',';
      out << stats.pes[i].name << ':' << stats.pes[i].busy_fraction;
      if (stats.pes[i].quarantined) out << "(q)";
    }
    out << "\n";
    return out.str();
  }

  if (verb == "METRICS") {
    const rt::RuntimeStats stats = runtime_.stats();
    json::Object stats_obj{
        {"uptime_s", json::Value(stats.uptime_s)},
        {"submitted", json::Value(stats.submitted)},
        {"completed", json::Value(stats.completed)},
        {"inflight", json::Value(stats.inflight)},
        {"ready_tasks", json::Value(stats.ready_tasks)},
        {"deferred_tasks", json::Value(stats.deferred_tasks)},
        {"tasks_executed", json::Value(stats.tasks_executed)},
    };
    json::Object pe_busy;
    for (const auto& pe : stats.pes) {
      pe_busy.emplace(pe.name, json::Object{
                                   {"busy", json::Value(pe.busy_fraction)},
                                   {"tasks", json::Value(pe.tasks)},
                                   {"quarantined", json::Value(pe.quarantined)},
                               });
    }
    stats_obj.emplace("pes", json::Value(std::move(pe_busy)));
    const json::Value doc = json::Object{
        {"metrics", runtime_.metrics().to_json()},
        {"counters", runtime_.counters().to_json()},
        {"stats", json::Value(std::move(stats_obj))},
    };
    // dump() is compact (single line), so the reply stays one LF-terminated
    // protocol line.
    return "OK " + doc.dump() + "\n";
  }

  if (verb == "COSTS") {
    // Static vs learned cost tables from the online estimator. Served even
    // while applications are in flight: pair_stats() takes the estimator's
    // mutex briefly but never blocks the scheduling hot path (the
    // schedulers read lock-free snapshots, not this reporting view).
    const adapt::OnlineCostEstimator* estimator = runtime_.adapt_estimator();
    if (estimator == nullptr) {
      const json::Value doc = json::Object{{"enabled", json::Value(false)}};
      return "OK " + doc.dump() + "\n";
    }
    return "OK " + estimator->to_json().dump() + "\n";
  }

  if (verb == "WAIT") {
    const Status status = runtime_.wait_all();
    return status.ok() ? "OK\n" : "ERR " + status.to_string() + "\n";
  }

  if (verb == "SHUTDOWN") {
    // "...it serializes all the logs it has collected relating to task
    // execution ... for later offline analysis" (paper §II-A).
    if (!trace_path_.empty()) {
      // Performance counters (faults_injected, tasks_retried,
      // pes_quarantined, ...) ride along in the same document so the
      // offline report sees the fault-tolerance story too.
      json::Value doc = runtime_.trace_log().to_json();
      doc.as_object().emplace("counters", runtime_.counters().to_json());
      // The live-metrics snapshot rides along so offline analysis sees the
      // same quantiles the METRICS command served while running.
      doc.as_object().emplace("metrics", runtime_.metrics().to_json());
      const Status status = json::write_file(trace_path_, doc);
      if (!status.ok()) {
        CEDR_LOG(kWarn, kLogTag) << "trace serialization failed: "
                                 << status.to_string();
      }
    }
    shutdown_requested_.store(true, std::memory_order_release);
    shutdown_cv_.notify_all();
    return "OK\n";
  }

  return "ERR unknown command: " + verb + "\n";
}

StatusOr<std::string> IpcClient::round_trip(const std::string& command) {
  sockaddr_un addr{};
  CEDR_RETURN_IF_ERROR(fill_sockaddr(socket_path_, addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Unavailable(std::string("socket(): ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Unavailable("cannot connect to daemon at " + socket_path_ + ": " +
                       std::strerror(errno));
  }
  StatusOr<std::string> result = [&]() -> StatusOr<std::string> {
    if (!write_all(fd, command + "\n")) {
      return Unavailable("failed to send command");
    }
    std::string reply;
    if (!read_line(fd, reply)) return Unavailable("daemon closed connection");
    if (reply.rfind("ERR", 0) == 0) {
      return Internal(reply.size() > 4 ? reply.substr(4) : "daemon error");
    }
    return reply;
  }();
  ::close(fd);
  return result;
}

StatusOr<std::uint64_t> IpcClient::submit(const std::string& so_path,
                                          const std::string& app_name) {
  auto reply = round_trip("SUBMIT " + so_path +
                          (app_name.empty() ? "" : " " + app_name));
  if (!reply.ok()) return reply.status();
  // "OK <id>"
  const std::size_t space = reply->find(' ');
  if (space == std::string::npos) return Internal("malformed SUBMIT reply");
  return static_cast<std::uint64_t>(
      std::strtoull(reply->c_str() + space + 1, nullptr, 10));
}

StatusOr<std::uint64_t> IpcClient::submit_dag(const std::string& json_path) {
  auto reply = round_trip("SUBMITDAG " + json_path);
  if (!reply.ok()) return reply.status();
  const std::size_t space = reply->find(' ');
  if (space == std::string::npos) return Internal("malformed SUBMITDAG reply");
  return static_cast<std::uint64_t>(
      std::strtoull(reply->c_str() + space + 1, nullptr, 10));
}

StatusOr<std::pair<std::uint64_t, std::uint64_t>> IpcClient::status() {
  auto reply = round_trip("STATUS");
  if (!reply.ok()) return reply.status();
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  if (std::sscanf(reply->c_str(), "OK submitted=%lu completed=%lu",
                  &submitted, &completed) != 2) {
    return Internal("malformed STATUS reply: " + *reply);
  }
  return std::make_pair(submitted, completed);
}

StatusOr<std::string> IpcClient::stats() {
  auto reply = round_trip("STATS");
  if (!reply.ok()) return reply.status();
  if (reply->rfind("OK ", 0) != 0) {
    return Internal("malformed STATS reply: " + *reply);
  }
  return reply->substr(3);
}

StatusOr<json::Value> IpcClient::metrics() {
  auto reply = round_trip("METRICS");
  if (!reply.ok()) return reply.status();
  if (reply->rfind("OK ", 0) != 0) {
    return Internal("malformed METRICS reply: " + *reply);
  }
  auto doc = json::parse(std::string_view(*reply).substr(3));
  if (!doc.ok()) {
    return Internal("METRICS reply is not valid JSON: " +
                    doc.status().to_string());
  }
  return doc;
}

StatusOr<json::Value> IpcClient::costs() {
  auto reply = round_trip("COSTS");
  if (!reply.ok()) return reply.status();
  if (reply->rfind("OK ", 0) != 0) {
    return Internal("malformed COSTS reply: " + *reply);
  }
  auto doc = json::parse(std::string_view(*reply).substr(3));
  if (!doc.ok()) {
    return Internal("COSTS reply is not valid JSON: " +
                    doc.status().to_string());
  }
  return doc;
}

Status IpcClient::wait_all() { return round_trip("WAIT").status(); }

Status IpcClient::shutdown() { return round_trip("SHUTDOWN").status(); }

}  // namespace cedr::ipc
