// IpcServer: poll(2) event loop, per-connection state machines, worker pool.
//
// Threading model (docs/ipc.md):
//   * ONE event-loop thread owns every fd (listen socket, wake pipe,
//     connections), each connection's read framer and write buffer, and is
//     the only thread that opens or closes connections;
//   * WORKER threads execute slow verbs (SUBMIT's dlopen, SUBMITDAG's JSON
//     load, WAIT, SHUTDOWN's trace serialization) and never touch an fd —
//     they fill the pre-allocated reply slot for their command and wake the
//     loop through the pipe;
//   * the only shared state is the connection table and the per-connection
//     ordered reply queues, guarded by `state_mutex_` (acquired for
//     bookkeeping only, never across a syscall or a command execution).
//
// Replies are delivered strictly in command order per connection: every
// parsed command claims a reply slot up front, cheap verbs fill it
// immediately on the loop, slow verbs fill it from the pool, and the loop
// flushes slots from the front of the queue as they become ready.
//
// Back-pressure is two-layered: per connection, once
// `max_pending_per_conn` commands are unanswered the loop stops reading
// that socket (bytes queue in the kernel buffer, not daemon memory);
// globally, SUBMIT/SUBMITDAG beyond `max_inflight_apps` are answered
// `BUSY <retry-after-ms>` at admission instead of queueing, counted as
// `ipc.rejected_total`.

#include <dlfcn.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "cedr/common/log.h"
#include "cedr/ipc/ipc.h"
#include "cedr/obs/chrome_trace.h"
#include "cedr/shm/fdpass.h"
#include "cedr/shm/server.h"
#include "ipc_internal.h"

namespace cedr::ipc {
namespace {

constexpr std::string_view kLogTag = "ipc";

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Unavailable(std::string("fcntl(O_NONBLOCK): ") +
                       std::strerror(errno));
  }
  return Status::Ok();
}

/// Slow verbs leave the event loop for the worker pool; everything else
/// (STATUS/STATS/METRICS/COSTS/unknown) is an in-memory snapshot cheap
/// enough to execute inline.
bool is_slow_verb(std::string_view verb) {
  return verb == "SUBMIT" || verb == "SUBMITDAG" || verb == "WAIT" ||
         verb == "SHUTDOWN";
}

bool is_submit_verb(std::string_view verb) {
  return verb == "SUBMIT" || verb == "SUBMITDAG";
}

std::string_view first_token(const std::string& line) {
  std::size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  std::size_t end = line.find_first_of(" \t\r", begin);
  if (end == std::string::npos) end = line.size();
  return std::string_view(line).substr(begin, end - begin);
}

}  // namespace

IpcServer::IpcServer(rt::Runtime& runtime, std::string socket_path,
                     std::string trace_path, IpcServerConfig config)
    : runtime_(runtime),
      socket_path_(std::move(socket_path)),
      trace_path_(std::move(trace_path)),
      config_(config) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_pending_per_conn == 0) config_.max_pending_per_conn = 1;
  if (config_.max_connections == 0) config_.max_connections = 1;
  for (std::size_t i = 0; i < std::size(kCmdVerbs); ++i) {
    cmd_hist_[i] = &runtime_.metrics().histogram("ipc_cmd_us." +
                                                 std::string(kCmdVerbs[i]));
  }
}

IpcServer::~IpcServer() {
  stop();
  std::lock_guard lock(objects_mutex_);
  for (void* handle : loaded_objects_) {
    if (handle != nullptr) ::dlclose(handle);
  }
}

Status IpcServer::start() {
  sockaddr_un addr{};
  CEDR_RETURN_IF_ERROR(fill_sockaddr(socket_path_, addr));
  ::unlink(socket_path_.c_str());  // stale socket from a previous run
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Unavailable(std::string("socket(): ") + std::strerror(errno));
  }
  auto fail = [this](std::string msg) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable(std::move(msg));
  };
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail(std::string("bind(): ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    return fail(std::string("listen(): ") + std::strerror(errno));
  }
  if (const Status s = set_nonblocking(listen_fd_); !s.ok()) {
    return fail(s.message());
  }
  if (::pipe(wake_pipe_) < 0) {
    return fail(std::string("pipe(): ") + std::strerror(errno));
  }
  (void)set_nonblocking(wake_pipe_[0]);
  (void)set_nonblocking(wake_pipe_[1]);

  if (config_.enable_shm && shm_ == nullptr) {
    shm::ShmServerOptions shm_options;
    shm_options.segment.sub_slots = config_.shm_sub_slots;
    shm_options.segment.cpl_slots = config_.shm_cpl_slots;
    shm_options.segment.arena_bytes = config_.shm_arena_bytes;
    shm_options.max_sessions = config_.max_shm_sessions;
    shm_options.busy_retry_ms = config_.busy_retry_ms;
    shm_ = std::make_unique<shm::ShmServer>(runtime_, shm_options,
                                            [this] { return admit_submit(); });
  }

  running_.store(true, std::memory_order_release);
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  loop_thread_ = std::thread([this] { event_loop(); });
  runtime_.metrics().set_gauge("ipc.active_connections", 0.0);
  CEDR_LOG(kInfo, kLogTag) << "daemon listening on " << socket_path_ << " ("
                           << config_.worker_threads << " workers)";
  return Status::Ok();
}

void IpcServer::stop() {
  running_.store(false, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop has closed every connection; commands already in the pool
  // finish (their replies are dropped) before the workers join.
  jobs_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // After the workers: a queued drain job must find its session alive.
  if (shm_ != nullptr) shm_->close_all();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
  }
}

void IpcServer::wait_for_shutdown() {
  std::unique_lock lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_.load(std::memory_order_acquire);
  });
}

void IpcServer::wake() {
  if (wake_pipe_[1] < 0) return;
  // Coalesce: a burst of deposits needs one wake byte, not one syscall
  // each. The loop clears the flag after draining the pipe.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  const char byte = 1;
  // Nonblocking: a full pipe already guarantees a pending wakeup.
  (void)!::write(wake_pipe_[1], &byte, 1);
}

void IpcServer::event_loop() {
  std::vector<pollfd> pfds;
  std::vector<Connection*> polled;
  std::vector<std::pair<std::uint64_t, int>> shm_polled;
  std::vector<std::uint64_t> shm_drains;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    polled.clear();
    shm_polled.clear();
    {
      std::lock_guard lock(state_mutex_);
      const bool accept_paused = conns_.size() >= config_.max_connections;
      pfds.push_back({listen_fd_, static_cast<short>(accept_paused ? 0 : POLLIN),
                      0});
      pfds.push_back({wake_pipe_[0], POLLIN, 0});
      for (auto& [id, conn] : conns_) {
        short events = 0;
        const bool paused =
            conn->replies.size() >= config_.max_pending_per_conn;
        if (!conn->closing && !conn->read_eof && !paused) events |= POLLIN;
        if (conn->out_pos < conn->out.size()) events |= POLLOUT;
        pfds.push_back({conn->fd, events, 0});
        polled.push_back(conn.get());
      }
    }
    // Shm submission doorbells join the poll set after the connections.
    const std::size_t shm_base = pfds.size();
    if (shm_ != nullptr) {
      shm_->poll_fds(shm_polled);
      for (const auto& [session_id, doorbell_fd] : shm_polled) {
        pfds.push_back({doorbell_fd, POLLIN, 0});
      }
    }
    // Finite timeout: running_ flips without a wake() only in rare teardown
    // races; this bounds how long the loop could miss it.
    if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 200) < 0 &&
        errno != EINTR) {
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;
    if ((pfds[1].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
      // Clear after draining: a deposit racing this point re-arms the pipe
      // (at worst one redundant wake byte, never a lost one).
      wake_pending_.store(false, std::memory_order_release);
    }
    if ((pfds[0].revents & POLLIN) != 0) accept_ready();
    // Clear rung doorbells, then dispatch one drain job per session with
    // ring work. The rescan-every-round (not just on doorbell) is what
    // makes the protocol race-free: a drain that stopped on a full
    // completion ring or batch bound is re-dispatched here.
    if (shm_ != nullptr) {
      for (std::size_t i = 0; i < shm_polled.size(); ++i) {
        if ((pfds[shm_base + i].revents & POLLIN) != 0) {
          shm_->doorbell_rang(shm_polled[i].first);
        }
      }
      shm_drains.clear();
      shm_->claim_drains(shm_drains);
      for (const std::uint64_t session_id : shm_drains) {
        Job job;
        job.shm_session = session_id;
        (void)jobs_.push(std::move(job));  // pool closed only at teardown
      }
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Connection& conn = *polled[i];
      const short revents = pfds[i + 2].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) conn.closing = true;
      if (!conn.closing && (revents & (POLLIN | POLLHUP)) != 0) {
        read_ready(conn);
      }
    }
    // Per connection: flush first (worker deposits free pending slots),
    // then dispatch buffered lines up to the pending bound, then flush
    // again so inline verbs answer without waiting for another poll round.
    // Smallest read buffer first: a one-command poller (a dashboard's
    // STATS) is answered before this round turns to the deep pipelined
    // batches, instead of queueing behind them.
    std::sort(polled.begin(), polled.end(),
              [](const Connection* a, const Connection* b) {
                return a->framer.buffered() < b->framer.buffered();
              });
    std::vector<std::uint64_t> dead;
    for (Connection* conn : polled) {
      flush_replies(*conn);
      if (!conn->closing) drain_framer(*conn);
      flush_replies(*conn);
      bool drained;
      {
        std::lock_guard lock(state_mutex_);
        drained = conn->replies.empty() && conn->out_pos >= conn->out.size();
      }
      if ((conn->closing || conn->read_eof) && drained) {
        dead.push_back(conn->id);
      } else if (conn->closing && conn->out_pos >= conn->out.size()) {
        // Fatal error with slow commands still in flight: close now; their
        // deposits will find no connection and be dropped.
        dead.push_back(conn->id);
      }
    }
    for (const std::uint64_t id : dead) close_connection(id);
  }
  // Teardown: best-effort flush of replies already deposited — a SHUTDOWN
  // OK races the very stop() it triggers — then close everything; worker
  // deposits after this are dropped. Only this thread erases connections,
  // so the pointers stay valid across the unlocked flush.
  std::vector<Connection*> remaining;
  {
    std::lock_guard lock(state_mutex_);
    for (auto& [id, conn] : conns_) remaining.push_back(conn.get());
  }
  for (Connection* conn : remaining) flush_replies(*conn);
  std::lock_guard lock(state_mutex_);
  for (auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  runtime_.metrics().set_gauge("ipc.active_connections", 0.0);
}

void IpcServer::accept_ready() {
  while (true) {
    {
      std::lock_guard lock(state_mutex_);
      if (conns_.size() >= config_.max_connections) return;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error; poll again next round
    if (!set_nonblocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    std::size_t active;
    {
      std::lock_guard lock(state_mutex_);
      conn->id = next_conn_id_++;
      conns_.emplace(conn->id, std::move(conn));
      active = conns_.size();
    }
    runtime_.metrics().set_gauge("ipc.active_connections",
                                 static_cast<double>(active));
  }
}

void IpcServer::read_ready(Connection& conn) {
  const double start = runtime_.now();
  char buf[16384];
  std::size_t total = 0;
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.framer.append(buf, static_cast<std::size_t>(n));
      total += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {
      conn.read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    conn.closing = true;
    break;
  }
  if (total > 0) {
    runtime_.tracer().complete_span(obs::Category::kIpc, "ipc.read", 0,
                                    obs::kIpcTid, start,
                                    runtime_.now() - start, "bytes",
                                    static_cast<double>(total));
  }
}

void IpcServer::drain_framer(Connection& conn) {
  std::string line;
  while (!conn.bye) {
    {
      std::lock_guard lock(state_mutex_);
      if (conn.replies.size() >= config_.max_pending_per_conn) return;
    }
    if (!conn.framer.next_line(line)) break;
    dispatch_line(conn, line);
    if (conn.closing) return;
  }
  if (conn.framer.overflowed()) {
    // An over-long line cannot be resynchronized: parsing a clipped prefix
    // would desync every later command, so reply and drop the connection.
    const std::uint64_t seq = push_slot(conn);
    deposit_reply(conn.id, seq, "ERR line too long\n");
    conn.closing = true;
    runtime_.counters().add("ipc.overlong_lines");
  }
}

void IpcServer::dispatch_line(Connection& conn, const std::string& line) {
  const double admit_time = runtime_.now();
  const std::string_view verb = first_token(line);
  if (verb.empty()) return;  // blank line: ignore
  if (verb == "BYE") {
    // BYE ends the conversation; earlier pipelined replies still flush
    // first, later bytes are discarded.
    conn.bye = true;
    conn.read_eof = true;
    return;
  }
  if (verb == "SHMOPEN") {
    // Handled inline on the loop (segment creation is a couple of fast
    // syscalls) because the reply needs Connection access: the three
    // descriptors attach to this connection's next write as SCM_RIGHTS
    // ancillary data.
    std::string reply;
    if (shm_ == nullptr) {
      reply = "ERR shm disabled\n";
    } else if (auto info = shm_->open_session(conn.id); info.ok()) {
      reply = info->reply;
      conn.pending_fds = info->fds;
    } else {
      reply = "ERR " + info.status().to_string() + "\n";
    }
    std::lock_guard lock(state_mutex_);
    if (conn.replies.empty()) {
      conn.out += reply;
      return;
    }
    Connection::Reply slot;
    slot.seq = conn.next_seq++;
    slot.ready = true;
    slot.text = std::move(reply);
    conn.replies.push_back(std::move(slot));
    return;
  }
  if (is_submit_verb(verb) && !admit_submit()) {
    runtime_.counters().add("ipc.rejected_total");
    runtime_.metrics().set_gauge(
        "ipc.rejected_total",
        static_cast<double>(runtime_.counters().get("ipc.rejected_total")));
    const std::uint64_t seq = push_slot(conn);
    deposit_reply(conn.id, seq,
                  "BUSY " + std::to_string(config_.busy_retry_ms) + "\n");
    return;
  }
  if (is_slow_verb(verb)) {
    const std::uint64_t seq = push_slot(conn);
    if (is_submit_verb(verb)) {
      pending_submits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!jobs_.push(Job{conn.id, seq, line, admit_time})) {
      // Pool already closed (server stopping): fail the command instead of
      // leaving the slot forever pending.
      if (is_submit_verb(verb)) {
        pending_submits_.fetch_sub(1, std::memory_order_relaxed);
      }
      deposit_reply(conn.id, seq, "ERR server shutting down\n");
    }
    return;
  }
  // Cheap verb on the loop itself. No wake needed (the loop flushes right
  // after draining), and when no slow command is pending ahead the reply
  // can skip the slot queue entirely and append straight to the write
  // buffer — the ordering the queue exists to protect is trivially kept.
  std::string reply = handle_command(line, admit_time);
  {
    std::lock_guard lock(state_mutex_);
    if (conn.replies.empty()) {
      conn.out += reply;
      return;
    }
    Connection::Reply slot;
    slot.seq = conn.next_seq++;
    slot.ready = true;
    slot.text = std::move(reply);
    conn.replies.push_back(std::move(slot));
  }
}

void IpcServer::worker_loop() {
  while (true) {
    std::optional<Job> job = jobs_.pop();
    if (!job.has_value()) return;  // closed and drained
    if (job->shm_session != 0) {
      // Ring drain: wake the loop when work remains so claim_drains()
      // re-dispatches (the batch bound is how sessions round-robin).
      if (shm_ != nullptr && shm_->drain(job->shm_session)) wake();
      continue;
    }
    std::string reply = handle_command(job->line, job->admit_time);
    const std::string_view verb = first_token(job->line);
    if (is_submit_verb(verb)) {
      pending_submits_.fetch_sub(1, std::memory_order_relaxed);
    }
    deposit_reply(job->conn_id, job->seq, std::move(reply));
    if (verb == "SHUTDOWN") {
      // Notify only after the deposit: wait_for_shutdown() returning is the
      // daemon's cue to stop() the server, and the deposited OK must be in
      // its slot before the loop's teardown flush can send it.
      {
        std::lock_guard lock(shutdown_mutex_);
        shutdown_requested_.store(true, std::memory_order_release);
      }
      shutdown_cv_.notify_all();
    }
  }
}

std::uint64_t IpcServer::push_slot(Connection& conn) {
  std::lock_guard lock(state_mutex_);
  Connection::Reply slot;
  slot.seq = conn.next_seq++;
  conn.replies.push_back(std::move(slot));
  return conn.replies.back().seq;
}

void IpcServer::deposit_reply(std::uint64_t conn_id, std::uint64_t seq,
                              std::string text) {
  {
    std::lock_guard lock(state_mutex_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // connection closed mid-command
    for (Connection::Reply& slot : it->second->replies) {
      if (slot.seq == seq) {
        slot.text = std::move(text);
        slot.ready = true;
        break;
      }
    }
  }
  wake();
}

void IpcServer::flush_replies(Connection& conn) {
  {
    std::lock_guard lock(state_mutex_);
    while (!conn.replies.empty() && conn.replies.front().ready) {
      conn.out += conn.replies.front().text;
      conn.replies.pop_front();
    }
  }
  if (conn.out_pos < conn.out.size()) write_ready(conn);
}

void IpcServer::write_ready(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    ssize_t n;
    if (!conn.pending_fds.empty()) {
      // SHMOPEN descriptors ride with the first reply bytes; the client
      // collects ancillary fds on every read until its reply line is in.
      n = shm::send_with_fds(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos,
                             conn.pending_fds);
      if (n > 0) conn.pending_fds.clear();
    } else {
      n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                 conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    }
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return;  // POLLOUT will resume
    }
    conn.closing = true;  // peer gone; drop the rest
    return;
  }
  conn.out.clear();
  conn.out_pos = 0;
}

void IpcServer::close_connection(std::uint64_t id) {
  std::size_t active;
  {
    std::lock_guard lock(state_mutex_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    ::close(it->second->fd);
    conns_.erase(it);
    active = conns_.size();
  }
  // The control connection is the shm session's lifeline: EOF (including
  // a SIGKILLed client) reaps the segment here.
  if (shm_ != nullptr) shm_->close_session(id);
  runtime_.metrics().set_gauge("ipc.active_connections",
                               static_cast<double>(active));
}

bool IpcServer::admit_submit() {
  if (config_.max_inflight_apps == 0) return true;
  const std::uint64_t submitted = runtime_.submitted_apps();
  const std::uint64_t completed = runtime_.completed_apps();
  const std::size_t inflight =
      static_cast<std::size_t>(submitted - completed) +
      pending_submits_.load(std::memory_order_relaxed);
  return inflight < config_.max_inflight_apps;
}

}  // namespace cedr::ipc
