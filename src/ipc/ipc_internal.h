#pragma once
// Helpers shared by the IPC server and client translation units.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>
#include <string>
#include <string_view>

#include "cedr/common/status.h"

namespace cedr::ipc {

inline Status fill_sockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("socket path empty or too long: " + path);
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return Status::Ok();
}

/// Blocking full write; false on error or peer close. MSG_NOSIGNAL: a peer
/// that disappeared mid-write must surface as EPIPE, not kill the process.
inline bool write_all(int fd, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Protocol verbs with a pre-built `ipc_cmd_us.<verb>` histogram slot.
inline constexpr std::string_view kCmdVerbs[] = {
    "SUBMIT", "SUBMITDAG", "STATUS", "STATS",
    "METRICS", "COSTS", "WAIT", "SHUTDOWN"};

/// Index into IpcServer::cmd_hist_, or -1 for an unknown verb.
inline int cmd_verb_index(std::string_view verb) {
  for (std::size_t i = 0; i < std::size(kCmdVerbs); ++i) {
    if (verb == kCmdVerbs[i]) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace cedr::ipc
