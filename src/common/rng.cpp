#include "cedr/common/rng.h"

#include <cmath>

namespace cedr {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniforms; guard against log(0).
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace cedr
