#include "cedr/common/status.h"

namespace cedr {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{status_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cedr
