#include "cedr/common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace cedr::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_sink_mutex;

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, std::string_view component, std::string_view message) {
  if (lvl < level()) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%10.6f][%s][%s][t%04zx] %.*s\n", elapsed,
               std::string(level_name(lvl)).c_str(),
               std::string(component).c_str(), tid & 0xffff,
               static_cast<int>(message.size()), message.data());
}

}  // namespace cedr::log
