#include "cedr/task/dag_loader.h"

namespace cedr::task {

StatusOr<AppDescriptor> app_from_json(const json::Value& doc) {
  if (!doc.is_object()) return InvalidArgument("DAG document must be object");
  AppDescriptor app;
  app.name = doc.get_string("app_name", "");
  if (app.name.empty()) {
    return InvalidArgument("DAG document missing 'app_name'");
  }
  const json::Value* tasks = doc.find("tasks");
  if (tasks == nullptr || !tasks->is_array()) {
    return InvalidArgument("DAG document 'tasks' must be an array");
  }
  // First pass: nodes.
  for (const json::Value& row : tasks->as_array()) {
    if (!row.is_object()) return InvalidArgument("task entry must be object");
    const json::Value* id = row.find("id");
    if (id == nullptr || !id->is_int() || id->as_int() < 0) {
      return InvalidArgument("task entry needs a nonnegative integer 'id'");
    }
    Task task;
    task.id = static_cast<TaskId>(id->as_int());
    task.name = row.get_string("name", "task" + std::to_string(task.id));
    const std::string kernel = row.get_string("kernel", "GENERIC");
    const auto kernel_id = platform::kernel_from_name(kernel);
    if (!kernel_id) return InvalidArgument("unknown kernel: " + kernel);
    task.kernel = *kernel_id;
    task.problem_size = static_cast<std::size_t>(row.get_int("size", 0));
    task.data_bytes = static_cast<std::size_t>(row.get_int("bytes", 0));
    CEDR_RETURN_IF_ERROR(app.graph.add_task(std::move(task)));
  }
  // Second pass: edges (all ids now exist).
  for (const json::Value& row : tasks->as_array()) {
    const TaskId to = static_cast<TaskId>(row.find("id")->as_int());
    const json::Value* preds = row.find("predecessors");
    if (preds == nullptr) continue;
    if (!preds->is_array()) {
      return InvalidArgument("'predecessors' must be an array");
    }
    for (const json::Value& pred : preds->as_array()) {
      if (!pred.is_int()) {
        return InvalidArgument("predecessor ids must be integers");
      }
      CEDR_RETURN_IF_ERROR(
          app.graph.add_edge(static_cast<TaskId>(pred.as_int()), to));
    }
  }
  const auto order = app.graph.topological_order();
  if (!order.ok()) return order.status();
  return app;
}

StatusOr<AppDescriptor> load_app(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc.ok()) return doc.status();
  return app_from_json(*doc);
}

json::Value app_to_json(const AppDescriptor& app) {
  json::Array rows;
  for (const Task& t : app.graph.tasks()) {
    json::Array preds;
    for (const TaskId p : app.graph.predecessors(t.id)) {
      preds.push_back(json::Value(p));
    }
    rows.push_back(json::Object{
        {"id", json::Value(t.id)},
        {"name", json::Value(t.name)},
        {"kernel", json::Value(platform::kernel_name(t.kernel))},
        {"size", json::Value(t.problem_size)},
        {"bytes", json::Value(t.data_bytes)},
        {"predecessors", json::Value(std::move(preds))},
    });
  }
  return json::Object{
      {"app_name", json::Value(app.name)},
      {"tasks", json::Value(std::move(rows))},
  };
}

}  // namespace cedr::task
