#include "cedr/task/task.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace cedr::task {

std::size_t TaskGraph::index_of(TaskId id) const {
  const auto it = index_.find(id);
  assert(it != index_.end() && "task id not in graph");
  return it->second;
}

Status TaskGraph::add_task(Task task) {
  if (contains(task.id)) {
    return AlreadyExists("duplicate task id " + std::to_string(task.id));
  }
  index_.emplace(task.id, tasks_.size());
  tasks_.push_back(std::move(task));
  successors_.emplace_back();
  predecessors_.emplace_back();
  return Status::Ok();
}

Status TaskGraph::add_edge(TaskId from, TaskId to) {
  if (!contains(from) || !contains(to)) {
    return NotFound("edge endpoint not in graph");
  }
  if (from == to) return InvalidArgument("self-edge on task");
  auto& succ = successors_[index_of(from)];
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) {
    return Status::Ok();  // duplicate edges collapse
  }
  succ.push_back(to);
  predecessors_[index_of(to)].push_back(from);
  return Status::Ok();
}

bool TaskGraph::contains(TaskId id) const noexcept {
  return index_.find(id) != index_.end();
}

const Task& TaskGraph::get(TaskId id) const { return tasks_[index_of(id)]; }
Task& TaskGraph::get(TaskId id) { return tasks_[index_of(id)]; }

const std::vector<TaskId>& TaskGraph::successors(TaskId id) const {
  return successors_[index_of(id)];
}

const std::vector<TaskId>& TaskGraph::predecessors(TaskId id) const {
  return predecessors_[index_of(id)];
}

std::vector<TaskId> TaskGraph::head_nodes() const {
  std::vector<TaskId> heads;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (predecessors_[i].empty()) heads.push_back(tasks_[i].id);
  }
  return heads;
}

StatusOr<std::vector<TaskId>> TaskGraph::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    in_degree[i] = predecessors_[i].size();
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    order.push_back(tasks_[i].id);
    for (const TaskId succ : successors_[i]) {
      const std::size_t j = index_of(succ);
      if (--in_degree[j] == 0) ready.push_back(j);
    }
  }
  if (order.size() != tasks_.size()) {
    return FailedPrecondition("task graph contains a cycle");
  }
  return order;
}

}  // namespace cedr::task
