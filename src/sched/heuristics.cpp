#include "cedr/sched/heuristics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace cedr::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Execution estimate of `t` on `pe`'s class.
double exec_estimate(const ReadyTask& t, const PeState& pe,
                     const ScheduleContext& ctx) noexcept {
  return ctx.costs->estimate(t.kernel, pe.cls, t.problem_size, t.data_bytes) /
         pe.speed;
}

}  // namespace

double finish_time_on(const ReadyTask& t, const PeState& pe,
                      const ScheduleContext& ctx) noexcept {
  if (pe.quarantined) return kInf;
  if (!t.allowed_on(pe.cls)) return kInf;
  const double exec = exec_estimate(t, pe, ctx);
  if (exec == kInf) return kInf;
  return std::max(ctx.now, pe.available_time) + exec;
}

ScheduleResult RoundRobinScheduler::schedule(std::span<const ReadyTask> ready,
                                             std::span<PeState> pes,
                                             const ScheduleContext& ctx) {
  ScheduleResult result;
  if (pes.empty()) return result;
  for (std::size_t q = 0; q < ready.size(); ++q) {
    // Rotate to the next PE that supports this kernel; RR "tries to use all
    // of the PEs equally" (paper §IV-C) with no cost awareness.
    std::size_t probes = 0;
    while (probes < pes.size()) {
      PeState& pe = pes[next_pe_ % pes.size()];
      next_pe_ = (next_pe_ + 1) % pes.size();
      ++probes;
      ++result.comparisons;
      if (pe.quarantined ||
          !platform::pe_class_supports(pe.cls, ready[q].kernel) ||
          !ready[q].allowed_on(pe.cls)) {
        continue;
      }
      const double exec = exec_estimate(ready[q], pe, ctx);
      pe.available_time = std::max(ctx.now, pe.available_time) + exec;
      result.assignments.push_back({q, pe.pe_index});
      break;
    }
  }
  return result;
}

ScheduleResult EftScheduler::schedule(std::span<const ReadyTask> ready,
                                      std::span<PeState> pes,
                                      const ScheduleContext& ctx) {
  ScheduleResult result;
  for (std::size_t q = 0; q < ready.size(); ++q) {
    double best = kInf;
    PeState* best_pe = nullptr;
    for (PeState& pe : pes) {
      ++result.comparisons;
      const double finish = finish_time_on(ready[q], pe, ctx);
      if (finish < best) {
        best = finish;
        best_pe = &pe;
      }
    }
    if (best_pe == nullptr) continue;  // no PE supports this kernel
    best_pe->available_time = best;
    result.assignments.push_back({q, best_pe->pe_index});
  }
  return result;
}

ScheduleResult EtfScheduler::schedule(std::span<const ReadyTask> ready,
                                      std::span<PeState> pes,
                                      const ScheduleContext& ctx) {
  // ETF semantics: each step assigns the globally earliest-finishing
  // (task, PE) pair among all unassigned tasks. The reference
  // implementation rescans every pair each step — O(Q^2 * P) cost
  // evaluations — which is exactly why ETF's overhead tracks ready-queue
  // size in the paper (Fig. 7). We *report* that naive comparison count
  // (the emulator charges decision time from it) but *compute* the
  // identical assignment with a lazy min-heap: since PE availability only
  // ever increases within a round, a popped entry whose PE state is
  // unchanged is globally minimal, and stale entries are recomputed and
  // reinserted.
  ScheduleResult result;
  const std::size_t q_count = ready.size();
  const std::size_t p_count = pes.size();
  if (q_count == 0 || p_count == 0) return result;

  // Naive-reference cost: P * (Q + Q-1 + ... + 1).
  result.comparisons = static_cast<std::uint64_t>(p_count) * q_count *
                       (q_count + 1) / 2;

  struct Entry {
    double finish;
    std::size_t q;
    std::size_t pe_slot;   ///< index into `pes`
    std::uint64_t stamp;   ///< pes[pe_slot] version when evaluated
  };
  const auto later = [](const Entry& a, const Entry& b) {
    return a.finish > b.finish;
  };
  std::vector<std::uint64_t> version(p_count, 0);

  const auto best_for = [&](std::size_t q) -> Entry {
    Entry e{kInf, q, 0, 0};
    for (std::size_t p = 0; p < p_count; ++p) {
      const double finish = finish_time_on(ready[q], pes[p], ctx);
      if (finish < e.finish) {
        e.finish = finish;
        e.pe_slot = p;
        e.stamp = version[p];
      }
    }
    return e;
  };

  std::vector<Entry> heap;
  heap.reserve(q_count);
  for (std::size_t q = 0; q < q_count; ++q) {
    const Entry e = best_for(q);
    if (e.finish < kInf) heap.push_back(e);
  }
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Entry e = heap.back();
    heap.pop_back();
    if (e.stamp != version[e.pe_slot]) {
      // Stale: the chosen PE moved since this entry was computed.
      e = best_for(e.q);
      if (e.finish >= kInf) continue;
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), later);
      continue;
    }
    PeState& pe = pes[e.pe_slot];
    pe.available_time = e.finish;
    ++version[e.pe_slot];
    result.assignments.push_back({e.q, pe.pe_index});
  }
  return result;
}

ScheduleResult HeftRtScheduler::schedule(std::span<const ReadyTask> ready,
                                         std::span<PeState> pes,
                                         const ScheduleContext& ctx) {
  ScheduleResult result;
  // Order by upward rank (descending): tasks on the critical path first.
  std::vector<std::size_t> order(ready.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&ready](std::size_t a, std::size_t b) {
                     return ready[a].rank > ready[b].rank;
                   });
  // Sorting cost: ~Q log2 Q comparisons.
  if (ready.size() > 1) {
    result.comparisons += static_cast<std::uint64_t>(
        static_cast<double>(ready.size()) *
        std::max(1.0, std::log2(static_cast<double>(ready.size()))));
  }
  for (const std::size_t q : order) {
    double best = kInf;
    PeState* best_pe = nullptr;
    for (PeState& pe : pes) {
      ++result.comparisons;
      const double finish = finish_time_on(ready[q], pe, ctx);
      if (finish < best) {
        best = finish;
        best_pe = &pe;
      }
    }
    if (best_pe == nullptr) continue;
    best_pe->available_time = best;
    result.assignments.push_back({q, best_pe->pe_index});
  }
  return result;
}

ScheduleResult MetScheduler::schedule(std::span<const ReadyTask> ready,
                                      std::span<PeState> pes,
                                      const ScheduleContext& ctx) {
  ScheduleResult result;
  for (std::size_t q = 0; q < ready.size(); ++q) {
    double best = kInf;
    PeState* best_pe = nullptr;
    for (PeState& pe : pes) {
      ++result.comparisons;
      if (pe.quarantined || !ready[q].allowed_on(pe.cls)) continue;
      const double exec = exec_estimate(ready[q], pe, ctx);
      if (exec < best) {
        best = exec;
        best_pe = &pe;
      }
    }
    if (best_pe == nullptr) continue;
    // Availability is tracked (so traces stay meaningful) but never read:
    // MET ignores queueing, which is exactly its pathology.
    best_pe->available_time =
        std::max(ctx.now, best_pe->available_time) + best;
    result.assignments.push_back({q, best_pe->pe_index});
  }
  return result;
}

ScheduleResult RandomScheduler::schedule(std::span<const ReadyTask> ready,
                                         std::span<PeState> pes,
                                         const ScheduleContext& ctx) {
  ScheduleResult result;
  std::vector<PeState*> compatible;
  for (std::size_t q = 0; q < ready.size(); ++q) {
    compatible.clear();
    for (PeState& pe : pes) {
      ++result.comparisons;
      if (!pe.quarantined &&
          platform::pe_class_supports(pe.cls, ready[q].kernel) &&
          ready[q].allowed_on(pe.cls)) {
        compatible.push_back(&pe);
      }
    }
    if (compatible.empty()) continue;
    PeState& pe = *compatible[rng_.next_below(compatible.size())];
    pe.available_time = std::max(ctx.now, pe.available_time) +
                        exec_estimate(ready[q], pe, ctx);
    result.assignments.push_back({q, pe.pe_index});
  }
  return result;
}

StatusOr<std::unique_ptr<Scheduler>> make_scheduler(std::string_view name) {
  if (name == "RR") return std::unique_ptr<Scheduler>(new RoundRobinScheduler);
  if (name == "EFT") return std::unique_ptr<Scheduler>(new EftScheduler);
  if (name == "ETF") return std::unique_ptr<Scheduler>(new EtfScheduler);
  if (name == "HEFT_RT") return std::unique_ptr<Scheduler>(new HeftRtScheduler);
  if (name == "MET") return std::unique_ptr<Scheduler>(new MetScheduler);
  if (name == "RANDOM") return std::unique_ptr<Scheduler>(new RandomScheduler);
  return NotFound("unknown scheduler: " + std::string(name));
}

std::span<const std::string_view> scheduler_names() noexcept {
  // The paper's four first, then the ecosystem baselines.
  static constexpr std::string_view kNames[] = {"RR",  "EFT",    "ETF",
                                                "HEFT_RT", "MET", "RANDOM"};
  return kNames;
}

}  // namespace cedr::sched
