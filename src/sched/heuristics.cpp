#include "cedr/sched/heuristics.h"

#include <algorithm>

#include "cedr/sched/frontier.h"
#include <cmath>
#include <limits>
#include <numeric>

namespace cedr::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
}  // namespace

double finish_time_on(const ReadyTask& t, const PeState& pe,
                      const ScheduleContext& ctx) noexcept {
  if (pe.quarantined) return kInf;
  if (!t.allowed_on(pe.cls)) return kInf;
  const double exec =
      ctx.costs->estimate(t.kernel, pe.cls, t.problem_size, t.data_bytes) /
      pe.speed;
  if (exec == kInf) return kInf;
  return std::max(ctx.now, pe.available_time) + exec;
}

ScheduleResult RoundRobinScheduler::schedule(CandidateView& view) {
  ScheduleResult result;
  const std::size_t p_count = view.pe_count();
  if (p_count == 0) return result;
  const std::span<PeState> pes = view.pes();
  const ScheduleContext& ctx = view.ctx();
  for (const std::size_t q : view.tasks()) {
    // Rotate to the next PE that supports this kernel; RR "tries to use all
    // of the PEs equally" (paper §IV-C) with no cost awareness. The legacy
    // loop probed PE by PE from the cursor, charging one comparison per
    // probe; the eligible list lets us land on the same PE with cursor
    // arithmetic while charging the identical probe count.
    const std::span<const std::size_t> eligible = view.support_eligible(q);
    if (eligible.empty()) {
      // A full fruitless rotation: P probes, cursor back where it started.
      result.comparisons += p_count;
      continue;
    }
    const std::size_t cursor = next_pe_ % p_count;
    const std::size_t cursor_slot = view.admitted_slots()[cursor];
    // First eligible slot at/after the cursor, wrapping to the front.
    const auto it =
        std::lower_bound(eligible.begin(), eligible.end(), cursor_slot);
    const std::size_t slot = it != eligible.end() ? *it : eligible.front();
    const std::size_t position = view.rotation_position(slot);
    result.comparisons += (position + p_count - cursor) % p_count + 1;
    next_pe_ = (position + 1) % p_count;
    PeState& pe = pes[slot];
    pe.available_time =
        std::max(ctx.now, pe.available_time) + view.exec_estimate(q, pe);
    result.assignments.push_back({q, pe.pe_index});
  }
  return result;
}

ScheduleResult RoundRobinScheduler::schedule(std::span<const ReadyTask> ready,
                                             std::span<PeState> pes,
                                             const ScheduleContext& ctx) {
  // Direct probe loop, no CandidateView: RR decides from nominal kernel
  // support only, so the view's cost memoization buys nothing and its
  // construction cost (~1 µs) is pure overhead on an otherwise flat ~10 µs
  // round. Probing slots cursor, cursor+1, ... is exactly the view path's
  // "first eligible slot at/after the cursor, wrapping" with one comparison
  // charged per probe, so both paths stay bit-identical.
  ScheduleResult result;
  const std::size_t p_count = pes.size();
  if (p_count == 0) return result;
  for (std::size_t q = 0; q < ready.size(); ++q) {
    const ReadyTask& t = ready[q];
    const std::size_t cursor = next_pe_ % p_count;
    bool placed = false;
    for (std::size_t probe = 0; probe < p_count; ++probe) {
      const std::size_t slot = (cursor + probe) % p_count;
      PeState& pe = pes[slot];
      if (pe.quarantined || !t.allowed_on(pe.cls) ||
          !platform::pe_class_supports(pe.cls, t.kernel)) {
        continue;
      }
      result.comparisons += probe + 1;
      next_pe_ = (slot + 1) % p_count;
      const double exec =
          ctx.costs->estimate(t.kernel, pe.cls, t.problem_size, t.data_bytes) /
          pe.speed;
      pe.available_time = std::max(ctx.now, pe.available_time) + exec;
      result.assignments.push_back({q, pe.pe_index});
      placed = true;
      break;
    }
    // A full fruitless rotation: P probes, cursor back where it started.
    if (!placed) result.comparisons += p_count;
  }
  return result;
}

ScheduleResult EftScheduler::schedule(CandidateView& view) {
  ScheduleResult result;
  const std::span<PeState> pes = view.pes();
  const ScheduleContext& ctx = view.ctx();
  const std::size_t p_count = view.pe_count();
  for (const std::size_t q : view.tasks()) {
    // The legacy scan evaluated every PE; ineligible ones produced +inf and
    // never won. Charging P comparisons while scanning only the eligible
    // list keeps both the count and the winner (strict <, ascending slots)
    // identical.
    result.comparisons += p_count;
    double best = kInf;
    std::size_t best_slot = kNoSlot;
    for (const std::size_t slot : view.cost_eligible(q)) {
      const PeState& pe = pes[slot];
      const double finish =
          std::max(ctx.now, pe.available_time) + view.exec_estimate(q, pe);
      if (finish < best) {
        best = finish;
        best_slot = slot;
      }
    }
    if (best_slot == kNoSlot) continue;  // no PE supports this kernel
    pes[best_slot].available_time = best;
    result.assignments.push_back({q, pes[best_slot].pe_index});
  }
  return result;
}

ScheduleResult EtfScheduler::schedule(CandidateView& view) {
  // ETF semantics: each step assigns the globally earliest-finishing
  // (task, PE) pair among all unassigned tasks. The reference
  // implementation rescans every pair each step — O(Q^2 * P) cost
  // evaluations — which is exactly why ETF's overhead tracks ready-queue
  // size in the paper (Fig. 7). We *report* that naive comparison count
  // (the emulator charges decision time from it) but *compute* the
  // identical assignment with a lazy min-heap: since PE availability only
  // ever increases within a round, a popped entry whose PE state is
  // unchanged is globally minimal, and stale entries are recomputed and
  // reinserted.
  ScheduleResult result;
  const std::span<const std::size_t> tasks = view.tasks();
  const std::size_t q_count = tasks.size();
  const std::size_t p_count = view.pe_count();
  if (q_count == 0 || p_count == 0) return result;
  const std::span<PeState> pes = view.pes();
  const ScheduleContext& ctx = view.ctx();

  // Naive-reference cost: P * (Q + Q-1 + ... + 1).
  result.comparisons = static_cast<std::uint64_t>(p_count) * q_count *
                       (q_count + 1) / 2;

  struct Entry {
    double finish;
    std::size_t q;
    std::size_t pe_slot;   ///< index into `pes`
    std::uint64_t stamp;   ///< pes[pe_slot] version when evaluated
  };
  const auto later = [](const Entry& a, const Entry& b) {
    return a.finish > b.finish;
  };
  std::vector<std::uint64_t> version(pes.size(), 0);

  const auto best_for = [&](std::size_t q) -> Entry {
    Entry e{kInf, q, 0, 0};
    for (const std::size_t slot : view.cost_eligible(q)) {
      const PeState& pe = pes[slot];
      const double finish =
          std::max(ctx.now, pe.available_time) + view.exec_estimate(q, pe);
      if (finish < e.finish) {
        e.finish = finish;
        e.pe_slot = slot;
        e.stamp = version[slot];
      }
    }
    return e;
  };

  std::vector<Entry> heap;
  heap.reserve(q_count);
  for (const std::size_t q : tasks) {
    const Entry e = best_for(q);
    if (e.finish < kInf) heap.push_back(e);
  }
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Entry e = heap.back();
    heap.pop_back();
    if (e.stamp != version[e.pe_slot]) {
      // Stale: the chosen PE moved since this entry was computed.
      e = best_for(e.q);
      if (e.finish >= kInf) continue;
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), later);
      continue;
    }
    PeState& pe = pes[e.pe_slot];
    pe.available_time = e.finish;
    ++version[e.pe_slot];
    result.assignments.push_back({e.q, pe.pe_index});
  }
  return result;
}

ScheduleResult HeftRtScheduler::schedule(CandidateView& view) {
  ScheduleResult result;
  const std::span<const ReadyTask> ready = view.ready();
  const std::span<PeState> pes = view.pes();
  const ScheduleContext& ctx = view.ctx();
  const std::size_t p_count = view.pe_count();
  // Order by upward rank (descending): tasks on the critical path first.
  const std::span<const std::size_t> tasks = view.tasks();
  std::vector<std::size_t> order(tasks.begin(), tasks.end());
  std::stable_sort(order.begin(), order.end(),
                   [&ready](std::size_t a, std::size_t b) {
                     return ready[a].rank > ready[b].rank;
                   });
  // Sorting cost: ~Q log2 Q comparisons.
  if (order.size() > 1) {
    result.comparisons += static_cast<std::uint64_t>(
        static_cast<double>(order.size()) *
        std::max(1.0, std::log2(static_cast<double>(order.size()))));
  }
  for (const std::size_t q : order) {
    result.comparisons += p_count;
    double best = kInf;
    std::size_t best_slot = kNoSlot;
    for (const std::size_t slot : view.cost_eligible(q)) {
      const PeState& pe = pes[slot];
      const double finish =
          std::max(ctx.now, pe.available_time) + view.exec_estimate(q, pe);
      if (finish < best) {
        best = finish;
        best_slot = slot;
      }
    }
    if (best_slot == kNoSlot) continue;
    pes[best_slot].available_time = best;
    result.assignments.push_back({q, pes[best_slot].pe_index});
  }
  return result;
}

ScheduleResult MetScheduler::schedule(CandidateView& view) {
  ScheduleResult result;
  const std::span<PeState> pes = view.pes();
  const ScheduleContext& ctx = view.ctx();
  const std::size_t p_count = view.pe_count();
  for (const std::size_t q : view.tasks()) {
    result.comparisons += p_count;
    double best = kInf;
    std::size_t best_slot = kNoSlot;
    for (const std::size_t slot : view.cost_eligible(q)) {
      const double exec = view.exec_estimate(q, pes[slot]);
      if (exec < best) {
        best = exec;
        best_slot = slot;
      }
    }
    if (best_slot == kNoSlot) continue;
    // Availability is tracked (so traces stay meaningful) but never read:
    // MET ignores queueing, which is exactly its pathology.
    PeState& pe = pes[best_slot];
    pe.available_time = std::max(ctx.now, pe.available_time) + best;
    result.assignments.push_back({q, pe.pe_index});
  }
  return result;
}

ScheduleResult RandomScheduler::schedule(CandidateView& view) {
  ScheduleResult result;
  const std::span<PeState> pes = view.pes();
  const ScheduleContext& ctx = view.ctx();
  const std::size_t p_count = view.pe_count();
  for (const std::size_t q : view.tasks()) {
    result.comparisons += p_count;
    // The eligible list is ascending by slot — the same candidate order the
    // legacy scan built — so the seeded pick lands on the same PE.
    const std::span<const std::size_t> eligible = view.support_eligible(q);
    if (eligible.empty()) continue;
    PeState& pe = pes[eligible[rng_.next_below(eligible.size())]];
    pe.available_time =
        std::max(ctx.now, pe.available_time) + view.exec_estimate(q, pe);
    result.assignments.push_back({q, pe.pe_index});
  }
  return result;
}

StatusOr<std::unique_ptr<Scheduler>> make_scheduler(std::string_view name) {
  if (name == "RR") return std::unique_ptr<Scheduler>(new RoundRobinScheduler);
  if (name == "EFT") return std::unique_ptr<Scheduler>(new EftScheduler);
  if (name == "ETF") return std::unique_ptr<Scheduler>(new EtfScheduler);
  if (name == "HEFT_RT") return std::unique_ptr<Scheduler>(new HeftRtScheduler);
  if (name == "HEFT_LA") return std::unique_ptr<Scheduler>(new HeftLaScheduler);
  if (name == "EFT_LA") return std::unique_ptr<Scheduler>(new EftLaScheduler);
  if (name == "MET") return std::unique_ptr<Scheduler>(new MetScheduler);
  if (name == "RANDOM") return std::unique_ptr<Scheduler>(new RandomScheduler);
  return NotFound("unknown scheduler: " + std::string(name));
}

std::span<const std::string_view> scheduler_names() noexcept {
  // The paper's four first, then the frontier-lookahead pair
  // (docs/scheduling.md "Lookahead rounds"), then the ecosystem baselines.
  static constexpr std::string_view kNames[] = {
      "RR", "EFT", "ETF", "HEFT_RT", "HEFT_LA", "EFT_LA", "MET", "RANDOM"};
  return kNames;
}

}  // namespace cedr::sched
