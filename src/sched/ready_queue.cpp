#include "cedr/sched/ready_queue.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "cedr/common/stopwatch.h"

namespace cedr::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kClassBits = (1u << platform::kNumPeClasses) - 1u;
}  // namespace

// ---------------------------------------------------------------------------
// CandidateView
// ---------------------------------------------------------------------------

void CandidateView::reset(std::span<const ReadyTask> ready,
                          std::span<PeState> pes, const ScheduleContext& ctx,
                          std::uint32_t admit_mask) {
  ready_ = ready;
  pes_ = pes;
  ctx_ = &ctx;
  admit_mask_ = admit_mask;
  slotted_classes_ = 0;
  admitted_is_identity_ = true;
  task_indices_.clear();
  admitted_slots_.clear();
  for (auto& slots : class_slots_) slots.clear();
  kinds_.clear();
  kind_of_.clear();
  for (std::size_t m = 0; m < kMaskSpace; ++m) {
    if (merged_built_[m]) {
      merged_[m].clear();
      merged_built_[m] = false;
    }
  }

  // --- PE side: admitted pool + per-class non-quarantined slot lists. ------
  const bool unrestricted = (admit_mask_ & kClassBits) == kClassBits;
  admitted_slots_.reserve(pes_.size());
  for (std::size_t slot = 0; slot < pes_.size(); ++slot) {
    const PeState& pe = pes_[slot];
    const auto cls = static_cast<std::size_t>(pe.cls);
    if (((admit_mask_ >> cls) & 1u) == 0) {
      admitted_is_identity_ = false;
      continue;
    }
    admitted_slots_.push_back(slot);
    if (pe.quarantined) continue;
    class_slots_[cls].push_back(slot);
    slotted_classes_ |= 1u << cls;
  }

  // --- Task side: support masks only. Support depends on the kernel id
  // alone, so a fixed per-kernel cache answers every task; kind
  // identification (for the cost side) is deferred to kind_costs(), so
  // support-only heuristics (RR, RANDOM) only touch the cost model for
  // kinds they actually assign.
  support_mask_.assign(ready_.size(), 0);
  kind_of_.assign(ready_.size(), kNoKind);
  constexpr std::uint8_t kUnknown = 0xff;  // masks only use the low 4 bits
  std::array<std::uint8_t, platform::kNumKernelIds> kernel_support;
  kernel_support.fill(kUnknown);
  for (std::size_t q = 0; q < ready_.size(); ++q) {
    const ReadyTask& t = ready_[q];
    const auto kid = static_cast<std::size_t>(t.kernel);
    if (kernel_support[kid] == kUnknown) {
      std::uint8_t support = 0;
      for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
        if (platform::pe_class_supports(static_cast<platform::PeClass>(c),
                                        t.kernel)) {
          support |= 1u << c;
        }
      }
      kernel_support[kid] = support;
    }
    const std::uint32_t allowed = t.class_mask & admit_mask_ & kClassBits;
    support_mask_[q] = static_cast<std::uint8_t>(kernel_support[kid] &
                                                 allowed);
  }
  if (unrestricted) {
    // Unrestricted views admit every task — the legacy formulas count even
    // unassignable ones — so tasks() is just 0..Q-1, served from a
    // monotonically grown iota table with no per-round stores.
    while (iota_.size() < ready_.size()) iota_.push_back(iota_.size());
    task_span_ = std::span<const std::size_t>(iota_.data(), ready_.size());
  } else {
    // Restricted views admit only tasks that can land on an admitted
    // class, under either predicate — which needs the cost side.
    for (std::size_t q = 0; q < ready_.size(); ++q) {
      if (((support_mask_[q] | cost_mask(q)) & slotted_classes_) != 0) {
        task_indices_.push_back(q);
      }
    }
    task_span_ = task_indices_;
  }
}

std::uint32_t CandidateView::identify_kind(std::size_t q) const {
  const ReadyTask& t = ready_[q];
  std::size_t k = 0;
  for (; k < kinds_.size(); ++k) {
    const Kind& kind = kinds_[k];
    if (kind.kernel == t.kernel && kind.size == t.problem_size &&
        kind.bytes == t.data_bytes) {
      break;
    }
  }
  if (k == kinds_.size()) {
    Kind kind;
    kind.kernel = t.kernel;
    kind.size = t.problem_size;
    kind.bytes = t.data_bytes;
    kinds_.push_back(kind);
  }
  kind_of_[q] = static_cast<std::uint32_t>(k);
  return kind_of_[q];
}

void CandidateView::compute_kind_costs(Kind& kind) const {
  kind.costs_done = true;
  for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
    const double est = ctx_->costs->estimate(
        kind.kernel, static_cast<platform::PeClass>(c), kind.size, kind.bytes);
    kind.est[c] = est;
    if (est < kInf) kind.finite_mask |= 1u << c;
  }
}

std::size_t CandidateView::rotation_position(
    std::size_t slot) const noexcept {
  if (admitted_is_identity_) return slot;
  const auto it =
      std::lower_bound(admitted_slots_.begin(), admitted_slots_.end(), slot);
  return static_cast<std::size_t>(it - admitted_slots_.begin());
}

double CandidateView::finish_time_on(std::size_t q,
                                     const PeState& pe) const {
  if (pe.quarantined) return kInf;
  if (!ready_[q].allowed_on(pe.cls)) return kInf;
  const double exec = exec_estimate(q, pe);
  if (exec == kInf) return kInf;
  return std::max(ctx_->now, pe.available_time) + exec;
}

std::span<const std::size_t> CandidateView::merged_slots(
    std::uint32_t class_mask) const {
  class_mask &= slotted_classes_;
  if (class_mask == 0) return {};
  if (std::has_single_bit(class_mask)) {
    return class_slots_[std::countr_zero(class_mask)];
  }
  if (!merged_built_[class_mask]) {
    // Merge the (already ascending) class lists; with <= kNumPeClasses
    // lists a repeated two-way merge into a reused scratch is plenty.
    std::vector<std::size_t>& out = merged_[class_mask];
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      if (((class_mask >> c) & 1u) == 0) continue;
      const std::vector<std::size_t>& add = class_slots_[c];
      if (out.empty()) {
        out.assign(add.begin(), add.end());
      } else {
        merge_scratch_.clear();
        merge_scratch_.reserve(out.size() + add.size());
        std::merge(out.begin(), out.end(), add.begin(), add.end(),
                   std::back_inserter(merge_scratch_));
        std::swap(out, merge_scratch_);
      }
    }
    merged_built_[class_mask] = true;
  }
  return merged_[class_mask];
}

// ---------------------------------------------------------------------------
// ReadyQueueShards
// ---------------------------------------------------------------------------

std::size_t ReadyQueueShards::shard_for(std::uint32_t effective_mask) noexcept {
  const std::uint32_t mask = effective_mask & kClassBits;
  if (std::has_single_bit(mask)) {
    return static_cast<std::size_t>(std::countr_zero(mask));
  }
  return kMultiShard;
}

std::string_view ReadyQueueShards::shard_name(std::size_t shard) noexcept {
  if (shard < platform::kNumPeClasses) {
    return platform::pe_class_name(static_cast<platform::PeClass>(shard));
  }
  return "multi";
}

std::unique_lock<std::mutex> ReadyQueueShards::acquire(const Shard& s) const {
  std::unique_lock lock(s.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    Stopwatch wait;
    lock.lock();
    if (lock_wait_us_ != nullptr) lock_wait_us_->record(wait.elapsed_us());
  }
  return lock;
}

void ReadyQueueShards::push(const ReadyTask& view,
                            std::shared_ptr<void> payload) {
  const std::size_t shard = shard_for(view.class_mask);
  Entry entry{
      .view = view,
      .payload = std::move(payload),
      .seq = next_seq_.fetch_add(1, std::memory_order_relaxed),
      .shard = static_cast<std::uint8_t>(shard),
  };
  {
    const auto lock = acquire(shards_[shard]);
    shards_[shard].entries.push_back(std::move(entry));
    // Counted inside the critical section: once the entry is visible to a
    // concurrent snapshot/remove cycle, its decrement must find the
    // increment already applied — counting after unlock lets a fast
    // dispatch remove the entry first and wrap total_ below zero.
    depths_[shard].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ReadyQueueShards::push_batch(std::span<PushItem> items) {
  if (items.empty()) return;
  // One fetch_add reserves the whole seq range; assigning seq0+i in input
  // order makes the batch merge into snapshots exactly as element-wise
  // pushes would.
  const std::uint64_t seq0 =
      next_seq_.fetch_add(items.size(), std::memory_order_relaxed);
  for (std::size_t shard = 0; shard < kShardCount; ++shard) {
    bool locked = false;
    std::unique_lock<std::mutex> lock;
    for (std::size_t i = 0; i < items.size(); ++i) {
      PushItem& item = items[i];
      if (shard_for(item.view.class_mask) != shard) continue;
      if (!locked) {
        lock = acquire(shards_[shard]);
        locked = true;
      }
      shards_[shard].entries.push_back(Entry{
          .view = item.view,
          .payload = std::move(item.payload),
          .seq = seq0 + i,
          .shard = static_cast<std::uint8_t>(shard),
      });
      // Same invariant as push(): count while still holding the lock.
      depths_[shard].fetch_add(1, std::memory_order_relaxed);
      total_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

ReadyQueueShards::Snapshot ReadyQueueShards::snapshot() const {
  Snapshot snap;
  snap.entries.reserve(size());
  for (const Shard& shard : shards_) {
    const auto lock = acquire(shard);
    snap.entries.insert(snap.entries.end(), shard.entries.begin(),
                        shard.entries.end());
  }
  // Seq order is push order: the merged view is the same global FIFO the
  // legacy single deque presented, which keeps heuristic inputs — and
  // therefore sim golden traces — identical.
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  snap.views.reserve(snap.entries.size());
  for (const Entry& e : snap.entries) snap.views.push_back(e.view);
  return snap;
}

void ReadyQueueShards::remove(std::span<const Entry> taken) {
  if (taken.empty()) return;
  for (std::size_t shard = 0; shard < kShardCount; ++shard) {
    // Collect this shard's doomed seqs first so the lock covers only the
    // erase itself.
    std::vector<std::uint64_t> seqs;
    for (const Entry& e : taken) {
      if (e.shard == shard) seqs.push_back(e.seq);
    }
    if (seqs.empty()) continue;
    std::sort(seqs.begin(), seqs.end());
    {
      const auto lock = acquire(shards_[shard]);
      auto& entries = shards_[shard].entries;
      const auto new_end = std::remove_if(
          entries.begin(), entries.end(), [&seqs](const Entry& e) {
            return std::binary_search(seqs.begin(), seqs.end(), e.seq);
          });
      const auto erased = static_cast<std::size_t>(entries.end() - new_end);
      entries.erase(new_end, entries.end());
      depths_[shard].fetch_sub(erased, std::memory_order_relaxed);
      total_.fetch_sub(erased, std::memory_order_relaxed);
    }
  }
}

std::array<std::size_t, ReadyQueueShards::kShardCount>
ReadyQueueShards::depths() const noexcept {
  std::array<std::size_t, kShardCount> out{};
  for (std::size_t i = 0; i < kShardCount; ++i) {
    out[i] = depths_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace cedr::sched
