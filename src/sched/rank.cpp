#include "cedr/sched/rank.h"

#include <algorithm>

namespace cedr::sched {

double average_execution(const task::Task& t,
                         const platform::PlatformConfig& platform) noexcept {
  double total = 0.0;
  std::size_t supported = 0;
  for (const platform::PeDescriptor& pe : platform.pes) {
    const double est =
        platform.costs.estimate(t.kernel, pe.cls, t.problem_size, t.data_bytes);
    if (std::isfinite(est)) {
      total += est;
      ++supported;
    }
  }
  return supported == 0 ? 0.0 : total / static_cast<double>(supported);
}

std::unordered_map<task::TaskId, double> upward_ranks(
    const task::TaskGraph& graph, const platform::PlatformConfig& platform) {
  std::unordered_map<task::TaskId, double> ranks;
  ranks.reserve(graph.size());
  const auto order = graph.topological_order();
  if (!order.ok()) return ranks;  // cyclic graphs rank everything equal (0)
  // Walk the topological order backwards: successors are ranked first.
  const auto& topo = *order;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const task::Task& t = graph.get(*it);
    double best_succ = 0.0;
    for (const task::TaskId s : graph.successors(*it)) {
      best_succ = std::max(best_succ, ranks[s]);
    }
    ranks[*it] = average_execution(t, platform) + best_succ;
  }
  return ranks;
}

}  // namespace cedr::sched
