#include "cedr/sched/frontier.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cedr::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// Earliest (start, finish) for an `exec`-long task on a PE whose committed
/// work occupies `timeline` (disjoint intervals, ascending) on top of a base
/// availability, starting no earlier than `est`. Insertion-based: a gap
/// between two committed intervals is usable if the task fits entirely.
std::pair<double, double> earliest_gap(
    const std::vector<std::pair<double, double>>& timeline, double base,
    double est, double exec) {
  const double lo = std::max(base, est);
  // Steady-state fast path: most placements land past the committed tail
  // (ranks descend and successor ESTs grow), so the append case is the
  // common one and skips the search entirely.
  if (timeline.empty() || lo >= timeline.back().second) {
    return {lo, lo + exec};
  }
  // Any interval ending at or before the earliest feasible start can never
  // bound a usable gap (the candidate start is already past it), so skip the
  // prefix with a binary search; interval ends are ascending because the
  // intervals are disjoint and sorted by start.
  auto it = std::lower_bound(
      timeline.begin(), timeline.end(), lo,
      [](const std::pair<double, double>& iv, double v) {
        return iv.second <= v;
      });
  double prev_end = base;
  if (it != timeline.begin()) {
    prev_end = std::max(prev_end, std::prev(it)->second);
  }
  for (; it != timeline.end(); ++it) {
    const auto& [ivl_start, ivl_end] = *it;
    const double start = std::max(est, prev_end);
    if (start + exec <= ivl_start) return {start, start + exec};
    prev_end = std::max(prev_end, ivl_end);
  }
  const double start = std::max(est, prev_end);
  return {start, start + exec};
}

void insert_interval(std::vector<std::pair<double, double>>& timeline,
                     double start, double finish) {
  const auto it = std::lower_bound(
      timeline.begin(), timeline.end(), start,
      [](const std::pair<double, double>& iv, double s) { return iv.first < s; });
  timeline.insert(it, {start, finish});
}
}  // namespace

void Frontier::reset(std::span<PeState> pes, const ScheduleContext& ctx) {
  views_.clear();
  depth_.clear();
  pred_range_.clear();
  pred_set_.clear();
  staged_.clear();
  set_members_.clear();
  pred_pool_.clear();
  ready_count_ = 0;
  pes_ = pes;
  ctx_ = &ctx;
}

void Frontier::add_ready(const ReadyTask& view) {
  views_.push_back(view);
  depth_.push_back(0);
  pred_range_.emplace_back(static_cast<std::uint32_t>(pred_pool_.size()),
                           static_cast<std::uint32_t>(pred_pool_.size()));
  pred_set_.push_back(kNoPredSet);
  ready_count_ = views_.size();
}

std::size_t Frontier::add_lookahead(const ReadyTask& view, std::uint32_t depth,
                                    std::span<const std::size_t> preds) {
  const std::size_t index = views_.size();
  views_.push_back(view);
  depth_.push_back(depth);
  const auto begin = static_cast<std::uint32_t>(pred_pool_.size());
  pred_pool_.insert(pred_pool_.end(), preds.begin(), preds.end());
  pred_range_.emplace_back(begin, static_cast<std::uint32_t>(pred_pool_.size()));
  pred_set_.push_back(kNoPredSet);
  return index;
}

std::uint32_t Frontier::stage_preds(std::span<const std::size_t> preds) {
  const auto begin = static_cast<std::uint32_t>(pred_pool_.size());
  pred_pool_.insert(pred_pool_.end(), preds.begin(), preds.end());
  staged_.emplace_back(begin, static_cast<std::uint32_t>(pred_pool_.size()));
  set_members_.emplace_back(0, 0);
  return static_cast<std::uint32_t>(staged_.size() - 1);
}

std::size_t Frontier::add_lookahead_staged(const ReadyTask& view,
                                           std::uint32_t depth,
                                           std::uint32_t pred_set) {
  const std::size_t index = views_.size();
  views_.push_back(view);
  depth_.push_back(depth);
  pred_range_.push_back(staged_[pred_set]);
  pred_set_.push_back(pred_set);
  auto& [first, count] = set_members_[pred_set];
  if (count == 0) first = static_cast<std::uint32_t>(index);
  ++count;
  return index;
}

FrontierResult HeftLaScheduler::schedule_window(Frontier& frontier) {
  FrontierResult result;
  const std::span<PeState> pes = frontier.pes();
  const ScheduleContext& ctx = frontier.ctx();
  const std::size_t w = frontier.size();
  const std::size_t p_count = pes.size();
  if (w == 0 || p_count == 0) return result;

  thread_local CandidateView view;
  view.reset(frontier.views(), pes, ctx);
  const std::span<const ReadyTask> tasks = frontier.views();

  // Upward-rank order, critical path first. rank(pred) >= rank(succ) by
  // construction of the upward rank, and depth breaks the ties (a lookahead
  // task's depth strictly exceeds every in-window predecessor's), so a
  // predecessor always places before its successors and EST propagation
  // below sees final predecessor finishes.
  // Pack (rank desc, depth asc, index asc) into contiguous 16-byte keys:
  // the sort then runs over sequential memory instead of chasing 64-byte
  // ReadyTask structs, and the index tiebreak makes the order total (the
  // exact order stable_sort would produce). One key stands for a whole
  // staged set: its members share rank and depth and occupy consecutive
  // window indices, so expanding the representative in place reproduces
  // the full sort's order exactly while the sort itself shrinks from W
  // keys to ready count + set count — the win that keeps worst-round
  // decision time flat as barrier levels widen.
  sort_keys_.clear();
  const auto push_key = [&](std::size_t i) {
    sort_keys_.push_back(
        {-tasks[i].rank,
         (static_cast<std::uint64_t>(frontier.depth(i)) << 32) |
             static_cast<std::uint32_t>(i)});
  };
  for (std::size_t i = 0; i < frontier.ready_count(); ++i) push_key(i);
  for (std::size_t i = frontier.ready_count(); i < w; ++i) {
    const std::uint32_t set = frontier.pred_set(i);
    if (set == Frontier::kNoPredSet || frontier.set_members(set).first == i) {
      push_key(i);
    }
  }
  std::sort(sort_keys_.begin(), sort_keys_.end(),
            [](const SortKey& a, const SortKey& b) {
              if (a.neg_rank != b.neg_rank) return a.neg_rank < b.neg_rank;
              return a.depth_index < b.depth_index;
            });
  order_.clear();
  order_.reserve(w);
  for (const SortKey& key : sort_keys_) {
    const auto idx = static_cast<std::uint32_t>(key.depth_index);
    const std::uint32_t set =
        idx >= frontier.ready_count() ? frontier.pred_set(idx)
                                      : Frontier::kNoPredSet;
    if (set == Frontier::kNoPredSet) {
      order_.push_back(idx);
      continue;
    }
    const auto [first, count] = frontier.set_members(set);
    for (std::uint32_t j = 0; j < count; ++j) order_.push_back(first + j);
  }
  // Same accounting shape as HEFT_RT: ~W log2 W sort + P per placement.
  if (w > 1) {
    result.comparisons += static_cast<std::uint64_t>(
        static_cast<double>(w) *
        std::max(1.0, std::log2(static_cast<double>(w))));
  }

  // Ready tasks place against this running availability — the same scalar
  // HEFT_RT tracks. Lookahead tasks gap-pack into the reservation timeline
  // on top of it; keeping the timeline reservation-only preserves the
  // disjoint/ascending-ends invariant earliest_gap's binary search needs.
  timelines_.resize(p_count);
  for (auto& timeline : timelines_) timeline.clear();
  avail_.resize(p_count);
  tail_.assign(p_count, -kInf);
  inv_speed_.resize(p_count);
  cls_of_.resize(p_count);
  for (std::size_t slot = 0; slot < p_count; ++slot) {
    avail_[slot] = std::max(ctx.now, pes[slot].available_time);
    // Reciprocal multiply instead of a divide per candidate; flat class
    // array instead of a strided PeState load. The window loop below is
    // the only consumer, so the ulp-level difference from exec_estimate's
    // division never leaks into another heuristic's decisions.
    inv_speed_[slot] = 1.0 / pes[slot].speed;
    cls_of_[slot] = static_cast<std::size_t>(pes[slot].cls);
  }
  ready_finish_.assign(p_count, 0.0);
  finish_.assign(w, kInf);
  set_est_.assign(frontier.pred_set_count(), -1.0);
  cand_start_.resize(p_count);
  cand_fin_.resize(p_count);

  const auto place_candidate = [&](std::size_t slot, double est, double exec) {
    // Flat-array tail check before touching the timeline vector: barrier
    // levels stack contiguously, so the append case dominates and the
    // per-slot gap search is the exception, not the rule.
    const double lo = std::max(est, avail_[slot]);
    if (lo >= tail_[slot]) {
      cand_start_[slot] = lo;
      cand_fin_[slot] = lo + exec;
      return;
    }
    const auto [start, fin] =
        earliest_gap(timelines_[slot], avail_[slot], est, exec);
    cand_start_[slot] = start;
    cand_fin_[slot] = fin;
  };

  for (std::size_t oi = 0; oi < w; ++oi) {
    const std::size_t q = order_[oi];
    if (q < frontier.ready_count()) {
      result.comparisons += p_count;
      // Ready: earliest finish against running availability, identical in
      // shape and cost to HEFT_RT. These dispatch into worker FIFOs now, so
      // sub-slot packing could not change when they actually run.
      const auto& est_c = view.class_estimates(q);
      double best_finish = kInf;
      std::size_t best_slot = kNoSlot;
      for (const std::size_t slot : view.cost_eligible(q)) {
        const double fin =
            avail_[slot] + est_c[cls_of_[slot]] * inv_speed_[slot];
        if (fin < best_finish) {
          best_finish = fin;
          best_slot = slot;
        }
      }
      if (best_slot != kNoSlot) {
        avail_[best_slot] = best_finish;
        finish_[q] = best_finish;
        result.assignments.push_back({q, pes[best_slot].pe_index});
        ready_finish_[best_slot] = best_finish;
      }
      continue;
    }
    // Earliest start: all in-window predecessors must have finished. An
    // unplaced predecessor (nothing eligible this round) contributes
    // nothing — its successor's reservation is advisory timing anyway;
    // dispatch only honors it after the real completions arrive. Tasks of
    // one barrier level share a staged predecessor set, and every
    // predecessor places before any successor (rank order with depth
    // tiebreak), so the scan result is final and memoizable per set.
    double est = ctx.now;
    const std::uint32_t set = frontier.pred_set(q);
    if (set != Frontier::kNoPredSet && set_est_[set] >= 0.0) {
      est = set_est_[set];
    } else {
      for (const std::size_t pred : frontier.preds(q)) {
        if (finish_[pred] < kInf) est = std::max(est, finish_[pred]);
      }
      if (set != Frontier::kNoPredSet) set_est_[set] = est;
    }
    // Tasks of one barrier level are interchangeable: same staged set (so
    // the same EST, kind and class mask) and consecutive in rank order (one
    // rank, one depth, consecutive window indices). Place the whole block in
    // one tight pass over flat arrays — the kind lookup, eligibility span
    // and per-slot candidate search are hoisted out and paid once per level,
    // not once per task.
    std::size_t block = 1;
    if (set != Frontier::kNoPredSet) {
      while (oi + block < w) {
        const std::size_t nq = order_[oi + block];
        if (nq < frontier.ready_count() || frontier.pred_set(nq) != set) break;
        ++block;
      }
    }
    result.comparisons += p_count * block;
    const auto& est_c = view.class_estimates(q);
    const std::span<const std::size_t> eligible = view.cost_eligible(q);
    for (const std::size_t slot : eligible) {
      place_candidate(slot, est, est_c[cls_of_[slot]] * inv_speed_[slot]);
    }
    for (std::size_t r = 0; r < block; ++r) {
      const std::size_t bq = order_[oi + r];
      double best_finish = kInf;
      std::size_t best_slot = kNoSlot;
      for (const std::size_t slot : eligible) {
        if (cand_fin_[slot] < best_finish) {
          best_finish = cand_fin_[slot];
          best_slot = slot;
        }
      }
      if (best_slot == kNoSlot) break;  // nothing eligible for this kind
      const double best_start = cand_start_[best_slot];
      finish_[bq] = best_finish;
      result.reservations.push_back(
          {bq, pes[best_slot].pe_index, best_start, best_finish});
      // Only the chosen slot's timeline changed; refresh its candidate for
      // the block's next task. An append placement (at or past the tail)
      // needs no search at all: it extends the tail, and the next identical
      // task can only chain right behind it — the region before est stays
      // unusable, so no new gap opens.
      if (best_start >= tail_[best_slot]) {
        timelines_[best_slot].push_back({best_start, best_finish});
        tail_[best_slot] = best_finish;
        cand_start_[best_slot] = best_finish;
        cand_fin_[best_slot] = best_finish + (best_finish - best_start);
      } else {
        insert_interval(timelines_[best_slot], best_start, best_finish);
        place_candidate(best_slot, est,
                        est_c[cls_of_[best_slot]] * inv_speed_[best_slot]);
      }
    }
    oi += block - 1;
  }
  // Only dispatched (ready) placements advance PE availability; a reserved
  // task advances it when dispatch honors the reservation, and not at all
  // if the reservation goes stale first.
  for (std::size_t slot = 0; slot < p_count; ++slot) {
    if (ready_finish_[slot] > 0.0) {
      pes[slot].available_time =
          std::max(pes[slot].available_time, ready_finish_[slot]);
    }
  }
  return result;
}

FrontierResult EftLaScheduler::schedule_window(Frontier& frontier) {
  FrontierResult result;
  const std::span<PeState> pes = frontier.pes();
  const ScheduleContext& ctx = frontier.ctx();
  const std::size_t w = frontier.size();
  const std::size_t p_count = pes.size();
  if (w == 0 || p_count == 0) return result;

  thread_local CandidateView view;
  view.reset(frontier.views(), pes, ctx);

  avail_.resize(p_count);
  inv_speed_.resize(p_count);
  cls_of_.resize(p_count);
  for (std::size_t slot = 0; slot < p_count; ++slot) {
    avail_[slot] = std::max(ctx.now, pes[slot].available_time);
    // Same flat-array / reciprocal-multiply hoist as HEFT_LA above.
    inv_speed_[slot] = 1.0 / pes[slot].speed;
    cls_of_[slot] = static_cast<std::size_t>(pes[slot].cls);
  }
  ready_finish_.assign(p_count, 0.0);
  finish_.assign(w, kInf);
  set_est_.assign(frontier.pred_set_count(), -1.0);

  // Window FIFO order: ready tasks in queue order, then lookahead tasks in
  // discovery order — the frontier builder adds predecessors before their
  // successors, so EST propagation sees committed predecessor finishes.
  for (std::size_t q = 0; q < w; ++q) {
    result.comparisons += p_count;  // same per-task accounting as EFT
    // Predecessors all precede their successors in window order, so the
    // earliest-start scan is final when first needed and memoizable for a
    // barrier level sharing one staged predecessor set.
    double est = ctx.now;
    const std::uint32_t set = frontier.pred_set(q);
    if (set != Frontier::kNoPredSet && set_est_[set] >= 0.0) {
      est = set_est_[set];
    } else {
      for (const std::size_t pred : frontier.preds(q)) {
        if (finish_[pred] < kInf) est = std::max(est, finish_[pred]);
      }
      if (set != Frontier::kNoPredSet) set_est_[set] = est;
    }
    const auto& est_c = view.class_estimates(q);
    double best_finish = kInf;
    double best_start = est;
    std::size_t best_slot = kNoSlot;
    for (const std::size_t slot : view.cost_eligible(q)) {
      const double start = std::max(est, avail_[slot]);
      const double fin = start + est_c[cls_of_[slot]] * inv_speed_[slot];
      if (fin < best_finish) {
        best_finish = fin;
        best_start = start;
        best_slot = slot;
      }
    }
    if (best_slot == kNoSlot) continue;
    avail_[best_slot] = best_finish;
    finish_[q] = best_finish;
    if (q < frontier.ready_count()) {
      result.assignments.push_back({q, pes[best_slot].pe_index});
      ready_finish_[best_slot] = std::max(ready_finish_[best_slot], best_finish);
    } else {
      result.reservations.push_back(
          {q, pes[best_slot].pe_index, best_start, best_finish});
    }
  }
  for (std::size_t slot = 0; slot < p_count; ++slot) {
    if (ready_finish_[slot] > 0.0) {
      pes[slot].available_time =
          std::max(pes[slot].available_time, ready_finish_[slot]);
    }
  }
  return result;
}

}  // namespace cedr::sched
