#include "cedr/workload/workload.h"

#include "cedr/common/math_util.h"

#include <algorithm>
#include <cmath>

namespace cedr::workload {
namespace {

void sort_arrivals(std::vector<sim::Arrival>& arrivals) {
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const sim::Arrival& a, const sim::Arrival& b) {
                     return a.time < b.time;
                   });
}

/// Exponential variate with the given mean (inverse-CDF; mean 0 -> 0).
double exponential(Rng& rng, double mean) {
  if (mean <= 0.0) return 0.0;
  // next_double() is in [0, 1); 1 - u is in (0, 1] so the log is finite.
  return -mean * std::log(1.0 - rng.next_double());
}

/// Paper process: jittered periodic grid for one stream.
void periodic_stream(const Stream& stream, double period, double jitter,
                     Rng& rng, std::vector<sim::Arrival>& out) {
  for (std::size_t i = 0; i < stream.instances; ++i) {
    double t = stream.start_offset_s + static_cast<double>(i) * period;
    if (jitter > 0.0) t += rng.uniform(0.0, jitter * period);
    out.push_back(sim::Arrival{stream.app, t});
  }
}

/// Open-loop Poisson: exponential inter-arrivals at the stream's mean rate.
void poisson_stream(const Stream& stream, double period, Rng& rng,
                    std::vector<sim::Arrival>& out) {
  double t = stream.start_offset_s;
  for (std::size_t i = 0; i < stream.instances; ++i) {
    t += exponential(rng, period);
    out.push_back(sim::Arrival{stream.app, t});
  }
}

/// 2-state MMPP. The quiet/burst rates are chosen so the long-run mean rate
/// equals the periodic process's 1/period:
///   lambda_quiet = lambda / (1 - f + f * R),  lambda_burst = R * lambda_quiet
/// with f = burst_fraction and R = burst_ratio. Dwell times are exponential
/// with means (1 - f) * cycle (quiet) and f * cycle (burst); exponential
/// memorylessness lets the generator restart the inter-arrival draw at each
/// state switch without biasing the process.
void mmpp_stream(const Stream& stream, double period, const ArrivalSpec& spec,
                 Rng& rng, std::vector<sim::Arrival>& out) {
  const double lambda = 1.0 / period;
  const double f = spec.burst_fraction;
  const double ratio = spec.burst_ratio;
  const double lambda_quiet = lambda / (1.0 - f + f * ratio);
  const double lambda_burst = ratio * lambda_quiet;
  const double quiet_dwell = (1.0 - f) * spec.burst_cycle_s;
  const double burst_dwell = f * spec.burst_cycle_s;

  double t = stream.start_offset_s;
  bool burst = false;  // start quiet: the first dwell draw decides the phase
  double state_end = t + exponential(rng, quiet_dwell);
  std::size_t emitted = 0;
  while (emitted < stream.instances) {
    const double rate_now = burst ? lambda_burst : lambda_quiet;
    const double candidate = t + exponential(rng, 1.0 / rate_now);
    if (candidate <= state_end) {
      t = candidate;
      out.push_back(sim::Arrival{stream.app, t});
      ++emitted;
    } else {
      t = state_end;
      burst = !burst;
      state_end = t + exponential(rng, burst ? burst_dwell : quiet_dwell);
    }
  }
}

/// Closed-loop think-time population: `clients` clients cycle submit ->
/// (estimated) service -> exponential think; instance i belongs to client
/// i mod clients. This is an open-loop approximation of a closed system —
/// the service term is the stream's a-priori estimate, not simulator
/// feedback — so the mean per-client cycle has the closed form
/// service_estimate_s + think_s.
void closed_loop_stream(const Stream& stream, const ArrivalSpec& spec,
                        Rng& rng, std::vector<sim::Arrival>& out) {
  const std::size_t clients = std::max<std::size_t>(1, spec.clients);
  std::vector<double> next(clients, stream.start_offset_s);
  for (std::size_t i = 0; i < stream.instances; ++i) {
    const std::size_t c = i % clients;
    out.push_back(sim::Arrival{stream.app, next[c]});
    next[c] += stream.service_estimate_s + exponential(rng, spec.think_s);
  }
}

}  // namespace

std::string_view arrival_process_name(ArrivalProcess process) noexcept {
  switch (process) {
    case ArrivalProcess::kPeriodic: return "periodic";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kMmpp: return "mmpp";
    case ArrivalProcess::kClosedLoop: return "closed";
  }
  return "periodic";
}

StatusOr<ArrivalProcess> arrival_process_from_name(std::string_view name) {
  if (name == "periodic") return ArrivalProcess::kPeriodic;
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "mmpp") return ArrivalProcess::kMmpp;
  if (name == "closed") return ArrivalProcess::kClosedLoop;
  return InvalidArgument("unknown arrival process '" + std::string(name) +
                         "' (expected periodic, poisson, mmpp or closed)");
}

Status ArrivalSpec::validate() const {
  if (!(rate_mbps > 0.0)) return InvalidArgument("rate_mbps must be > 0");
  if (jitter < 0.0) return InvalidArgument("jitter must be >= 0");
  if (process == ArrivalProcess::kMmpp) {
    if (!(burst_ratio > 1.0)) {
      return InvalidArgument("mmpp burst_ratio must be > 1");
    }
    if (!(burst_fraction > 0.0) || !(burst_fraction < 1.0)) {
      return InvalidArgument("mmpp burst_fraction must be in (0, 1)");
    }
    if (!(burst_cycle_s > 0.0)) {
      return InvalidArgument("mmpp burst_cycle_s must be > 0");
    }
  }
  if (process == ArrivalProcess::kClosedLoop) {
    if (!(think_s >= 0.0)) return InvalidArgument("think_s must be >= 0");
    if (clients == 0) return InvalidArgument("clients must be >= 1");
  }
  return Status::Ok();
}

std::vector<sim::Arrival> make_arrivals(std::span<const Stream> streams,
                                        double rate_mbps, double jitter,
                                        std::uint64_t seed) {
  ArrivalSpec spec;
  spec.process = ArrivalProcess::kPeriodic;
  spec.rate_mbps = rate_mbps;
  spec.jitter = jitter;
  auto arrivals = generate_arrivals(streams, spec, seed);
  if (!arrivals.ok()) return {};
  return *std::move(arrivals);
}

StatusOr<std::vector<sim::Arrival>> generate_arrivals(
    std::span<const Stream> streams, const ArrivalSpec& spec,
    std::uint64_t seed) {
  CEDR_RETURN_IF_ERROR(spec.validate());
  std::vector<sim::Arrival> arrivals;
  for (std::size_t k = 0; k < streams.size(); ++k) {
    const Stream& stream = streams[k];
    if (stream.app == nullptr || stream.instances == 0) continue;
    // Independent per-stream RNG (header contract): appending a stream
    // never perturbs the draws of the streams before it.
    Rng rng(stream_seed(seed, k));
    const double period = stream.app->frame_mbits / spec.rate_mbps;
    switch (spec.process) {
      case ArrivalProcess::kPeriodic:
        periodic_stream(stream, period, spec.jitter, rng, arrivals);
        break;
      case ArrivalProcess::kPoisson:
        poisson_stream(stream, period, rng, arrivals);
        break;
      case ArrivalProcess::kMmpp:
        mmpp_stream(stream, period, spec, rng, arrivals);
        break;
      case ArrivalProcess::kClosedLoop:
        closed_loop_stream(stream, spec, rng, arrivals);
        break;
    }
  }
  sort_arrivals(arrivals);
  return arrivals;
}

std::vector<double> injection_rate_sweep() {
  // 29 log-spaced points spanning the paper's 10-2000 Mbps range.
  constexpr std::size_t kPoints = 29;
  std::vector<double> rates(kPoints);
  const double lo = std::log10(10.0);
  const double hi = std::log10(2000.0);
  for (std::size_t i = 0; i < kPoints; ++i) {
    const double f = static_cast<double>(i) / (kPoints - 1);
    rates[i] = std::pow(10.0, lo + f * (hi - lo));
  }
  return rates;
}

StatusOr<TrialResult> run_point(const sim::SimConfig& config,
                                std::span<const Stream> streams,
                                double rate_mbps, std::size_t trials,
                                std::uint64_t seed_base) {
  if (trials == 0) return InvalidArgument("need at least one trial");
  if (rate_mbps <= 0.0) return InvalidArgument("injection rate must be > 0");

  TrialResult out;
  out.rate_mbps = rate_mbps;
  out.trials = trials;
  std::vector<double> exec_samples;
  exec_samples.reserve(trials);

  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::vector<sim::Arrival> arrivals =
        make_arrivals(streams, rate_mbps, /*jitter=*/0.2,
                      seed_base + trial * 0x9e3779b9ull + 1);
    auto metrics = sim::simulate(config, arrivals);
    if (!metrics.ok()) return metrics.status();
    const sim::SimMetrics& m = *metrics;
    exec_samples.push_back(m.avg_execution_time);

    sim::SimMetrics& acc = out.mean;
    acc.apps = m.apps;
    acc.tasks_executed += m.tasks_executed;
    acc.sched_rounds += m.sched_rounds;
    acc.total_comparisons += m.total_comparisons;
    acc.max_ready_queue = std::max(acc.max_ready_queue, m.max_ready_queue);
    acc.makespan += m.makespan;
    acc.avg_execution_time += m.avg_execution_time;
    acc.avg_sched_overhead += m.avg_sched_overhead;
    acc.total_sched_time += m.total_sched_time;
    acc.runtime_overhead += m.runtime_overhead;
    acc.runtime_overhead_per_app += m.runtime_overhead_per_app;
    acc.faults_injected += m.faults_injected;
    acc.tasks_retried += m.tasks_retried;
    acc.pes_quarantined += m.pes_quarantined;
    acc.pes_reinstated += m.pes_reinstated;
    acc.tasks_lost += m.tasks_lost;
    acc.reservation_hits += m.reservation_hits;
    acc.reservation_stale += m.reservation_stale;
    if (acc.pe_busy.size() < m.pe_busy.size()) {
      acc.pe_busy.resize(m.pe_busy.size(), 0.0);
    }
    for (std::size_t i = 0; i < m.pe_busy.size(); ++i) {
      acc.pe_busy[i] += m.pe_busy[i];
    }
  }

  const double inv = 1.0 / static_cast<double>(trials);
  sim::SimMetrics& acc = out.mean;
  acc.tasks_executed =
      static_cast<std::size_t>(static_cast<double>(acc.tasks_executed) * inv);
  acc.sched_rounds =
      static_cast<std::size_t>(static_cast<double>(acc.sched_rounds) * inv);
  acc.total_comparisons = static_cast<std::uint64_t>(
      static_cast<double>(acc.total_comparisons) * inv);
  acc.makespan *= inv;
  acc.avg_execution_time *= inv;
  acc.avg_sched_overhead *= inv;
  acc.total_sched_time *= inv;
  acc.runtime_overhead *= inv;
  acc.runtime_overhead_per_app *= inv;
  acc.faults_injected =
      static_cast<std::size_t>(static_cast<double>(acc.faults_injected) * inv);
  acc.tasks_retried =
      static_cast<std::size_t>(static_cast<double>(acc.tasks_retried) * inv);
  acc.pes_quarantined =
      static_cast<std::size_t>(static_cast<double>(acc.pes_quarantined) * inv);
  acc.pes_reinstated =
      static_cast<std::size_t>(static_cast<double>(acc.pes_reinstated) * inv);
  acc.tasks_lost =
      static_cast<std::size_t>(static_cast<double>(acc.tasks_lost) * inv);
  acc.reservation_hits = static_cast<std::size_t>(
      static_cast<double>(acc.reservation_hits) * inv);
  acc.reservation_stale = static_cast<std::size_t>(
      static_cast<double>(acc.reservation_stale) * inv);
  for (double& busy : acc.pe_busy) busy *= inv;
  out.exec_time_stddev = stddev(exec_samples);
  return out;
}

StatusOr<std::vector<TrialResult>> run_sweep(const sim::SimConfig& config,
                                             std::span<const Stream> streams,
                                             std::span<const double> rates,
                                             std::size_t trials,
                                             std::uint64_t seed_base) {
  std::vector<TrialResult> results;
  results.reserve(rates.size());
  for (const double rate : rates) {
    auto point = run_point(config, streams, rate, trials, seed_base);
    if (!point.ok()) return point.status();
    results.push_back(*std::move(point));
  }
  return results;
}

}  // namespace cedr::workload
