#include "cedr/workload/workload.h"

#include "cedr/common/math_util.h"

#include <algorithm>
#include <cmath>

namespace cedr::workload {

std::vector<sim::Arrival> make_arrivals(std::span<const Stream> streams,
                                        double rate_mbps, double jitter,
                                        Rng& rng) {
  std::vector<sim::Arrival> arrivals;
  for (const Stream& stream : streams) {
    if (stream.app == nullptr || stream.instances == 0) continue;
    const double period = stream.app->frame_mbits / rate_mbps;
    for (std::size_t i = 0; i < stream.instances; ++i) {
      double t = stream.start_offset_s + static_cast<double>(i) * period;
      if (jitter > 0.0) t += rng.uniform(0.0, jitter * period);
      arrivals.push_back(sim::Arrival{stream.app, t});
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const sim::Arrival& a, const sim::Arrival& b) {
                     return a.time < b.time;
                   });
  return arrivals;
}

std::vector<double> injection_rate_sweep() {
  // 29 log-spaced points spanning the paper's 10-2000 Mbps range.
  constexpr std::size_t kPoints = 29;
  std::vector<double> rates(kPoints);
  const double lo = std::log10(10.0);
  const double hi = std::log10(2000.0);
  for (std::size_t i = 0; i < kPoints; ++i) {
    const double f = static_cast<double>(i) / (kPoints - 1);
    rates[i] = std::pow(10.0, lo + f * (hi - lo));
  }
  return rates;
}

StatusOr<TrialResult> run_point(const sim::SimConfig& config,
                                std::span<const Stream> streams,
                                double rate_mbps, std::size_t trials,
                                std::uint64_t seed_base) {
  if (trials == 0) return InvalidArgument("need at least one trial");
  if (rate_mbps <= 0.0) return InvalidArgument("injection rate must be > 0");

  TrialResult out;
  out.rate_mbps = rate_mbps;
  out.trials = trials;
  std::vector<double> exec_samples;
  exec_samples.reserve(trials);

  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(seed_base + trial * 0x9e3779b9ull + 1);
    const std::vector<sim::Arrival> arrivals =
        make_arrivals(streams, rate_mbps, /*jitter=*/0.2, rng);
    auto metrics = sim::simulate(config, arrivals);
    if (!metrics.ok()) return metrics.status();
    const sim::SimMetrics& m = *metrics;
    exec_samples.push_back(m.avg_execution_time);

    sim::SimMetrics& acc = out.mean;
    acc.apps = m.apps;
    acc.tasks_executed += m.tasks_executed;
    acc.sched_rounds += m.sched_rounds;
    acc.total_comparisons += m.total_comparisons;
    acc.max_ready_queue = std::max(acc.max_ready_queue, m.max_ready_queue);
    acc.makespan += m.makespan;
    acc.avg_execution_time += m.avg_execution_time;
    acc.avg_sched_overhead += m.avg_sched_overhead;
    acc.total_sched_time += m.total_sched_time;
    acc.runtime_overhead += m.runtime_overhead;
    acc.runtime_overhead_per_app += m.runtime_overhead_per_app;
    acc.faults_injected += m.faults_injected;
    acc.tasks_retried += m.tasks_retried;
    acc.pes_quarantined += m.pes_quarantined;
    acc.pes_reinstated += m.pes_reinstated;
    acc.tasks_lost += m.tasks_lost;
    if (acc.pe_busy.size() < m.pe_busy.size()) {
      acc.pe_busy.resize(m.pe_busy.size(), 0.0);
    }
    for (std::size_t i = 0; i < m.pe_busy.size(); ++i) {
      acc.pe_busy[i] += m.pe_busy[i];
    }
  }

  const double inv = 1.0 / static_cast<double>(trials);
  sim::SimMetrics& acc = out.mean;
  acc.tasks_executed =
      static_cast<std::size_t>(static_cast<double>(acc.tasks_executed) * inv);
  acc.sched_rounds =
      static_cast<std::size_t>(static_cast<double>(acc.sched_rounds) * inv);
  acc.total_comparisons = static_cast<std::uint64_t>(
      static_cast<double>(acc.total_comparisons) * inv);
  acc.makespan *= inv;
  acc.avg_execution_time *= inv;
  acc.avg_sched_overhead *= inv;
  acc.total_sched_time *= inv;
  acc.runtime_overhead *= inv;
  acc.runtime_overhead_per_app *= inv;
  acc.faults_injected =
      static_cast<std::size_t>(static_cast<double>(acc.faults_injected) * inv);
  acc.tasks_retried =
      static_cast<std::size_t>(static_cast<double>(acc.tasks_retried) * inv);
  acc.pes_quarantined =
      static_cast<std::size_t>(static_cast<double>(acc.pes_quarantined) * inv);
  acc.pes_reinstated =
      static_cast<std::size_t>(static_cast<double>(acc.pes_reinstated) * inv);
  acc.tasks_lost =
      static_cast<std::size_t>(static_cast<double>(acc.tasks_lost) * inv);
  for (double& busy : acc.pe_busy) busy *= inv;
  out.exec_time_stddev = stddev(exec_samples);
  return out;
}

StatusOr<std::vector<TrialResult>> run_sweep(const sim::SimConfig& config,
                                             std::span<const Stream> streams,
                                             std::span<const double> rates,
                                             std::size_t trials,
                                             std::uint64_t seed_base) {
  std::vector<TrialResult> results;
  results.reserve(rates.size());
  for (const double rate : rates) {
    auto point = run_point(config, streams, rate, trials, seed_base);
    if (!point.ok()) return point.status();
    results.push_back(*std::move(point));
  }
  return results;
}

}  // namespace cedr::workload
