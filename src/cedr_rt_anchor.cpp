// Anchor translation unit for the libcedr-rt.so shared object; all content
// comes from the whole-archive static libraries it wraps.
namespace cedr::rt_so {
/// Identifies the runtime shared object in diagnostics.
const char* library_name() { return "libcedr-rt"; }
}  // namespace cedr::rt_so
