// Pulse Doppler radar pipeline demo (paper workload #1).
//
// Runs the full PD application — synthetic echo, FFT range compression,
// Doppler processing, peak extraction — three ways and compares:
//   1. standalone blocking APIs (the bring-up flow),
//   2. under a CEDR runtime with blocking APIs,
//   3. under a CEDR runtime with non-blocking APIs (overlapped pulses).
// Prints the recovered range/velocity against ground truth each time.

#include <cstdio>

#include "cedr/apps/pulse_doppler.h"
#include "cedr/common/stopwatch.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

namespace {

apps::PulseDopplerConfig demo_config(bool nonblocking) {
  apps::PulseDopplerConfig config;
  config.params.num_pulses = 64;
  config.params.samples_per_pulse = 256;
  config.truth = {.range_bin = 77, .doppler_hz = 1875.0, .magnitude = 3.0};
  config.noise_stddev = 0.05;
  config.seed = 2026;
  config.nonblocking = nonblocking;
  return config;
}

void report(const char* label, const StatusOr<apps::PulseDopplerResult>& r,
            double seconds) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 r.status().to_string().c_str());
    return;
  }
  std::printf(
      "%-28s range_bin=%3zu (truth %3zu)  velocity=%+8.2f m/s (truth "
      "%+8.2f)  |err|=%.2f m/s  wall=%.1f ms\n",
      label, r->estimate.range_bin, r->truth.range_bin,
      r->estimate.velocity_mps, r->truth.velocity_mps,
      r->velocity_error_mps, seconds * 1e3);
}

}  // namespace

int main() {
  std::printf("Pulse Doppler: %u pulses x %u samples, 256-point FFT chain\n\n",
              64, 256);

  {
    Stopwatch timer;
    const auto result = apps::run_pulse_doppler(demo_config(false));
    report("standalone blocking", result, timer.elapsed());
  }

  rt::RuntimeConfig rt_config;
  rt_config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  rt_config.scheduler = "EFT";
  rt::Runtime runtime(rt_config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  for (const bool nonblocking : {false, true}) {
    Stopwatch timer;
    StatusOr<apps::PulseDopplerResult> result =
        apps::PulseDopplerResult{};  // overwritten below
    auto instance = runtime.submit_api(
        nonblocking ? "pd_nonblocking" : "pd_blocking",
        [&result, nonblocking] {
          result = apps::run_pulse_doppler(demo_config(nonblocking));
        });
    if (!instance.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   instance.status().to_string().c_str());
      return 1;
    }
    (void)runtime.wait_app(*instance);
    report(nonblocking ? "runtime non-blocking APIs" : "runtime blocking APIs",
           result, timer.elapsed());
  }

  std::printf("\nruntime scheduled %llu kernel calls across %zu PEs\n",
              static_cast<unsigned long long>(
                  runtime.counters().get("kernels_enqueued")),
              runtime.config().platform.pes.size());
  (void)runtime.shutdown();
  return 0;
}
