// Quickstart: the two-phase CEDR-API development flow (paper Fig. 3).
//
// Phase 1 — standalone validation: call the cedr.h APIs like any CPU
// library; every call executes its standard C/C++ implementation inline.
//
// Phase 2 — runtime execution: submit the *same* function to a CEDR
// runtime; each API call now becomes a scheduled task executing on the
// emulated SoC's heterogeneous PEs, with the calling thread synchronized
// through the Fig. 4 condvar protocol.

#include <cstdio>
#include <vector>

#include "cedr/cedr.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

namespace {

/// The "application": a tiny frequency-domain convolution. Because it is
/// written purely against cedr.h it runs identically in both phases.
Status frequency_domain_multiply() {
  constexpr std::size_t kN = 1024;
  std::vector<cedr_cplx> signal(kN), kernel(kN), result(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = cedr_cplx(static_cast<float>(i % 16) / 16.0f, 0.0f);
    kernel[i] = cedr_cplx(i < 8 ? 0.125f : 0.0f, 0.0f);
  }

  // Forward transforms can run in parallel: issue both non-blocking.
  cedr_handle_t handles[2] = {
      CEDR_FFT_NB(signal.data(), signal.data(), kN),
      CEDR_FFT_NB(kernel.data(), kernel.data(), kN),
  };
  CEDR_RETURN_IF_ERROR(CEDR_BARRIER(handles, 2));

  // Pointwise product, then back to the time domain (blocking calls).
  CEDR_RETURN_IF_ERROR(
      CEDR_ZIP(signal.data(), kernel.data(), result.data(), kN));
  CEDR_RETURN_IF_ERROR(CEDR_IFFT(result.data(), result.data(), kN));

  std::printf("  mode=%s  result[0]=(%.4f, %.4f)\n",
              api::runtime_attached() ? "runtime-attached" : "standalone",
              result[0].real(), result[0].imag());
  return Status::Ok();
}

}  // namespace

int main() {
  std::printf("Phase 1: standalone (libcedr.a path) — APIs run inline\n");
  if (const Status s = frequency_domain_multiply(); !s.ok()) {
    std::fprintf(stderr, "standalone run failed: %s\n", s.to_string().c_str());
    return 1;
  }

  std::printf("Phase 2: under the CEDR runtime (libcedr-rt.so path)\n");
  rt::RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  config.scheduler = "EFT";
  rt::Runtime runtime(config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  auto instance = runtime.submit_api("quickstart", [] {
    if (const Status s = frequency_domain_multiply(); !s.ok()) {
      std::fprintf(stderr, "runtime run failed: %s\n", s.to_string().c_str());
    }
  });
  if (!instance.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  (void)runtime.wait_all();

  const auto tasks = runtime.trace_log().tasks();
  std::printf("  runtime executed %zu scheduled tasks; per-PE counts:\n",
              tasks.size());
  for (const auto& [name, count] : runtime.counters().snapshot()) {
    if (name.rfind("tasks_on_", 0) == 0) {
      std::printf("    %-12s %llu\n", name.c_str() + 9,
                  static_cast<unsigned long long>(count));
    }
  }
  (void)runtime.shutdown();
  std::printf("done\n");
  return 0;
}
