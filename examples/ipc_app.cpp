// A CEDR application packaged as a submittable shared object.
//
// This is the artifact the Fig. 3 workflow produces: the application is
// compiled as a shared object that does NOT link the API implementations;
// the daemon dlopens it, launches cedr_app_main on an application thread,
// and every CEDR_* call inside resolves against the runtime
// (libcedr-rt.so path). Submit it with:
//
//   cedr_daemon /tmp/cedr.sock &
//   cedr_submit /tmp/cedr.sock ./libipc_app.so

#include <cstdio>

#include "cedr/apps/pulse_doppler.h"

extern "C" void cedr_app_main() {
  cedr::apps::PulseDopplerConfig config;
  config.params.num_pulses = 32;
  config.params.samples_per_pulse = 128;
  config.nonblocking = true;
  config.seed = 99;
  const auto result = cedr::apps::run_pulse_doppler(config);
  if (!result.ok()) {
    std::fprintf(stderr, "[ipc_app] pulse doppler failed: %s\n",
                 result.status().to_string().c_str());
    return;
  }
  std::printf("[ipc_app] velocity=%.2f m/s (truth %.2f), range bin %zu\n",
              result->estimate.velocity_mps, result->truth.velocity_mps,
              result->estimate.range_bin);
}
