// WiFi TX pipeline demo (paper workload #2).
//
// Builds a frame of packets through the full chain — scramble, K=7
// convolutional FEC, interleave, QPSK, 128-point OFDM IFFT — under a CEDR
// runtime, then loops every transmitted symbol back through the receiver
// oracle (FFT, slice, deinterleave, Viterbi, descramble) to prove the chain
// is lossless.

#include <cstdio>

#include "cedr/apps/wifi_tx.h"
#include "cedr/common/stopwatch.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

int main() {
  apps::WifiTxConfig config;
  config.num_packets = 50;
  config.payload_bits = 64;
  config.seed = 7;
  config.nonblocking = true;

  rt::RuntimeConfig rt_config;
  rt_config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  rt_config.scheduler = "HEFT_RT";
  rt::Runtime runtime(rt_config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  StatusOr<apps::WifiTxResult> tx = apps::WifiTxResult{};
  Stopwatch timer;
  auto instance = runtime.submit_api(
      "wifi_tx", [&tx, &config] { tx = apps::run_wifi_tx(config); });
  if (!instance.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  (void)runtime.wait_all();
  const double tx_time = timer.elapsed();
  (void)runtime.shutdown();

  if (!tx.ok()) {
    std::fprintf(stderr, "WiFi TX failed: %s\n",
                 tx.status().to_string().c_str());
    return 1;
  }
  std::printf("transmitted %zu packets (%zu payload bits each) in %.1f ms\n",
              tx->symbols.size(), config.payload_bits, tx_time * 1e3);

  // Receiver-side verification: every payload must decode exactly.
  std::size_t decoded_ok = 0;
  for (std::size_t p = 0; p < tx->symbols.size(); ++p) {
    const auto decoded = apps::decode_wifi_symbol(tx->symbols[p], config);
    if (decoded.ok() && *decoded == tx->payloads[p]) ++decoded_ok;
  }
  std::printf("receiver oracle recovered %zu/%zu payloads bit-exactly\n",
              decoded_ok, tx->symbols.size());

  // Show one packet's journey.
  std::printf("packet 0 payload bits: ");
  for (std::size_t i = 0; i < 16; ++i) std::printf("%d", tx->payloads[0][i]);
  std::printf("...  first OFDM samples: (%.3f,%.3f) (%.3f,%.3f)\n",
              tx->symbols[0][0].real(), tx->symbols[0][0].imag(),
              tx->symbols[0][1].real(), tx->symbols[0][1].imag());
  return decoded_ok == tx->symbols.size() ? 0 : 1;
}
