// Dynamic multi-application workload demo (paper §III scenario).
//
// Emulates the paper's experimental procedure in miniature on the real
// threaded runtime: Pulse Doppler and WiFi TX instances arrive periodically
// (an injection-rate-style schedule) and interleave on the shared PE pool;
// a DAG-based Pulse Doppler instance is mixed in to show both programming
// models coexisting. Prints the per-application execution times and queue
// statistics from the runtime trace.

#include <chrono>
#include <cstdio>
#include <thread>

#include "cedr/apps/dag_apps.h"
#include "cedr/apps/pulse_doppler.h"
#include "cedr/apps/wifi_tx.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

int main() {
  rt::RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2, /*ffts=*/1, /*mmults=*/0);
  config.scheduler = "HEFT_RT";
  rt::Runtime runtime(config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  apps::PulseDopplerConfig pd_config;
  pd_config.params.num_pulses = 32;
  pd_config.params.samples_per_pulse = 128;
  pd_config.nonblocking = true;
  apps::WifiTxConfig tx_config;
  tx_config.num_packets = 20;
  tx_config.nonblocking = true;

  // Three arrival waves, ~25 ms apart: API-mode PD + TX each wave, plus one
  // DAG-based PD in the middle wave (both models share the ready queue).
  constexpr int kWaves = 3;
  for (int wave = 0; wave < kWaves; ++wave) {
    pd_config.seed = 100 + wave;
    tx_config.seed = 200 + wave;
    auto pd_cfg = pd_config;
    auto instance = runtime.submit_api(
        "pd_wave" + std::to_string(wave),
        [pd_cfg] { (void)apps::run_pulse_doppler(pd_cfg); });
    if (!instance.ok()) {
      std::fprintf(stderr, "PD submit failed: %s\n",
                   instance.status().to_string().c_str());
      return 1;
    }
    auto tx_cfg = tx_config;
    (void)runtime.submit_api("tx_wave" + std::to_string(wave),
                             [tx_cfg] { (void)apps::run_wifi_tx(tx_cfg); });
    if (wave == 1) {
      auto dag = apps::make_pulse_doppler_dag(pd_config);
      if (dag.ok()) {
        (void)runtime.submit_dag(dag->descriptor);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }

  if (const Status s = runtime.wait_all(600.0); !s.ok()) {
    std::fprintf(stderr, "wait_all failed: %s\n", s.to_string().c_str());
    return 1;
  }

  std::printf("%-14s %10s %10s %10s\n", "app", "arrival_ms", "exec_ms",
              "complete_ms");
  double total_exec = 0.0;
  const auto app_records = runtime.trace_log().apps();
  for (const auto& app : app_records) {
    std::printf("%-14s %10.1f %10.1f %10.1f\n", app.app_name.c_str(),
                app.arrival_time * 1e3, app.execution_time() * 1e3,
                app.completion_time * 1e3);
    total_exec += app.execution_time();
  }
  std::printf("\navg execution time/app = %.1f ms over %zu apps\n",
              app_records.empty() ? 0.0
                                  : total_exec / app_records.size() * 1e3,
              app_records.size());

  const auto rounds = runtime.trace_log().sched_rounds();
  std::size_t max_queue = 0;
  for (const auto& r : rounds) max_queue = std::max(max_queue, r.ready_tasks);
  std::printf("scheduling rounds=%zu  max ready queue=%zu  total decision "
              "time=%.2f ms\n",
              rounds.size(), max_queue,
              runtime.trace_log().total_sched_time() * 1e3);
  (void)runtime.shutdown();
  return 0;
}
