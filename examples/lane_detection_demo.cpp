// Lane Detection demo (paper workload #3, autonomous vehicles).
//
// Synthesizes a road frame, runs the convolution-intensive CEDR-API
// pipeline (frequency-domain Gaussian smoothing decomposed into row/column
// CEDR_FFT / CEDR_ZIP / CEDR_IFFT tasks, then Sobel + Hough on the CPU) and
// prints the recovered lane geometry against ground truth plus an ASCII
// rendering of the detected lanes.

#include <cmath>
#include <cstdio>

#include "cedr/apps/lane_detection.h"
#include "cedr/common/stopwatch.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

namespace {

/// Column of a Hough line at image row y.
double line_col_at(const kernels::HoughLine& line, double y) {
  const double c = std::cos(line.theta);
  if (std::abs(c) < 1e-9) return -1.0;
  return (line.rho - y * std::sin(line.theta)) / c;
}

void ascii_render(const apps::LaneDetectionResult& result, std::size_t rows,
                  std::size_t cols) {
  constexpr std::size_t kW = 64;
  constexpr std::size_t kH = 16;
  for (std::size_t r = 0; r < kH; ++r) {
    const double y =
        static_cast<double>(r) / (kH - 1) * static_cast<double>(rows - 1);
    std::string row_chars(kW, y < 0.35 * static_cast<double>(rows) ? ' ' : '.');
    auto plot = [&](const std::optional<kernels::HoughLine>& line, char mark) {
      if (!line) return;
      const double col = line_col_at(*line, y);
      if (col < 0.0 || col >= static_cast<double>(cols)) return;
      const auto x = static_cast<std::size_t>(col / cols * (kW - 1));
      row_chars[x] = mark;
    };
    if (y >= 0.35 * static_cast<double>(rows)) {
      plot(result.lanes.left, 'L');
      plot(result.lanes.right, 'R');
    }
    std::printf("  |%s|\n", row_chars.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  apps::LaneDetectionConfig config;
  // Modest default frame so the demo finishes quickly; pass "full" for the
  // paper's 960x540 resolution.
  config.rows = 135;
  config.cols = 240;
  if (argc > 1 && std::string(argv[1]) == "full") {
    config.rows = 540;
    config.cols = 960;
  }
  config.noise_stddev = 0.02;
  config.nonblocking = true;
  config.seed = 11;

  rt::RuntimeConfig rt_config;
  rt_config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  rt_config.scheduler = "EFT";
  rt::Runtime runtime(rt_config);
  if (const Status s = runtime.start(); !s.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  StatusOr<apps::LaneDetectionResult> result = apps::LaneDetectionResult{};
  Stopwatch timer;
  auto instance = runtime.submit_api(
      "lane_detection", [&result, &config] {
        result = apps::run_lane_detection(config);
      });
  if (!instance.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 instance.status().to_string().c_str());
    return 1;
  }
  (void)runtime.wait_all(600.0);
  const double wall = timer.elapsed();
  (void)runtime.shutdown();

  if (!result.ok()) {
    std::fprintf(stderr, "lane detection failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("frame %zux%zu processed in %.1f ms: %zu FFT + %zu IFFT calls, "
              "%zu edge pixels\n",
              config.rows, config.cols, wall * 1e3, result->fft_calls,
              result->ifft_calls, result->lanes.edge_pixels);
  std::printf("lanes found: left=%s right=%s\n",
              result->lanes.left ? "yes" : "no",
              result->lanes.right ? "yes" : "no");
  if (result->both_lanes_found) {
    std::printf("slope errors vs ground truth: left=%.3f right=%.3f (dx/dy)\n",
                result->left_slope_error, result->right_slope_error);
  }
  ascii_render(*result, config.rows, config.cols);
  return result->both_lanes_found ? 0 : 1;
}
