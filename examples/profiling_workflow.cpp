// Profiling workflow: measure, fit, reschedule.
//
// CEDR's cost-aware heuristics consult per-(kernel, PE) execution-time
// tables obtained by profiling on the target SoC. This example closes that
// loop on the host: run a calibration workload under the runtime, fit cost
// tables from the measured service times (platform::profile_costs), print
// them against the preset tables, and show a scheduler consuming the
// fitted numbers.

#include <cstdio>

#include "cedr/cedr.h"
#include "cedr/platform/profiling.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sched/heuristics.h"

using namespace cedr;

int main() {
  // 1. Calibration run: a spread of FFT and ZIP sizes, several times each.
  rt::RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  config.scheduler = "RR";  // visit every PE so all pairings get samples
  rt::Runtime runtime(config);
  if (!runtime.start().ok()) return 1;
  auto instance = runtime.submit_api("calibration", [] {
    for (int round = 0; round < 6; ++round) {
      for (const std::size_t n : {128u, 256u, 512u, 1024u}) {
        std::vector<cedr_cplx> a(n), b(n), out(n);
        (void)CEDR_FFT(a.data(), a.data(), n);
        (void)CEDR_ZIP(a.data(), b.data(), out.data(), n);
      }
    }
  });
  if (!instance.ok()) return 1;
  (void)runtime.wait_all();
  (void)runtime.shutdown();
  std::printf("calibration: %zu task executions recorded\n",
              runtime.trace_log().tasks().size());

  // 2. Fit cost tables from the trace.
  auto profiled = platform::profile_costs(runtime.trace_log(),
                                          runtime.config().platform);
  if (!profiled.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 profiled.status().to_string().c_str());
    return 1;
  }
  std::printf("fitted %zu (kernel, PE-class) pairings from %zu samples:\n",
              profiled->entries.size(), profiled->tasks_used);
  for (const auto& entry : profiled->entries) {
    std::printf(
        "  %-6s on %-5s: %3zu samples, mean %8.2f us, fit = %.2f us + "
        "%.4f ns/elem\n",
        std::string(platform::kernel_name(entry.kernel)).c_str(),
        std::string(platform::pe_class_name(entry.cls)).c_str(),
        entry.samples, entry.mean_service_s * 1e6,
        entry.fitted.fixed_s * 1e6, entry.fitted.per_point_s * 1e9);
  }

  // 3. Compare preset vs fitted estimates at a probe size.
  constexpr std::size_t kProbe = 1024;
  std::printf("\nestimate comparison at %zu-point FFT:\n", kProbe);
  const double preset = runtime.config().platform.costs.estimate(
      platform::KernelId::kFft, platform::PeClass::kCpu, kProbe, 0);
  const double fitted = profiled->costs.estimate(
      platform::KernelId::kFft, platform::PeClass::kCpu, kProbe, 0);
  std::printf("  preset table:  %8.2f us   fitted table: %8.2f us\n",
              preset * 1e6, fitted * 1e6);

  // 4. A scheduler consuming the fitted numbers: one EFT decision.
  sched::EftScheduler eft;
  std::vector<sched::PeState> pes;
  for (std::size_t i = 0; i < runtime.config().platform.pes.size(); ++i) {
    pes.push_back(sched::PeState{
        .pe_index = i, .cls = runtime.config().platform.pes[i].cls});
  }
  std::vector<sched::ReadyTask> ready{{.task_key = 1,
                                       .kernel = platform::KernelId::kFft,
                                       .problem_size = kProbe,
                                       .data_bytes = 2 * kProbe * 8}};
  const sched::ScheduleContext ctx{.now = 0.0, .costs = &profiled->costs};
  const auto decision = eft.schedule(ready, pes, ctx);
  if (decision.assignments.size() == 1) {
    std::printf(
        "\nEFT with the fitted tables places the probe FFT on %s\n",
        runtime.config()
            .platform.pes[decision.assignments[0].pe_index]
            .name.c_str());
  }
  return 0;
}
