// Control flow: the paper's core motivation (Fig. 2), demonstrated.
//
// "A DAG-based application format cannot accurately capture the control
// flow structures of many programs... this entire for-loop structure must
// be collapsed to a single DAG node" (§II-B). This example runs an
// iterative, *data-dependent* algorithm — spectral low-pass refinement that
// repeats until the out-of-band energy falls below a threshold — two ways:
//
//   1. As a CEDR-API application: the while-loop lives in ordinary C++ and
//      every FFT/ZIP/IFFT inside it is individually scheduled, so the
//      accelerator can serve each iteration (the right half of Fig. 2).
//   2. As the DAG workaround: the whole loop collapsed into one GENERIC
//      node, schedulable only on a CPU (the left half of Fig. 2).
//
// The iteration count is unknowable at graph-construction time — exactly
// why the static DAG cannot expose the kernels to the scheduler.

#include <cstdio>

#include "cedr/api/impls.h"
#include "cedr/cedr.h"
#include "cedr/common/rng.h"
#include "cedr/kernels/fft.h"
#include "cedr/kernels/zip.h"
#include "cedr/runtime/runtime.h"

using namespace cedr;

namespace {

constexpr std::size_t kN = 1024;
constexpr std::size_t kPassband = 96;     // bins kept per side
constexpr double kTargetLeakage = 1e-4;   // stop threshold
constexpr int kMaxIterations = 64;

/// Fraction of energy outside the passband.
double leakage(std::span<const cedr_cplx> spectrum) {
  double in_band = 0.0;
  double out_band = 0.0;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    const bool inside = i < kPassband || i >= spectrum.size() - kPassband;
    (inside ? in_band : out_band) += std::norm(spectrum[i]);
  }
  return out_band / (in_band + out_band + 1e-30);
}

/// The iterative algorithm, written against cedr.h. Returns iterations run.
int refine(std::vector<cedr_cplx>& signal, const std::vector<cedr_cplx>& mask) {
  std::vector<cedr_cplx> spectrum(kN);
  int iterations = 0;
  while (iterations < kMaxIterations) {
    ++iterations;
    // Each pass: FFT -> soft mask -> IFFT. The *loop condition* depends on
    // the data produced inside the loop: no static DAG can express it.
    if (!CEDR_FFT(signal.data(), spectrum.data(), kN).ok()) break;
    if (leakage(spectrum) < kTargetLeakage) break;
    if (!CEDR_ZIP(spectrum.data(), mask.data(), spectrum.data(), kN).ok()) {
      break;
    }
    if (!CEDR_IFFT(spectrum.data(), signal.data(), kN).ok()) break;
  }
  return iterations;
}

std::vector<cedr_cplx> make_noisy_signal(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cedr_cplx> signal(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double tone =
        std::cos(2.0 * kPi * 7.0 * static_cast<double>(i) / kN) +
        0.5 * std::sin(2.0 * kPi * 23.0 * static_cast<double>(i) / kN);
    signal[i] = cedr_cplx(static_cast<float>(tone + rng.normal(0.0, 0.4)),
                          static_cast<float>(rng.normal(0.0, 0.4)));
  }
  return signal;
}

/// Soft low-pass mask: gently attenuates out-of-band bins so convergence
/// takes a data-dependent number of passes.
std::vector<cedr_cplx> make_mask() {
  std::vector<cedr_cplx> mask(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const bool inside = i < kPassband || i >= kN - kPassband;
    mask[i] = cedr_cplx(inside ? 1.0f : 0.55f, 0.0f);
  }
  return mask;
}

}  // namespace

int main() {
  rt::RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  config.scheduler = "EFT";
  rt::Runtime runtime(config);
  if (!runtime.start().ok()) return 1;

  // --- CEDR-API version: loop kernels are individually schedulable. -----
  auto api_signal = make_noisy_signal(1);
  const auto mask = make_mask();
  int api_iterations = 0;
  auto api_instance = runtime.submit_api("refine_api", [&] {
    api_iterations = refine(api_signal, mask);
  });
  if (!api_instance.ok()) return 1;
  (void)runtime.wait_app(*api_instance);
  const std::size_t api_tasks = runtime.trace_log().tasks().size();

  // --- DAG workaround: the whole loop is one opaque GENERIC node. -------
  auto dag_signal = std::make_shared<std::vector<cedr_cplx>>(
      make_noisy_signal(1));
  auto dag_iterations = std::make_shared<int>(0);
  auto app = std::make_shared<task::AppDescriptor>();
  app->name = "refine_dag";
  task::Task node;
  node.id = 0;
  node.name = "whole_loop";
  node.kernel = platform::KernelId::kGeneric;  // CPU-only, by construction
  node.impls = api::make_generic_impls([dag_signal, dag_iterations, mask] {
    *dag_iterations = refine(*dag_signal, mask);  // runs inline on a worker
  });
  (void)app->graph.add_task(std::move(node));
  if (!runtime.submit_dag(app).ok()) return 1;
  (void)runtime.wait_all();
  const std::size_t total_tasks = runtime.trace_log().tasks().size();
  (void)runtime.shutdown();

  std::printf("iterative spectral refinement, %d-point FFTs\n",
              static_cast<int>(kN));
  std::printf(
      "  CEDR-API version:  %2d data-dependent iterations -> %zu scheduled "
      "tasks (FFT accelerator eligible for every one)\n",
      api_iterations, api_tasks);
  std::printf(
      "  DAG workaround:    %2d iterations collapsed into %zu scheduled "
      "task (CPU-only, opaque to the scheduler)\n",
      *dag_iterations, total_tasks - api_tasks);
  std::printf("  accelerator executions during the API run: %llu\n",
              static_cast<unsigned long long>(
                  runtime.counters().get("tasks_on_fft0")));
  const bool ok = api_iterations == *dag_iterations && api_iterations > 1;
  std::printf("  identical results from both models: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
