// FFT kernel tests: oracle comparison, algebraic properties, error paths.
#include <gtest/gtest.h>

#include "cedr/common/rng.h"
#include "cedr/kernels/fft.h"

namespace cedr::kernels {
namespace {

std::vector<cfloat> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> signal(n);
  for (auto& s : signal) {
    s = cfloat(static_cast<float>(rng.uniform(-1.0, 1.0)),
               static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return signal;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesDirectDft) {
  const std::size_t n = GetParam();
  const std::vector<cfloat> signal = random_signal(n, n);
  std::vector<cfloat> fast(n);
  ASSERT_TRUE(fft(signal, fast, /*inverse=*/false).ok());
  const std::vector<cfloat> slow = dft_reference(signal, /*inverse=*/false);
  EXPECT_LT(max_abs_diff(fast, slow), 2e-3f * static_cast<float>(n));
}

TEST_P(FftSizes, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const std::vector<cfloat> signal = random_signal(n, n + 1);
  std::vector<cfloat> freq(n), back(n);
  ASSERT_TRUE(fft(signal, freq, false).ok());
  ASSERT_TRUE(fft(freq, back, true).ok());
  EXPECT_LT(max_abs_diff(signal, back), 1e-4f);
}

TEST_P(FftSizes, ParsevalEnergyConservation) {
  const std::size_t n = GetParam();
  const std::vector<cfloat> signal = random_signal(n, n + 2);
  std::vector<cfloat> freq(n);
  ASSERT_TRUE(fft(signal, freq, false).ok());
  // sum |x|^2 == (1/N) sum |X|^2 for the unnormalized forward transform.
  EXPECT_NEAR(energy(signal), energy(freq) / static_cast<double>(n),
              1e-3 * energy(signal) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 128, 256, 512,
                                           1024, 2048));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cfloat> x(64, cfloat(0.0f, 0.0f));
  x[0] = cfloat(1.0f, 0.0f);
  ASSERT_TRUE(fft_inplace(x, false).ok());
  for (const cfloat& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<cfloat> x(32, cfloat(2.0f, 0.0f));
  ASSERT_TRUE(fft_inplace(x, false).ok());
  EXPECT_NEAR(x[0].real(), 64.0f, 1e-4f);
  for (std::size_t i = 1; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i]), 0.0f, 1e-4f);
  }
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  constexpr std::size_t kN = 128;
  constexpr std::size_t kBin = 5;
  std::vector<cfloat> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double phase = 2.0 * kPi * kBin * i / kN;
    x[i] = cfloat(static_cast<float>(std::cos(phase)),
                  static_cast<float>(std::sin(phase)));
  }
  ASSERT_TRUE(fft_inplace(x, false).ok());
  const std::vector<float> mags = magnitude(x);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < kN; ++i) {
    if (mags[i] > mags[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, kBin);
  EXPECT_NEAR(mags[kBin], static_cast<float>(kN), 1e-3f);
}

TEST(Fft, LinearityProperty) {
  constexpr std::size_t kN = 256;
  const auto a = random_signal(kN, 31);
  const auto b = random_signal(kN, 37);
  const cfloat alpha(1.5f, -0.5f);
  std::vector<cfloat> combined(kN);
  for (std::size_t i = 0; i < kN; ++i) combined[i] = alpha * a[i] + b[i];
  std::vector<cfloat> fa(kN), fb(kN), fc(kN);
  ASSERT_TRUE(fft(a, fa, false).ok());
  ASSERT_TRUE(fft(b, fb, false).ok());
  ASSERT_TRUE(fft(combined, fc, false).ok());
  std::vector<cfloat> expected(kN);
  for (std::size_t i = 0; i < kN; ++i) expected[i] = alpha * fa[i] + fb[i];
  EXPECT_LT(max_abs_diff(fc, expected), 1e-2f);
}

TEST(Fft, RejectsEmptyBuffer) {
  std::vector<cfloat> empty;
  EXPECT_EQ(fft_inplace(empty, false).code(), StatusCode::kInvalidArgument);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cfloat> x(100);
  EXPECT_EQ(fft_inplace(x, false).code(), StatusCode::kInvalidArgument);
}

TEST(Fft, RejectsSizeMismatch) {
  std::vector<cfloat> in(8), out(16);
  EXPECT_EQ(fft(in, out, false).code(), StatusCode::kInvalidArgument);
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<cfloat> x{cfloat(3.0f, -2.0f)};
  ASSERT_TRUE(fft_inplace(x, false).ok());
  EXPECT_EQ(x[0], cfloat(3.0f, -2.0f));
}

TEST(Fft, BitReverseTableIsInvolution) {
  for (const std::size_t n : {2u, 8u, 64u, 1024u}) {
    const auto table = bit_reverse_table(n);
    ASSERT_EQ(table.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(table[table[i]], i);
      EXPECT_LT(table[i], n);
    }
  }
}

TEST(Fft, MagnitudeMatchesAbs) {
  const auto x = random_signal(16, 41);
  const auto mags = magnitude(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(mags[i], std::abs(x[i]));
  }
}

TEST(Fft, RepeatedTransformsWithDifferentSizesShareThread) {
  // Exercises the thread-local twiddle cache invalidation across sizes.
  for (const std::size_t n : {16u, 64u, 16u, 256u, 64u}) {
    const auto x = random_signal(n, n * 3);
    std::vector<cfloat> freq(n), back(n);
    ASSERT_TRUE(fft(x, freq, false).ok());
    ASSERT_TRUE(fft(freq, back, true).ok());
    EXPECT_LT(max_abs_diff(x, back), 1e-4f);
  }
}

}  // namespace
}  // namespace cedr::kernels
