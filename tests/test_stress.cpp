// Soak test: hundreds of dynamically arriving application instances pushed
// through a small heterogeneous platform while a 5% fault plan fires, with
// every completion accounted for — the "zero lost work" contract of the
// retry/quarantine machinery. Also serves as the designated workload for the
// sanitizer builds (tools/run_tsan_tests.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cedr/cedr.h"
#include "cedr/runtime/runtime.h"
#include "cedr/trace/report.h"

namespace cedr {
namespace {

constexpr std::size_t kInstances = 500;

rt::RuntimeConfig soak_config() {
  rt::RuntimeConfig config;
  // The paper's ZCU102 shape: 3 worker cores + 1 FFT accelerator (emulated
  // MMIO device), 4 PEs total.
  config.platform = platform::zcu102(/*cpus=*/3, /*ffts=*/1, /*mmults=*/0);
  config.scheduler = "EFT";
  config.fault_plan.seed = 0x50a4;
  config.fault_plan.defaults.fail_prob = 0.05;
  // 5% per-attempt failure with independent retries: 6 attempts drive the
  // terminal-failure probability below 1e-7 per task, so "zero lost
  // completions" is a deterministic expectation at this scale.
  config.fault_plan.policy.max_retries = 5;
  config.fault_plan.policy.quarantine_threshold = 4;
  config.fault_plan.policy.probe_period_s = 2e-3;
  return config;
}

void run_pd() {  // radar-ish: two chained FFTs
  std::vector<cedr_cplx> buf(128);
  buf[1] = cedr_cplx(1.0f, 0.0f);
  ASSERT_TRUE(CEDR_FFT(buf.data(), buf.data(), buf.size()).ok());
  ASSERT_TRUE(CEDR_IFFT(buf.data(), buf.data(), buf.size()).ok());
}

void run_tx() {  // comms-ish: FFT + element-wise product
  std::vector<cedr_cplx> a(64), b(64, cedr_cplx(1.0f, 0.0f));
  a[1] = cedr_cplx(1.0f, 0.0f);
  ASSERT_TRUE(CEDR_FFT(a.data(), a.data(), a.size()).ok());
  ASSERT_TRUE(CEDR_ZIP(a.data(), b.data(), a.data(), a.size(),
                       CedrZipOp::kMultiply)
                  .ok());
}

void run_ld() {  // vision-ish: small dense matmul
  std::vector<float> a(8 * 8, 0.5f), b(8 * 8, 0.25f), c(8 * 8);
  ASSERT_TRUE(CEDR_MMULT(a.data(), b.data(), c.data(), 8, 8, 8).ok());
}

TEST(StressSoak, FiveHundredInstancesWithFivePercentFaults) {
  rt::Runtime runtime(soak_config());
  ASSERT_TRUE(runtime.start().ok());

  std::atomic<std::size_t> finished{0};
  for (std::size_t i = 0; i < kInstances; ++i) {
    const char* name = i % 3 == 0 ? "PD" : (i % 3 == 1 ? "TX" : "LD");
    auto body = [i, &finished] {
      if (i % 3 == 0) run_pd();
      else if (i % 3 == 1) run_tx();
      else run_ld();
      finished.fetch_add(1, std::memory_order_relaxed);
    };
    auto instance = runtime.submit_api(name, body);
    ASSERT_TRUE(instance.ok()) << "submission " << i << " failed";
    // Dynamic arrival: a steady trickle, not one pre-loaded batch, so the
    // ready queue sees churn while earlier instances retire.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // The soak's core contract: wait_all converges (no deadlock between
  // retries, quarantine probes and app completions) and nothing is lost.
  ASSERT_TRUE(runtime.wait_all(240.0).ok());
  EXPECT_EQ(finished.load(), kInstances);
  EXPECT_EQ(runtime.submitted_apps(), kInstances);
  EXPECT_EQ(runtime.completed_apps(), kInstances);
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 0u);
  EXPECT_GT(runtime.counters().get("faults_injected"), 0u);
  EXPECT_GT(runtime.counters().get("tasks_retried"), 0u);
  EXPECT_EQ(runtime.counters().get("apps_completed"), kInstances);
  EXPECT_TRUE(runtime.shutdown().ok());

  // Trace integrity under churn: timestamps are per-task monotonic and the
  // task count covers at least one attempt per submitted kernel call.
  const auto& tasks = runtime.trace_log().tasks();
  EXPECT_GE(tasks.size(), kInstances * 2 - kInstances / 3);
  for (const auto& task : tasks) {
    EXPECT_GE(task.start_time, task.enqueue_time);
    EXPECT_GE(task.end_time, task.start_time);
  }

  // The offline report surfaces the fault-tolerance story by name.
  const trace::Report report = trace::summarize(runtime.trace_log());
  const std::string text = trace::render_text(report);
  EXPECT_NE(text.find("tasks_retried"), std::string::npos);
  EXPECT_NE(text.find("pes_quarantined"), std::string::npos);
  EXPECT_GE(report.retried_attempts, 1u);
}

TEST(StressSoak, CleanSoakHasNoFaultArtifacts) {
  // Control run: same shape, no fault plan. Guards against the fault
  // machinery perturbing the non-faulting fast path.
  rt::RuntimeConfig config = soak_config();
  config.fault_plan = platform::FaultPlan{};
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  for (std::size_t i = 0; i < 64; ++i) {
    auto instance = runtime.submit_api("TX", [] { run_tx(); });
    ASSERT_TRUE(instance.ok());
  }
  ASSERT_TRUE(runtime.wait_all(120.0).ok());
  EXPECT_EQ(runtime.completed_apps(), 64u);
  EXPECT_EQ(runtime.counters().get("faults_injected"), 0u);
  EXPECT_EQ(runtime.counters().get("tasks_retried"), 0u);
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 0u);
  EXPECT_TRUE(runtime.shutdown().ok());
}

}  // namespace
}  // namespace cedr
