// Tests for image kernels and the lane-detection stages.
#include <gtest/gtest.h>

#include "cedr/kernels/conv.h"
#include "cedr/kernels/image.h"

namespace cedr::kernels {
namespace {

TEST(RgbToGray, KnownValues) {
  RgbImage img(1, 3);
  // white, black, pure green
  img.pixels = {255, 255, 255, 0, 0, 0, 0, 255, 0};
  const GrayImage gray = rgb_to_gray(img);
  EXPECT_NEAR(gray.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(gray.at(0, 1), 0.0f, 1e-5f);
  EXPECT_NEAR(gray.at(0, 2), 0.587f, 1e-4f);
}

TEST(GaussianBlurFft, MatchesDirectConvolution) {
  GrayImage img(20, 28);
  for (std::size_t r = 0; r < img.rows; ++r) {
    for (std::size_t c = 0; c < img.cols; ++c) {
      img.at(r, c) = static_cast<float>((r * 7 + c * 3) % 13) / 13.0f;
    }
  }
  const auto blurred = gaussian_blur_fft(img, 5, 1.2);
  ASSERT_TRUE(blurred.ok());
  const auto kernel = gaussian_kernel(5, 1.2);
  std::vector<float> expected(img.rows * img.cols);
  ASSERT_TRUE(conv2d_direct(img.pixels, img.rows, img.cols, kernel, 5,
                            expected).ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(blurred->pixels[i], expected[i], 1e-3f);
  }
}

TEST(GaussianBlurFft, PreservesConstantImageInterior) {
  GrayImage img(16, 16);
  std::fill(img.pixels.begin(), img.pixels.end(), 0.5f);
  const auto blurred = gaussian_blur_fft(img, 3, 0.8);
  ASSERT_TRUE(blurred.ok());
  // Away from borders a normalized kernel must leave a constant unchanged.
  EXPECT_NEAR(blurred->at(8, 8), 0.5f, 1e-4f);
}

TEST(Sobel, RespondsToVerticalEdge) {
  GrayImage img(10, 10);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 5; c < 10; ++c) img.at(r, c) = 1.0f;
  }
  const GrayImage mag = sobel_magnitude(img);
  EXPECT_GT(mag.at(5, 5), 1.0f);   // on the edge
  EXPECT_NEAR(mag.at(5, 2), 0.0f, 1e-5f);  // flat region
  EXPECT_NEAR(mag.at(5, 8), 0.0f, 1e-5f);
}

TEST(Sobel, TinyImagesAreSafe) {
  GrayImage img(2, 2);
  const GrayImage mag = sobel_magnitude(img);
  EXPECT_EQ(mag.rows, 2u);
  for (const float v : mag.pixels) EXPECT_EQ(v, 0.0f);
}

TEST(Threshold, Binarizes) {
  GrayImage img(1, 4);
  img.pixels = {0.1f, 0.5f, 0.8f, 0.5f};
  const GrayImage bin = threshold(img, 0.5f);
  EXPECT_EQ(bin.pixels, (std::vector<float>{0.0f, 1.0f, 1.0f, 1.0f}));
}

TEST(Hough, FindsAxisAlignedLine) {
  GrayImage bin(64, 64);
  for (std::size_t c = 8; c < 56; ++c) bin.at(32, c) = 1.0f;  // horizontal
  const auto lines = hough_lines(bin, 2, 20);
  ASSERT_GE(lines.size(), 1u);
  // Horizontal line: theta ~ pi/2, rho ~ 32.
  EXPECT_NEAR(lines[0].theta, kPi / 2, 0.05);
  EXPECT_NEAR(lines[0].rho, 32.0, 1.5);
  EXPECT_GE(lines[0].votes, 40u);
}

TEST(Hough, FindsDiagonalLine) {
  GrayImage bin(64, 64);
  for (std::size_t i = 4; i < 60; ++i) bin.at(i, i) = 1.0f;
  const auto lines = hough_lines(bin, 2, 20);
  ASSERT_GE(lines.size(), 1u);
  // y = x  ->  x cos(3pi/4) + y sin(3pi/4) = 0.
  EXPECT_NEAR(lines[0].theta, 3 * kPi / 4, 0.05);
  EXPECT_NEAR(lines[0].rho, 0.0, 2.0);
}

TEST(Hough, SeparatesTwoLines) {
  GrayImage bin(64, 64);
  for (std::size_t c = 0; c < 64; ++c) bin.at(10, c) = 1.0f;
  for (std::size_t r = 0; r < 64; ++r) bin.at(r, 20) = 1.0f;
  const auto lines = hough_lines(bin, 4, 30);
  ASSERT_GE(lines.size(), 2u);
  // One near-horizontal (theta ~ pi/2) and one near-vertical (theta ~ 0).
  const bool has_horizontal =
      std::any_of(lines.begin(), lines.end(), [](const HoughLine& l) {
        return std::abs(l.theta - kPi / 2) < 0.1;
      });
  const bool has_vertical =
      std::any_of(lines.begin(), lines.end(), [](const HoughLine& l) {
        return l.theta < 0.1 || l.theta > kPi - 0.1;
      });
  EXPECT_TRUE(has_horizontal);
  EXPECT_TRUE(has_vertical);
}

TEST(Hough, EmptyImageYieldsNothing) {
  GrayImage bin(32, 32);
  EXPECT_TRUE(hough_lines(bin, 4, 10).empty());
}

TEST(SynthesizeRoad, GeometryMatchesTruth) {
  Rng rng(1);
  RoadTruth truth;
  const RgbImage road = synthesize_road(108, 192, truth, 0.0, rng);
  EXPECT_LT(truth.left_slope, 0.0);   // left marking leans right (dx/dy < 0)
  EXPECT_GT(truth.right_slope, 0.0);
  // Bright paint at the expected bottom-row positions.
  const GrayImage gray = rgb_to_gray(road);
  const auto left_col = static_cast<std::size_t>(truth.left_offset);
  const auto right_col = static_cast<std::size_t>(truth.right_offset);
  EXPECT_GT(gray.at(107, left_col), 0.8f);
  EXPECT_GT(gray.at(107, right_col), 0.8f);
  // Asphalt between the markings is dark.
  EXPECT_LT(gray.at(107, (left_col + right_col) / 2), 0.4f);
}

TEST(SynthesizeRoad, NoiseIsReproducibleBySeed) {
  RoadTruth t1, t2;
  Rng rng_a(7), rng_b(7);
  const RgbImage a = synthesize_road(32, 48, t1, 0.1, rng_a);
  const RgbImage b = synthesize_road(32, 48, t2, 0.1, rng_b);
  EXPECT_EQ(a.pixels, b.pixels);
}

}  // namespace
}  // namespace cedr::kernels
