// Tests for ZIP, MMULT and convolution kernels.
#include <gtest/gtest.h>

#include "cedr/common/rng.h"
#include "cedr/kernels/conv.h"
#include "cedr/kernels/mmult.h"
#include "cedr/kernels/zip.h"

namespace cedr::kernels {
namespace {

std::vector<cfloat> random_complex(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> v(n);
  for (auto& x : v) {
    x = cfloat(static_cast<float>(rng.uniform(-2.0, 2.0)),
               static_cast<float>(rng.uniform(-2.0, 2.0)));
  }
  return v;
}

std::vector<float> random_real(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

TEST(Zip, Multiply) {
  const auto a = random_complex(64, 1);
  const auto b = random_complex(64, 2);
  std::vector<cfloat> out(64);
  ASSERT_TRUE(zip(a, b, out, ZipOp::kMultiply).ok());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LT(std::abs(out[i] - a[i] * b[i]), 1e-5f);
  }
}

TEST(Zip, ConjugateMultiply) {
  const auto a = random_complex(32, 3);
  const auto b = random_complex(32, 4);
  std::vector<cfloat> out(32);
  ASSERT_TRUE(zip(a, b, out, ZipOp::kConjugateMultiply).ok());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LT(std::abs(out[i] - a[i] * std::conj(b[i])), 1e-5f);
  }
}

TEST(Zip, AddAndSubtractAreInverses) {
  const auto a = random_complex(48, 5);
  const auto b = random_complex(48, 6);
  std::vector<cfloat> sum(48), back(48);
  ASSERT_TRUE(zip(a, b, sum, ZipOp::kAdd).ok());
  ASSERT_TRUE(zip(sum, b, back, ZipOp::kSubtract).ok());
  EXPECT_LT(max_abs_diff(a, back), 1e-5f);
}

TEST(Zip, AllowsAliasedOutput) {
  auto a = random_complex(16, 7);
  const auto a_copy = a;
  const auto b = random_complex(16, 8);
  ASSERT_TRUE(zip(a, b, a, ZipOp::kMultiply).ok());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(a[i] - a_copy[i] * b[i]), 1e-5f);
  }
}

TEST(Zip, RejectsSizeMismatch) {
  std::vector<cfloat> a(4), b(5), out(4);
  EXPECT_EQ(zip(a, b, out, ZipOp::kAdd).code(), StatusCode::kInvalidArgument);
}

TEST(Zip, ScaleMultipliesEveryElement) {
  const auto a = random_complex(10, 9);
  std::vector<cfloat> out(10);
  scale(a, cfloat(0.0f, 2.0f), out);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(std::abs(out[i] - a[i] * cfloat(0.0f, 2.0f)), 1e-6f);
  }
}

TEST(Mmult, KnownSmallProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4);
  ASSERT_TRUE(mmult(a, b, c, 2, 2, 2).ok());
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Mmult, IdentityLeavesMatrixUnchanged) {
  constexpr std::size_t kN = 16;
  std::vector<float> eye(kN * kN, 0.0f);
  for (std::size_t i = 0; i < kN; ++i) eye[i * kN + i] = 1.0f;
  const auto m = random_real(kN * kN, 10);
  std::vector<float> out(kN * kN);
  ASSERT_TRUE(mmult(eye, m, out, kN, kN, kN).ok());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], m[i]);
}

struct MmultShape {
  std::size_t m, k, n;
};

class MmultShapes : public ::testing::TestWithParam<MmultShape> {};

TEST_P(MmultShapes, BlockedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const auto a = random_real(m * k, m + k);
  const auto b = random_real(k * n, k + n);
  std::vector<float> naive(m * n), blocked(m * n);
  ASSERT_TRUE(mmult(a, b, naive, m, k, n).ok());
  ASSERT_TRUE(mmult_blocked(a, b, blocked, m, k, n, 8).ok());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(naive[i], blocked[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MmultShapes,
    ::testing::Values(MmultShape{1, 1, 1}, MmultShape{3, 5, 7},
                      MmultShape{8, 8, 8}, MmultShape{16, 4, 32},
                      MmultShape{33, 17, 9}, MmultShape{64, 64, 64}));

TEST(Mmult, RejectsInconsistentShapes) {
  std::vector<float> a(6), b(6), c(6);
  EXPECT_EQ(mmult(a, b, c, 2, 3, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mmult(a, b, c, 0, 3, 2).code(), StatusCode::kInvalidArgument);
}

TEST(Mmult, TransposeIsInvolution) {
  constexpr std::size_t kM = 5, kN = 9;
  const auto m = random_real(kM * kN, 11);
  std::vector<float> t(kM * kN), back(kM * kN);
  transpose(m, t, kM, kN);
  transpose(t, back, kN, kM);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_FLOAT_EQ(back[i], m[i]);
}

TEST(Conv1d, DirectMatchesHandComputed) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{1, 1};
  const auto out = conv1d_direct(a, b);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_FLOAT_EQ(out[0], 1);
  EXPECT_FLOAT_EQ(out[1], 3);
  EXPECT_FLOAT_EQ(out[2], 5);
  EXPECT_FLOAT_EQ(out[3], 3);
}

class ConvLengths
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ConvLengths, FftMatchesDirect) {
  const auto [la, lb] = GetParam();
  const auto a = random_real(la, la * 3 + 1);
  const auto b = random_real(lb, lb * 5 + 2);
  const auto direct = conv1d_direct(a, b);
  const auto viafft = conv1d_fft(a, b);
  ASSERT_TRUE(viafft.ok());
  ASSERT_EQ(viafft->size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], (*viafft)[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ConvLengths,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{4, 4},
                                           std::pair<std::size_t, std::size_t>{16, 5},
                                           std::pair<std::size_t, std::size_t>{31, 17},
                                           std::pair<std::size_t, std::size_t>{100, 64}));

TEST(CircularConv, MatchesBruteForce) {
  constexpr std::size_t kN = 16;
  const auto a = random_complex(kN, 12);
  const auto b = random_complex(kN, 13);
  std::vector<cfloat> fast(kN);
  ASSERT_TRUE(circular_conv_fft(a, b, fast).ok());
  for (std::size_t i = 0; i < kN; ++i) {
    cfloat acc(0.0f, 0.0f);
    for (std::size_t j = 0; j < kN; ++j) {
      acc += a[j] * b[(i + kN - j) % kN];
    }
    EXPECT_LT(std::abs(fast[i] - acc), 1e-3f);
  }
}

TEST(Conv2d, FftMatchesDirect) {
  constexpr std::size_t kRows = 24, kCols = 17, kK = 5;
  const auto img = random_real(kRows * kCols, 14);
  const auto kern = random_real(kK * kK, 15);
  std::vector<float> direct(kRows * kCols), viafft(kRows * kCols);
  ASSERT_TRUE(conv2d_direct(img, kRows, kCols, kern, kK, direct).ok());
  ASSERT_TRUE(conv2d_fft(img, kRows, kCols, kern, kK, viafft).ok());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], viafft[i], 1e-3f);
  }
}

TEST(Conv2d, RejectsEvenKernel) {
  std::vector<float> img(16), kern(16), out(16);
  EXPECT_EQ(conv2d_direct(img, 4, 4, kern, 4, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(Conv2d, RejectsBufferMismatch) {
  std::vector<float> img(15), kern(9), out(16);
  EXPECT_EQ(conv2d_fft(img, 4, 4, kern, 3, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(GaussianKernel, NormalizedAndSymmetric) {
  const auto k = gaussian_kernel(5, 1.2);
  ASSERT_EQ(k.size(), 25u);
  float total = 0.0f;
  for (const float v : k) total += v;
  EXPECT_NEAR(total, 1.0f, 1e-5f);
  // Center is the max; symmetric under 180-degree rotation.
  for (std::size_t i = 0; i < k.size(); ++i) {
    EXPECT_LE(k[i], k[12] + 1e-7f);
    EXPECT_NEAR(k[i], k[24 - i], 1e-6f);
  }
}

}  // namespace
}  // namespace cedr::kernels
