// End-to-end application tests: PD / TX / LD through the public API,
// standalone and under the runtime, blocking and non-blocking, plus the
// DAG-based variants — all must produce correct domain results.
#include <gtest/gtest.h>

#include <set>

#include "cedr/apps/dag_apps.h"
#include "cedr/apps/lane_detection.h"
#include "cedr/apps/pulse_doppler.h"
#include "cedr/apps/wifi_tx.h"
#include "cedr/runtime/runtime.h"

namespace cedr::apps {
namespace {

PulseDopplerConfig small_pd(bool nonblocking) {
  PulseDopplerConfig config;
  config.params.num_pulses = 32;
  config.params.samples_per_pulse = 128;
  config.truth = {.range_bin = 30, .doppler_hz = 1250.0, .magnitude = 3.0};
  config.noise_stddev = 0.02;
  config.seed = 5;
  config.nonblocking = nonblocking;
  return config;
}

WifiTxConfig small_tx(bool nonblocking) {
  WifiTxConfig config;
  config.num_packets = 8;
  config.seed = 5;
  config.nonblocking = nonblocking;
  return config;
}

LaneDetectionConfig small_ld(bool nonblocking) {
  LaneDetectionConfig config;
  config.rows = 72;
  config.cols = 128;
  config.noise_stddev = 0.01;
  config.seed = 5;
  config.nonblocking = nonblocking;
  return config;
}

class BlockingModes : public ::testing::TestWithParam<bool> {};

TEST_P(BlockingModes, PulseDopplerRecoversTarget) {
  const auto result = run_pulse_doppler(small_pd(GetParam()));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->range_correct);
  // Doppler resolution = prf / pulses = 312.5 Hz -> ~15.6 m/s at 3 GHz.
  EXPECT_LT(result->velocity_error_mps, 16.0);
}

TEST_P(BlockingModes, WifiTxRoundTripsEveryPacket) {
  const WifiTxConfig config = small_tx(GetParam());
  const auto result = run_wifi_tx(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->symbols.size(), config.num_packets);
  for (std::size_t p = 0; p < config.num_packets; ++p) {
    const auto decoded = decode_wifi_symbol(result->symbols[p], config);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, result->payloads[p]) << "packet " << p;
  }
}

TEST_P(BlockingModes, LaneDetectionFindsBothLanes) {
  const auto result = run_lane_detection(small_ld(GetParam()));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->both_lanes_found);
  EXPECT_LT(result->left_slope_error, 0.2);
  EXPECT_LT(result->right_slope_error, 0.2);
  EXPECT_GT(result->fft_calls, 0u);
  EXPECT_GT(result->ifft_calls, 0u);
}

INSTANTIATE_TEST_SUITE_P(Api, BlockingModes, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "nonblocking" : "blocking";
                         });

TEST(AppsValidation, RejectBadConfigs) {
  PulseDopplerConfig pd = small_pd(false);
  pd.params.samples_per_pulse = 100;  // not a power of two
  EXPECT_FALSE(run_pulse_doppler(pd).ok());

  WifiTxConfig tx = small_tx(false);
  tx.ofdm_size = 100;
  EXPECT_FALSE(run_wifi_tx(tx).ok());
  tx = small_tx(false);
  tx.payload_bits = 63;
  EXPECT_FALSE(run_wifi_tx(tx).ok());

  LaneDetectionConfig ld = small_ld(false);
  ld.gaussian_ksize = 4;  // even kernel
  EXPECT_FALSE(run_lane_detection(ld).ok());
}

TEST(AppsUnderRuntime, AllThreeRunConcurrently) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  config.scheduler = "HEFT_RT";
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());

  StatusOr<PulseDopplerResult> pd = PulseDopplerResult{};
  StatusOr<WifiTxResult> tx = WifiTxResult{};
  StatusOr<LaneDetectionResult> ld = LaneDetectionResult{};
  ASSERT_TRUE(runtime
                  .submit_api("pd", [&pd] { pd = run_pulse_doppler(small_pd(true)); })
                  .ok());
  ASSERT_TRUE(
      runtime.submit_api("tx", [&tx] { tx = run_wifi_tx(small_tx(true)); }).ok());
  ASSERT_TRUE(runtime
                  .submit_api("ld", [&ld] { ld = run_lane_detection(small_ld(true)); })
                  .ok());
  ASSERT_TRUE(runtime.wait_all(120.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  ASSERT_TRUE(pd.ok());
  EXPECT_TRUE(pd->range_correct);
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(tx->symbols.size(), 8u);
  ASSERT_TRUE(ld.ok());
  EXPECT_TRUE(ld->both_lanes_found);
  // All scheduled work accounted: the trace saw tasks from 3 instances.
  std::set<std::uint64_t> instances;
  for (const auto& task : runtime.trace_log().tasks()) {
    instances.insert(task.app_instance_id);
  }
  EXPECT_EQ(instances.size(), 3u);
}

TEST(AppsResultEquivalence, RuntimeMatchesStandalone) {
  // Deterministic seed: the PD estimate must be identical whether the APIs
  // run inline or through the scheduler/devices.
  const auto standalone = run_pulse_doppler(small_pd(false));
  ASSERT_TRUE(standalone.ok());

  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  StatusOr<PulseDopplerResult> under_runtime = PulseDopplerResult{};
  ASSERT_TRUE(runtime
                  .submit_api("pd", [&under_runtime] {
                    under_runtime = run_pulse_doppler(small_pd(false));
                  })
                  .ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  ASSERT_TRUE(under_runtime.ok());
  EXPECT_EQ(under_runtime->estimate.range_bin, standalone->estimate.range_bin);
  EXPECT_NEAR(under_runtime->estimate.doppler_hz,
              standalone->estimate.doppler_hz, 1e-6);
}

TEST(DagApps, PulseDopplerDagMatchesApiResult) {
  const PulseDopplerConfig config = small_pd(false);
  const auto api_result = run_pulse_doppler(config);
  ASSERT_TRUE(api_result.ok());

  auto dag = make_pulse_doppler_dag(config);
  ASSERT_TRUE(dag.ok());
  // chirp_fft + 3 per pulse + corner turn + one Doppler FFT per range bin
  // + peak search.
  EXPECT_EQ(dag->descriptor->graph.size(),
            3 + 3 * config.params.num_pulses + config.params.samples_per_pulse);

  rt::RuntimeConfig rt_config;
  rt_config.platform = platform::host(2, 1);
  rt::Runtime runtime(rt_config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_dag(dag->descriptor);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  const PulseDopplerResult dag_result = dag->result();
  EXPECT_EQ(dag_result.estimate.range_bin, api_result->estimate.range_bin);
  EXPECT_NEAR(dag_result.estimate.doppler_hz, api_result->estimate.doppler_hz,
              1e-3);
  EXPECT_TRUE(dag_result.range_correct);
}

TEST(DagApps, WifiTxDagProducesDecodablePackets) {
  const WifiTxConfig config = small_tx(false);
  auto dag = make_wifi_tx_dag(config);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->descriptor->graph.size(), 2 * config.num_packets);

  rt::RuntimeConfig rt_config;
  rt_config.platform = platform::host(2, 1);
  rt::Runtime runtime(rt_config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_TRUE(runtime.submit_dag(dag->descriptor).ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  const WifiTxResult result = dag->result();
  ASSERT_EQ(result.symbols.size(), config.num_packets);
  for (std::size_t p = 0; p < config.num_packets; ++p) {
    const auto decoded = decode_wifi_symbol(result.symbols[p], config);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, result.payloads[p]) << "packet " << p;
  }
}

TEST(DagApps, RejectBadConfigs) {
  PulseDopplerConfig pd = small_pd(false);
  pd.params.num_pulses = 33;
  EXPECT_FALSE(make_pulse_doppler_dag(pd).ok());
  WifiTxConfig tx = small_tx(false);
  tx.ofdm_size = 77;
  EXPECT_FALSE(make_wifi_tx_dag(tx).ok());
}

}  // namespace
}  // namespace cedr::apps
